// Ablation (the paper's declared future work): effect of RLC block errors
// and ARQ retransmissions on the GPRS performance measures.
//
// Section 3 of the paper assumes the FEC of CS-2 recovers (almost) all
// losses and explicitly defers retransmission modeling. Here the same cell
// is evaluated across block error rates, with the Markov model's
// effective-service-rate abstraction cross-checked against the simulator's
// block-level ARQ at one operating point.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/model.hpp"
#include "sim/simulator.hpp"
#include "traffic/threegpp.hpp"

int main() {
    using namespace gprsim;
    bench::print_header(
        "Ablation -- RLC block errors / ARQ retransmissions "
        "(traffic model 3, 0.5 calls/s, 1 PDCH, 5% GPRS)");

    core::Parameters base = core::Parameters::with_traffic_model(traffic::traffic_model_3());
    base.call_arrival_rate = 0.5;
    base.reserved_pdch = 1;

    std::printf("%8s %12s %12s %12s %12s\n", "BLER", "CDT [PDCH]", "PLP", "QD [s]",
                "ATU [kbit/s]");
    for (double bler : {0.0, 0.05, 0.1, 0.2, 0.4}) {
        core::Parameters p = base;
        p.block_error_rate = bler;
        core::GprsModel model(p);
        ctmc::SolveOptions options;
        options.tolerance = 1e-9;
        model.solve(options);
        const core::Measures m = model.measures();
        std::printf("%8.2f %12.4f %12.4e %12.4f %12.4f\n", bler, m.carried_data_traffic,
                    m.packet_loss_probability, m.queueing_delay,
                    m.throughput_per_user_kbps);
    }

    // Cross-check the abstraction against block-level ARQ in the simulator.
    std::printf("\nModel vs simulator at BLER = 0.2 (open loop):\n");
    core::Parameters p = base;
    p.block_error_rate = 0.2;
    p.flow_control_threshold = 1.0;
    core::GprsModel model(p);
    ctmc::SolveOptions options;
    options.tolerance = 1e-9;
    model.solve(options);
    const core::Measures analytic = model.measures();

    sim::SimulationConfig config;
    config.cell = p;
    config.tcp_enabled = false;
    config.seed = 31;
    config.warmup_time = 1000.0;
    config.batch_count = 10;
    config.batch_duration = 1000.0;
    const sim::SimulationResults simulated = sim::NetworkSimulator(config).run();
    std::printf("  CDT: model %.3f, sim %.3f +- %.3f\n", analytic.carried_data_traffic,
                simulated.carried_data_traffic.mean,
                simulated.carried_data_traffic.half_width);
    std::printf("  ATU: model %.3f, sim %.3f +- %.3f kbit/s\n",
                analytic.throughput_per_user_kbps,
                simulated.throughput_per_user_kbps.mean,
                simulated.throughput_per_user_kbps.half_width);
    return 0;
}
