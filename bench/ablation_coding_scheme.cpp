// Ablation (extension beyond the paper): sensitivity of the dimensioning
// answer to the channel coding scheme.
//
// The paper fixes CS-2 and notes that block errors / retransmission effects
// are future work. Here the same cell is solved under CS-1..CS-4 — i.e.,
// per-PDCH rates from 9.05 to 21.4 kbit/s — showing how strongly the QoS
// measures and the "how many PDCHs" answer depend on channel quality. The
// four configurations form a heterogeneous batch, so they run through
// sweep_scenarios() and shard across the engine pool under --threads=N.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/coding_scheme.hpp"
#include "core/sweep.hpp"
#include "traffic/threegpp.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Ablation -- coding schemes CS-1..CS-4 (traffic model 3, 5% GPRS, "
        "0.5 calls/s, 1 reserved PDCH)");

    core::Parameters base = core::Parameters::with_traffic_model(traffic::traffic_model_3());
    base.call_arrival_rate = 0.5;
    base.reserved_pdch = 1;

    const core::CodingScheme schemes[] = {core::CodingScheme::cs1, core::CodingScheme::cs2,
                                          core::CodingScheme::cs3, core::CodingScheme::cs4};
    std::vector<core::Parameters> scenarios;
    for (core::CodingScheme scheme : schemes) {
        scenarios.push_back(core::with_coding_scheme(base, scheme));
    }

    core::SweepOptions options;
    options.solve.tolerance = 1e-9;
    bench::apply_threads(options, args);
    bench::WallTimer timer;
    const std::vector<core::ScenarioPoint> points = core::sweep_scenarios(scenarios, options);
    const double seconds = timer.seconds();

    std::printf("%6s %10s %12s %12s %12s %12s\n", "scheme", "kbit/s", "CDT [PDCH]", "PLP",
                "QD [s]", "ATU [kbit/s]");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const core::Measures& m = points[i].measures;
        std::printf("%6s %10.2f %12.4f %12.4e %12.4f %12.4f\n",
                    core::coding_scheme_name(schemes[i]),
                    core::coding_scheme_rate_kbps(schemes[i]), m.carried_data_traffic,
                    m.packet_loss_probability, m.queueing_delay,
                    m.throughput_per_user_kbps);
    }
    bench::print_walltime("4-scenario batch", seconds);

    std::printf("\nReading: at this load the cell is congestion-limited, so the\n");
    std::printf("channel rate translates almost directly into per-user throughput;\n");
    std::printf("a CS-1 deployment needs roughly twice the PDCH reservation of CS-4\n");
    std::printf("for the same QoS target (cf. the paper's fixed-CS-2 assumption).\n");
    return 0;
}
