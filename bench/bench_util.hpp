// Shared helpers for the reproduction benches: consistent table printing and
// a tiny command-line convention (--full for paper-resolution sweeps,
// --points=N to override the arrival-rate grid size).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace gprsim::bench {

struct BenchArgs {
    bool full = false;  ///< paper-resolution grids (slower)
    int points = 0;     ///< 0 = per-bench default

    static BenchArgs parse(int argc, char** argv) {
        BenchArgs args;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--full") == 0) {
                args.full = true;
            } else if (std::strncmp(argv[i], "--points=", 9) == 0) {
                args.points = std::atoi(argv[i] + 9);
            }
        }
        return args;
    }

    int grid(int quick_default, int full_default) const {
        if (points > 0) {
            return points;
        }
        return full ? full_default : quick_default;
    }
};

inline void print_header(const std::string& title) {
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
}

inline void print_row_rule(int columns, int width = 12) {
    for (int c = 0; c < columns; ++c) {
        for (int i = 0; i < width + 2; ++i) {
            std::putchar('-');
        }
    }
    std::putchar('\n');
}

}  // namespace gprsim::bench
