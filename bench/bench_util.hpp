// Shared helpers for the reproduction benches: consistent table printing, a
// tiny command-line convention (--full for paper-resolution sweeps,
// --points=N to override the arrival-rate grid size, --threads=N to size
// the solver/experiment engines, --replications=N for simulator
// experiments), wall-clock timing with speedup reporting, and
// machine-readable perf records (BENCH_solver.json / BENCH_simulator.json)
// so successive PRs have a perf trajectory to compare against.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/sink.hpp"
#include "core/sweep.hpp"

namespace gprsim::bench {

struct BenchArgs {
    bool full = false;     ///< paper-resolution grids (slower)
    int points = 0;        ///< 0 = per-bench default
    int threads = 1;       ///< engine width; 0 = all hardware threads
    bool threads_given = false;  ///< --threads was on the command line
    int replications = 0;  ///< simulator replications; 0 = per-bench default
    std::string json;      ///< path for machine-readable records ("" = none)

    static BenchArgs parse(int argc, char** argv) {
        BenchArgs args;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--full") == 0) {
                args.full = true;
            } else if (std::strncmp(argv[i], "--points=", 9) == 0) {
                args.points = std::atoi(argv[i] + 9);
            } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
                args.threads = std::atoi(argv[i] + 10);
                args.threads_given = true;
            } else if (std::strncmp(argv[i], "--replications=", 15) == 0) {
                args.replications = std::atoi(argv[i] + 15);
            } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
                args.json = argv[i] + 7;
            }
        }
        return args;
    }

    int grid(int quick_default, int full_default) const {
        if (points > 0) {
            return points;
        }
        return full ? full_default : quick_default;
    }

    int replication_count(int quick_default, int full_default) const {
        if (replications > 0) {
            return replications;
        }
        return full ? full_default : quick_default;
    }
};

/// Applies --threads to a sweep: N != 1 shards independent sweep points
/// across the engine pool (N == 0 uses all hardware threads).
inline void apply_threads(core::SweepOptions& sweep, const BenchArgs& args) {
    sweep.num_threads = args.threads;
    sweep.parallel_points = args.threads != 1;
}

/// Campaign counterpart of apply_threads: --threads sizes the runner's
/// task sharding (campaign output never depends on it).
inline campaign::CampaignOptions campaign_options(const BenchArgs& args) {
    campaign::CampaignOptions options;
    options.num_threads = args.threads;
    return options;
}

/// Attaches the benches' stderr progress line to a campaign: every chain
/// solve reports its variant label, rate, sweeps and wall time.
inline void attach_solve_progress(campaign::CampaignOptions& options,
                                  const campaign::ScenarioSpec& spec) {
    // Labels are resolved up front (the callback outlives this scope).
    auto variants =
        std::make_shared<std::vector<campaign::Variant>>(spec.expand());
    options.solve_progress = [variants](std::size_t,
                                        const campaign::CampaignPoint& point) {
        std::fprintf(stderr, "  [%s] rate %.2f: %lld sweeps, %.1fs%s\n",
                     (*variants)[point.variant].label.c_str(), point.call_arrival_rate,
                     point.iterations, point.solve_seconds,
                     point.warm_parent >= 0 ? " (warm)" : "");
    };
}

inline void print_header(const std::string& title) {
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
}

inline void print_row_rule(int columns, int width = 12) {
    for (int c = 0; c < columns; ++c) {
        for (int i = 0; i < width + 2; ++i) {
            std::putchar('-');
        }
    }
    std::putchar('\n');
}

/// Simple wall-clock stopwatch for bench phases.
class WallTimer {
public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}
    void reset() { start_ = std::chrono::steady_clock::now(); }
    double seconds() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

/// Prints "<label>: <seconds> s (speedup <x> vs <baseline_label>)".
inline void print_walltime(const std::string& label, double seconds,
                           double baseline_seconds = 0.0,
                           const std::string& baseline_label = "serial") {
    if (baseline_seconds > 0.0 && seconds > 0.0) {
        std::printf("%-32s %9.3f s   speedup %5.2fx vs %s\n", label.c_str(), seconds,
                    baseline_seconds / seconds, baseline_label.c_str());
    } else {
        std::printf("%-32s %9.3f s\n", label.c_str(), seconds);
    }
}

/// Shared scaffolding of the perf-record writers: wraps pre-formatted
/// record lines into a JSON array at `path` and reports the write.
inline bool write_json_records(const std::string& path,
                               const std::vector<std::string>& records) {
    if (path.empty()) {
        return false;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
        return false;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < records.size(); ++i) {
        std::fprintf(f, "  %s%s\n", records[i].c_str(),
                     i + 1 < records.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %zu records to %s\n", records.size(), path.c_str());
    return true;
}

/// One machine-readable solver perf record. Two kinds share the struct:
/// chain-solve records (dispatch empty; method is the iteration scheme the
/// engine ran, or "auto" for a cost-model-selected solve) and campaign
/// dispatch-mode records (dispatch = "sequential" / "batched"; these time a
/// whole campaign run, not a solver method, and are keyed accordingly in
/// the JSON so tooling never mistakes a dispatch mode for an iteration
/// scheme).
struct SolverRecord {
    std::string name;      ///< bench/case identifier
    long long states = 0;  ///< chain states (solver) / campaign points (dispatch)
    std::string method;    ///< iteration scheme; solver records only
    std::string dispatch;  ///< non-empty marks a campaign dispatch record
    int threads = 1;
    double seconds = 0.0;
    long long iterations = 0;
    double residual = 0.0;               ///< solver records only
    long long residual_evaluations = 0;  ///< solver records only
};

/// Collects SolverRecords and writes them as a flat JSON array so
/// downstream tooling can diff perf across PRs. Records are kept
/// structured; speedups are derived at write() time by pairing each record
/// with its baseline in the SAME batch — the threads == 1 "gauss_seidel"
/// record of the same case for solver records, the "sequential" record of
/// the same case for dispatch records. A record with no such baseline gets
/// "speedup": null instead of a bogus caller-supplied ratio.
class BenchJsonWriter {
public:
    void add(const SolverRecord& r) { records_.push_back(r); }

    bool write(const std::string& path) const {
        std::vector<std::string> lines;
        lines.reserve(records_.size());
        for (const SolverRecord& r : records_) {
            const SolverRecord* base = nullptr;
            for (const SolverRecord& c : records_) {
                const bool match =
                    r.dispatch.empty()
                        ? (c.dispatch.empty() && c.name == r.name && c.threads == 1 &&
                           c.method == "gauss_seidel")
                        : (c.name == r.name && c.dispatch == "sequential");
                if (match) {
                    base = &c;
                    break;
                }
            }
            char speedup[32];
            if (base != nullptr && base->seconds > 0.0 && r.seconds > 0.0) {
                std::snprintf(speedup, sizeof(speedup), "%.3f",
                              base->seconds / r.seconds);
            } else {
                std::snprintf(speedup, sizeof(speedup), "null");
            }
            char line[512];
            if (r.dispatch.empty()) {
                std::snprintf(line, sizeof(line),
                              "{\"name\": \"%s\", \"states\": %lld, \"method\": \"%s\", "
                              "\"threads\": %d, \"seconds\": %.6f, "
                              "\"iterations\": %lld, \"residual\": %.3e, "
                              "\"residual_evaluations\": %lld, \"speedup\": %s}",
                              r.name.c_str(), r.states, r.method.c_str(), r.threads,
                              r.seconds, r.iterations, r.residual,
                              r.residual_evaluations, speedup);
            } else {
                std::snprintf(line, sizeof(line),
                              "{\"name\": \"%s\", \"points\": %lld, "
                              "\"dispatch\": \"%s\", \"threads\": %d, "
                              "\"seconds\": %.6f, \"iterations\": %lld, "
                              "\"speedup\": %s}",
                              r.name.c_str(), r.states, r.dispatch.c_str(), r.threads,
                              r.seconds, r.iterations, speedup);
            }
            lines.emplace_back(line);
        }
        return write_json_records(path, lines);
    }

private:
    std::vector<SolverRecord> records_;
};

/// One machine-readable simulator perf record (BENCH_simulator.json):
/// replication experiments instead of chain solves, with throughput in
/// executed events rather than solver sweeps.
struct SimulatorRecord {
    std::string name;       ///< bench/case identifier
    int threads = 1;
    int replications = 1;
    long long events = 0;   ///< events executed, summed over replications
    double sim_seconds = 0.0;  ///< simulated time, summed over replications
    double seconds = 0.0;      ///< wall clock for the whole experiment
};

/// SimulatorRecord counterpart of BenchJsonWriter. Records are kept
/// structured and speedups are derived at write() time by pairing each
/// record with the threads == 1 record of the *same name*: a case measured
/// only at one width (or never serially) gets "speedup": null instead of a
/// bogus cross-case ratio.
class SimJsonWriter {
public:
    void add(const SimulatorRecord& r) { records_.push_back(r); }

    bool write(const std::string& path) const {
        std::vector<std::string> lines;
        lines.reserve(records_.size());
        for (const SimulatorRecord& r : records_) {
            const SimulatorRecord* base = nullptr;
            for (const SimulatorRecord& candidate : records_) {
                if (candidate.threads == 1 && candidate.name == r.name) {
                    base = &candidate;
                    break;
                }
            }
            char speedup[32];
            if (base != nullptr && base->seconds > 0.0 && r.seconds > 0.0) {
                std::snprintf(speedup, sizeof(speedup), "%.3f",
                              base->seconds / r.seconds);
            } else {
                std::snprintf(speedup, sizeof(speedup), "null");
            }
            char line[512];
            std::snprintf(line, sizeof(line),
                          "{\"name\": \"%s\", \"threads\": %d, \"replications\": %d, "
                          "\"events\": %lld, \"sim_seconds\": %.1f, \"seconds\": %.6f, "
                          "\"events_per_second\": %.0f, \"speedup\": %s}",
                          r.name.c_str(), r.threads, r.replications, r.events,
                          r.sim_seconds, r.seconds,
                          r.seconds > 0.0 ? static_cast<double>(r.events) / r.seconds
                                          : 0.0,
                          speedup);
            lines.emplace_back(line);
        }
        return write_json_records(path, lines);
    }

private:
    std::vector<SimulatorRecord> records_;
};

}  // namespace gprsim::bench
