// Reproduces paper Fig. 5: calibrating the flow-control threshold eta so the
// Markov model's packet loss probability tracks the simulator's real TCP.
//
// Traffic model 3, 1 reserved PDCH, 5% GPRS users. The Markov model is
// solved for eta in {0.5 ... 1.0}; the detailed simulator runs TCP Reno and
// reports PLP with 95% confidence intervals.
//
// Paper findings: eta = 0.7 approximates TCP flow control best; smaller eta
// throttles traffic even without congestion; eta = 1.0 (no flow control)
// drives PLP toward 1 under load.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/model.hpp"
#include "core/sweep.hpp"
#include "sim/simulator.hpp"
#include "traffic/threegpp.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const std::vector<double> rates =
        core::arrival_rate_grid(0.2, 1.0, args.grid(4, 9));
    const double etas[] = {0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

    bench::print_header(
        "Fig. 5 -- Calibrating eta to represent TCP flow control "
        "(traffic model 3, 1 PDCH, 5% GPRS)");

    core::Parameters base = core::Parameters::with_traffic_model(traffic::traffic_model_3());
    base.reserved_pdch = 1;
    base.gprs_fraction = 0.05;

    // --- Markov model: PLP for each eta -----------------------------------
    std::vector<std::vector<double>> plp(std::size(etas));
    core::SweepOptions sweep;
    sweep.solve.tolerance = 1e-9;
    bench::apply_threads(sweep, args);
    for (std::size_t e = 0; e < std::size(etas); ++e) {
        core::Parameters p = base;
        p.flow_control_threshold = etas[e];
        const auto points = core::sweep_call_arrival_rate(p, rates, sweep);
        for (const auto& point : points) {
            plp[e].push_back(point.measures.packet_loss_probability);
        }
        std::fprintf(stderr, "  [model] eta = %.1f done\n", etas[e]);
    }

    // --- Simulator with real TCP ------------------------------------------
    std::vector<sim::SimulationResults> simulated;
    for (double rate : rates) {
        sim::SimulationConfig config;
        config.cell = base;
        config.cell.call_arrival_rate = rate;
        config.tcp_enabled = true;
        config.seed = 50u + static_cast<std::uint64_t>(rate * 1000.0);
        config.warmup_time = args.full ? 3000.0 : 1500.0;
        config.batch_count = args.full ? 20 : 10;
        config.batch_duration = args.full ? 3000.0 : 1500.0;
        simulated.push_back(sim::NetworkSimulator(config).run());
        std::fprintf(stderr, "  [sim] rate = %.2f done (%.1fs wall)\n", rate,
                     simulated.back().wall_seconds);
    }

    // --- Figure data --------------------------------------------------------
    std::printf("\nPacket loss probability:\n%10s", "calls/s");
    for (double eta : etas) {
        std::printf("   eta=%4.1f", eta);
    }
    std::printf("   sim (TCP)    sim CI half\n");
    for (std::size_t r = 0; r < rates.size(); ++r) {
        std::printf("%10.3f", rates[r]);
        for (std::size_t e = 0; e < std::size(etas); ++e) {
            std::printf("  %9.2e", plp[e][r]);
        }
        std::printf("   %9.2e    %9.2e\n", simulated[r].packet_loss_probability.mean,
                    simulated[r].packet_loss_probability.half_width);
    }

    // --- Which eta tracks the simulator best? ------------------------------
    std::printf("\nMean |model - sim| over the sweep:\n");
    double best = 1e300;
    double best_eta = 0.0;
    for (std::size_t e = 0; e < std::size(etas); ++e) {
        double err = 0.0;
        for (std::size_t r = 0; r < rates.size(); ++r) {
            err += std::fabs(plp[e][r] - simulated[r].packet_loss_probability.mean);
        }
        err /= static_cast<double>(rates.size());
        std::printf("  eta = %.1f : %.3e\n", etas[e], err);
        if (err < best) {
            best = err;
            best_eta = etas[e];
        }
    }
    std::printf("\nBest-matching eta: %.1f (paper: 0.7 is optimal; eta below 0.7\n", best_eta);
    std::printf("throttles an uncongested network, eta = 1.0 lets PLP grow toward 1)\n");
    return 0;
}
