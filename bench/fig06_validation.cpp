// Reproduces paper Fig. 6: validation of the Markov model against the
// detailed network simulator — carried data traffic and throughput per user
// for 2%/5%/10% GPRS users (traffic model 3, 1 reserved PDCH).
//
// Since the experiment-engine refactor the whole figure runs as pooled
// workloads on one thread pool: for each GPRS fraction,
// core::ScenarioSweep::validate_call_arrival_rate claims the chain solves
// and the individual simulator replications from the same workers
// (--threads=N; --replications=N per point), and the simulator columns are
// replication-level 95% confidence intervals. Output is bitwise identical
// for every thread count. Perf records land in BENCH_simulator.json.
//
// Paper findings: the model's curves lie within the simulator's 95%
// confidence intervals; CDT rises to ~4.8 PDCHs for 10% GPRS users at
// moderate load, then falls as voice traffic claims the on-demand channels.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/model.hpp"
#include "core/sweep.hpp"
#include "sim/experiment.hpp"
#include "traffic/threegpp.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const std::vector<double> rates =
        core::arrival_rate_grid(0.1, 1.0, args.grid(4, 10));
    const int replications = args.replication_count(4, 8);
    const double fractions[] = {0.02, 0.05, 0.10};

    bench::print_header(
        "Fig. 6 -- Validation of the Markov model with the detailed simulator "
        "(traffic model 3, 1 reserved PDCH)");
    std::printf("replications per point: %d, threads: %d\n", replications, args.threads);

    ctmc::SolverEngine engine;
    core::ScenarioSweep sweeps(engine);
    bench::SimJsonWriter json;

    int inside = 0;
    int total = 0;
    for (double fraction : fractions) {
        core::Parameters base =
            core::Parameters::with_traffic_model(traffic::traffic_model_3());
        base.reserved_pdch = 1;
        base.gprs_fraction = fraction;
        base.flow_control_threshold = 0.7;  // the calibrated value of Fig. 5

        core::ValidationOptions options;
        options.solve.tolerance = 1e-9;
        options.num_threads = args.threads;
        options.experiment.replications = replications;
        options.experiment.seed = 600u + static_cast<std::uint64_t>(fraction * 1000.0);
        options.experiment.base.tcp_enabled = true;
        options.experiment.base.warmup_time = args.full ? 3000.0 : 1500.0;
        options.experiment.base.batch_count = args.full ? 20 : 10;
        options.experiment.base.batch_duration = args.full ? 3000.0 : 1500.0;

        bench::WallTimer timer;
        const auto points = sweeps.validate_call_arrival_rate(base, rates, options);
        std::fprintf(stderr, "  [validate] %.0f%% GPRS done (%.1fs wall)\n",
                     100.0 * fraction, timer.seconds());

        std::printf("\n--- %.0f%% GPRS users ---\n", 100.0 * fraction);
        std::printf("%8s | %10s %22s | %10s %22s\n", "calls/s", "CDT model",
                    "CDT sim [95% CI]", "ATU model", "ATU sim [95% CI]");
        long long events = 0;
        double sim_seconds = 0.0;
        for (const core::ValidationPoint& point : points) {
            const auto& cdt = point.simulated.carried_data_traffic;
            const auto& atu = point.simulated.throughput_per_user_kbps;
            std::printf("%8.3f | %10.3f [%8.3f, %8.3f]%s | %10.3f [%8.3f, %8.3f]%s\n",
                        point.call_arrival_rate, point.model.carried_data_traffic,
                        cdt.lower(), cdt.upper(),
                        cdt.covers(point.model.carried_data_traffic) ? " in " : " OUT",
                        point.model.throughput_per_user_kbps, atu.lower(), atu.upper(),
                        atu.covers(point.model.throughput_per_user_kbps) ? " in " : " OUT");
            inside += cdt.covers(point.model.carried_data_traffic) ? 1 : 0;
            inside += atu.covers(point.model.throughput_per_user_kbps) ? 1 : 0;
            total += 2;
            events += static_cast<long long>(point.simulated.events_executed);
            sim_seconds += point.simulated.simulated_time;
        }
        json.add({"fig06_" + std::to_string(static_cast<int>(100.0 * fraction)) + "pct",
                  args.threads, replications, events, sim_seconds, timer.seconds(), 0.0});
    }

    std::printf("\nModel points inside the simulator's 95%% CI: %d / %d\n", inside, total);
    std::printf("Paper: \"almost all performance curves ... lie in the confidence\n");
    std::printf("intervals\"; exact counts vary with seeds and replication settings.\n");
    json.write(args.json.empty() ? "BENCH_simulator.json" : args.json);
    return 0;
}
