// Reproduces paper Fig. 6: validation of the Markov model against the
// detailed network simulator — carried data traffic and throughput per user
// for 2%/5%/10% GPRS users (traffic model 3, 1 reserved PDCH).
//
// Paper findings: the model's curves lie within the simulator's 95%
// confidence intervals; CDT rises to ~4.8 PDCHs for 10% GPRS users at
// moderate load, then falls as voice traffic claims the on-demand channels.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/model.hpp"
#include "core/sweep.hpp"
#include "sim/simulator.hpp"
#include "traffic/threegpp.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const std::vector<double> rates =
        core::arrival_rate_grid(0.1, 1.0, args.grid(4, 10));
    const double fractions[] = {0.02, 0.05, 0.10};

    bench::print_header(
        "Fig. 6 -- Validation of the Markov model with the detailed simulator "
        "(traffic model 3, 1 reserved PDCH)");

    int inside = 0;
    int total = 0;
    for (double fraction : fractions) {
        core::Parameters base =
            core::Parameters::with_traffic_model(traffic::traffic_model_3());
        base.reserved_pdch = 1;
        base.gprs_fraction = fraction;
        base.flow_control_threshold = 0.7;  // the calibrated value of Fig. 5

        core::SweepOptions sweep;
        sweep.solve.tolerance = 1e-9;
        bench::apply_threads(sweep, args);
        const auto model_points = core::sweep_call_arrival_rate(base, rates, sweep);
        std::fprintf(stderr, "  [model] %.0f%% GPRS done\n", 100.0 * fraction);

        std::printf("\n--- %.0f%% GPRS users ---\n", 100.0 * fraction);
        std::printf("%8s | %10s %22s | %10s %22s\n", "calls/s", "CDT model",
                    "CDT sim [95% CI]", "ATU model", "ATU sim [95% CI]");
        for (std::size_t r = 0; r < rates.size(); ++r) {
            sim::SimulationConfig config;
            config.cell = base;
            config.cell.call_arrival_rate = rates[r];
            config.tcp_enabled = true;
            config.seed = 600u + static_cast<std::uint64_t>(fraction * 1000.0) +
                          static_cast<std::uint64_t>(rates[r] * 100.0);
            config.warmup_time = args.full ? 3000.0 : 1500.0;
            config.batch_count = args.full ? 20 : 10;
            config.batch_duration = args.full ? 3000.0 : 1500.0;
            const sim::SimulationResults sim_result = sim::NetworkSimulator(config).run();

            const core::Measures& m = model_points[r].measures;
            const auto& cdt = sim_result.carried_data_traffic;
            const auto& atu = sim_result.throughput_per_user_kbps;
            std::printf("%8.3f | %10.3f [%8.3f, %8.3f]%s | %10.3f [%8.3f, %8.3f]%s\n",
                        rates[r], m.carried_data_traffic, cdt.lower(), cdt.upper(),
                        cdt.covers(m.carried_data_traffic) ? " in " : " OUT",
                        m.throughput_per_user_kbps, atu.lower(), atu.upper(),
                        atu.covers(m.throughput_per_user_kbps) ? " in " : " OUT");
            inside += cdt.covers(m.carried_data_traffic) ? 1 : 0;
            inside += atu.covers(m.throughput_per_user_kbps) ? 1 : 0;
            total += 2;
            std::fprintf(stderr, "  [sim] %.0f%% rate %.2f done (%.1fs wall)\n",
                         100.0 * fraction, rates[r], sim_result.wall_seconds);
        }
    }

    std::printf("\nModel points inside the simulator's 95%% CI: %d / %d\n", inside, total);
    std::printf("Paper: \"almost all performance curves ... lie in the confidence\n");
    std::printf("intervals\"; exact counts vary with seeds and batch settings.\n");
    return 0;
}
