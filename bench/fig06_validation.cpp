// Reproduces paper Fig. 6: validation of the Markov model against the
// detailed network simulator — carried data traffic and throughput per user
// for 2%/5%/10% GPRS users (traffic model 3, 1 reserved PDCH).
//
// Since the campaign refactor the whole figure is one declarative campaign
// (campaigns/fig06_validation.json carries the same spec for the CLI):
// method "both" runs, for every (GPRS fraction, arrival rate) point, one
// warm-started chain solve plus R simulator replications, all claimed from
// one thread pool; the simulator columns are replication-level 95%
// confidence intervals and the delta columns are the per-point model-minus-
// simulator differences. Output is bitwise identical for every thread
// count. Perf records land in BENCH_simulator.json.
//
// Paper findings: the model's curves lie within the simulator's 95%
// confidence intervals; CDT rises to ~4.8 PDCHs for 10% GPRS users at
// moderate load, then falls as voice traffic claims the on-demand channels.
#include <cstdio>
#include <string>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

    campaign::ScenarioSpec spec;
    spec.named("fig06_validation")
        .with_method("both")
        .over_traffic_models({3})
        .over_reserved_pdch({1})
        .over_gprs_fractions({0.02, 0.05, 0.10})
        .with_rate_grid(0.1, 1.0, args.grid(4, 10))
        .with_tolerance(1e-9)
        .with_replications(args.replication_count(4, 8))
        .with_seed(600u);
    spec.flow_control_threshold = 0.7;  // the calibrated value of Fig. 5
    spec.simulation.warmup_time = args.full ? 3000.0 : 1500.0;
    spec.simulation.batch_count = args.full ? 20 : 10;
    spec.simulation.batch_duration = args.full ? 3000.0 : 1500.0;
    spec.simulation.tcp = true;

    bench::print_header(
        "Fig. 6 -- Validation of the Markov model with the detailed simulator "
        "(traffic model 3, 1 reserved PDCH)");
    std::printf("replications per point: %d, threads: %d\n",
                spec.simulation.replications, args.threads);

    campaign::CampaignOptions options = bench::campaign_options(args);
    bench::attach_solve_progress(options, spec);
    bench::WallTimer timer;
    const campaign::CampaignResult result = campaign::run_campaign(spec, options);

    int inside = 0;
    int total = 0;
    for (std::size_t v = 0; v < result.variants.size(); ++v) {
        const campaign::Variant& variant = result.variants[v];
        std::printf("\n--- %.0f%% GPRS users ---\n", 100.0 * variant.gprs_fraction);
        std::printf("%8s | %10s %22s %9s | %10s %22s %9s\n", "calls/s", "CDT model",
                    "CDT sim [95% CI]", "delta", "ATU model", "ATU sim [95% CI]", "delta");
        for (std::size_t r = 0; r < result.rates.size(); ++r) {
            const campaign::CampaignPoint& point = result.at(v, r);
            const auto& cdt = point.sim.carried_data_traffic;
            const auto& atu = point.sim.throughput_per_user_kbps;
            std::printf(
                "%8.3f | %10.3f [%8.3f, %8.3f]%s %+9.3f | %10.3f [%8.3f, %8.3f]%s %+9.3f\n",
                point.call_arrival_rate, point.model.carried_data_traffic, cdt.lower(),
                cdt.upper(), cdt.covers(point.model.carried_data_traffic) ? " in " : " OUT",
                point.delta_cdt, point.model.throughput_per_user_kbps, atu.lower(),
                atu.upper(), atu.covers(point.model.throughput_per_user_kbps) ? " in " : " OUT",
                point.delta_atu);
            inside += cdt.covers(point.model.carried_data_traffic) ? 1 : 0;
            inside += atu.covers(point.model.throughput_per_user_kbps) ? 1 : 0;
            total += 2;
        }
    }

    std::printf("\nModel points inside the simulator's 95%% CI: %d / %d\n", inside, total);
    std::printf("Paper: \"almost all performance curves ... lie in the confidence\n");
    std::printf("intervals\"; exact counts vary with seeds and replication settings.\n");
    campaign::print_campaign_summary(result, stdout);

    double sim_seconds = 0.0;
    for (const campaign::CampaignPoint& point : result.points) {
        sim_seconds += point.sim.simulated_time;
    }
    bench::SimJsonWriter json;
    json.add({"fig06_campaign", args.threads, spec.simulation.replications,
              static_cast<long long>(result.summary.sim_events), sim_seconds,
              timer.seconds()});
    json.write(args.json.empty() ? "BENCH_simulator.json" : args.json);
    return 0;
}
