// Reproduces paper Figs. 7, 8 and 9 from a single sweep set:
//   Fig. 7: carried data traffic (CDT),
//   Fig. 8: packet loss probability (PLP),
//   Fig. 9: queueing delay (QD),
// each versus the GSM/GPRS call arrival rate for traffic models 1 and 2 and
// 1/2/4 reserved PDCHs (M = 50, 5% GPRS users).
//
// The three figures use the same six Markov-chain sweeps (~2.7 million
// states per solve), so one binary regenerates all of them; rerunning the
// sweep three times would triple a substantial runtime for identical data.
//
// Paper findings: CDT is nearly independent of the reservation and stays
// around 0.6 PDCHs at 1 call/s (one PDCH suffices); more reserved PDCHs
// reduce PLP and QD; the burstier model 2 has higher PLP and longer delays.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/sweep.hpp"
#include "traffic/threegpp.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const std::vector<double> rates =
        core::arrival_rate_grid(0.25, 1.0, args.grid(3, 9));
    const int pdch_options[] = {1, 2, 4};
    const traffic::TrafficModelPreset models[] = {traffic::traffic_model_1(),
                                                  traffic::traffic_model_2()};

    // results[model][pdch][rate]
    std::vector<std::vector<std::vector<core::Measures>>> results(
        2, std::vector<std::vector<core::Measures>>(3));

    for (std::size_t t = 0; t < 2; ++t) {
        for (std::size_t c = 0; c < 3; ++c) {
            core::Parameters p = core::Parameters::with_traffic_model(models[t]);
            p.reserved_pdch = pdch_options[c];
            p.gprs_fraction = 0.05;
            core::SweepOptions sweep;
            sweep.solve.tolerance = 1e-10;
            bench::apply_threads(sweep, args);
            sweep.progress = [&](std::size_t idx, const core::SweepPoint& point) {
                std::fprintf(stderr,
                             "  [%s, %d PDCH] rate %.2f: %lld sweeps, %.1fs\n",
                             models[t].name.c_str(), pdch_options[c],
                             point.call_arrival_rate,
                             static_cast<long long>(point.iterations), point.seconds);
                (void)idx;
            };
            const auto points = core::sweep_call_arrival_rate(p, rates, sweep);
            for (const auto& point : points) {
                results[t][c].push_back(point.measures);
            }
        }
    }

    const auto print_figure = [&](const char* title, auto measure, const char* fmt) {
        bench::print_header(title);
        for (std::size_t t = 0; t < 2; ++t) {
            std::printf("\nTraffic model %zu (%s):\n%10s", t + 1,
                        t == 0 ? "8 kbit/s" : "32 kbit/s", "calls/s");
            for (int pdch : pdch_options) {
                std::printf("  %7d PDCH", pdch);
            }
            std::printf("\n");
            for (std::size_t r = 0; r < rates.size(); ++r) {
                std::printf("%10.3f", rates[r]);
                for (std::size_t c = 0; c < 3; ++c) {
                    std::printf(fmt, measure(results[t][c][r]));
                }
                std::printf("\n");
            }
        }
    };

    print_figure("Fig. 7 -- Carried data traffic [PDCHs], traffic models 1 and 2",
                 [](const core::Measures& m) { return m.carried_data_traffic; },
                 "  %12.4f");
    print_figure("Fig. 8 -- Packet loss probability, traffic models 1 and 2",
                 [](const core::Measures& m) { return m.packet_loss_probability; },
                 "  %12.4e");
    print_figure("Fig. 9 -- Queueing delay [s], traffic models 1 and 2",
                 [](const core::Measures& m) { return m.queueing_delay; },
                 "  %12.4f");

    // Paper checks.
    std::printf("\nPaper checks:\n");
    std::printf("  CDT at 1 call/s, TM1, 1 PDCH: %.3f (paper: ~0.6 PDCHs)\n",
                results[0][0].back().carried_data_traffic);
    std::printf("  PLP(TM2) >= PLP(TM1) at matching configs: ");
    bool burstier_worse = true;
    for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t r = 0; r < rates.size(); ++r) {
            if (results[1][c][r].packet_loss_probability + 1e-12 <
                results[0][c][r].packet_loss_probability) {
                burstier_worse = false;
            }
        }
    }
    std::printf("%s\n", burstier_worse ? "yes" : "NO (check)");
    std::printf("  QD falls as PDCHs are reserved (TM2 @ 1 call/s): %.3f / %.3f / %.3f s\n",
                results[1][0].back().queueing_delay, results[1][1].back().queueing_delay,
                results[1][2].back().queueing_delay);
    return 0;
}
