// Reproduces paper Figs. 7, 8 and 9 from a single campaign:
//   Fig. 7: carried data traffic (CDT),
//   Fig. 8: packet loss probability (PLP),
//   Fig. 9: queueing delay (QD),
// each versus the GSM/GPRS call arrival rate for traffic models 1 and 2 and
// 1/2/4 reserved PDCHs (M = 50, 5% GPRS users).
//
// The three figures use the same six Markov-chain sweeps (~2.7 million
// states per solve), declared as one campaign over the traffic-model and
// reserved-PDCH axes: the runner claims all solves from one pool and
// warm-starts each from its nearest solved grid neighbor.
//
// Paper findings: CDT is nearly independent of the reservation and stays
// around 0.6 PDCHs at 1 call/s (one PDCH suffices); more reserved PDCHs
// reduce PLP and QD; the burstier model 2 has higher PLP and longer delays.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

    campaign::ScenarioSpec spec;
    spec.named("fig07_08_09")
        .over_traffic_models({1, 2})
        .over_reserved_pdch({1, 2, 4})
        .with_rate_grid(0.25, 1.0, args.grid(3, 9))
        .with_tolerance(1e-10);

    campaign::CampaignOptions options = bench::campaign_options(args);
    bench::attach_solve_progress(options, spec);
    const campaign::CampaignResult result = campaign::run_campaign(spec, options);

    // Variant-major order: traffic model outermost, then reserved PDCHs —
    // variant t * 3 + c is (model t+1, pdch_options[c]).
    const int pdch_options[] = {1, 2, 4};
    const auto print_figure = [&](const char* title, auto measure, const char* fmt) {
        bench::print_header(title);
        for (std::size_t t = 0; t < 2; ++t) {
            std::printf("\nTraffic model %zu (%s):\n%10s", t + 1,
                        t == 0 ? "8 kbit/s" : "32 kbit/s", "calls/s");
            for (int pdch : pdch_options) {
                std::printf("  %7d PDCH", pdch);
            }
            std::printf("\n");
            for (std::size_t r = 0; r < result.rates.size(); ++r) {
                std::printf("%10.3f", result.rates[r]);
                for (std::size_t c = 0; c < 3; ++c) {
                    std::printf(fmt, measure(result.at(t * 3 + c, r).model));
                }
                std::printf("\n");
            }
        }
    };

    print_figure("Fig. 7 -- Carried data traffic [PDCHs], traffic models 1 and 2",
                 [](const core::Measures& m) { return m.carried_data_traffic; },
                 "  %12.4f");
    print_figure("Fig. 8 -- Packet loss probability, traffic models 1 and 2",
                 [](const core::Measures& m) { return m.packet_loss_probability; },
                 "  %12.4e");
    print_figure("Fig. 9 -- Queueing delay [s], traffic models 1 and 2",
                 [](const core::Measures& m) { return m.queueing_delay; },
                 "  %12.4f");

    // Paper checks.
    const std::size_t last = result.rates.size() - 1;
    std::printf("\nPaper checks:\n");
    std::printf("  CDT at 1 call/s, TM1, 1 PDCH: %.3f (paper: ~0.6 PDCHs)\n",
                result.at(0, last).model.carried_data_traffic);
    std::printf("  PLP(TM2) >= PLP(TM1) at matching configs: ");
    bool burstier_worse = true;
    for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t r = 0; r < result.rates.size(); ++r) {
            if (result.at(3 + c, r).model.packet_loss_probability + 1e-12 <
                result.at(c, r).model.packet_loss_probability) {
                burstier_worse = false;
            }
        }
    }
    std::printf("%s\n", burstier_worse ? "yes" : "NO (check)");
    std::printf("  QD falls as PDCHs are reserved (TM2 @ 1 call/s): %.3f / %.3f / %.3f s\n",
                result.at(3, last).model.queueing_delay,
                result.at(4, last).model.queueing_delay,
                result.at(5, last).model.queueing_delay);
    campaign::print_campaign_summary(result, stdout);
    return 0;
}
