// Reproduces paper Fig. 10: how many PDCHs are needed to satisfy (almost)
// all GPRS session requests — CDT and GPRS session blocking probability for
// M in {50, 100, 150} (traffic model 1, 2 reserved PDCHs, 5% GPRS users).
//
// Two campaigns over the session-cap axis: the blocking series is an Erlang
// closed form (Eq. 3/5, method "erlang") printed at full resolution; the
// CDT series requires full chain solves (method "ctmc") — M = 100 gives a
// ~10-million-state chain and M = 150 a ~22-million-state chain, so by
// default CDT is solved for M = 50 and the larger M under --full only.
//
// Paper findings: with M = 150 the maximal blocking stays below 1e-5 while
// only ~1.8 PDCHs are used on average: reserving 2 PDCHs satisfies nearly
// all session requests up to 1 call/s.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

    bench::print_header(
        "Fig. 10 -- CDT and GPRS session blocking vs M "
        "(traffic model 1, 2 reserved PDCHs, 5% GPRS)");

    // --- blocking probability: closed form, full resolution ----------------
    campaign::ScenarioSpec blocking_spec;
    blocking_spec.named("fig10_blocking")
        .with_method("erlang")
        .over_reserved_pdch({2})
        .over_session_limits({50, 100, 150})
        .with_rate_grid(0.05, 1.0, 20);
    const campaign::CampaignResult blocking =
        campaign::run_campaign(blocking_spec, bench::campaign_options(args));

    std::printf("\nGPRS session blocking probability (Erlang closed form, Eq. 3/5):\n");
    std::printf("%10s  %12s %12s %12s\n", "calls/s", "M = 50", "M = 100", "M = 150");
    double max_blocking_150 = 0.0;
    for (std::size_t r = 0; r < blocking.rates.size(); ++r) {
        std::printf("%10.3f", blocking.rates[r]);
        for (std::size_t v = 0; v < blocking.variants.size(); ++v) {
            const double p = blocking.at(v, r).model.gprs_blocking;
            std::printf("  %12.4e", p);
            if (blocking.variants[v].max_gprs_sessions == 150) {
                max_blocking_150 = std::max(max_blocking_150, p);
            }
        }
        std::printf("\n");
    }

    // --- carried data traffic: full chain solves ----------------------------
    std::vector<int> solved_limits{50};
    if (args.full) {
        solved_limits = {50, 100, 150};
    }
    campaign::ScenarioSpec cdt_spec;
    cdt_spec.named("fig10_cdt")
        .over_reserved_pdch({2})
        .over_session_limits(solved_limits)
        .with_rate_grid(0.25, 1.0, args.grid(3, 8))
        .with_tolerance(1e-10);
    campaign::CampaignOptions options = bench::campaign_options(args);
    bench::attach_solve_progress(options, cdt_spec);
    const campaign::CampaignResult cdt = campaign::run_campaign(cdt_spec, options);

    std::printf("\nCarried data traffic [PDCHs]");
    if (!args.full) {
        std::printf(" (M = 50 by default; pass --full for M = 100/150 — the\n"
                    "M = 150 chain has ~22 million states)");
    }
    std::printf(":\n%10s", "calls/s");
    for (const campaign::Variant& variant : cdt.variants) {
        std::printf("  %6s M=%-3d", "", variant.max_gprs_sessions);
    }
    std::printf("\n");
    for (std::size_t r = 0; r < cdt.rates.size(); ++r) {
        std::printf("%10.3f", cdt.rates[r]);
        for (std::size_t v = 0; v < cdt.variants.size(); ++v) {
            std::printf("  %12.4f", cdt.at(v, r).model.carried_data_traffic);
        }
        std::printf("\n");
    }

    const std::size_t last_rate = cdt.rates.size() - 1;
    std::printf("\nPaper checks:\n");
    std::printf("  max blocking at M = 150: %.2e (paper: below 1e-5)\n", max_blocking_150);
    if (args.full) {
        std::printf("  CDT at 1 call/s, M = 150: %.2f PDCHs (paper: ~1.8)\n",
                    cdt.at(cdt.variants.size() - 1, last_rate).model.carried_data_traffic);
    } else {
        std::printf("  CDT at 1 call/s, M = 50: %.2f PDCHs (paper, M = 150: ~1.8)\n",
                    cdt.at(0, last_rate).model.carried_data_traffic);
    }
    campaign::print_campaign_summary(cdt, stdout);
    return 0;
}
