// Reproduces paper Fig. 10: how many PDCHs are needed to satisfy (almost)
// all GPRS session requests — CDT and GPRS session blocking probability for
// M in {50, 100, 150} (traffic model 1, 2 reserved PDCHs, 5% GPRS users).
//
// The blocking series is an Erlang closed form (Eq. 3/5) and is printed at
// full resolution. The CDT series requires full chain solves; M = 100 gives
// a ~10-million-state chain and M = 150 a ~22-million-state chain, so by
// default CDT is solved for M = 50 and the larger M under --full only.
//
// Paper findings: with M = 150 the maximal blocking stays below 1e-5 while
// only ~1.8 PDCHs are used on average: reserving 2 PDCHs satisfies nearly
// all session requests up to 1 call/s.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/handover.hpp"
#include "core/measures.hpp"
#include "core/sweep.hpp"
#include "traffic/threegpp.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const int session_limits[] = {50, 100, 150};

    bench::print_header(
        "Fig. 10 -- CDT and GPRS session blocking vs M "
        "(traffic model 1, 2 reserved PDCHs, 5% GPRS)");

    // --- blocking probability: closed form, full resolution ----------------
    const std::vector<double> fine = core::arrival_rate_grid(0.05, 1.0, 20);
    std::printf("\nGPRS session blocking probability (Erlang closed form, Eq. 3/5):\n");
    std::printf("%10s  %12s %12s %12s\n", "calls/s", "M = 50", "M = 100", "M = 150");
    double max_blocking_150 = 0.0;
    for (double rate : fine) {
        std::printf("%10.3f", rate);
        for (int m_limit : session_limits) {
            core::Parameters p =
                core::Parameters::with_traffic_model(traffic::traffic_model_1());
            p.reserved_pdch = 2;
            p.max_gprs_sessions = m_limit;
            p.call_arrival_rate = rate;
            const core::Measures m =
                core::closed_form_measures(p, core::balance_handover(p));
            std::printf("  %12.4e", m.gprs_blocking);
            if (m_limit == 150) {
                max_blocking_150 = std::max(max_blocking_150, m.gprs_blocking);
            }
        }
        std::printf("\n");
    }

    // --- carried data traffic: full chain solves ----------------------------
    const std::vector<double> rates =
        core::arrival_rate_grid(0.25, 1.0, args.grid(3, 8));
    std::printf("\nCarried data traffic [PDCHs]");
    if (!args.full) {
        std::printf(" (M = 50 by default; pass --full for M = 100/150 — the\n"
                    "M = 150 chain has ~22 million states)");
    }
    std::printf(":\n%10s", "calls/s");
    std::vector<int> solved_limits{50};
    if (args.full) {
        solved_limits = {50, 100, 150};
    }
    for (int m_limit : solved_limits) {
        std::printf("  %6s M=%-3d", "", m_limit);
    }
    std::printf("\n");

    std::vector<std::vector<double>> cdt(solved_limits.size());
    double cdt_150_at_1 = 0.0;
    for (std::size_t i = 0; i < solved_limits.size(); ++i) {
        core::Parameters p =
            core::Parameters::with_traffic_model(traffic::traffic_model_1());
        p.reserved_pdch = 2;
        p.max_gprs_sessions = solved_limits[i];
        p.gprs_fraction = 0.05;
        core::SweepOptions sweep;
        sweep.solve.tolerance = 1e-10;
        bench::apply_threads(sweep, args);
        sweep.progress = [&](std::size_t, const core::SweepPoint& point) {
            std::fprintf(stderr, "  [M = %d] rate %.2f: %lld sweeps, %.1fs\n",
                         solved_limits[i], point.call_arrival_rate,
                         static_cast<long long>(point.iterations), point.seconds);
        };
        const auto points = core::sweep_call_arrival_rate(p, rates, sweep);
        for (const auto& point : points) {
            cdt[i].push_back(point.measures.carried_data_traffic);
        }
        if (solved_limits[i] == 150) {
            cdt_150_at_1 = cdt[i].back();
        }
    }
    for (std::size_t r = 0; r < rates.size(); ++r) {
        std::printf("%10.3f", rates[r]);
        for (std::size_t i = 0; i < solved_limits.size(); ++i) {
            std::printf("  %12.4f", cdt[i][r]);
        }
        std::printf("\n");
    }

    std::printf("\nPaper checks:\n");
    std::printf("  max blocking at M = 150: %.2e (paper: below 1e-5)\n", max_blocking_150);
    if (args.full) {
        std::printf("  CDT at 1 call/s, M = 150: %.2f PDCHs (paper: ~1.8)\n", cdt_150_at_1);
    } else {
        std::printf("  CDT at 1 call/s, M = 50: %.2f PDCHs (paper, M = 150: ~1.8)\n",
                    cdt[0].back());
    }
    return 0;
}
