// Reproduces paper Fig. 11: CDT and throughput per user, 2% GPRS users.
#include "bench/fig_cdt_atu_common.hpp"

int main(int argc, char** argv) {
    return gprsim::bench::run_cdt_atu_figure("Fig. 11", 0.02, argc, argv);
}
