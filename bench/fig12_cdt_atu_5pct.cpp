// Reproduces paper Fig. 12: CDT and throughput per user, 5% GPRS users.
#include "bench/fig_cdt_atu_common.hpp"

int main(int argc, char** argv) {
    return gprsim::bench::run_cdt_atu_figure("Fig. 12", 0.05, argc, argv);
}
