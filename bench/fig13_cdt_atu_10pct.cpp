// Reproduces paper Fig. 13: CDT and throughput per user, 10% GPRS users.
#include "bench/fig_cdt_atu_common.hpp"

int main(int argc, char** argv) {
    return gprsim::bench::run_cdt_atu_figure("Fig. 13", 0.10, argc, argv);
}
