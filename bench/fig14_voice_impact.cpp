// Reproduces paper Fig. 14: influence of GPRS on the GSM voice service.
//
// Carried voice traffic (CVT) and voice blocking probability versus the
// GSM/GPRS call arrival rate, for 0/1/2/4 reserved PDCHs (95% GSM users).
// Both measures are Erlang closed forms after handover balancing (Eq. 2-6),
// so this bench runs in milliseconds at full paper resolution.
//
// Paper finding: the capacity loss from reserving PDCHs is negligible
// compared to the benefit for GPRS.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/handover.hpp"
#include "core/measures.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const std::vector<double> rates = core::arrival_rate_grid(0.05, 1.0, args.grid(20, 20));
    const int pdch_options[] = {0, 1, 2, 4};

    bench::print_header(
        "Fig. 14 -- Influence of GPRS on GSM voice service (95% GSM calls)");

    std::printf("\nCarried voice traffic [channels]:\n");
    std::printf("%10s", "calls/s");
    for (int pdch : pdch_options) {
        std::printf("  %7d PDCH", pdch);
    }
    std::printf("\n");
    for (double rate : rates) {
        std::printf("%10.3f", rate);
        for (int pdch : pdch_options) {
            core::Parameters p = core::Parameters::base();
            p.reserved_pdch = pdch;
            p.call_arrival_rate = rate;
            const core::BalancedTraffic balanced = core::balance_handover(p);
            const core::Measures m = core::closed_form_measures(p, balanced);
            std::printf("  %12.4f", m.carried_voice_traffic);
        }
        std::printf("\n");
    }

    std::printf("\nGSM voice blocking probability:\n");
    std::printf("%10s", "calls/s");
    for (int pdch : pdch_options) {
        std::printf("  %7d PDCH", pdch);
    }
    std::printf("\n");
    for (double rate : rates) {
        std::printf("%10.3f", rate);
        for (int pdch : pdch_options) {
            core::Parameters p = core::Parameters::base();
            p.reserved_pdch = pdch;
            p.call_arrival_rate = rate;
            const core::BalancedTraffic balanced = core::balance_handover(p);
            const core::Measures m = core::closed_form_measures(p, balanced);
            std::printf("  %12.4e", m.gsm_blocking);
        }
        std::printf("\n");
    }

    // Paper's qualitative claim: reserving up to 4 PDCHs costs little voice
    // capacity. Quantify the worst-case relative CVT loss over the sweep.
    double worst_loss = 0.0;
    for (double rate : rates) {
        core::Parameters p0 = core::Parameters::base();
        p0.reserved_pdch = 0;
        p0.call_arrival_rate = rate;
        core::Parameters p4 = p0;
        p4.reserved_pdch = 4;
        const double cvt0 =
            core::closed_form_measures(p0, core::balance_handover(p0)).carried_voice_traffic;
        const double cvt4 =
            core::closed_form_measures(p4, core::balance_handover(p4)).carried_voice_traffic;
        worst_loss = std::max(worst_loss, (cvt0 - cvt4) / cvt0);
    }
    std::printf("\nWorst-case relative CVT loss when reserving 4 PDCHs: %.2f%%\n",
                100.0 * worst_loss);
    std::printf("Paper: \"the decrease in channel capacity ... is negligible\"\n");
    return 0;
}
