// Reproduces paper Fig. 14: influence of GPRS on the GSM voice service.
//
// Carried voice traffic (CVT) and voice blocking probability versus the
// GSM/GPRS call arrival rate, for 0/1/2/4 reserved PDCHs (95% GSM users).
// Both measures are Erlang closed forms after handover balancing (Eq. 2-6),
// declared as one method-"erlang" campaign over the reserved-PDCH axis, so
// this bench runs in milliseconds at full paper resolution.
//
// Paper finding: the capacity loss from reserving PDCHs is negligible
// compared to the benefit for GPRS.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

    campaign::ScenarioSpec spec;
    spec.named("fig14_voice_impact")
        .with_method("erlang")
        .over_reserved_pdch({0, 1, 2, 4})
        .with_rate_grid(0.05, 1.0, args.grid(20, 20));
    const campaign::CampaignResult result =
        campaign::run_campaign(spec, bench::campaign_options(args));

    bench::print_header(
        "Fig. 14 -- Influence of GPRS on GSM voice service (95% GSM calls)");

    const auto table = [&](const char* title, auto measure, const char* fmt) {
        std::printf("\n%s:\n%10s", title, "calls/s");
        for (const campaign::Variant& variant : result.variants) {
            std::printf("  %7d PDCH", variant.reserved_pdch);
        }
        std::printf("\n");
        for (std::size_t r = 0; r < result.rates.size(); ++r) {
            std::printf("%10.3f", result.rates[r]);
            for (std::size_t v = 0; v < result.variants.size(); ++v) {
                std::printf(fmt, measure(result.at(v, r).model));
            }
            std::printf("\n");
        }
    };
    table("Carried voice traffic [channels]",
          [](const core::Measures& m) { return m.carried_voice_traffic; }, "  %12.4f");
    table("GSM voice blocking probability",
          [](const core::Measures& m) { return m.gsm_blocking; }, "  %12.4e");

    // Paper's qualitative claim: reserving up to 4 PDCHs costs little voice
    // capacity. Quantify the worst-case relative CVT loss over the sweep
    // (variant 0 reserves no PDCH, the last variant reserves 4).
    const std::size_t four = result.variants.size() - 1;
    double worst_loss = 0.0;
    for (std::size_t r = 0; r < result.rates.size(); ++r) {
        const double cvt0 = result.at(0, r).model.carried_voice_traffic;
        const double cvt4 = result.at(four, r).model.carried_voice_traffic;
        worst_loss = std::max(worst_loss, (cvt0 - cvt4) / cvt0);
    }
    std::printf("\nWorst-case relative CVT loss when reserving 4 PDCHs: %.2f%%\n",
                100.0 * worst_loss);
    std::printf("Paper: \"the decrease in channel capacity ... is negligible\"\n");
    return 0;
}
