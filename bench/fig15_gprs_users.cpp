// Reproduces paper Fig. 15: average number of GPRS users in the cell and
// GPRS session blocking probability vs call arrival rate, for 2%/5%/10%
// GPRS users (traffic model 3, M = 20).
//
// Both measures are Erlang closed forms over the balanced flows (Eq. 3, 5,
// 7), exactly as the paper computes them — one method-"erlang" campaign
// over the GPRS-fraction axis.
//
// Paper findings: at 2% the limit of 20 sessions is never reached (blocking
// < 1e-5); at 10% the average session count approaches M and users are
// rejected.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

    campaign::ScenarioSpec spec;
    spec.named("fig15_gprs_users")
        .with_method("erlang")
        .over_traffic_models({3})
        .over_gprs_fractions({0.02, 0.05, 0.10})
        .with_rate_grid(0.05, 1.0, args.grid(20, 20));
    const campaign::CampaignResult result =
        campaign::run_campaign(spec, bench::campaign_options(args));

    bench::print_header(
        "Fig. 15 -- Average GPRS users in cell and GPRS user blocking "
        "(traffic model 3, M = 20)");

    const auto table = [&](const char* title, auto measure, const char* fmt) {
        std::printf("\n%s:\n", title);
        std::printf("%10s  %12s %12s %12s\n", "calls/s", "2% GPRS", "5% GPRS", "10% GPRS");
        for (std::size_t r = 0; r < result.rates.size(); ++r) {
            std::printf("%10.3f", result.rates[r]);
            for (std::size_t v = 0; v < result.variants.size(); ++v) {
                std::printf(fmt, measure(result.at(v, r).model));
            }
            std::printf("\n");
        }
    };
    table("Average number of GPRS sessions (AGS)",
          [](const core::Measures& m) { return m.average_gprs_sessions; }, "  %12.4f");
    table("GPRS session blocking probability",
          [](const core::Measures& m) { return m.gprs_blocking; }, "  %12.4e");

    double blocking_2pct_max = 0.0;
    double ags_10pct_max = 0.0;
    for (std::size_t r = 0; r < result.rates.size(); ++r) {
        blocking_2pct_max = std::max(blocking_2pct_max, result.at(0, r).model.gprs_blocking);
        ags_10pct_max = std::max(ags_10pct_max, result.at(2, r).model.average_gprs_sessions);
    }
    std::printf("\nPaper checks:\n");
    std::printf("  2%% GPRS: max blocking over sweep = %.2e (paper: stays below 1e-5)\n",
                blocking_2pct_max);
    std::printf("  10%% GPRS: max AGS = %.2f of M = 20 (paper: approaches the maximum)\n",
                ags_10pct_max);
    return 0;
}
