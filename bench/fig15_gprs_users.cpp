// Reproduces paper Fig. 15: average number of GPRS users in the cell and
// GPRS session blocking probability vs call arrival rate, for 2%/5%/10%
// GPRS users (traffic model 3, M = 20).
//
// Both measures are Erlang closed forms over the balanced flows (Eq. 3, 5,
// 7), exactly as the paper computes them.
//
// Paper findings: at 2% the limit of 20 sessions is never reached (blocking
// < 1e-5); at 10% the average session count approaches M and users are
// rejected.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/handover.hpp"
#include "core/measures.hpp"
#include "core/sweep.hpp"
#include "traffic/threegpp.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const std::vector<double> rates = core::arrival_rate_grid(0.05, 1.0, args.grid(20, 20));
    const double fractions[] = {0.02, 0.05, 0.10};

    bench::print_header(
        "Fig. 15 -- Average GPRS users in cell and GPRS user blocking "
        "(traffic model 3, M = 20)");

    std::printf("\nAverage number of GPRS sessions (AGS):\n");
    std::printf("%10s  %12s %12s %12s\n", "calls/s", "2% GPRS", "5% GPRS", "10% GPRS");
    for (double rate : rates) {
        std::printf("%10.3f", rate);
        for (double fraction : fractions) {
            core::Parameters p =
                core::Parameters::with_traffic_model(traffic::traffic_model_3());
            p.gprs_fraction = fraction;
            p.call_arrival_rate = rate;
            const core::Measures m =
                core::closed_form_measures(p, core::balance_handover(p));
            std::printf("  %12.4f", m.average_gprs_sessions);
        }
        std::printf("\n");
    }

    std::printf("\nGPRS session blocking probability:\n");
    std::printf("%10s  %12s %12s %12s\n", "calls/s", "2% GPRS", "5% GPRS", "10% GPRS");
    double blocking_2pct_max = 0.0;
    double ags_10pct_max = 0.0;
    for (double rate : rates) {
        std::printf("%10.3f", rate);
        for (double fraction : fractions) {
            core::Parameters p =
                core::Parameters::with_traffic_model(traffic::traffic_model_3());
            p.gprs_fraction = fraction;
            p.call_arrival_rate = rate;
            const core::Measures m =
                core::closed_form_measures(p, core::balance_handover(p));
            std::printf("  %12.4e", m.gprs_blocking);
            if (fraction == 0.02) {
                blocking_2pct_max = std::max(blocking_2pct_max, m.gprs_blocking);
            }
            if (fraction == 0.10) {
                ags_10pct_max = std::max(ags_10pct_max, m.average_gprs_sessions);
            }
        }
        std::printf("\n");
    }

    std::printf("\nPaper checks:\n");
    std::printf("  2%% GPRS: max blocking over sweep = %.2e (paper: stays below 1e-5)\n",
                blocking_2pct_max);
    std::printf("  10%% GPRS: max AGS = %.2f of M = 20 (paper: approaches the maximum)\n",
                ags_10pct_max);
    return 0;
}
