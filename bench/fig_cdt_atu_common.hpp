// Shared implementation of paper Figs. 11, 12 and 13: carried data traffic
// and throughput per user vs call arrival rate for 0/1/2/4 reserved PDCHs
// (traffic model 3), at a given percentage of GPRS users.
//
// Since the campaign refactor the whole figure is ONE declarative campaign
// (the reserved-PDCH axis times the arrival-rate grid) executed by
// campaign::CampaignRunner: every chain solve is claimed from one pool and
// warm-started from its nearest solved grid neighbor, and the tables below
// index straight into the campaign's variant-major point order.
#pragma once

#include <cstdio>

#include "bench/bench_util.hpp"

namespace gprsim::bench {

inline int run_cdt_atu_figure(const char* figure_name, double gprs_fraction, int argc,
                              char** argv) {
    const BenchArgs args = BenchArgs::parse(argc, argv);

    campaign::ScenarioSpec spec;
    spec.named(figure_name)
        .over_traffic_models({3})
        .over_reserved_pdch({0, 1, 2, 4})
        .over_gprs_fractions({gprs_fraction})
        .with_rate_grid(0.2, 1.0, args.grid(2, 9))
        .with_tolerance(1e-9);

    char title[160];
    std::snprintf(title, sizeof(title),
                  "%s -- CDT and throughput per user for %.0f%% GPRS users "
                  "(traffic model 3, M = 20)",
                  figure_name, 100.0 * gprs_fraction);
    print_header(title);

    campaign::CampaignOptions options = campaign_options(args);
    attach_solve_progress(options, spec);
    const campaign::CampaignResult result = campaign::run_campaign(spec, options);

    std::printf("\nCarried data traffic [PDCHs]:\n%10s", "calls/s");
    for (const campaign::Variant& variant : result.variants) {
        std::printf("  %7d PDCH", variant.reserved_pdch);
    }
    std::printf("\n");
    for (std::size_t r = 0; r < result.rates.size(); ++r) {
        std::printf("%10.3f", result.rates[r]);
        for (std::size_t c = 0; c < result.variants.size(); ++c) {
            std::printf("  %12.4f", result.at(c, r).model.carried_data_traffic);
        }
        std::printf("\n");
    }

    std::printf("\nThroughput per user [kbit/s]:\n%10s", "calls/s");
    for (const campaign::Variant& variant : result.variants) {
        std::printf("  %7d PDCH", variant.reserved_pdch);
    }
    std::printf("\n");
    for (std::size_t r = 0; r < result.rates.size(); ++r) {
        std::printf("%10.3f", result.rates[r]);
        for (std::size_t c = 0; c < result.variants.size(); ++c) {
            std::printf("  %12.4f", result.at(c, r).model.throughput_per_user_kbps);
        }
        std::printf("\n");
    }

    // The paper's QoS example: a profile tolerating at most 50% throughput
    // degradation. Report the largest arrival rate at which 4 reserved
    // PDCHs still meet it (degradation measured from the lightest load).
    const std::size_t four = result.variants.size() - 1;
    const double reference = result.at(four, 0).model.throughput_per_user_kbps;
    double sustained = result.rates.front();
    for (std::size_t r = 0; r < result.rates.size(); ++r) {
        if (result.at(four, r).model.throughput_per_user_kbps >= 0.5 * reference) {
            sustained = result.rates[r];
        }
    }
    std::printf("\nQoS profile check (<= 50%% throughput degradation, 4 PDCHs):\n");
    std::printf("  sustained up to ~%.2f calls/s (paper: 1.0 / 0.5 / 0.3 calls/s\n", sustained);
    std::printf("  for 2%% / 5%% / 10%% GPRS users)\n");
    campaign::print_campaign_summary(result, stdout);
    return 0;
}

}  // namespace gprsim::bench
