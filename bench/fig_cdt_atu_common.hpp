// Shared implementation of paper Figs. 11, 12 and 13: carried data traffic
// and throughput per user vs call arrival rate for 0/1/2/4 reserved PDCHs
// (traffic model 3), at a given percentage of GPRS users.
#pragma once

#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/sweep.hpp"
#include "traffic/threegpp.hpp"

namespace gprsim::bench {

inline int run_cdt_atu_figure(const char* figure_name, double gprs_fraction, int argc,
                              char** argv) {
    const BenchArgs args = BenchArgs::parse(argc, argv);
    const std::vector<double> rates = core::arrival_rate_grid(0.2, 1.0, args.grid(2, 9));
    const int pdch_options[] = {0, 1, 2, 4};

    char title[160];
    std::snprintf(title, sizeof(title),
                  "%s -- CDT and throughput per user for %.0f%% GPRS users "
                  "(traffic model 3, M = 20)",
                  figure_name, 100.0 * gprs_fraction);
    print_header(title);

    std::vector<std::vector<core::Measures>> results(std::size(pdch_options));
    for (std::size_t c = 0; c < std::size(pdch_options); ++c) {
        core::Parameters p = core::Parameters::with_traffic_model(traffic::traffic_model_3());
        p.reserved_pdch = pdch_options[c];
        p.gprs_fraction = gprs_fraction;
        core::SweepOptions sweep;
        sweep.solve.tolerance = 1e-9;
        apply_threads(sweep, args);
        sweep.progress = [&](std::size_t, const core::SweepPoint& point) {
            std::fprintf(stderr, "  [%d PDCH] rate %.2f: %lld sweeps, %.1fs\n",
                         pdch_options[c], point.call_arrival_rate,
                         static_cast<long long>(point.iterations), point.seconds);
        };
        const auto points = core::sweep_call_arrival_rate(p, rates, sweep);
        for (const auto& point : points) {
            results[c].push_back(point.measures);
        }
    }

    std::printf("\nCarried data traffic [PDCHs]:\n%10s", "calls/s");
    for (int pdch : pdch_options) {
        std::printf("  %7d PDCH", pdch);
    }
    std::printf("\n");
    for (std::size_t r = 0; r < rates.size(); ++r) {
        std::printf("%10.3f", rates[r]);
        for (std::size_t c = 0; c < std::size(pdch_options); ++c) {
            std::printf("  %12.4f", results[c][r].carried_data_traffic);
        }
        std::printf("\n");
    }

    std::printf("\nThroughput per user [kbit/s]:\n%10s", "calls/s");
    for (int pdch : pdch_options) {
        std::printf("  %7d PDCH", pdch);
    }
    std::printf("\n");
    for (std::size_t r = 0; r < rates.size(); ++r) {
        std::printf("%10.3f", rates[r]);
        for (std::size_t c = 0; c < std::size(pdch_options); ++c) {
            std::printf("  %12.4f", results[c][r].throughput_per_user_kbps);
        }
        std::printf("\n");
    }

    // The paper's QoS example: a profile tolerating at most 50% throughput
    // degradation. Report the largest arrival rate at which 4 reserved
    // PDCHs still meet it (degradation measured from the lightest load).
    const std::vector<core::Measures>& four = results.back();
    const double reference = four.front().throughput_per_user_kbps;
    double sustained = rates.front();
    for (std::size_t r = 0; r < rates.size(); ++r) {
        if (four[r].throughput_per_user_kbps >= 0.5 * reference) {
            sustained = rates[r];
        }
    }
    std::printf("\nQoS profile check (<= 50%% throughput degradation, 4 PDCHs):\n");
    std::printf("  sustained up to ~%.2f calls/s (paper: 1.0 / 0.5 / 0.3 calls/s\n", sustained);
    std::printf("  for 2%% / 5%% / 10%% GPRS users)\n");
    return 0;
}

}  // namespace gprsim::bench
