// Microbenchmarks for the discrete-event substrate and the network
// simulator, including the paper's observation that simulation cannot
// estimate small loss probabilities: the relative CI half-width on PLP is
// reported as a counter, showing how wide the intervals stay even after
// millions of events (Section 1: "even with simulation runs in the order of
// hours proper estimates for such measures cannot be derived").
#include <benchmark/benchmark.h>

#include "des/random.hpp"
#include "des/simulation.hpp"
#include "sim/simulator.hpp"
#include "traffic/threegpp.hpp"

namespace {

using namespace gprsim;

void BM_EventCalendarThroughput(benchmark::State& state) {
    // Schedule/execute cost with a calendar holding `range` pending events.
    const int pending = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        des::Simulation sim;
        des::RandomStream rng(7);
        for (int i = 0; i < pending; ++i) {
            sim.schedule(rng.exponential(1.0), [] {});
        }
        state.ResumeTiming();
        sim.run();
        benchmark::DoNotOptimize(sim.events_executed());
    }
    state.SetItemsProcessed(state.iterations() * pending);
}
BENCHMARK(BM_EventCalendarThroughput)->Arg(1000)->Arg(100000);

void BM_RandomStreams(benchmark::State& state) {
    des::RandomStream rng(11);
    double acc = 0.0;
    for (auto _ : state) {
        acc += rng.exponential(2.0);
    }
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RandomStreams);

void BM_SimulatorSecondsPerSimulatedHour(benchmark::State& state) {
    // Full 7-cell simulator, traffic model 3, TCP enabled.
    for (auto _ : state) {
        sim::SimulationConfig config;
        config.cell = core::Parameters::with_traffic_model(traffic::traffic_model_3());
        config.cell.call_arrival_rate = 0.5;
        config.seed = 3;
        config.warmup_time = 300.0;
        config.batch_count = 3;
        config.batch_duration = 1100.0;  // ~1 simulated hour total
        const sim::SimulationResults results = sim::NetworkSimulator(config).run();
        benchmark::DoNotOptimize(results.packets_delivered);
        state.counters["events"] = static_cast<double>(results.events_executed);
    }
}
BENCHMARK(BM_SimulatorSecondsPerSimulatedHour)->Unit(benchmark::kSecond)->Iterations(1);

void BM_SimulationCannotResolveSmallPlp(benchmark::State& state) {
    // The paper's motivating claim: at light load PLP is tiny and the
    // simulator's relative CI width explodes (or no loss is observed at
    // all), while the numerical method resolves it exactly.
    for (auto _ : state) {
        sim::SimulationConfig config;
        config.cell = core::Parameters::with_traffic_model(traffic::traffic_model_3());
        config.cell.call_arrival_rate = 0.2;  // light load: rare losses
        config.tcp_enabled = false;
        config.seed = 5;
        config.warmup_time = 500.0;
        config.batch_count = 10;
        config.batch_duration = 1000.0;
        const sim::SimulationResults results = sim::NetworkSimulator(config).run();
        const double mean = results.packet_loss_probability.mean;
        const double half = results.packet_loss_probability.half_width;
        state.counters["plp_mean"] = mean;
        state.counters["plp_ci_half"] = half;
        state.counters["rel_ci"] = mean > 0.0 ? half / mean : -1.0;
        benchmark::DoNotOptimize(results.packets_dropped);
    }
}
BENCHMARK(BM_SimulationCannotResolveSmallPlp)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
