// Simulator microbench: the replication-experiment counterpart of
// micro_solver, self-contained (no external benchmark dependency) so the
// perf trajectory works on minimal containers.
//
// Three cases, all recorded to BENCH_simulator.json (--json=PATH to
// override):
//   * calendar      — raw event-calendar throughput (schedule + execute).
//   * experiment    — sim::ExperimentEngine running the full 7-cell
//     simulator (traffic model 3, TCP enabled) across a thread ladder
//     {1, 2, 4, ..., cap}: wall time, speedup vs the serial run, and a
//     check that the pooled measures stay bitwise identical at every
//     width (the engine's replication-invariance guarantee).
//   * plp_ci        — the paper's motivating claim (Section 1): at light
//     load the loss probability is so small that even pooled replications
//     leave a huge relative CI, while the numerical method resolves it
//     exactly.
//
//   micro_simulator [--full] [--threads=N] [--replications=N] [--json=PATH]
//
// --threads caps the ladder (0 = all hardware threads; default
// min(8, 2 x hardware threads)); --full lengthens the per-replication
// horizon to paper-like settings.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "des/random.hpp"
#include "des/simulation.hpp"
#include "sim/experiment.hpp"
#include "traffic/threegpp.hpp"

namespace {

using namespace gprsim;

/// Max-norm distance between two pooled result sets (means and CI widths
/// of every measure); 0.0 means bitwise identical pooling.
double pooled_distance(const sim::ExperimentResults& a, const sim::ExperimentResults& b) {
    const auto gap = [](const sim::MetricEstimate& x, const sim::MetricEstimate& y) {
        return std::max(std::fabs(x.mean - y.mean),
                        std::fabs(x.half_width - y.half_width));
    };
    double worst = 0.0;
    worst = std::max(worst, gap(a.carried_data_traffic, b.carried_data_traffic));
    worst = std::max(worst, gap(a.packet_loss_probability, b.packet_loss_probability));
    worst = std::max(worst, gap(a.queueing_delay, b.queueing_delay));
    worst = std::max(worst, gap(a.throughput_per_user_kbps, b.throughput_per_user_kbps));
    worst = std::max(worst, gap(a.mean_queue_length, b.mean_queue_length));
    worst = std::max(worst, gap(a.carried_voice_traffic, b.carried_voice_traffic));
    worst = std::max(worst, gap(a.average_gprs_sessions, b.average_gprs_sessions));
    worst = std::max(worst, gap(a.gsm_blocking, b.gsm_blocking));
    worst = std::max(worst, gap(a.gprs_blocking, b.gprs_blocking));
    return worst;
}

}  // namespace

int main(int argc, char** argv) try {
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const int hw = common::ThreadPool::hardware_threads();
    const int max_threads = args.threads_given
                                ? common::ThreadPool::resolve_thread_count(args.threads)
                                : std::min(8, 2 * hw);
    const int replications = args.replication_count(4, 8);

    bench::print_header("micro_simulator -- experiment engine: threads vs wall time");
    std::printf("hardware threads: %d, widest measured: %d, replications: %d\n", hw,
                max_threads, replications);
    bench::SimJsonWriter json;

    // --- calendar: raw event throughput ------------------------------------
    {
        const int pending = 100000;
        des::Simulation sim;
        des::RandomStream rng(7);
        for (int i = 0; i < pending; ++i) {
            sim.schedule(rng.exponential(1.0), [] {});
        }
        bench::WallTimer timer;
        sim.run();
        const double seconds = timer.seconds();
        std::printf("\ncalendar: %d events in %.3f s (%.2e events/s)\n", pending, seconds,
                    static_cast<double>(pending) / seconds);
        json.add({"calendar_100k", 1, 1, pending, sim.now(), seconds});
    }

    // --- calendar_1M_bursty: 10x scale, skewed schedule-time mixture --------
    // The GPRS schedule-time profile taken to the extreme: 60% of events on
    // a 20 ms frame grid (heavy ties -> FIFO pressure), 30% with
    // millisecond transit jitter, 10% far-future timers (dwell/session
    // scale, through the calendar's overflow list). Timed over schedule +
    // drain, so the insert path is measured too.
    {
        const int total = 1000000;
        des::Simulation sim;
        des::RandomStream rng(11);
        const auto skewed_time = [&rng] {
            const double u = rng.uniform();
            if (u < 0.6) {
                return 0.02 * std::floor(rng.uniform() * 6750.0);  // frame grid
            }
            if (u < 0.9) {
                return rng.uniform() * 135.0 + rng.exponential(0.005);  // jitter
            }
            return 135.0 + 4865.0 * rng.uniform() * rng.uniform();  // far tail
        };
        bench::WallTimer timer;
        for (int i = 0; i < total; ++i) {
            sim.schedule_at(skewed_time(), [] {});
        }
        sim.run();
        const double seconds = timer.seconds();
        std::printf("calendar_1M_bursty: %d events in %.3f s (%.2e events/s)\n", total,
                    seconds, static_cast<double>(total) / seconds);
        json.add({"calendar_1M_bursty", 1, 1, total, sim.now(), seconds});
    }

    // --- calendar_1M_cancel: cancellation-heavy churn at scale --------------
    // Half of 1M scheduled events are cancelled before they fire (the
    // TCP-timer / dwell-timer pattern): exercises O(1) cancel, lazy
    // reclamation of cancelled calendar entries, and slot recycling.
    {
        const int total = 1000000;
        des::Simulation sim;
        des::RandomStream rng(13);
        std::vector<des::EventHandle> handles;
        handles.reserve(static_cast<std::size_t>(total));
        bench::WallTimer timer;
        for (int i = 0; i < total; ++i) {
            handles.push_back(sim.schedule(rng.exponential(1.0), [] {}));
        }
        for (int i = 0; i < total; i += 2) {
            sim.cancel(handles[static_cast<std::size_t>(i)]);
        }
        sim.run();
        const double seconds = timer.seconds();
        std::printf("calendar_1M_cancel: %lld fired of %d in %.3f s "
                    "(%.2e schedule+cancel+fire ops/s)\n",
                    static_cast<long long>(sim.events_executed()), total, seconds,
                    static_cast<double>(total) * 1.5 / seconds);
        json.add({"calendar_1M_cancel", 1, 1,
                  static_cast<long long>(sim.events_executed()), sim.now(), seconds});
    }

    // --- experiment: replication sharding across the thread ladder ----------
    sim::ExperimentConfig config;
    config.base.cell = core::Parameters::with_traffic_model(traffic::traffic_model_3());
    config.base.cell.call_arrival_rate = 0.5;
    config.base.tcp_enabled = true;
    config.base.warmup_time = args.full ? 1000.0 : 150.0;
    config.base.batch_count = args.full ? 10 : 4;
    config.base.batch_duration = args.full ? 1000.0 : 300.0;
    config.replications = replications;
    config.seed = 3;

    std::vector<int> ladder;
    for (int t = 1; t <= max_threads; t *= 2) {
        ladder.push_back(t);
    }
    if (ladder.back() != max_threads) {
        ladder.push_back(max_threads);
    }

    sim::ExperimentEngine engine;
    std::printf("\nexperiment: 7-cell simulator, %d replications of %.0f s each\n",
                replications,
                config.base.warmup_time +
                    config.base.batch_count * config.base.batch_duration);
    std::printf("%7s %12s %12s %12s %14s\n", "threads", "events", "seconds", "speedup",
                "pooled drift");
    sim::ExperimentResults baseline;
    for (int threads : ladder) {
        config.num_threads = threads;
        const sim::ExperimentResults results = engine.run(config);
        const bool is_serial = threads == 1;
        if (is_serial) {
            baseline = results;
        }
        const double drift = pooled_distance(results, baseline);
        std::printf("%7d %12lld %12.3f %11.2fx %14.2e\n", results.threads_used,
                    static_cast<long long>(results.events_executed), results.wall_seconds,
                    is_serial ? 1.0 : baseline.wall_seconds / results.wall_seconds, drift);
        if (drift != 0.0) {
            std::fprintf(stderr,
                         "WARNING: pooled measures drifted %.2e at %d threads; the "
                         "experiment engine must be thread-count invariant\n",
                         drift, threads);
        }
        json.add({"experiment_tm3", results.threads_used, replications,
                  static_cast<long long>(results.events_executed), results.simulated_time,
                  results.wall_seconds});
    }
    std::printf("pooled CDT %.4f +- %.4f over %d replications\n",
                baseline.carried_data_traffic.mean, baseline.carried_data_traffic.half_width,
                baseline.carried_data_traffic.batches);

    // --- plp_ci: simulation cannot resolve small loss probabilities ----------
    {
        sim::ExperimentConfig light = config;
        light.base.cell.call_arrival_rate = 0.2;  // light load: rare losses
        light.base.tcp_enabled = false;
        light.seed = 5;
        light.num_threads = max_threads;
        const sim::ExperimentResults results = sim::ExperimentEngine().run(light);
        const double mean = results.packet_loss_probability.mean;
        const double half = results.packet_loss_probability.half_width;
        std::printf("\nplp_ci: light-load PLP %.3e +- %.3e (relative CI %s%.1f)\n", mean,
                    half, mean > 0.0 ? "" : "n/a ", mean > 0.0 ? half / mean : 0.0);
        std::printf("paper Section 1: \"even with simulation runs in the order of hours\n");
        std::printf("proper estimates for such measures cannot be derived\"\n");
        json.add({"plp_light_load", results.threads_used, replications,
                  static_cast<long long>(results.events_executed), results.simulated_time,
                  results.wall_seconds});
    }

    json.write(args.json.empty() ? "BENCH_simulator.json" : args.json);
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "micro_simulator: %s\n", e.what());
    return 1;
}
