// Microbenchmarks backing the paper's methodological claim (Section 1):
// "sensitive performance measures can be computed on a modern PC within few
// minutes of CPU solution time" — numerical solution scales to the full
// state space, while simulation cannot resolve rare-event measures.
//
// Benchmarks generator construction and steady-state solution across
// state-space sizes (controlled via the buffer capacity K and session cap M)
// and compares iterative methods.
#include <benchmark/benchmark.h>

#include "core/initial_guess.hpp"
#include "core/model.hpp"
#include "traffic/threegpp.hpp"

namespace {

using namespace gprsim;

core::Parameters scaled_parameters(int buffer_capacity, int max_sessions) {
    core::Parameters p = core::Parameters::with_traffic_model(traffic::traffic_model_3());
    p.buffer_capacity = buffer_capacity;
    p.max_gprs_sessions = max_sessions;
    p.call_arrival_rate = 0.5;
    return p;
}

void BM_BuildQtMatrix(benchmark::State& state) {
    const core::Parameters p =
        scaled_parameters(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
    const core::BalancedTraffic balanced = core::balance_handover(p);
    const core::GprsGenerator generator(p, balanced.rates);
    for (auto _ : state) {
        benchmark::DoNotOptimize(generator.to_qt_matrix());
    }
    state.counters["states"] = static_cast<double>(generator.size());
}
BENCHMARK(BM_BuildQtMatrix)
    ->Args({20, 5})
    ->Args({50, 10})
    ->Args({100, 10})
    ->Unit(benchmark::kMillisecond);

void BM_SolveSteadyState(benchmark::State& state) {
    const core::Parameters p =
        scaled_parameters(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
    const core::BalancedTraffic balanced = core::balance_handover(p);
    const core::GprsGenerator generator(p, balanced.rates);
    const ctmc::QtMatrix qt = generator.to_qt_matrix();
    ctmc::SolveOptions options;
    options.tolerance = 1e-10;
    ctmc::index_type iterations = 0;
    for (auto _ : state) {
        const ctmc::SolveResult result = ctmc::solve_steady_state(qt, options);
        benchmark::DoNotOptimize(result.distribution.data());
        iterations = result.iterations;
    }
    state.counters["states"] = static_cast<double>(generator.size());
    state.counters["sweeps"] = static_cast<double>(iterations);
}
BENCHMARK(BM_SolveSteadyState)
    ->Args({20, 5})
    ->Args({50, 10})
    ->Args({100, 10})
    ->Unit(benchmark::kMillisecond);

void BM_SolveMethodComparison(benchmark::State& state) {
    // SOR is deliberately absent: over-relaxation oscillates on this
    // non-symmetric generator (see DESIGN.md, numerical strategy).
    const core::Parameters p = scaled_parameters(30, 8);
    const core::BalancedTraffic balanced = core::balance_handover(p);
    const core::GprsGenerator generator(p, balanced.rates);
    const ctmc::QtMatrix qt = generator.to_qt_matrix();
    ctmc::SolveOptions options;
    options.method = static_cast<ctmc::SolveMethod>(state.range(0));
    options.tolerance = 1e-10;
    options.max_iterations = 20000;
    ctmc::index_type sweeps = 0;
    for (auto _ : state) {
        const ctmc::SolveResult result = ctmc::solve_steady_state(qt, options);
        benchmark::DoNotOptimize(result.residual);
        sweeps = result.iterations;
    }
    state.counters["sweeps"] = static_cast<double>(sweeps);
}
BENCHMARK(BM_SolveMethodComparison)
    ->Arg(static_cast<int>(ctmc::SolveMethod::gauss_seidel))
    ->Arg(static_cast<int>(ctmc::SolveMethod::symmetric_gauss_seidel))
    ->Unit(benchmark::kMillisecond);

void BM_InitialGuessAblation(benchmark::State& state) {
    // Ablation for the product-form warm start (DESIGN.md design choice):
    // iterations to 1e-10 from a uniform vector vs from the closed-form
    // product approximation.
    const core::Parameters p = scaled_parameters(60, 10);
    const core::BalancedTraffic balanced = core::balance_handover(p);
    const core::GprsGenerator generator(p, balanced.rates);
    const ctmc::QtMatrix qt = generator.to_qt_matrix();
    ctmc::SolveOptions options;
    options.tolerance = 1e-10;
    if (state.range(0) == 1) {
        options.initial = core::product_form_initial(p, balanced, generator.space());
    }
    ctmc::index_type sweeps = 0;
    for (auto _ : state) {
        const ctmc::SolveResult result = ctmc::solve_steady_state(qt, options);
        benchmark::DoNotOptimize(result.residual);
        sweeps = result.iterations;
    }
    state.SetLabel(state.range(0) == 1 ? "product_form_start" : "uniform_start");
    state.counters["sweeps"] = static_cast<double>(sweeps);
}
BENCHMARK(BM_InitialGuessAblation)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_MatrixFreeVsCsrSweepCost(benchmark::State& state) {
    // One Gauss-Seidel sweep through the matrix-free operator vs CSR: the
    // matrix-free path trades ~an order of magnitude in speed for zero
    // matrix memory (needed for the 22M-state chain of Fig. 10).
    const core::Parameters p = scaled_parameters(50, 10);
    const core::BalancedTraffic balanced = core::balance_handover(p);
    const core::GprsGenerator generator(p, balanced.rates);
    ctmc::SolveOptions one_sweep;
    one_sweep.max_iterations = 1;
    one_sweep.check_interval = 1;
    if (state.range(0) == 0) {
        const ctmc::QtMatrix qt = generator.to_qt_matrix();
        for (auto _ : state) {
            benchmark::DoNotOptimize(ctmc::solve_steady_state(qt, one_sweep).residual);
        }
    } else {
        for (auto _ : state) {
            benchmark::DoNotOptimize(ctmc::solve_steady_state(generator, one_sweep).residual);
        }
    }
    state.SetLabel(state.range(0) == 0 ? "csr" : "matrix_free");
}
BENCHMARK(BM_MatrixFreeVsCsrSweepCost)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_HandoverBalance(benchmark::State& state) {
    core::Parameters p = core::Parameters::base();
    p.call_arrival_rate = 1.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::balance_handover(p).rates.gsm_arrival);
    }
}
BENCHMARK(BM_HandoverBalance);

}  // namespace

BENCHMARK_MAIN();
