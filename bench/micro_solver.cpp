// Solver microbench backing the paper's methodological claim (Section 1):
// "sensitive performance measures can be computed on a modern PC within few
// minutes of CPU solution time" — and, since the parallel-engine refactor,
// measuring how far the thread-sharded kernels push that claim.
//
// For each case the harness solves the chain once with the serial seed path
// (Gauss-Seidel, num_threads = 1) as the baseline, once through the auto
// cost model (which at one thread must reproduce the baseline bitwise —
// the record doubles as a dispatch check), then with the parallel methods
// (red-black Gauss-Seidel, Jacobi) across thread counts, reporting wall
// time, speedup, and the max-norm distance of each distribution from the
// serial baseline. Records land in BENCH_solver.json (--json=PATH to
// override) so later PRs can diff the perf trajectory.
//
//   micro_solver [--full] [--m=N] [--threads=N] [--json=PATH] [--no-campaign]
//
// --threads caps the widest configuration measured: the ladder is
// {1, 2, 4, ..., cap}, so --threads=1 runs just the serial baseline and
// --threads=0 ladders up to every hardware thread; with no flag the cap is
// min(8, 2 x hardware threads). The quick default solves M = 10 (~130k
// states, finishes in seconds); --full solves the Fig. 10 mid-size
// configuration M = 100 (~10 million states); --m=N picks any session cap
// in between. The multi-variant campaign timing section (sequential vs
// merged batched dispatch, a few seconds) runs by default; --no-campaign
// skips it when iterating on the solver kernels alone.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/thread_pool.hpp"
#include "eval/evaluator.hpp"
#include "eval/registry.hpp"
#include "core/handover.hpp"
#include "core/initial_guess.hpp"
#include "core/model.hpp"
#include "ctmc/engine.hpp"
#include "traffic/threegpp.hpp"

namespace {

using namespace gprsim;

core::Parameters fig10_parameters(int max_sessions) {
    // Fig. 10 operating point: traffic model 1, 2 reserved PDCHs, 5% GPRS.
    core::Parameters p = core::Parameters::with_traffic_model(traffic::traffic_model_1());
    p.reserved_pdch = 2;
    p.gprs_fraction = 0.05;
    p.max_gprs_sessions = max_sessions;
    p.call_arrival_rate = 0.5;
    return p;
}

double max_norm_distance(const std::vector<double>& a, const std::vector<double>& b) {
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        worst = std::max(worst, std::fabs(a[i] - b[i]));
    }
    return worst;
}

}  // namespace

int main(int argc, char** argv) try {
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const int hw = common::ThreadPool::hardware_threads();
    // Repo-wide --threads semantics: 0 = all hardware threads, 1 = serial
    // only, N = ladder up to N. With no flag the ladder tops out at
    // min(8, 2*hw) so the table is informative on any machine.
    int m_sessions = args.full ? 100 : 10;
    bool run_campaign = true;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--m=", 4) == 0) {
            m_sessions = std::atoi(argv[i] + 4);
        } else if (std::strcmp(argv[i], "--no-campaign") == 0) {
            run_campaign = false;
        }
    }
    const int max_threads = args.threads_given
                                ? ctmc::SolverEngine::resolve_thread_count(args.threads)
                                : std::min(8, 2 * hw);

    bench::print_header("micro_solver -- steady-state engine: threads vs wall time");
    std::printf("hardware threads: %d, widest measured: %d\n", hw, max_threads);

    const core::Parameters p = fig10_parameters(m_sessions);
    const core::BalancedTraffic balanced = core::balance_handover(p);
    const core::GprsGenerator generator(p, balanced.rates);
    const std::vector<double> initial =
        core::product_form_initial(p, balanced, generator.space());

    bench::WallTimer build_timer;
    const ctmc::QtMatrix qt = generator.to_qt_matrix();
    std::printf("case: Fig. 10 %s (M = %d): %lld states, %lld transitions, "
                "CSR build %.2f s\n",
                args.full ? "mid-size" : "quick", m_sessions,
                static_cast<long long>(qt.size()),
                static_cast<long long>(qt.off_diagonal().nonzeros()),
                build_timer.seconds());

    // No prewarm: the pool spawns on the first parallel solve, so the
    // serial baseline (and the auto record below) are never timed against
    // spinning pool workers — on a 1-core CI box that contention inflates
    // the serial wall time by ~25%.
    ctmc::SolverEngine engine;
    bench::BenchJsonWriter json;
    const std::string case_name =
        "fig10_M" + std::to_string(m_sessions);

    ctmc::SolveOptions base;
    // 1e-14 on the scaled residual keeps the per-method distributions
    // within 1e-10 max-norm of each other (the residual-to-error
    // amplification on this chain is ~4e3).
    base.tolerance = 1e-14;
    base.initial = initial;

    // Serial seed path: the baseline every other run is compared against.
    ctmc::SolveOptions serial = base;
    serial.method = ctmc::SolveMethod::gauss_seidel;
    serial.num_threads = 1;
    const ctmc::SolveResult baseline = engine.solve(qt, serial);
    std::printf("\n%-26s %7s %9s %10s %12s %12s\n", "method", "threads", "sweeps",
                "seconds", "speedup", "maxdiff");
    std::printf("%-26s %7d %9lld %10.3f %12s %12s\n",
                ctmc::method_name(baseline.method_used), baseline.threads_used,
                static_cast<long long>(baseline.iterations), baseline.seconds, "1.00x",
                "-");
    json.add({.name = case_name,
              .states = static_cast<long long>(qt.size()),
              .method = ctmc::method_name(baseline.method_used),
              .threads = baseline.threads_used,
              .seconds = baseline.seconds,
              .iterations = static_cast<long long>(baseline.iterations),
              .residual = baseline.residual,
              .residual_evaluations =
                  static_cast<long long>(baseline.residual_evaluations)});

    // Cost-model record: same point solved with method = auto. At one
    // thread the model must pick the serial Gauss-Seidel path, making this
    // run bitwise identical to the baseline — any maxdiff is a bug.
    ctmc::SolveOptions auto_opts = base;
    auto_opts.method = ctmc::SolveMethod::auto_select;
    auto_opts.num_threads = 1;
    const ctmc::SolveResult auto_run = engine.solve(qt, auto_opts);
    const double auto_diff =
        max_norm_distance(auto_run.distribution, baseline.distribution);
    std::printf("%-26s %7d %9lld %10.3f %11.2fx %12.2e\n", "auto",
                auto_run.threads_used, static_cast<long long>(auto_run.iterations),
                auto_run.seconds, baseline.seconds / auto_run.seconds, auto_diff);
    std::printf("  auto -> %s (%s)\n", ctmc::method_name(auto_run.method_used),
                auto_run.reason.c_str());
    if (auto_diff != 0.0) {
        std::fprintf(stderr,
                     "WARNING: auto @ 1 thread must be bitwise identical to the serial "
                     "baseline (maxdiff %.2e)\n",
                     auto_diff);
    }
    json.add({.name = case_name,
              .states = static_cast<long long>(qt.size()),
              .method = "auto",
              .threads = auto_run.threads_used,
              .seconds = auto_run.seconds,
              .iterations = static_cast<long long>(auto_run.iterations),
              .residual = auto_run.residual,
              .residual_evaluations =
                  static_cast<long long>(auto_run.residual_evaluations)});

    std::vector<int> ladder;
    for (int t = 1; t <= max_threads; t *= 2) {
        ladder.push_back(t);
    }
    if (ladder.back() != max_threads) {
        ladder.push_back(max_threads);
    }

    const ctmc::SolveMethod methods[] = {ctmc::SolveMethod::red_black_gauss_seidel,
                                         ctmc::SolveMethod::jacobi};
    for (ctmc::SolveMethod method : methods) {
        for (int threads : ladder) {
            ctmc::SolveOptions options = base;
            options.method = method;
            options.num_threads = threads;
            const ctmc::SolveResult r = engine.solve(qt, options);
            const double diff = max_norm_distance(r.distribution, baseline.distribution);
            std::printf("%-26s %7d %9lld %10.3f %11.2fx %12.2e\n",
                        ctmc::method_name(r.method_used), r.threads_used,
                        static_cast<long long>(r.iterations), r.seconds,
                        baseline.seconds / r.seconds, diff);
            json.add({.name = case_name,
                      .states = static_cast<long long>(qt.size()),
                      .method = ctmc::method_name(r.method_used),
                      .threads = r.threads_used,
                      .seconds = r.seconds,
                      .iterations = static_cast<long long>(r.iterations),
                      .residual = r.residual,
                      .residual_evaluations =
                          static_cast<long long>(r.residual_evaluations)});
            if (diff > 1e-10) {
                std::fprintf(stderr,
                             "WARNING: %s @ %d threads drifted %.2e from the serial "
                             "baseline (budget 1e-10)\n",
                             ctmc::method_name(r.method_used), threads, diff);
            }
        }
    }

    // Large-population approximations: one point of the
    // campaigns/large_population.json cell (4096 channels, 1000 reserved
    // PDCHs, K = 1000, M = 10^6 sessions) per approximate backend, where
    // the exact chain is out of reach by orders of magnitude. `states`
    // records the nominal exact-chain size as the (K+1) x (N+1) x (M+1)
    // product bound over the queue/voice/session dimensions — the number
    // the milliseconds-per-point wall times should be read against.
    {
        eval::ScenarioQuery query;
        query.parameters =
            core::Parameters::with_traffic_model(traffic::traffic_model_1());
        query.parameters.total_channels = 4096;
        query.parameters.reserved_pdch = 1000;
        query.parameters.buffer_capacity = 1000;
        query.parameters.max_gprs_sessions = 1000000;
        query.parameters.gprs_fraction = 0.999;
        query.parameters.flow_control_threshold = 0.7;
        query.call_arrival_rate = 400.0;
        const long long nominal_states =
            static_cast<long long>(query.parameters.buffer_capacity + 1) *
            static_cast<long long>(query.parameters.total_channels + 1) *
            static_cast<long long>(query.parameters.max_gprs_sessions + 1);
        std::printf("\nlarge-population cell: N = %d, PDCH = %d, K = %d, M = %d "
                    "(~%.1e nominal exact states)\n",
                    query.parameters.total_channels, query.parameters.reserved_pdch,
                    query.parameters.buffer_capacity,
                    query.parameters.max_gprs_sessions,
                    static_cast<double>(nominal_states));
        for (const char* backend_name : {"fixed-point", "fluid"}) {
            auto found = eval::BackendRegistry::global().find(backend_name);
            if (!found.ok()) {
                std::fprintf(stderr, "WARNING: backend %s not registered\n",
                             backend_name);
                continue;
            }
            bench::WallTimer approx_timer;
            auto point = found.value()->evaluate(query);
            const double seconds = approx_timer.seconds();
            if (!point.ok()) {
                std::fprintf(stderr, "WARNING: %s failed on the large cell: %s\n",
                             backend_name, point.error().to_string().c_str());
                continue;
            }
            std::printf("%-26s %7d %9lld %10.3f %12s %12s\n", backend_name, 1,
                        point.value().iterations, seconds, "-", "-");
            json.add({.name = "large_population_M1e6",
                      .states = nominal_states,
                      .method = backend_name,
                      .threads = 1,
                      .seconds = seconds,
                      .iterations = point.value().iterations,
                      .residual = point.value().residual});
        }
    }

    // Multi-variant campaign: the merged cross-variant task set (every
    // variant's bisection waves interleaved, DES replications backfilling
    // idle solver threads) against the sequential per-(backend, variant)
    // dispatch of the same spec. Output is bitwise identical either way;
    // the record tracks wall time and the wave counts.
    if (!run_campaign) {
        json.write(args.json.empty() ? "BENCH_solver.json" : args.json);
        return 0;
    }
    campaign::ScenarioSpec spec;
    spec.named("micro_campaign")
        .with_methods({"ctmc", "des"})
        .over_reserved_pdch({1, 2, 3})
        .over_gprs_fractions({0.3})
        .with_rate_grid(0.6, 1.0, 9)
        .with_tolerance(1e-10);
    spec.total_channels = 8;
    spec.buffer_capacity = 25;
    spec.max_gprs_sessions = {10};
    spec.simulation.replications = 2;
    spec.simulation.warmup_time = 100.0;
    spec.simulation.batch_count = 3;
    spec.simulation.batch_duration = 150.0;

    campaign::CampaignRunner campaign_runner(engine);
    campaign::CampaignOptions sequential;
    sequential.num_threads = max_threads;
    sequential.sequential_dispatch = true;
    bench::WallTimer campaign_timer;
    const campaign::CampaignResult seq = campaign_runner.run(spec, sequential);
    const double seq_seconds = campaign_timer.seconds();
    campaign::CampaignOptions batched;
    batched.num_threads = max_threads;
    campaign_timer.reset();
    const campaign::CampaignResult bat = campaign_runner.run(spec, batched);
    const double bat_seconds = campaign_timer.seconds();

    std::printf("\ncampaign: 3 variants x 9 rates x (ctmc + des, 2 replications), "
                "%d threads\n", bat.summary.threads);
    std::printf("  sequential dispatch: %.3f s (%zu waves)\n", seq_seconds,
                bat.summary.sequential_waves);
    std::printf("  merged batch:        %.3f s (%zu waves, %zu tasks)  "
                "speedup %.2fx\n",
                bat_seconds, bat.summary.batch_waves, bat.summary.batch_tasks,
                bat_seconds > 0.0 ? seq_seconds / bat_seconds : 0.0);
    json.add({.name = "campaign_3var_ctmc_des",
              .states = static_cast<long long>(bat.summary.points),
              .dispatch = "sequential",
              .threads = bat.summary.threads,
              .seconds = seq_seconds,
              .iterations = seq.summary.total_iterations});
    json.add({.name = "campaign_3var_ctmc_des",
              .states = static_cast<long long>(bat.summary.points),
              .dispatch = "batched",
              .threads = bat.summary.threads,
              .seconds = bat_seconds,
              .iterations = bat.summary.total_iterations});

    // Network scaling: the campaigns/network_scaling.json study rebuilt
    // programmatically (1 -> 16 cells x 3 mobility speeds through the
    // analytic network fixed point, ctmc inner solves), timed at both
    // dispatch widths. Every lattice's inner solves land on the shared
    // pool as one flat wave-ordered task set, so this record tracks how
    // the cross-cell merge scales as lattices grow.
    campaign::ScenarioSpec net_spec;
    net_spec.named("network_scaling")
        .with_methods({"network-fp"})
        .over_reserved_pdch({1})
        .over_gprs_fractions({0.1})
        .with_rate_grid(0.3, 0.9, 4)
        .with_tolerance(1e-10);
    net_spec.total_channels = 8;
    net_spec.buffer_capacity = 15;
    net_spec.max_gprs_sessions = {10};
    campaign::NetworkSpec net;
    net.cell_counts = {1, 2, 4, 8, 16};
    net.speeds_kmh = {3.0, 30.0, 120.0};
    net.ra_block = 1;
    net.outer_tolerance = 1e-12;
    net.outer_max_iterations = 100;
    net_spec.with_network(net);

    campaign_timer.reset();
    const campaign::CampaignResult net_seq = campaign_runner.run(net_spec, sequential);
    const double net_seq_seconds = campaign_timer.seconds();
    campaign_timer.reset();
    const campaign::CampaignResult net_bat = campaign_runner.run(net_spec, batched);
    const double net_bat_seconds = campaign_timer.seconds();

    std::printf("\nnetwork scaling: 15 lattices (1-16 cells x 3 speeds) x 4 rates, "
                "network-fp, %d threads\n", net_bat.summary.threads);
    std::printf("  sequential dispatch: %.3f s (%zu waves)\n", net_seq_seconds,
                net_bat.summary.sequential_waves);
    std::printf("  merged batch:        %.3f s (%zu waves, %zu tasks)  "
                "speedup %.2fx\n",
                net_bat_seconds, net_bat.summary.batch_waves,
                net_bat.summary.batch_tasks,
                net_bat_seconds > 0.0 ? net_seq_seconds / net_bat_seconds : 0.0);
    json.add({.name = "network_scaling_fp",
              .states = static_cast<long long>(net_bat.summary.points),
              .dispatch = "sequential",
              .threads = net_bat.summary.threads,
              .seconds = net_seq_seconds,
              .iterations = net_seq.summary.total_iterations});
    json.add({.name = "network_scaling_fp",
              .states = static_cast<long long>(net_bat.summary.points),
              .dispatch = "batched",
              .threads = net_bat.summary.threads,
              .seconds = net_bat_seconds,
              .iterations = net_bat.summary.total_iterations});

    json.write(args.json.empty() ? "BENCH_solver.json" : args.json);
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "micro_solver: %s\n", e.what());
    return 1;
}
