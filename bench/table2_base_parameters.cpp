// Reproduces paper Table 2: the base parameter setting of the Markov model,
// plus the quantities derived from it that every experiment depends on.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/handover.hpp"
#include "core/parameters.hpp"

int main() {
    using namespace gprsim;
    const core::Parameters p = core::Parameters::base();

    bench::print_header("Table 2 -- Base parameter setting of the Markov model of GPRS");
    std::printf("%-52s %10s\n", "Parameter", "Value");
    std::printf("%-52s %10d\n", "Number of physical channels, N", p.total_channels);
    std::printf("%-52s %10d\n", "Number of fixed PDCHs, N_GPRS", p.reserved_pdch);
    std::printf("%-52s %7d pkt\n", "BSC buffer size, K", p.buffer_capacity);
    std::printf("%-52s %4.1f Kbit/s\n", "Transfer rate for one PDCH (CS-2)", p.pdch_rate_kbps);
    std::printf("%-52s %8.0f s\n", "Average GSM voice call duration, 1/mu_GSM",
                p.mean_gsm_call_duration);
    std::printf("%-52s %8.0f s\n", "Average GSM voice call dwell time, 1/mu_h,GSM",
                p.mean_gsm_dwell_time);
    std::printf("%-52s %8.0f s\n", "Average GPRS session dwell time, 1/mu_h,GPRS",
                p.mean_gprs_dwell_time);
    std::printf("%-52s %9.0f%%\n", "Percentage of GSM users", 100.0 * (1.0 - p.gprs_fraction));
    std::printf("%-52s %9.0f%%\n", "Percentage of GPRS users", 100.0 * p.gprs_fraction);

    std::printf("\nDerived quantities (Section 3/4):\n");
    std::printf("%-52s %10d\n", "On-demand channels, N_GSM = N - N_GPRS", p.gsm_channels());
    std::printf("%-52s %6.4f /s\n", "Packet service rate per PDCH, mu_service",
                p.packet_service_rate());
    std::printf("%-52s %10d\n", "Flow-control onset, floor(eta K) (eta = 0.7)",
                p.flow_control_onset());

    core::Parameters loaded = p;
    loaded.call_arrival_rate = 1.0;
    const core::BalancedTraffic balanced = core::balance_handover(loaded);
    std::printf("\nBalanced handover flows at 1 call/s (Eq. 4-5):\n");
    std::printf("%-52s %6.4f /s\n", "GSM handover arrival rate, lambda_h,GSM",
                balanced.gsm.handover_arrival_rate);
    std::printf("%-52s %6.4f /s\n", "GPRS handover arrival rate, lambda_h,GPRS",
                balanced.gprs.handover_arrival_rate);
    std::printf("%-52s %8.2f E\n", "GSM offered load, rho_GSM", balanced.gsm.offered_load);
    std::printf("%-52s %8.2f E\n", "GPRS offered load, rho_GPRS", balanced.gprs.offered_load);
    std::printf("\nPaper check: GPRS handover rate should be ~0.3 /s at 1 call/s\n");
    std::printf("(Section 5.3); computed: %.3f /s\n", balanced.gprs.handover_arrival_rate);
    return 0;
}
