// Reproduces paper Table 3: the three 3GPP traffic models, with every
// derived value recomputed from the primitive 3GPP parameters.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "traffic/mmpp.hpp"
#include "traffic/threegpp.hpp"

int main() {
    using namespace gprsim;
    const traffic::TrafficModelPreset presets[] = {
        traffic::traffic_model_1(), traffic::traffic_model_2(), traffic::traffic_model_3()};

    bench::print_header("Table 3 -- Parameter setting of different traffic models");
    std::printf("%-46s %10s %10s %10s\n", "Parameter", "Model 1", "Model 2", "Model 3");
    const auto row = [&](const char* label, auto getter, const char* fmt) {
        std::printf("%-46s", label);
        for (const auto& preset : presets) {
            std::printf(fmt, getter(preset));
        }
        std::printf("\n");
    };
    row("Maximum number of active GPRS sessions, M",
        [](const auto& t) { return t.max_gprs_sessions; }, " %10d");
    row("Average GPRS session duration, 1/mu_GPRS (s)",
        [](const auto& t) { return t.session.mean_session_duration(); }, " %10.1f");
    row("Average arrival rate of data packets (Kbit/s)",
        [](const auto& t) { return t.session.on_rate_kbps(); }, " %10.2f");
    row("Average duration of a packet call, 1/a (s)",
        [](const auto& t) { return t.session.mean_packet_call_duration(); }, " %10.1f");
    row("Average reading time between calls, 1/b (s)",
        [](const auto& t) { return t.session.mean_reading_time; }, " %10.1f");

    std::printf("\nPaper values: M = 50/50/20; 1/mu = 2122.5/2075.6/312.5 s;\n");
    std::printf("rate = 8/32/32 Kbit/s (nominal); 1/a = 12.5/3.1/3.1 s; 1/b = 412/412/3.1 s\n");

    std::printf("\nBurstiness of the equivalent IPPs (not in the paper; index of\n");
    std::printf("dispersion of counts, 1 = Poisson):\n");
    for (const auto& preset : presets) {
        const traffic::Mmpp mmpp = traffic::ipp_as_mmpp(preset.session.ipp());
        std::printf("  %-38s IDC = %8.2f, mean rate = %6.3f pkt/s\n", preset.name.c_str(),
                    mmpp.index_of_dispersion(), mmpp.mean_arrival_rate());
    }
    return 0;
}
