#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "gprsim::gprsim" for configuration "Release"
set_property(TARGET gprsim::gprsim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(gprsim::gprsim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libgprsim.a"
  )

list(APPEND _cmake_import_check_targets gprsim::gprsim )
list(APPEND _cmake_import_check_files_for_gprsim::gprsim "${_IMPORT_PREFIX}/lib/libgprsim.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
