file(REMOVE_RECURSE
  "CMakeFiles/adaptive_pdch.dir/adaptive_pdch.cpp.o"
  "CMakeFiles/adaptive_pdch.dir/adaptive_pdch.cpp.o.d"
  "adaptive_pdch"
  "adaptive_pdch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_pdch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
