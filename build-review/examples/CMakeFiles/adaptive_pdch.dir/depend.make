# Empty dependencies file for adaptive_pdch.
# This may be replaced when dependencies are built.
