file(REMOVE_RECURSE
  "CMakeFiles/gprsim_cli.dir/gprsim_cli.cpp.o"
  "CMakeFiles/gprsim_cli.dir/gprsim_cli.cpp.o.d"
  "gprsim_cli"
  "gprsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gprsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
