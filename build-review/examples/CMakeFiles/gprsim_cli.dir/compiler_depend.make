# Empty compiler generated dependencies file for gprsim_cli.
# This may be replaced when dependencies are built.
