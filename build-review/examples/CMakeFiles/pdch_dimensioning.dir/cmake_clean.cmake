file(REMOVE_RECURSE
  "CMakeFiles/pdch_dimensioning.dir/pdch_dimensioning.cpp.o"
  "CMakeFiles/pdch_dimensioning.dir/pdch_dimensioning.cpp.o.d"
  "pdch_dimensioning"
  "pdch_dimensioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdch_dimensioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
