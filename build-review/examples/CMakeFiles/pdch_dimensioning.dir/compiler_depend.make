# Empty compiler generated dependencies file for pdch_dimensioning.
# This may be replaced when dependencies are built.
