file(REMOVE_RECURSE
  "CMakeFiles/traffic_explorer.dir/traffic_explorer.cpp.o"
  "CMakeFiles/traffic_explorer.dir/traffic_explorer.cpp.o.d"
  "traffic_explorer"
  "traffic_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
