# Empty compiler generated dependencies file for traffic_explorer.
# This may be replaced when dependencies are built.
