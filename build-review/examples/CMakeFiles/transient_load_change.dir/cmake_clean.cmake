file(REMOVE_RECURSE
  "CMakeFiles/transient_load_change.dir/transient_load_change.cpp.o"
  "CMakeFiles/transient_load_change.dir/transient_load_change.cpp.o.d"
  "transient_load_change"
  "transient_load_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_load_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
