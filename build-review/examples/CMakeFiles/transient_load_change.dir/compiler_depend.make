# Empty compiler generated dependencies file for transient_load_change.
# This may be replaced when dependencies are built.
