
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/campaign/json.cpp" "src/CMakeFiles/gprsim.dir/campaign/json.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/campaign/json.cpp.o.d"
  "/root/repo/src/campaign/runner.cpp" "src/CMakeFiles/gprsim.dir/campaign/runner.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/campaign/runner.cpp.o.d"
  "/root/repo/src/campaign/sink.cpp" "src/CMakeFiles/gprsim.dir/campaign/sink.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/campaign/sink.cpp.o.d"
  "/root/repo/src/campaign/spec.cpp" "src/CMakeFiles/gprsim.dir/campaign/spec.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/campaign/spec.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/gprsim.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/core/adaptive.cpp" "src/CMakeFiles/gprsim.dir/core/adaptive.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/core/adaptive.cpp.o.d"
  "/root/repo/src/core/coding_scheme.cpp" "src/CMakeFiles/gprsim.dir/core/coding_scheme.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/core/coding_scheme.cpp.o.d"
  "/root/repo/src/core/generator.cpp" "src/CMakeFiles/gprsim.dir/core/generator.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/core/generator.cpp.o.d"
  "/root/repo/src/core/handover.cpp" "src/CMakeFiles/gprsim.dir/core/handover.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/core/handover.cpp.o.d"
  "/root/repo/src/core/initial_guess.cpp" "src/CMakeFiles/gprsim.dir/core/initial_guess.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/core/initial_guess.cpp.o.d"
  "/root/repo/src/core/measures.cpp" "src/CMakeFiles/gprsim.dir/core/measures.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/core/measures.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/CMakeFiles/gprsim.dir/core/model.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/core/model.cpp.o.d"
  "/root/repo/src/core/parameters.cpp" "src/CMakeFiles/gprsim.dir/core/parameters.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/core/parameters.cpp.o.d"
  "/root/repo/src/core/state_space.cpp" "src/CMakeFiles/gprsim.dir/core/state_space.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/core/state_space.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/CMakeFiles/gprsim.dir/core/sweep.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/core/sweep.cpp.o.d"
  "/root/repo/src/core/transitions.cpp" "src/CMakeFiles/gprsim.dir/core/transitions.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/core/transitions.cpp.o.d"
  "/root/repo/src/ctmc/birth_death.cpp" "src/CMakeFiles/gprsim.dir/ctmc/birth_death.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/ctmc/birth_death.cpp.o.d"
  "/root/repo/src/ctmc/engine.cpp" "src/CMakeFiles/gprsim.dir/ctmc/engine.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/ctmc/engine.cpp.o.d"
  "/root/repo/src/ctmc/gth.cpp" "src/CMakeFiles/gprsim.dir/ctmc/gth.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/ctmc/gth.cpp.o.d"
  "/root/repo/src/ctmc/sparse_matrix.cpp" "src/CMakeFiles/gprsim.dir/ctmc/sparse_matrix.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/ctmc/sparse_matrix.cpp.o.d"
  "/root/repo/src/ctmc/uniformization.cpp" "src/CMakeFiles/gprsim.dir/ctmc/uniformization.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/ctmc/uniformization.cpp.o.d"
  "/root/repo/src/des/random.cpp" "src/CMakeFiles/gprsim.dir/des/random.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/des/random.cpp.o.d"
  "/root/repo/src/des/simulation.cpp" "src/CMakeFiles/gprsim.dir/des/simulation.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/des/simulation.cpp.o.d"
  "/root/repo/src/des/statistics.cpp" "src/CMakeFiles/gprsim.dir/des/statistics.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/des/statistics.cpp.o.d"
  "/root/repo/src/eval/backends.cpp" "src/CMakeFiles/gprsim.dir/eval/backends.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/eval/backends.cpp.o.d"
  "/root/repo/src/eval/evaluator.cpp" "src/CMakeFiles/gprsim.dir/eval/evaluator.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/eval/evaluator.cpp.o.d"
  "/root/repo/src/eval/registry.cpp" "src/CMakeFiles/gprsim.dir/eval/registry.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/eval/registry.cpp.o.d"
  "/root/repo/src/queueing/erlang.cpp" "src/CMakeFiles/gprsim.dir/queueing/erlang.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/queueing/erlang.cpp.o.d"
  "/root/repo/src/queueing/handover.cpp" "src/CMakeFiles/gprsim.dir/queueing/handover.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/queueing/handover.cpp.o.d"
  "/root/repo/src/queueing/mm1k.cpp" "src/CMakeFiles/gprsim.dir/queueing/mm1k.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/queueing/mm1k.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/gprsim.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/gprsim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/tcp.cpp" "src/CMakeFiles/gprsim.dir/sim/tcp.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/sim/tcp.cpp.o.d"
  "/root/repo/src/traffic/fitting.cpp" "src/CMakeFiles/gprsim.dir/traffic/fitting.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/traffic/fitting.cpp.o.d"
  "/root/repo/src/traffic/ipp.cpp" "src/CMakeFiles/gprsim.dir/traffic/ipp.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/traffic/ipp.cpp.o.d"
  "/root/repo/src/traffic/mmpp.cpp" "src/CMakeFiles/gprsim.dir/traffic/mmpp.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/traffic/mmpp.cpp.o.d"
  "/root/repo/src/traffic/threegpp.cpp" "src/CMakeFiles/gprsim.dir/traffic/threegpp.cpp.o" "gcc" "src/CMakeFiles/gprsim.dir/traffic/threegpp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
