file(REMOVE_RECURSE
  "libgprsim.a"
)
