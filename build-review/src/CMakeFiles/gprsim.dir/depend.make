# Empty dependencies file for gprsim.
# This may be replaced when dependencies are built.
