
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/campaign/runner_test.cpp" "tests/CMakeFiles/gprsim_campaign_tests.dir/campaign/runner_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_campaign_tests.dir/campaign/runner_test.cpp.o.d"
  "/root/repo/tests/campaign/sink_test.cpp" "tests/CMakeFiles/gprsim_campaign_tests.dir/campaign/sink_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_campaign_tests.dir/campaign/sink_test.cpp.o.d"
  "/root/repo/tests/campaign/spec_test.cpp" "tests/CMakeFiles/gprsim_campaign_tests.dir/campaign/spec_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_campaign_tests.dir/campaign/spec_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/gprsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
