file(REMOVE_RECURSE
  "CMakeFiles/gprsim_campaign_tests.dir/campaign/runner_test.cpp.o"
  "CMakeFiles/gprsim_campaign_tests.dir/campaign/runner_test.cpp.o.d"
  "CMakeFiles/gprsim_campaign_tests.dir/campaign/sink_test.cpp.o"
  "CMakeFiles/gprsim_campaign_tests.dir/campaign/sink_test.cpp.o.d"
  "CMakeFiles/gprsim_campaign_tests.dir/campaign/spec_test.cpp.o"
  "CMakeFiles/gprsim_campaign_tests.dir/campaign/spec_test.cpp.o.d"
  "gprsim_campaign_tests"
  "gprsim_campaign_tests.pdb"
  "gprsim_campaign_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gprsim_campaign_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
