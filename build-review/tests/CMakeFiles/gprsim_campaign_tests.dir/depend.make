# Empty dependencies file for gprsim_campaign_tests.
# This may be replaced when dependencies are built.
