file(REMOVE_RECURSE
  "CMakeFiles/gprsim_common_tests.dir/common/thread_pool_test.cpp.o"
  "CMakeFiles/gprsim_common_tests.dir/common/thread_pool_test.cpp.o.d"
  "gprsim_common_tests"
  "gprsim_common_tests.pdb"
  "gprsim_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gprsim_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
