# Empty compiler generated dependencies file for gprsim_common_tests.
# This may be replaced when dependencies are built.
