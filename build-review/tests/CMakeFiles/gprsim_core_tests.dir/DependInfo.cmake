
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/adaptive_test.cpp" "tests/CMakeFiles/gprsim_core_tests.dir/core/adaptive_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_core_tests.dir/core/adaptive_test.cpp.o.d"
  "/root/repo/tests/core/block_error_test.cpp" "tests/CMakeFiles/gprsim_core_tests.dir/core/block_error_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_core_tests.dir/core/block_error_test.cpp.o.d"
  "/root/repo/tests/core/coding_scheme_test.cpp" "tests/CMakeFiles/gprsim_core_tests.dir/core/coding_scheme_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_core_tests.dir/core/coding_scheme_test.cpp.o.d"
  "/root/repo/tests/core/generator_test.cpp" "tests/CMakeFiles/gprsim_core_tests.dir/core/generator_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_core_tests.dir/core/generator_test.cpp.o.d"
  "/root/repo/tests/core/initial_guess_test.cpp" "tests/CMakeFiles/gprsim_core_tests.dir/core/initial_guess_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_core_tests.dir/core/initial_guess_test.cpp.o.d"
  "/root/repo/tests/core/model_test.cpp" "tests/CMakeFiles/gprsim_core_tests.dir/core/model_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_core_tests.dir/core/model_test.cpp.o.d"
  "/root/repo/tests/core/parameters_test.cpp" "tests/CMakeFiles/gprsim_core_tests.dir/core/parameters_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_core_tests.dir/core/parameters_test.cpp.o.d"
  "/root/repo/tests/core/properties_test.cpp" "tests/CMakeFiles/gprsim_core_tests.dir/core/properties_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_core_tests.dir/core/properties_test.cpp.o.d"
  "/root/repo/tests/core/state_space_test.cpp" "tests/CMakeFiles/gprsim_core_tests.dir/core/state_space_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_core_tests.dir/core/state_space_test.cpp.o.d"
  "/root/repo/tests/core/sweep_parallel_test.cpp" "tests/CMakeFiles/gprsim_core_tests.dir/core/sweep_parallel_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_core_tests.dir/core/sweep_parallel_test.cpp.o.d"
  "/root/repo/tests/core/sweep_test.cpp" "tests/CMakeFiles/gprsim_core_tests.dir/core/sweep_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_core_tests.dir/core/sweep_test.cpp.o.d"
  "/root/repo/tests/core/transitions_property_test.cpp" "tests/CMakeFiles/gprsim_core_tests.dir/core/transitions_property_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_core_tests.dir/core/transitions_property_test.cpp.o.d"
  "/root/repo/tests/core/transitions_test.cpp" "tests/CMakeFiles/gprsim_core_tests.dir/core/transitions_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_core_tests.dir/core/transitions_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/gprsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
