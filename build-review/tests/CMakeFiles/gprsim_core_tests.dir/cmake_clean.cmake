file(REMOVE_RECURSE
  "CMakeFiles/gprsim_core_tests.dir/core/adaptive_test.cpp.o"
  "CMakeFiles/gprsim_core_tests.dir/core/adaptive_test.cpp.o.d"
  "CMakeFiles/gprsim_core_tests.dir/core/block_error_test.cpp.o"
  "CMakeFiles/gprsim_core_tests.dir/core/block_error_test.cpp.o.d"
  "CMakeFiles/gprsim_core_tests.dir/core/coding_scheme_test.cpp.o"
  "CMakeFiles/gprsim_core_tests.dir/core/coding_scheme_test.cpp.o.d"
  "CMakeFiles/gprsim_core_tests.dir/core/generator_test.cpp.o"
  "CMakeFiles/gprsim_core_tests.dir/core/generator_test.cpp.o.d"
  "CMakeFiles/gprsim_core_tests.dir/core/initial_guess_test.cpp.o"
  "CMakeFiles/gprsim_core_tests.dir/core/initial_guess_test.cpp.o.d"
  "CMakeFiles/gprsim_core_tests.dir/core/model_test.cpp.o"
  "CMakeFiles/gprsim_core_tests.dir/core/model_test.cpp.o.d"
  "CMakeFiles/gprsim_core_tests.dir/core/parameters_test.cpp.o"
  "CMakeFiles/gprsim_core_tests.dir/core/parameters_test.cpp.o.d"
  "CMakeFiles/gprsim_core_tests.dir/core/properties_test.cpp.o"
  "CMakeFiles/gprsim_core_tests.dir/core/properties_test.cpp.o.d"
  "CMakeFiles/gprsim_core_tests.dir/core/state_space_test.cpp.o"
  "CMakeFiles/gprsim_core_tests.dir/core/state_space_test.cpp.o.d"
  "CMakeFiles/gprsim_core_tests.dir/core/sweep_parallel_test.cpp.o"
  "CMakeFiles/gprsim_core_tests.dir/core/sweep_parallel_test.cpp.o.d"
  "CMakeFiles/gprsim_core_tests.dir/core/sweep_test.cpp.o"
  "CMakeFiles/gprsim_core_tests.dir/core/sweep_test.cpp.o.d"
  "CMakeFiles/gprsim_core_tests.dir/core/transitions_property_test.cpp.o"
  "CMakeFiles/gprsim_core_tests.dir/core/transitions_property_test.cpp.o.d"
  "CMakeFiles/gprsim_core_tests.dir/core/transitions_test.cpp.o"
  "CMakeFiles/gprsim_core_tests.dir/core/transitions_test.cpp.o.d"
  "gprsim_core_tests"
  "gprsim_core_tests.pdb"
  "gprsim_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gprsim_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
