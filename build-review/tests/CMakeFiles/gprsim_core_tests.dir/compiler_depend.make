# Empty compiler generated dependencies file for gprsim_core_tests.
# This may be replaced when dependencies are built.
