
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ctmc/birth_death_test.cpp" "tests/CMakeFiles/gprsim_ctmc_tests.dir/ctmc/birth_death_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_ctmc_tests.dir/ctmc/birth_death_test.cpp.o.d"
  "/root/repo/tests/ctmc/engine_test.cpp" "tests/CMakeFiles/gprsim_ctmc_tests.dir/ctmc/engine_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_ctmc_tests.dir/ctmc/engine_test.cpp.o.d"
  "/root/repo/tests/ctmc/gth_test.cpp" "tests/CMakeFiles/gprsim_ctmc_tests.dir/ctmc/gth_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_ctmc_tests.dir/ctmc/gth_test.cpp.o.d"
  "/root/repo/tests/ctmc/solver_test.cpp" "tests/CMakeFiles/gprsim_ctmc_tests.dir/ctmc/solver_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_ctmc_tests.dir/ctmc/solver_test.cpp.o.d"
  "/root/repo/tests/ctmc/sparse_matrix_test.cpp" "tests/CMakeFiles/gprsim_ctmc_tests.dir/ctmc/sparse_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_ctmc_tests.dir/ctmc/sparse_matrix_test.cpp.o.d"
  "/root/repo/tests/ctmc/uniformization_test.cpp" "tests/CMakeFiles/gprsim_ctmc_tests.dir/ctmc/uniformization_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_ctmc_tests.dir/ctmc/uniformization_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/gprsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
