file(REMOVE_RECURSE
  "CMakeFiles/gprsim_ctmc_tests.dir/ctmc/birth_death_test.cpp.o"
  "CMakeFiles/gprsim_ctmc_tests.dir/ctmc/birth_death_test.cpp.o.d"
  "CMakeFiles/gprsim_ctmc_tests.dir/ctmc/engine_test.cpp.o"
  "CMakeFiles/gprsim_ctmc_tests.dir/ctmc/engine_test.cpp.o.d"
  "CMakeFiles/gprsim_ctmc_tests.dir/ctmc/gth_test.cpp.o"
  "CMakeFiles/gprsim_ctmc_tests.dir/ctmc/gth_test.cpp.o.d"
  "CMakeFiles/gprsim_ctmc_tests.dir/ctmc/solver_test.cpp.o"
  "CMakeFiles/gprsim_ctmc_tests.dir/ctmc/solver_test.cpp.o.d"
  "CMakeFiles/gprsim_ctmc_tests.dir/ctmc/sparse_matrix_test.cpp.o"
  "CMakeFiles/gprsim_ctmc_tests.dir/ctmc/sparse_matrix_test.cpp.o.d"
  "CMakeFiles/gprsim_ctmc_tests.dir/ctmc/uniformization_test.cpp.o"
  "CMakeFiles/gprsim_ctmc_tests.dir/ctmc/uniformization_test.cpp.o.d"
  "gprsim_ctmc_tests"
  "gprsim_ctmc_tests.pdb"
  "gprsim_ctmc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gprsim_ctmc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
