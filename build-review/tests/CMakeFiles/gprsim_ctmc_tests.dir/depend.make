# Empty dependencies file for gprsim_ctmc_tests.
# This may be replaced when dependencies are built.
