file(REMOVE_RECURSE
  "CMakeFiles/gprsim_des_tests.dir/des/random_test.cpp.o"
  "CMakeFiles/gprsim_des_tests.dir/des/random_test.cpp.o.d"
  "CMakeFiles/gprsim_des_tests.dir/des/simulation_edge_test.cpp.o"
  "CMakeFiles/gprsim_des_tests.dir/des/simulation_edge_test.cpp.o.d"
  "CMakeFiles/gprsim_des_tests.dir/des/simulation_test.cpp.o"
  "CMakeFiles/gprsim_des_tests.dir/des/simulation_test.cpp.o.d"
  "CMakeFiles/gprsim_des_tests.dir/des/statistics_test.cpp.o"
  "CMakeFiles/gprsim_des_tests.dir/des/statistics_test.cpp.o.d"
  "gprsim_des_tests"
  "gprsim_des_tests.pdb"
  "gprsim_des_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gprsim_des_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
