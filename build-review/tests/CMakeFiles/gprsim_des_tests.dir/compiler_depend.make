# Empty compiler generated dependencies file for gprsim_des_tests.
# This may be replaced when dependencies are built.
