file(REMOVE_RECURSE
  "CMakeFiles/gprsim_eval_tests.dir/eval/backends_test.cpp.o"
  "CMakeFiles/gprsim_eval_tests.dir/eval/backends_test.cpp.o.d"
  "CMakeFiles/gprsim_eval_tests.dir/eval/registry_test.cpp.o"
  "CMakeFiles/gprsim_eval_tests.dir/eval/registry_test.cpp.o.d"
  "gprsim_eval_tests"
  "gprsim_eval_tests.pdb"
  "gprsim_eval_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gprsim_eval_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
