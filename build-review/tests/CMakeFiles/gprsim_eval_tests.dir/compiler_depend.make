# Empty compiler generated dependencies file for gprsim_eval_tests.
# This may be replaced when dependencies are built.
