
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/matrix_free_path_test.cpp" "tests/CMakeFiles/gprsim_integration_tests.dir/integration/matrix_free_path_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_integration_tests.dir/integration/matrix_free_path_test.cpp.o.d"
  "/root/repo/tests/integration/model_vs_simulator_test.cpp" "tests/CMakeFiles/gprsim_integration_tests.dir/integration/model_vs_simulator_test.cpp.o" "gcc" "tests/CMakeFiles/gprsim_integration_tests.dir/integration/model_vs_simulator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/gprsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
