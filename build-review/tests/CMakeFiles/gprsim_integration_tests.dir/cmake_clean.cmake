file(REMOVE_RECURSE
  "CMakeFiles/gprsim_integration_tests.dir/integration/matrix_free_path_test.cpp.o"
  "CMakeFiles/gprsim_integration_tests.dir/integration/matrix_free_path_test.cpp.o.d"
  "CMakeFiles/gprsim_integration_tests.dir/integration/model_vs_simulator_test.cpp.o"
  "CMakeFiles/gprsim_integration_tests.dir/integration/model_vs_simulator_test.cpp.o.d"
  "gprsim_integration_tests"
  "gprsim_integration_tests.pdb"
  "gprsim_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gprsim_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
