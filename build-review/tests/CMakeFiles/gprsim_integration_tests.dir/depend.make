# Empty dependencies file for gprsim_integration_tests.
# This may be replaced when dependencies are built.
