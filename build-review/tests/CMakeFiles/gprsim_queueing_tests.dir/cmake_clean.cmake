file(REMOVE_RECURSE
  "CMakeFiles/gprsim_queueing_tests.dir/queueing/erlang_test.cpp.o"
  "CMakeFiles/gprsim_queueing_tests.dir/queueing/erlang_test.cpp.o.d"
  "CMakeFiles/gprsim_queueing_tests.dir/queueing/handover_test.cpp.o"
  "CMakeFiles/gprsim_queueing_tests.dir/queueing/handover_test.cpp.o.d"
  "CMakeFiles/gprsim_queueing_tests.dir/queueing/mm1k_test.cpp.o"
  "CMakeFiles/gprsim_queueing_tests.dir/queueing/mm1k_test.cpp.o.d"
  "gprsim_queueing_tests"
  "gprsim_queueing_tests.pdb"
  "gprsim_queueing_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gprsim_queueing_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
