# Empty dependencies file for gprsim_queueing_tests.
# This may be replaced when dependencies are built.
