file(REMOVE_RECURSE
  "CMakeFiles/gprsim_sim_tests.dir/sim/experiment_test.cpp.o"
  "CMakeFiles/gprsim_sim_tests.dir/sim/experiment_test.cpp.o.d"
  "CMakeFiles/gprsim_sim_tests.dir/sim/failure_injection_test.cpp.o"
  "CMakeFiles/gprsim_sim_tests.dir/sim/failure_injection_test.cpp.o.d"
  "CMakeFiles/gprsim_sim_tests.dir/sim/simulator_test.cpp.o"
  "CMakeFiles/gprsim_sim_tests.dir/sim/simulator_test.cpp.o.d"
  "CMakeFiles/gprsim_sim_tests.dir/sim/tcp_test.cpp.o"
  "CMakeFiles/gprsim_sim_tests.dir/sim/tcp_test.cpp.o.d"
  "gprsim_sim_tests"
  "gprsim_sim_tests.pdb"
  "gprsim_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gprsim_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
