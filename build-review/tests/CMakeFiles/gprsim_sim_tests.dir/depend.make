# Empty dependencies file for gprsim_sim_tests.
# This may be replaced when dependencies are built.
