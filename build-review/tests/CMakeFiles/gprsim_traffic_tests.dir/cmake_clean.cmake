file(REMOVE_RECURSE
  "CMakeFiles/gprsim_traffic_tests.dir/traffic/fitting_test.cpp.o"
  "CMakeFiles/gprsim_traffic_tests.dir/traffic/fitting_test.cpp.o.d"
  "CMakeFiles/gprsim_traffic_tests.dir/traffic/ipp_test.cpp.o"
  "CMakeFiles/gprsim_traffic_tests.dir/traffic/ipp_test.cpp.o.d"
  "CMakeFiles/gprsim_traffic_tests.dir/traffic/mmpp_test.cpp.o"
  "CMakeFiles/gprsim_traffic_tests.dir/traffic/mmpp_test.cpp.o.d"
  "CMakeFiles/gprsim_traffic_tests.dir/traffic/threegpp_test.cpp.o"
  "CMakeFiles/gprsim_traffic_tests.dir/traffic/threegpp_test.cpp.o.d"
  "gprsim_traffic_tests"
  "gprsim_traffic_tests.pdb"
  "gprsim_traffic_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gprsim_traffic_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
