# Empty dependencies file for gprsim_traffic_tests.
# This may be replaced when dependencies are built.
