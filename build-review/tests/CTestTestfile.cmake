# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/gprsim_campaign_tests[1]_include.cmake")
include("/root/repo/build-review/tests/gprsim_common_tests[1]_include.cmake")
include("/root/repo/build-review/tests/gprsim_ctmc_tests[1]_include.cmake")
include("/root/repo/build-review/tests/gprsim_eval_tests[1]_include.cmake")
include("/root/repo/build-review/tests/gprsim_core_tests[1]_include.cmake")
include("/root/repo/build-review/tests/gprsim_des_tests[1]_include.cmake")
include("/root/repo/build-review/tests/gprsim_queueing_tests[1]_include.cmake")
include("/root/repo/build-review/tests/gprsim_sim_tests[1]_include.cmake")
include("/root/repo/build-review/tests/gprsim_traffic_tests[1]_include.cmake")
include("/root/repo/build-review/tests/gprsim_integration_tests[1]_include.cmake")
