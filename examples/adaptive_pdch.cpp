// Adaptive PDCH management over a daily load profile (extension; the
// paper's future-work direction [14]).
//
// A controller re-evaluates the PDCH reservation as the load estimate
// changes through the day, holding packet loss and delay targets while
// respecting a voice-blocking constraint.
//
//   $ ./adaptive_pdch [max_plp] [max_delay_s]
#include <cstdio>
#include <cstdlib>

#include "core/adaptive.hpp"
#include "traffic/threegpp.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    core::QosTargets targets;
    targets.max_packet_loss = argc > 1 ? std::atof(argv[1]) : 2e-2;
    targets.max_queueing_delay = argc > 2 ? std::atof(argv[2]) : 3.0;
    targets.max_gsm_blocking = 0.5;

    std::printf("Adaptive PDCH management (traffic model 3, 5%% GPRS users)\n");
    std::printf("targets: PLP <= %.1e, QD <= %.2f s, voice blocking <= %.2f\n\n",
                targets.max_packet_loss, targets.max_queueing_delay,
                targets.max_gsm_blocking);

    struct Period {
        const char* label;
        double calls_per_second;
    };
    const Period day[] = {
        {"03:00 night", 0.05}, {"07:00 morning", 0.25}, {"10:00 office", 0.45},
        {"13:00 lunch", 0.60}, {"17:00 rush", 0.80},    {"21:00 evening", 0.40},
    };

    std::printf("%-16s %9s  %6s  %10s  %10s  %10s\n", "period", "calls/s", "PDCH", "PLP",
                "QD [s]", "voice blk");
    for (const Period& period : day) {
        core::Parameters p =
            core::Parameters::with_traffic_model(traffic::traffic_model_3());
        p.call_arrival_rate = period.calls_per_second;
        const core::AdaptationResult r = core::recommend_reservation(p, targets, 6);
        std::printf("%-16s %9.2f  %4d%s  %10.2e  %10.3f  %10.2e\n", period.label,
                    period.calls_per_second, r.reserved_pdch, r.feasible ? "  " : " !",
                    r.measures.packet_loss_probability, r.measures.queueing_delay,
                    r.measures.gsm_blocking);
    }
    std::printf("\n('!' marks best-effort recommendations where the targets are\n");
    std::printf("unreachable within the search range — the controller then holds the\n");
    std::printf("reservation with the lowest achievable packet loss.)\n");
    return 0;
}
