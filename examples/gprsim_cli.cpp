// gprsim command-line front end: analyze, simulate, or dimension a cell
// without writing C++.
//
//   gprsim_cli analyze   [options]   — solve the Markov model, print measures
//   gprsim_cli simulate  [options]   — run the network simulator (95% CIs)
//   gprsim_cli eval      [options]   — one-shot ScenarioQuery through any
//                                      registered backend (--backend=<name>)
//   gprsim_cli dimension [options]   — recommend a PDCH reservation
//   gprsim_cli campaign <spec.json> [options]
//                                    — run a declarative scenario campaign
//   gprsim_cli campaign --list-backends / eval --list-backends
//                                    — print every registered eval backend
//   gprsim_cli fit-trace <arrivals.trace>
//                                    — fit an IPP/3GPP traffic model to an
//                                      arrival-timestamp trace (JSON out);
//                                      the model a campaign's
//                                      "traffic_model": "trace:<file>" uses
//
// Common options:
//   --rate=<calls/s>      combined GSM+GPRS arrival rate   (default 0.5)
//   --gprs=<percent>      share of GPRS users              (default 5)
//   --pdch=<n>            reserved PDCHs                   (default 1)
//   --traffic=<1|2|3>     Table 3 traffic model            (default 1)
//   --channels=<n>        physical channels N              (default 20)
//   --buffer=<k>          BSC buffer K                     (default 100)
//   --m=<n>               GPRS session cap M               (traffic-model default)
//   --eta=<0..1>          flow-control threshold           (default 0.7)
//   --bler=<0..1>         RLC block error rate             (default 0)
//   --threads=<n>         solver threads; 0 = all cores    (default 1)
// simulate:
//   --seed=<n> --batches=<n> --batch-seconds=<s> --no-tcp
// eval:
//   --backend=<name>      registered backend (default ctmc)
//   --replications=<n> --seed=<n> --tolerance=<t>
//   --fp-tolerance=<t> --fp-damping=<0..1] --fp-max-iterations=<n>
//                         fixed-point backend knobs
//   --ode-rtol=<t> --ode-atol=<t> --ode-max-steps=<n>
//                         fluid backend knobs
//   --net-cells=<WxH>     lattice shape for network-fp / network-des
//                         (e.g. 2x2; default 2x2)
//   --net-topology=<t>    grid4 | grid8 | hex | clique    (default grid4)
//   --net-no-wrap         hard lattice edge instead of a torus
//   --net-reuse=<k>       frequency-reuse factor           (default 1)
//   --net-ra-block=<b>    routing-area tile edge, 0 = one RA
//   --net-speed=<km/h>    user speed                       (default 3)
//   --net-drift=<0..1)    eastward mobility bias           (default 0)
//   --net-inner=<name>    network-fp per-cell backend      (default ctmc)
//   --net-tolerance=<t> --net-damping=<0..1] --net-max-outer=<n>
//                         network-fp outer fixed-point knobs
// dimension:
//   --max-plp=<p> --max-delay=<s> --max-voice-blocking=<p>
// campaign:
//   --threads=<n>         task-sharding width (output is identical at any)
//   --cold                disable warm-start caching (baseline comparison)
//   --sequential          dispatch one grid per (backend, variant) instead
//                         of the merged batched task set (A/B baseline;
//                         the point table / CSV is bitwise identical
//                         either way — only the summary's wall clock and
//                         batch-wave accounting differ)
//   --replications=<n>    override the spec's replication count
//   --solver-method=<m>   override the spec's chain-solve iteration scheme
//                         (gauss_seidel, red_black_gauss_seidel, jacobi,
//                         ..., or auto for the engine's cost model)
//   --csv=<path>          write the per-point table as CSV
//   --out=<path>          write points + summary as JSON
//   --quiet               suppress per-solve progress on stderr
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/runner.hpp"
#include "campaign/sink.hpp"
#include "core/adaptive.hpp"
#include "core/model.hpp"
#include "eval/registry.hpp"
#include "service/trace.hpp"
#include "sim/simulator.hpp"
#include "traffic/threegpp.hpp"

namespace {

using namespace gprsim;

double flag(int argc, char** argv, const char* name, double fallback) {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 2; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
            return std::atof(argv[i] + prefix.size());
        }
    }
    return fallback;
}

bool has_flag(int argc, char** argv, const char* name) {
    const std::string full = std::string("--") + name;
    for (int i = 2; i < argc; ++i) {
        if (full == argv[i]) {
            return true;
        }
    }
    return false;
}

std::string string_flag(int argc, char** argv, const char* name,
                        const std::string& fallback = "") {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 2; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
            return argv[i] + prefix.size();
        }
    }
    return fallback;
}

core::Parameters parameters_from_flags(int argc, char** argv) {
    const int model_id = static_cast<int>(flag(argc, argv, "traffic", 1));
    traffic::TrafficModelPreset preset = traffic::traffic_model_1();
    if (model_id == 2) {
        preset = traffic::traffic_model_2();
    } else if (model_id == 3) {
        preset = traffic::traffic_model_3();
    }
    core::Parameters p = core::Parameters::with_traffic_model(preset);
    p.call_arrival_rate = flag(argc, argv, "rate", 0.5);
    p.gprs_fraction = flag(argc, argv, "gprs", 5.0) / 100.0;
    p.reserved_pdch = static_cast<int>(flag(argc, argv, "pdch", 1));
    p.total_channels = static_cast<int>(flag(argc, argv, "channels", 20));
    p.buffer_capacity = static_cast<int>(flag(argc, argv, "buffer", 100));
    p.max_gprs_sessions = static_cast<int>(
        flag(argc, argv, "m", static_cast<double>(p.max_gprs_sessions)));
    p.flow_control_threshold = flag(argc, argv, "eta", 0.7);
    p.block_error_rate = flag(argc, argv, "bler", 0.0);
    p.validate();
    return p;
}

int cmd_analyze(int argc, char** argv) {
    core::GprsModel model(parameters_from_flags(argc, argv));
    ctmc::SolveOptions options;
    options.tolerance = 1e-9;
    // --threads=N runs the red-black parallel engine; 1 keeps the serial
    // seed path, 0 uses every hardware thread.
    options.num_threads = static_cast<int>(flag(argc, argv, "threads", 1));
    const auto& solve = model.solve(options);
    const core::Measures m = model.measures();
    std::printf("states %lld, %lld sweeps, %.1f s (%d threads)\n",
                static_cast<long long>(model.space().size()),
                static_cast<long long>(solve.iterations), solve.seconds,
                solve.threads_used);
    std::printf("CDT %.4f PDCH | PLP %.3e | QD %.3f s | ATU %.3f kbit/s\n",
                m.carried_data_traffic, m.packet_loss_probability, m.queueing_delay,
                m.throughput_per_user_kbps);
    std::printf("CVT %.4f | AGS %.4f | GSM blocking %.3e | GPRS blocking %.3e\n",
                m.carried_voice_traffic, m.average_gprs_sessions, m.gsm_blocking,
                m.gprs_blocking);
    return 0;
}

int cmd_simulate(int argc, char** argv) {
    sim::SimulationConfig config;
    config.cell = parameters_from_flags(argc, argv);
    config.seed = static_cast<std::uint64_t>(flag(argc, argv, "seed", 1));
    config.batch_count = static_cast<int>(flag(argc, argv, "batches", 15));
    config.batch_duration = flag(argc, argv, "batch-seconds", 2000.0);
    config.warmup_time = config.batch_duration;
    config.tcp_enabled = !has_flag(argc, argv, "no-tcp");
    const sim::SimulationResults r = sim::NetworkSimulator(config).run();
    const auto row = [](const char* name, const sim::MetricEstimate& e) {
        std::printf("%-28s %10.4f +- %.4f\n", name, e.mean, e.half_width);
    };
    row("CDT [PDCH]", r.carried_data_traffic);
    row("PLP", r.packet_loss_probability);
    row("QD [s]", r.queueing_delay);
    row("ATU [kbit/s]", r.throughput_per_user_kbps);
    row("CVT [TCH]", r.carried_voice_traffic);
    row("AGS", r.average_gprs_sessions);
    row("GSM blocking", r.gsm_blocking);
    row("GPRS blocking", r.gprs_blocking);
    std::printf("%.2e events in %.1f s wall\n", static_cast<double>(r.events_executed),
                r.wall_seconds);
    return 0;
}

int list_backends() {
    std::printf("registered eval backends:\n");
    for (const eval::BackendInfo& info : eval::BackendRegistry::global().list()) {
        std::printf("  %-12s %s\n", info.name.c_str(), info.description.c_str());
    }
    return 0;
}

int cmd_eval(int argc, char** argv) {
    if (has_flag(argc, argv, "list-backends")) {
        return list_backends();
    }
    const std::string backend_name = string_flag(argc, argv, "backend", "ctmc");
    auto backend = eval::BackendRegistry::global().find(backend_name);
    if (!backend.ok()) {
        std::fprintf(stderr, "error: %s\n", backend.error().to_string().c_str());
        return 1;
    }

    eval::ScenarioQuery query;
    query.parameters = parameters_from_flags(argc, argv);
    query.call_arrival_rate = query.parameters.call_arrival_rate;
    query.solver.tolerance = flag(argc, argv, "tolerance", 1e-9);
    query.simulation.replications =
        static_cast<int>(flag(argc, argv, "replications", 4));
    query.simulation.seed = static_cast<std::uint64_t>(flag(argc, argv, "seed", 1));
    query.approx.fp_tolerance =
        flag(argc, argv, "fp-tolerance", query.approx.fp_tolerance);
    query.approx.fp_damping = flag(argc, argv, "fp-damping", query.approx.fp_damping);
    query.approx.fp_max_iterations = static_cast<int>(flag(
        argc, argv, "fp-max-iterations",
        static_cast<double>(query.approx.fp_max_iterations)));
    query.approx.ode_rel_tol = flag(argc, argv, "ode-rtol", query.approx.ode_rel_tol);
    query.approx.ode_abs_tol = flag(argc, argv, "ode-atol", query.approx.ode_abs_tol);
    query.approx.ode_max_steps = static_cast<long long>(flag(
        argc, argv, "ode-max-steps", static_cast<double>(query.approx.ode_max_steps)));
    if (const std::string shape = string_flag(argc, argv, "net-cells");
        !shape.empty()) {
        const std::size_t x = shape.find('x');
        if (x == std::string::npos) {
            std::fprintf(stderr, "error: --net-cells expects WxH, e.g. 2x2\n");
            return 1;
        }
        query.network.cells_x = std::atoi(shape.c_str());
        query.network.cells_y = std::atoi(shape.c_str() + x + 1);
    }
    query.network.topology =
        string_flag(argc, argv, "net-topology", query.network.topology);
    query.network.wrap = !has_flag(argc, argv, "net-no-wrap");
    query.network.reuse_factor = static_cast<int>(
        flag(argc, argv, "net-reuse", query.network.reuse_factor));
    query.network.ra_block =
        static_cast<int>(flag(argc, argv, "net-ra-block", query.network.ra_block));
    query.network.speed_kmh = flag(argc, argv, "net-speed", query.network.speed_kmh);
    query.network.drift = flag(argc, argv, "net-drift", query.network.drift);
    query.network.inner_backend =
        string_flag(argc, argv, "net-inner", query.network.inner_backend);
    query.network.outer_tolerance =
        flag(argc, argv, "net-tolerance", query.network.outer_tolerance);
    query.network.outer_damping =
        flag(argc, argv, "net-damping", query.network.outer_damping);
    query.network.outer_max_iterations = static_cast<int>(
        flag(argc, argv, "net-max-outer", query.network.outer_max_iterations));

    const common::Result<eval::PointEvaluation> evaluated =
        backend.value()->evaluate(query);
    if (!evaluated.ok()) {
        std::fprintf(stderr, "error: %s\n", evaluated.error().to_string().c_str());
        return 1;
    }
    const eval::PointEvaluation& point = evaluated.value();
    const core::Measures& m = point.measures;
    std::printf("backend %s @ rate %.3f calls/s\n", point.backend.c_str(),
                point.call_arrival_rate);
    std::printf("CDT %.4f PDCH | PLP %.3e | QD %.3f s | ATU %.3f kbit/s\n",
                m.carried_data_traffic, m.packet_loss_probability, m.queueing_delay,
                m.throughput_per_user_kbps);
    std::printf("CVT %.4f | AGS %.4f | GSM blocking %.3e | GPRS blocking %.3e\n",
                m.carried_voice_traffic, m.average_gprs_sessions, m.gsm_blocking,
                m.gprs_blocking);
    if (point.iterations > 0) {
        std::printf("provenance: %lld sweeps, residual %.2e, %.2f s\n", point.iterations,
                    point.residual, point.wall_seconds);
        if (!point.solver_method.empty()) {
            std::printf("  method %s: %s\n", point.solver_method.c_str(),
                        point.solver_reason.c_str());
        }
    } else if (point.has_confidence) {
        std::printf("provenance: %zu replications, CDT +- %.4f, %.2f s\n",
                    point.sim.replications.size(), point.sim.carried_data_traffic.half_width,
                    point.wall_seconds);
    } else {
        std::printf("provenance: closed form, %.4f s\n", point.wall_seconds);
    }
    if (!point.cell_measures.empty()) {
        std::printf("network: %zu cells (aggregate above), RAU rate %.4f /s\n",
                    point.cell_measures.size(), point.rau_rate);
    }
    return 0;
}

int cmd_dimension(int argc, char** argv) {
    core::QosTargets targets;
    targets.max_packet_loss = flag(argc, argv, "max-plp", 1e-2);
    targets.max_queueing_delay = flag(argc, argv, "max-delay", 2.0);
    targets.max_gsm_blocking = flag(argc, argv, "max-voice-blocking", 1.0);
    const core::Parameters p = parameters_from_flags(argc, argv);
    const int max_pdch = std::min(static_cast<int>(flag(argc, argv, "max-pdch", 8)),
                                  p.total_channels - 1);
    const core::AdaptationResult r = core::recommend_reservation(p, targets, max_pdch);
    std::printf("%s reservation: %d PDCH (PLP %.3e, QD %.3f s, voice blocking %.3e)\n",
                r.feasible ? "recommended" : "best-effort (targets unreachable)",
                r.reserved_pdch, r.measures.packet_loss_probability,
                r.measures.queueing_delay, r.measures.gsm_blocking);
    return r.feasible ? 0 : 2;
}

int cmd_campaign(int argc, char** argv) {
    if (has_flag(argc, argv, "list-backends")) {
        return list_backends();
    }
    if (argc < 3 || argv[2][0] == '-') {
        std::fprintf(stderr,
                     "usage: gprsim_cli campaign <spec.json> [options]\n"
                     "       gprsim_cli campaign --list-backends\n");
        return 1;
    }
    const std::string path = argv[2];
    campaign::ScenarioSpec spec;
    try {
        spec = campaign::parse_spec_file(path);
    } catch (const campaign::SpecError& e) {
        std::fprintf(stderr, "error in %s: %s\n", path.c_str(), e.what());
        return 1;
    }
    if (const int replications = static_cast<int>(flag(argc, argv, "replications", 0));
        replications > 0) {
        spec.simulation.replications = replications;
    }

    campaign::CampaignOptions options;
    options.num_threads = static_cast<int>(flag(argc, argv, "threads", 1));
    options.force_cold = has_flag(argc, argv, "cold");
    options.sequential_dispatch = has_flag(argc, argv, "sequential");
    options.solver_method_override = string_flag(argc, argv, "solver-method");
    if (!has_flag(argc, argv, "quiet")) {
        options.solve_progress = [](std::size_t flat, const campaign::CampaignPoint& p) {
            std::fprintf(stderr, "  point %zu: rate %.3f, %lld sweeps%s\n", flat,
                         p.call_arrival_rate, p.iterations,
                         p.warm_parent >= 0 ? " (warm)" : "");
        };
    }

    const campaign::CampaignResult result = campaign::run_campaign(spec, options);

    // Compact per-point table; column set follows the method.
    const bool model = result.points.empty() ? false : result.points.front().has_model;
    const bool sim = result.points.empty() ? false : result.points.front().has_sim;
    for (std::size_t v = 0; v < result.variants.size(); ++v) {
        std::printf("\n--- %s ---\n", result.variants[v].label.c_str());
        std::printf("%8s", "calls/s");
        if (model) {
            std::printf(" | %9s %10s %8s %9s", "CDT", "PLP", "QD [s]", "ATU");
        }
        if (sim) {
            std::printf(" | %9s %9s", "CDT sim", "+-");
        }
        if (model && sim) {
            std::printf(" %9s", "delta");
        }
        std::printf("\n");
        for (std::size_t r = 0; r < result.rates.size(); ++r) {
            const campaign::CampaignPoint& point = result.at(v, r);
            std::printf("%8.3f", point.call_arrival_rate);
            if (model) {
                std::printf(" | %9.4f %10.3e %8.3f %9.4f",
                            point.model.carried_data_traffic,
                            point.model.packet_loss_probability,
                            point.model.queueing_delay,
                            point.model.throughput_per_user_kbps);
            }
            if (sim) {
                std::printf(" | %9.4f %9.4f", point.sim.carried_data_traffic.mean,
                            point.sim.carried_data_traffic.half_width);
            }
            if (model && sim) {
                std::printf(" %+9.4f", point.delta_cdt);
            }
            std::printf("\n");
        }
    }
    campaign::print_campaign_summary(result, stdout);

    bool sinks_ok = true;
    if (const std::string csv = string_flag(argc, argv, "csv"); !csv.empty()) {
        if (campaign::write_campaign_csv(result, csv)) {
            std::printf("wrote %zu points to %s\n", result.points.size(), csv.c_str());
        } else {
            sinks_ok = false;
        }
    }
    if (const std::string json = string_flag(argc, argv, "out"); !json.empty()) {
        if (campaign::write_campaign_json(result, json)) {
            std::printf("wrote campaign JSON to %s\n", json.c_str());
        } else {
            sinks_ok = false;
        }
    }
    return sinks_ok ? 0 : 1;
}

int cmd_fit_trace(int argc, char** argv) {
    if (argc < 3 || argv[2][0] == '-') {
        std::fprintf(stderr, "usage: gprsim_cli fit-trace <arrivals.trace>\n");
        return 1;
    }
    service::TraceIngest ingest;
    const auto fitted = ingest.fit(argv[2]);
    if (!fitted.ok()) {
        std::fprintf(stderr, "error: %s\n", fitted.error().to_string().c_str());
        return 1;
    }
    std::printf("%s\n", service::fitted_traffic_json(fitted.value()).c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: gprsim_cli <analyze|simulate|eval|dimension|campaign"
                     "|fit-trace> [options]\n");
        return 1;
    }
    const std::string command = argv[1];
    try {
        if (command == "analyze") {
            return cmd_analyze(argc, argv);
        }
        if (command == "simulate") {
            return cmd_simulate(argc, argv);
        }
        if (command == "eval") {
            return cmd_eval(argc, argv);
        }
        if (command == "dimension") {
            return cmd_dimension(argc, argv);
        }
        if (command == "campaign") {
            return cmd_campaign(argc, argv);
        }
        if (command == "fit-trace") {
            return cmd_fit_trace(argc, argv);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return 1;
}
