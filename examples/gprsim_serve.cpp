// gprsim_serve: the campaign evaluation daemon.
//
//   gprsim_serve --socket=<path> [options]   serve a unix-domain socket
//   gprsim_serve --stdio                     serve ONE session on stdin/stdout
//
// Options:
//   --workers=<n>     concurrent campaign workers            (default 2)
//   --queue=<n>       admission queue capacity               (default 8)
//   --threads=<n>     slice width; never changes output      (default 1)
//   --store=<n>       warm-store capacity (idle entries)     (default 64)
//
// Protocol, backpressure semantics, and the determinism contract are
// documented in docs/service.md and src/service/protocol.hpp. The --stdio
// mode is what the CI smoke test and tools/serve_client.py --stdio drive;
// socket mode serves many clients concurrently until SIGINT/SIGTERM.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/server.hpp"

namespace {

gprsim::service::Server* g_server = nullptr;

void handle_signal(int) {
    if (g_server != nullptr) {
        g_server->stop();
    }
}

double flag(int argc, char** argv, const char* name, double fallback) {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
            return std::atof(argv[i] + prefix.size());
        }
    }
    return fallback;
}

std::string string_flag(int argc, char** argv, const char* name) {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
            return argv[i] + prefix.size();
        }
    }
    return "";
}

bool has_flag(int argc, char** argv, const char* name) {
    const std::string spelled = std::string("--") + name;
    for (int i = 1; i < argc; ++i) {
        if (spelled == argv[i]) {
            return true;
        }
    }
    return false;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string socket_path = string_flag(argc, argv, "socket");
    const bool stdio = has_flag(argc, argv, "stdio");
    if (socket_path.empty() == !stdio) {
        std::fprintf(stderr,
                     "usage: gprsim_serve --socket=<path> | --stdio "
                     "[--workers=<n>] [--queue=<n>] [--threads=<n>] [--store=<n>]\n");
        return 1;
    }

    gprsim::service::ServiceOptions options;
    options.workers = static_cast<int>(flag(argc, argv, "workers", options.workers));
    options.queue_capacity = static_cast<std::size_t>(
        flag(argc, argv, "queue", static_cast<double>(options.queue_capacity)));
    options.num_threads = static_cast<int>(flag(argc, argv, "threads", options.num_threads));
    options.store_capacity = static_cast<std::size_t>(
        flag(argc, argv, "store", static_cast<double>(options.store_capacity)));

    // A vanished client must surface as a write error, not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    gprsim::service::CampaignService service(options);
    gprsim::service::Server server(service);

    if (stdio) {
        const int status = server.serve_fds(0, 1);
        service.shutdown();
        return status;
    }

    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    const int status = server.serve_unix(socket_path);
    service.shutdown();
    return status;
}
