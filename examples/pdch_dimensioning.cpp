// PDCH dimensioning: the paper's headline use case.
//
// "How many packet data channels should be allocated for GPRS under a given
// amount of traffic in order to guarantee appropriate quality of service?"
//
// Given a traffic mix and QoS targets (maximum packet loss probability and
// maximum queueing delay), finds the smallest number of reserved PDCHs that
// meets both, scanning the arrival-rate range of interest.
//
//   $ ./pdch_dimensioning [max_plp] [max_delay_s] [gprs_percent]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/model.hpp"
#include "core/sweep.hpp"
#include "traffic/threegpp.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const double max_plp = argc > 1 ? std::atof(argv[1]) : 1e-2;
    const double max_delay = argc > 2 ? std::atof(argv[2]) : 2.0;
    const double gprs_percent = argc > 3 ? std::atof(argv[3]) : 5.0;

    std::printf("PDCH dimensioning for traffic model 3 (heavy WWW load)\n");
    std::printf("QoS targets: PLP <= %.1e, queueing delay <= %.2f s, %.0f%% GPRS users\n\n",
                max_plp, max_delay, gprs_percent);

    const std::vector<double> rates{0.2, 0.4, 0.6, 0.8, 1.0};
    std::printf("%10s  %14s  %14s  %14s\n", "calls/s", "required PDCH", "PLP @ choice",
                "QD @ choice");

    for (double rate : rates) {
        int chosen = -1;
        core::Measures chosen_measures;
        for (int pdch = 0; pdch <= 8; ++pdch) {
            core::Parameters p =
                core::Parameters::with_traffic_model(traffic::traffic_model_3());
            p.reserved_pdch = pdch;
            p.gprs_fraction = gprs_percent / 100.0;
            p.call_arrival_rate = rate;
            core::GprsModel model(p);
            ctmc::SolveOptions options;
            options.tolerance = 1e-9;
            model.solve(options);
            const core::Measures m = model.measures();
            if (m.packet_loss_probability <= max_plp && m.queueing_delay <= max_delay) {
                chosen = pdch;
                chosen_measures = m;
                break;
            }
        }
        if (chosen >= 0) {
            std::printf("%10.2f  %14d  %14.3e  %12.3f s\n", rate, chosen,
                        chosen_measures.packet_loss_probability,
                        chosen_measures.queueing_delay);
        } else {
            std::printf("%10.2f  %14s  (QoS unreachable with <= 8 reserved PDCHs)\n", rate,
                        "-");
        }
    }

    std::printf("\nNote: the paper reaches the analogous conclusion qualitatively\n");
    std::printf("(Figs. 8-13): reserving PDCHs trades idle channels for QoS; beyond\n");
    std::printf("the load where GSM voice saturates the cell, reservation is the\n");
    std::printf("only way to protect GPRS throughput.\n");
    return 0;
}
