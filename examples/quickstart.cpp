// Quickstart: analyze one GPRS cell configuration end to end through the
// unified eval API — the same code an out-of-tree consumer compiles against
// the installed tree (find_package(gprsim) + #include <gprsim/gprsim.hpp>).
//
// Builds the paper's base cell (Table 2, traffic model 1), asks the "ctmc"
// backend for the exact chain solution, cross-checks it against the cheap
// "mm1k-approx" backend, and prints every performance measure of
// Section 4.2. Errors come back as typed Results — no try/catch needed.
//
//   $ ./quickstart [call_arrival_rate] [reserved_pdch]
#include <cstdio>
#include <cstdlib>

#include "gprsim/gprsim.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;

    eval::ScenarioQuery query;
    query.parameters = core::Parameters::base();
    query.call_arrival_rate = argc > 1 ? std::atof(argv[1]) : 0.5;
    query.parameters.reserved_pdch = argc > 2 ? std::atoi(argv[2]) : 1;
    query.solver.tolerance = 1e-10;  // plenty for every printed digit

    std::printf("GPRS cell analysis (Lindemann & Thuemmler model)\n");
    std::printf("  physical channels        : %d (%d reserved as PDCH)\n",
                query.parameters.total_channels, query.parameters.reserved_pdch);
    std::printf("  call arrival rate        : %.3f calls/s (%.0f%% GPRS)\n",
                query.call_arrival_rate, 100.0 * query.parameters.gprs_fraction);
    std::printf("  traffic model            : %.1f kbit/s WWW source, session %.1f s\n",
                query.parameters.traffic.on_rate_kbps(),
                query.parameters.traffic.mean_session_duration());

    // Every analysis route is a named backend behind one interface; run
    // `gprsim_cli campaign --list-backends` for the full set.
    auto ctmc_backend = eval::BackendRegistry::global().find("ctmc");
    if (!ctmc_backend.ok()) {
        std::fprintf(stderr, "error: %s\n", ctmc_backend.error().to_string().c_str());
        return 1;
    }
    common::Result<eval::PointEvaluation> evaluated =
        ctmc_backend.value()->evaluate(query);
    if (!evaluated.ok()) {
        // Typed, not thrown: the message names the scenario that failed.
        std::fprintf(stderr, "error: %s\n", evaluated.error().to_string().c_str());
        return 1;
    }
    const eval::PointEvaluation& point = evaluated.value();
    std::printf("\nSteady-state solve: %lld sweeps, residual %.2e, %.2f s\n",
                point.iterations, point.residual, point.wall_seconds);

    const core::Measures& m = point.measures;
    std::printf("\nPerformance measures (paper Eq. 6-11):\n");
    std::printf("  carried data traffic  CDT : %8.4f PDCHs\n", m.carried_data_traffic);
    std::printf("  packet loss prob.     PLP : %8.2e\n", m.packet_loss_probability);
    std::printf("  queueing delay        QD  : %8.4f s\n", m.queueing_delay);
    std::printf("  throughput per user   ATU : %8.3f kbit/s\n", m.throughput_per_user_kbps);
    std::printf("  carried voice traffic CVT : %8.4f channels\n", m.carried_voice_traffic);
    std::printf("  avg GPRS sessions     AGS : %8.4f\n", m.average_gprs_sessions);
    std::printf("  GSM call blocking         : %8.2e\n", m.gsm_blocking);
    std::printf("  GPRS session blocking     : %8.2e\n", m.gprs_blocking);
    std::printf("  mean queue length     MQL : %8.4f packets\n", m.mean_queue_length);
    std::printf("  aggregate data throughput : %8.3f kbit/s\n", m.data_throughput_kbps);

    // Second opinion from the cheap queueing approximation — same query,
    // different backend, microseconds instead of a chain solve.
    auto approx = eval::BackendRegistry::global().find("mm1k-approx");
    if (approx.ok()) {
        if (auto cheap = approx.value()->evaluate(query); cheap.ok()) {
            std::printf("\nmm1k-approx cross-check: CDT %.4f (exact %.4f), ATU %.3f "
                        "(exact %.3f)\n",
                        cheap.value().measures.carried_data_traffic,
                        m.carried_data_traffic,
                        cheap.value().measures.throughput_per_user_kbps,
                        m.throughput_per_user_kbps);
        }
    }
    return 0;
}
