// Quickstart: analyze one GPRS cell configuration end to end.
//
// Builds the paper's base cell (Table 2, traffic model 1), solves the Markov
// chain, and prints every performance measure of Section 4.2.
//
//   $ ./quickstart [call_arrival_rate] [reserved_pdch]
#include <cstdio>
#include <cstdlib>

#include "core/model.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;

    core::Parameters params = core::Parameters::base();
    params.call_arrival_rate = argc > 1 ? std::atof(argv[1]) : 0.5;
    params.reserved_pdch = argc > 2 ? std::atoi(argv[2]) : 1;
    params.validate();

    std::printf("GPRS cell analysis (Lindemann & Thuemmler model)\n");
    std::printf("  physical channels        : %d (%d reserved as PDCH)\n",
                params.total_channels, params.reserved_pdch);
    std::printf("  call arrival rate        : %.3f calls/s (%.0f%% GPRS)\n",
                params.call_arrival_rate, 100.0 * params.gprs_fraction);
    std::printf("  traffic model            : %.1f kbit/s WWW source, session %.1f s\n",
                params.traffic.on_rate_kbps(), params.traffic.mean_session_duration());

    core::GprsModel model(params);
    std::printf("\nState space: %lld states", static_cast<long long>(model.space().size()));
    std::printf(" (= 1/2 (M+1)(M+2) x (N_GSM+1) x (K+1))\n");

    ctmc::SolveOptions options;
    options.tolerance = 1e-10;  // plenty for every printed digit
    const auto& solve = model.solve(options);
    std::printf("Steady-state solve: %lld sweeps, residual %.2e, %.2f s\n",
                static_cast<long long>(solve.iterations), solve.residual, solve.seconds);

    const core::Measures m = model.measures();
    std::printf("\nPerformance measures (paper Eq. 6-11):\n");
    std::printf("  carried data traffic  CDT : %8.4f PDCHs\n", m.carried_data_traffic);
    std::printf("  packet loss prob.     PLP : %8.2e\n", m.packet_loss_probability);
    std::printf("  queueing delay        QD  : %8.4f s\n", m.queueing_delay);
    std::printf("  throughput per user   ATU : %8.3f kbit/s\n", m.throughput_per_user_kbps);
    std::printf("  carried voice traffic CVT : %8.4f channels\n", m.carried_voice_traffic);
    std::printf("  avg GPRS sessions     AGS : %8.4f\n", m.average_gprs_sessions);
    std::printf("  GSM call blocking         : %8.2e\n", m.gsm_blocking);
    std::printf("  GPRS session blocking     : %8.2e\n", m.gprs_blocking);
    std::printf("  mean queue length     MQL : %8.4f packets\n", m.mean_queue_length);
    std::printf("  aggregate data throughput : %8.3f kbit/s\n", m.data_throughput_kbps);
    return 0;
}
