// Traffic model explorer: inspect the 3GPP WWW session model and its IPP /
// aggregated MMPP representations (paper Section 3, Figs. 3-4).
//
//   $ ./traffic_explorer [sessions]
#include <cstdio>
#include <cstdlib>

#include "traffic/mmpp.hpp"
#include "traffic/threegpp.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const int sessions = argc > 1 ? std::atoi(argv[1]) : 10;

    const traffic::TrafficModelPreset presets[] = {
        traffic::traffic_model_1(), traffic::traffic_model_2(), traffic::traffic_model_3()};

    for (const auto& preset : presets) {
        const traffic::ThreeGppSessionModel& s = preset.session;
        const traffic::Ipp ipp = s.ipp();
        std::printf("=== %s ===\n", preset.name.c_str());
        std::printf("  3GPP parameters: N_pc = %.0f, D_pc = %.1f s, N_d = %.0f, D_d = %.3f s\n",
                    s.mean_packet_calls, s.mean_reading_time, s.mean_packets_per_call,
                    s.mean_packet_interarrival);
        std::printf("  session duration 1/mu    : %9.1f s\n", s.mean_session_duration());
        std::printf("  session volume           : %9.1f kbit\n", s.mean_session_volume_kbit());
        std::printf("  ON-phase source rate     : %9.2f kbit/s\n", s.on_rate_kbps());
        std::printf("  IPP: a = %.5f /s, b = %.5f /s, lambda_p = %.2f pkt/s\n",
                    ipp.on_to_off_rate, ipp.off_to_on_rate, ipp.on_packet_rate);
        std::printf("  P(ON) = %.4f, mean rate = %.3f pkt/s, burstiness = %.1f\n",
                    ipp.stationary_on_probability(), ipp.mean_packet_rate(),
                    ipp.burstiness());

        const traffic::Mmpp one = traffic::ipp_as_mmpp(ipp);
        const traffic::Mmpp many = traffic::aggregate_ipps(sessions, ipp);
        std::printf("  index of dispersion (1 source)   : %8.2f\n", one.index_of_dispersion());
        std::printf("  aggregated MMPP of %2d sources    : %lld states, mean rate %.3f pkt/s,"
                    " IDC %.2f\n",
                    sessions, static_cast<long long>(many.num_states()),
                    many.mean_arrival_rate(), many.index_of_dispersion());

        // Load the aggregate would put on one CS-2 PDCH.
        const double kbps = many.mean_arrival_rate() * s.packet_size_bits / 1000.0;
        std::printf("  aggregate offered load           : %8.2f kbit/s (= %.2f PDCH at "
                    "CS-2)\n\n",
                    kbps, kbps / 13.4);
    }

    std::printf("The (m+1)-state aggregation is exact (Fischer & Meier-Hellstern):\n");
    std::printf("the tests verify it against the Kronecker superposition of\n");
    std::printf("individual sources; the Markov model of the paper relies on it.\n");
    return 0;
}
