// Transient analysis (extension; the paper's future-work direction is
// adaptive PDCH management, which needs exactly this machinery).
//
// The cell runs in steady state at a low arrival rate; the load then jumps.
// Uniformization gives the distribution at selected times after the jump,
// showing how quickly queueing builds up before reaching the new steady
// state — the time budget an adaptive controller has to react.
//
//   $ ./transient_load_change [rate_before] [rate_after]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "ctmc/uniformization.hpp"
#include "core/model.hpp"
#include "core/measures.hpp"
#include "traffic/threegpp.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const double rate_before = argc > 1 ? std::atof(argv[1]) : 0.2;
    const double rate_after = argc > 2 ? std::atof(argv[2]) : 0.8;

    core::Parameters p = core::Parameters::with_traffic_model(traffic::traffic_model_3());
    p.reserved_pdch = 1;
    p.buffer_capacity = 30;   // smaller buffer keeps the transient solve quick
    p.max_gprs_sessions = 10;

    // Steady state before the load change.
    p.call_arrival_rate = rate_before;
    core::GprsModel before(p);
    ctmc::SolveOptions options;
    options.tolerance = 1e-9;
    before.solve(options);
    std::printf("Initial steady state at %.2f calls/s: CDT = %.3f PDCH, MQL = %.2f\n",
                rate_before, before.measures().carried_data_traffic,
                before.measures().mean_queue_length);

    // Chain under the new load.
    p.call_arrival_rate = rate_after;
    core::GprsModel after(p);
    const core::GprsGenerator& generator = after.generator();
    const ctmc::QtMatrix qt = generator.to_qt_matrix();

    std::printf("\nLoad jumps to %.2f calls/s at t = 0. Transient response:\n", rate_after);
    std::printf("%10s  %12s  %12s  %12s\n", "t [s]", "CDT [PDCH]", "MQL [pkt]", "PLP");
    std::vector<double> pi(before.distribution());
    double t_prev = 0.0;
    for (double t : {10.0, 30.0, 60.0, 120.0, 300.0, 600.0}) {
        pi = ctmc::transient_distribution(qt, pi, t - t_prev);
        t_prev = t;
        const core::Measures m =
            core::compute_measures(p, after.balanced(), after.space(), pi);
        std::printf("%10.0f  %12.3f  %12.2f  %12.3e\n", t, m.carried_data_traffic,
                    m.mean_queue_length, m.packet_loss_probability);
    }

    after.solve(options);
    const core::Measures steady = after.measures();
    std::printf("%10s  %12.3f  %12.2f  %12.3e   (new steady state)\n", "inf",
                steady.carried_data_traffic, steady.mean_queue_length,
                steady.packet_loss_probability);
    return 0;
}
