// Side-by-side validation run: Markov model vs network-level simulator on
// one configuration (the paper's Section 5.2 methodology, scriptable).
//
//   $ ./validate_model [call_arrival_rate] [tcp:0|1]
#include <cstdio>
#include <cstdlib>

#include "core/model.hpp"
#include "sim/simulator.hpp"
#include "traffic/threegpp.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const double rate = argc > 1 ? std::atof(argv[1]) : 0.4;
    const bool tcp = argc > 2 ? std::atoi(argv[2]) != 0 : true;

    core::Parameters params = core::Parameters::with_traffic_model(traffic::traffic_model_3());
    params.call_arrival_rate = rate;
    params.reserved_pdch = 1;
    // eta = 0.7 approximates TCP; eta = 1.0 matches the open-loop simulator.
    params.flow_control_threshold = tcp ? 0.7 : 1.0;

    std::printf("Validation at %.2f calls/s, %s\n", rate,
                tcp ? "TCP flow control (model: eta = 0.7)"
                    : "open-loop sources (model: eta = 1.0)");

    core::GprsModel model(params);
    ctmc::SolveOptions options;
    options.tolerance = 1e-9;
    model.solve(options);
    const core::Measures analytic = model.measures();

    sim::SimulationConfig config;
    config.cell = params;
    config.tcp_enabled = tcp;
    config.seed = 42;
    config.warmup_time = 2000.0;
    config.batch_count = 15;
    config.batch_duration = 2000.0;
    std::printf("Simulating %.0f s of network time (7 cells)...\n",
                config.warmup_time + config.batch_count * config.batch_duration);
    const sim::SimulationResults simulated = sim::NetworkSimulator(config).run();

    const auto row = [](const char* name, double model_value,
                        const sim::MetricEstimate& est) {
        std::printf("  %-28s %12.4f   [%9.4f, %9.4f] %s\n", name, model_value, est.lower(),
                    est.upper(), est.covers(model_value) ? "(model inside CI)" : "");
    };
    std::printf("\n%-30s %12s   %-24s\n", "measure", "model", "simulator 95% CI");
    row("carried data traffic [PDCH]", analytic.carried_data_traffic,
        simulated.carried_data_traffic);
    row("throughput per user [kbit/s]", analytic.throughput_per_user_kbps,
        simulated.throughput_per_user_kbps);
    row("mean queue length [packets]", analytic.mean_queue_length,
        simulated.mean_queue_length);
    row("queueing delay [s]", analytic.queueing_delay, simulated.queueing_delay);
    row("packet loss probability", analytic.packet_loss_probability,
        simulated.packet_loss_probability);
    row("carried voice traffic [TCH]", analytic.carried_voice_traffic,
        simulated.carried_voice_traffic);
    row("avg GPRS sessions", analytic.average_gprs_sessions,
        simulated.average_gprs_sessions);
    row("GSM blocking", analytic.gsm_blocking, simulated.gsm_blocking);
    row("GPRS blocking", analytic.gprs_blocking, simulated.gprs_blocking);

    std::printf("\nSimulator: %.2e events, %.1f s wall clock; TCP: %lld timeouts, %lld fast"
                " retransmits\n",
                static_cast<double>(simulated.events_executed), simulated.wall_seconds,
                static_cast<long long>(simulated.tcp_timeouts),
                static_cast<long long>(simulated.tcp_fast_retransmits));
    return 0;
}
