// Side-by-side validation run: Markov model vs network-level simulator on
// one configuration (the paper's Section 5.2 methodology, scriptable).
// The simulator side runs as parallel replications on the experiment
// engine, so the confidence intervals are replication-level.
//
//   $ ./validate_model [call_arrival_rate] [tcp:0|1] [replications] [threads]
#include <cstdio>
#include <cstdlib>

#include "core/model.hpp"
#include "sim/experiment.hpp"
#include "traffic/threegpp.hpp"

int main(int argc, char** argv) {
    using namespace gprsim;
    const double rate = argc > 1 ? std::atof(argv[1]) : 0.4;
    const bool tcp = argc > 2 ? std::atoi(argv[2]) != 0 : true;
    const int replications = argc > 3 ? std::atoi(argv[3]) : 4;
    const int threads = argc > 4 ? std::atoi(argv[4]) : 0;  // 0 = all hardware

    core::Parameters params = core::Parameters::with_traffic_model(traffic::traffic_model_3());
    params.call_arrival_rate = rate;
    params.reserved_pdch = 1;
    // eta = 0.7 approximates TCP; eta = 1.0 matches the open-loop simulator.
    params.flow_control_threshold = tcp ? 0.7 : 1.0;

    std::printf("Validation at %.2f calls/s, %s\n", rate,
                tcp ? "TCP flow control (model: eta = 0.7)"
                    : "open-loop sources (model: eta = 1.0)");

    core::GprsModel model(params);
    ctmc::SolveOptions options;
    options.tolerance = 1e-9;
    model.solve(options);
    const core::Measures analytic = model.measures();

    sim::ExperimentConfig config;
    config.base.cell = params;
    config.base.tcp_enabled = tcp;
    config.base.warmup_time = 2000.0;
    config.base.batch_count = 15;
    config.base.batch_duration = 2000.0;
    config.replications = replications;
    config.num_threads = threads;
    config.seed = 42;
    std::printf("Simulating %d replications of %.0f s of network time (7 cells)...\n",
                replications,
                config.base.warmup_time +
                    config.base.batch_count * config.base.batch_duration);
    sim::ExperimentEngine engine;
    const sim::ExperimentResults simulated = engine.run(config);

    const auto row = [](const char* name, double model_value,
                        const sim::MetricEstimate& est) {
        std::printf("  %-28s %12.4f   [%9.4f, %9.4f] %s\n", name, model_value, est.lower(),
                    est.upper(), est.covers(model_value) ? "(model inside CI)" : "");
    };
    std::printf("\n%-30s %12s   %-24s\n", "measure", "model",
                "simulator 95% CI (replication-level)");
    row("carried data traffic [PDCH]", analytic.carried_data_traffic,
        simulated.carried_data_traffic);
    row("throughput per user [kbit/s]", analytic.throughput_per_user_kbps,
        simulated.throughput_per_user_kbps);
    row("mean queue length [packets]", analytic.mean_queue_length,
        simulated.mean_queue_length);
    row("queueing delay [s]", analytic.queueing_delay, simulated.queueing_delay);
    row("packet loss probability", analytic.packet_loss_probability,
        simulated.packet_loss_probability);
    row("carried voice traffic [TCH]", analytic.carried_voice_traffic,
        simulated.carried_voice_traffic);
    row("avg GPRS sessions", analytic.average_gprs_sessions,
        simulated.average_gprs_sessions);
    row("GSM blocking", analytic.gsm_blocking, simulated.gsm_blocking);
    row("GPRS blocking", analytic.gprs_blocking, simulated.gprs_blocking);

    long long timeouts = 0;
    long long fast_retransmits = 0;
    for (const sim::SimulationResults& r : simulated.replications) {
        timeouts += r.tcp_timeouts;
        fast_retransmits += r.tcp_fast_retransmits;
    }
    std::printf("\nSimulator: %.2e events on %d threads, %.1f s wall clock; TCP: %lld"
                " timeouts, %lld fast retransmits\n",
                static_cast<double>(simulated.events_executed), simulated.threads_used,
                simulated.wall_seconds, timeouts, fast_retransmits);
    return 0;
}
