// Umbrella header: the public surface of gprsim.
//
// Out-of-tree consumers use it as
//
//   find_package(gprsim REQUIRED)              # CMake
//   target_link_libraries(app gprsim::gprsim)
//
//   #include <gprsim/gprsim.hpp>
//
//   gprsim::eval::ScenarioQuery query;
//   query.parameters = gprsim::core::Parameters::base();
//   auto backend = gprsim::eval::BackendRegistry::global().find("ctmc");
//   auto point = backend.value()->evaluate(query);   // Result, not throw
//
// Batches scale the same vocabulary up: evaluate_grid runs one scenario
// over a rate grid, Evaluator::evaluate_grids runs MANY scenario variants
// over one grid in a single batch, and gprsim::eval::evaluate_campaign
// (eval/batch.hpp) merges several backends' batches into one flat
// wave-ordered task set on a shared thread pool — all bitwise invariant
// to the thread count. Consumers can register their own evaluation
// backends with gprsim::eval::register_backend(...) — campaign specs and
// the CLI pick them up by name, and a backend that overrides plan_grids
// joins the merged task set with its own dependency waves. The individual
// headers below remain includable on their own (installed under
// <gprsim/...> with the same relative paths the in-tree sources use).
#pragma once

#include "common/result.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"

#include "ctmc/engine.hpp"
#include "ctmc/solver_options.hpp"

#include "core/adaptive.hpp"
#include "core/measures.hpp"
#include "core/model.hpp"
#include "core/parameters.hpp"
#include "core/sweep.hpp"

#include "queueing/erlang.hpp"
#include "queueing/handover.hpp"
#include "queueing/mm1k.hpp"

#include "traffic/threegpp.hpp"
#include "traffic/trace.hpp"

#include "sim/experiment.hpp"
#include "sim/simulator.hpp"

#include "eval/backends.hpp"
#include "eval/batch.hpp"
#include "eval/evaluator.hpp"
#include "eval/registry.hpp"

#include "campaign/runner.hpp"
#include "campaign/sink.hpp"
#include "campaign/spec.hpp"

// The embeddable campaign evaluation service (docs/service.md): a
// bounded-worker CampaignService with typed admission control, the
// shared cross-request slice store, and the GPRS/1 frame protocol the
// gprsim_serve daemon speaks over a unix socket or stdio.
#include "service/protocol.hpp"
#include "service/service.hpp"
