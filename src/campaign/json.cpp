#include "campaign/json.hpp"

#include <cctype>
#include <cstdlib>

namespace gprsim::campaign {

namespace {

/// Recursive-descent parser over the raw text, tracking 1-based line and
/// column as it consumes characters.
class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    JsonValue parse_document() {
        JsonValue value = parse_value();
        skip_whitespace();
        if (pos_ < text_.size()) {
            fail("trailing characters after JSON document");
        }
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& message) const {
        throw JsonError(message, line_, column_);
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    char advance() {
        const char c = text_[pos_++];
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    void skip_whitespace() {
        while (pos_ < text_.size()) {
            const char c = peek();
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                advance();
            } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
                while (pos_ < text_.size() && peek() != '\n') {
                    advance();
                }
            } else {
                break;
            }
        }
    }

    void expect(char c, const char* what) {
        if (peek() != c) {
            fail(std::string("expected ") + what);
        }
        advance();
    }

    JsonValue parse_value() {
        skip_whitespace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        const char c = peek();
        switch (c) {
            case '{':
                return parse_object();
            case '[':
                return parse_array();
            case '"':
                return parse_string();
            case 't':
            case 'f':
                return parse_keyword_bool();
            case 'n':
                parse_keyword("null");
                return JsonValue::make_null(line_);
            default:
                if (c == '-' || (c >= '0' && c <= '9')) {
                    return parse_number();
                }
                fail(std::string("unexpected character '") + c + "'");
        }
    }

    JsonValue parse_object() {
        const int start_line = line_;
        expect('{', "'{'");
        std::vector<JsonValue::Member> members;
        skip_whitespace();
        if (peek() == '}') {
            advance();
            return JsonValue::make_object(std::move(members), start_line);
        }
        while (true) {
            skip_whitespace();
            if (peek() == '}') {  // trailing comma
                advance();
                break;
            }
            if (peek() != '"') {
                fail("expected a quoted object key");
            }
            const int key_line = line_;
            std::string key = parse_string_literal();
            for (const JsonValue::Member& member : members) {
                if (member.first == key) {
                    throw JsonError("duplicate key \"" + key + "\"", key_line, column_);
                }
            }
            skip_whitespace();
            expect(':', "':' after object key");
            members.emplace_back(std::move(key), parse_value());
            skip_whitespace();
            if (peek() == ',') {
                advance();
                continue;
            }
            expect('}', "',' or '}' in object");
            break;
        }
        return JsonValue::make_object(std::move(members), start_line);
    }

    JsonValue parse_array() {
        const int start_line = line_;
        expect('[', "'['");
        std::vector<JsonValue> items;
        skip_whitespace();
        if (peek() == ']') {
            advance();
            return JsonValue::make_array(std::move(items), start_line);
        }
        while (true) {
            skip_whitespace();
            if (peek() == ']') {  // trailing comma
                advance();
                break;
            }
            items.push_back(parse_value());
            skip_whitespace();
            if (peek() == ',') {
                advance();
                continue;
            }
            expect(']', "',' or ']' in array");
            break;
        }
        return JsonValue::make_array(std::move(items), start_line);
    }

    JsonValue parse_string() {
        const int start_line = line_;
        return JsonValue::make_string(parse_string_literal(), start_line);
    }

    std::string parse_string_literal() {
        expect('"', "'\"'");
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const char c = advance();
            if (c == '"') {
                return out;
            }
            if (c == '\n') {
                fail("newline inside string");
            }
            if (c == '\\') {
                if (pos_ >= text_.size()) {
                    fail("unterminated escape");
                }
                const char e = advance();
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 't': out += '\t'; break;
                    case 'r': out += '\r'; break;
                    default:
                        fail(std::string("unsupported escape '\\") + e + "'");
                }
            } else {
                out += c;
            }
        }
    }

    JsonValue parse_number() {
        const int start_line = line_;
        const std::size_t start = pos_;
        if (peek() == '-') {
            advance();
        }
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
            advance();
        }
        if (peek() == '.') {
            advance();
            while (std::isdigit(static_cast<unsigned char>(peek()))) {
                advance();
            }
        }
        if (peek() == 'e' || peek() == 'E') {
            advance();
            if (peek() == '+' || peek() == '-') {
                advance();
            }
            while (std::isdigit(static_cast<unsigned char>(peek()))) {
                advance();
            }
        }
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0') {
            fail("malformed number '" + token + "'");
        }
        return JsonValue::make_number(value, start_line);
    }

    JsonValue parse_keyword_bool() {
        const int start_line = line_;
        if (peek() == 't') {
            parse_keyword("true");
            return JsonValue::make_bool(true, start_line);
        }
        parse_keyword("false");
        return JsonValue::make_bool(false, start_line);
    }

    void parse_keyword(const char* keyword) {
        for (const char* k = keyword; *k != '\0'; ++k) {
            if (pos_ >= text_.size() || peek() != *k) {
                fail(std::string("expected '") + keyword + "'");
            }
            advance();
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;
};

[[noreturn]] void type_mismatch(const JsonValue& value, const char* wanted) {
    throw JsonError(std::string("expected ") + wanted + ", got " +
                        json_type_name(value.type()),
                    value.line(), 0);
}

}  // namespace

const char* json_type_name(JsonValue::Type type) {
    switch (type) {
        case JsonValue::Type::null: return "null";
        case JsonValue::Type::boolean: return "boolean";
        case JsonValue::Type::number: return "number";
        case JsonValue::Type::string: return "string";
        case JsonValue::Type::array: return "array";
        case JsonValue::Type::object: return "object";
    }
    return "unknown";
}

bool JsonValue::as_bool() const {
    if (type_ != Type::boolean) {
        type_mismatch(*this, "boolean");
    }
    return bool_;
}

double JsonValue::as_number() const {
    if (type_ != Type::number) {
        type_mismatch(*this, "number");
    }
    return number_;
}

const std::string& JsonValue::as_string() const {
    if (type_ != Type::string) {
        type_mismatch(*this, "string");
    }
    return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
    if (type_ != Type::array) {
        type_mismatch(*this, "array");
    }
    return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
    if (type_ != Type::object) {
        type_mismatch(*this, "object");
    }
    return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
    if (type_ != Type::object) {
        return nullptr;
    }
    for (const Member& member : members_) {
        if (member.first == key) {
            return &member.second;
        }
    }
    return nullptr;
}

JsonValue parse_json(const std::string& text) {
    return Parser(text).parse_document();
}

}  // namespace gprsim::campaign
