// Minimal JSON reader for campaign scenario specs (spec.hpp).
//
// Deliberately tiny — objects, arrays, strings, numbers, booleans, null —
// because the only consumer is the spec format, and deliberately "JSON-ish":
// `//` line comments and trailing commas are accepted, since specs are
// hand-written. What it adds over a stock parser is precise source
// positions: every value remembers the 1-based line it started on, and
// every syntax error carries line + column, so spec-level validation
// (unknown key, wrong type, bad range) can point at the offending line of
// the user's file rather than at "the spec".
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace gprsim::campaign {

/// Syntax or access error with a 1-based source position. `column` is 0 for
/// errors that only know their line (typed-accessor mismatches).
class JsonError : public std::runtime_error {
public:
    JsonError(const std::string& message, int line, int column)
        : std::runtime_error(message + " (line " + std::to_string(line) +
                             (column > 0 ? ", column " + std::to_string(column) : "") +
                             ")"),
          line_(line),
          column_(column) {}

    int line() const { return line_; }
    int column() const { return column_; }

private:
    int line_ = 0;
    int column_ = 0;
};

/// Parsed JSON value. Object member order is preserved (specs are diffed and
/// round-tripped by humans); lookup is linear, which is fine at spec size.
class JsonValue {
public:
    enum class Type { null, boolean, number, string, array, object };

    using Member = std::pair<std::string, JsonValue>;

    Type type() const { return type_; }
    /// 1-based line the value started on; 0 for programmatically built values.
    int line() const { return line_; }

    bool is_null() const { return type_ == Type::null; }
    bool is_bool() const { return type_ == Type::boolean; }
    bool is_number() const { return type_ == Type::number; }
    bool is_string() const { return type_ == Type::string; }
    bool is_array() const { return type_ == Type::array; }
    bool is_object() const { return type_ == Type::object; }

    /// Typed accessors; throw JsonError (at this value's line) on mismatch.
    bool as_bool() const;
    double as_number() const;
    const std::string& as_string() const;
    const std::vector<JsonValue>& items() const;
    const std::vector<Member>& members() const;

    /// Object lookup; nullptr when the key is absent (or not an object).
    const JsonValue* find(const std::string& key) const;

    static JsonValue make_null(int line) { return JsonValue(Type::null, line); }
    static JsonValue make_bool(bool value, int line) {
        JsonValue v(Type::boolean, line);
        v.bool_ = value;
        return v;
    }
    static JsonValue make_number(double value, int line) {
        JsonValue v(Type::number, line);
        v.number_ = value;
        return v;
    }
    static JsonValue make_string(std::string value, int line) {
        JsonValue v(Type::string, line);
        v.string_ = std::move(value);
        return v;
    }
    static JsonValue make_array(std::vector<JsonValue> items, int line) {
        JsonValue v(Type::array, line);
        v.items_ = std::move(items);
        return v;
    }
    static JsonValue make_object(std::vector<Member> members, int line) {
        JsonValue v(Type::object, line);
        v.members_ = std::move(members);
        return v;
    }

private:
    explicit JsonValue(Type type, int line) : type_(type), line_(line) {}

    Type type_ = Type::null;
    int line_ = 0;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
};

/// Human-readable type name ("object", "number", ...), for error messages.
const char* json_type_name(JsonValue::Type type);

/// Parses one JSON document; trailing non-whitespace is an error. Throws
/// JsonError with line/column on malformed input.
JsonValue parse_json(const std::string& text);

}  // namespace gprsim::campaign
