#include "campaign/runner.hpp"

#include <chrono>
#include <utility>

#include "eval/batch.hpp"
#include "eval/registry.hpp"

namespace gprsim::campaign {

namespace {

/// Legacy two-column view: the first non-stochastic backend fills the model
/// columns, the first stochastic one the sim columns, and delta_* is model
/// minus pooled simulator mean — the exact table the pre-registry campaigns
/// produced, which keeps every sink and bench rendering unchanged.
void synthesize_legacy_view(CampaignPoint& point) {
    for (const eval::PointEvaluation& evaluation : point.evaluations) {
        if (!evaluation.has_confidence && !point.has_model) {
            point.has_model = true;
            point.model = evaluation.measures;
            point.iterations = evaluation.iterations;
            point.residual = evaluation.residual;
            point.solve_seconds = evaluation.wall_seconds;
            point.warm_parent = evaluation.warm_parent;
            point.warm_started = evaluation.warm_started;
        }
        if (evaluation.has_confidence && !point.has_sim) {
            point.has_sim = true;
            point.sim = evaluation.sim;
        }
    }
    if (point.has_model && point.has_sim) {
        point.delta_cdt =
            point.model.carried_data_traffic - point.sim.carried_data_traffic.mean;
        point.delta_plp =
            point.model.packet_loss_probability - point.sim.packet_loss_probability.mean;
        point.delta_qd = point.model.queueing_delay - point.sim.queueing_delay.mean;
        point.delta_atu = point.model.throughput_per_user_kbps -
                          point.sim.throughput_per_user_kbps.mean;
    }
}

}  // namespace

CampaignWorkload build_campaign_workload(const ScenarioSpec& spec,
                                         const CampaignOptions& options) {
    CampaignWorkload workload;
    workload.effective = spec;
    if (options.force_cold) {
        workload.effective.solver.warm_start = false;
    }
    if (!options.solver_method_override.empty()) {
        workload.effective.solver.method = options.solver_method_override;
    }
    workload.variants = workload.effective.expand();  // validates the spec

    const ScenarioSpec& effective = workload.effective;
    const std::size_t num_variants = workload.variants.size();
    // One ScenarioQuery per variant; every backend reads the knob block it
    // understands from the same query list.
    workload.queries.resize(num_variants);
    for (std::size_t v = 0; v < num_variants; ++v) {
        eval::ScenarioQuery& base = workload.queries[v];
        base.parameters = workload.variants[v].parameters;
        base.solver.tolerance = effective.solver.tolerance;
        base.solver.method = effective.solver.method;
        base.simulation.replications = effective.simulation.replications;
        base.simulation.seed = effective.simulation.seed;
        base.simulation.warmup_time = effective.simulation.warmup_time;
        base.simulation.batch_count = effective.simulation.batch_count;
        base.simulation.batch_duration = effective.simulation.batch_duration;
        base.simulation.tcp = effective.simulation.tcp;
        base.approx.fp_tolerance = effective.approx.fp_tolerance;
        base.approx.fp_damping = effective.approx.fp_damping;
        base.approx.fp_max_iterations = effective.approx.fp_max_iterations;
        base.approx.ode_rel_tol = effective.approx.ode_rel_tol;
        base.approx.ode_abs_tol = effective.approx.ode_abs_tol;
        base.approx.ode_max_steps = effective.approx.ode_max_steps;
        base.approx.ode_stationary_rate = effective.approx.ode_stationary_rate;
        if (effective.network.enabled) {
            base.network.cells_x = workload.variants[v].cells_x;
            base.network.cells_y = workload.variants[v].cells_y;
            base.network.topology = effective.network.topology;
            base.network.wrap = effective.network.wrap;
            base.network.reuse_factor = workload.variants[v].reuse_factor;
            base.network.ra_block = effective.network.ra_block;
            base.network.speed_kmh = workload.variants[v].speed_kmh;
            base.network.reference_speed_kmh = effective.network.reference_speed_kmh;
            base.network.drift = effective.network.drift;
            base.network.inner_backend = effective.network.inner_backend;
            base.network.outer_tolerance = effective.network.outer_tolerance;
            base.network.outer_damping = effective.network.outer_damping;
            base.network.outer_max_iterations = effective.network.outer_max_iterations;
        }
    }
    return workload;
}

common::Result<CampaignResult> assemble_campaign(
    const CampaignWorkload& workload, std::vector<std::vector<eval::GridOutcome>> outcomes) {
    const ScenarioSpec& effective = workload.effective;
    const std::vector<double>& rates = effective.rates;
    const std::size_t num_rates = rates.size();
    const std::size_t num_variants = workload.variants.size();
    const std::size_t num_points = num_variants * num_rates;
    const std::size_t num_methods = effective.methods.size();

    CampaignResult result;
    result.name = effective.name;
    result.network = effective.network.enabled;
    result.methods = effective.methods;
    result.rates = rates;
    result.points.resize(num_points);
    for (std::size_t v = 0; v < num_variants; ++v) {
        for (std::size_t r = 0; r < num_rates; ++r) {
            CampaignPoint& point = result.points[v * num_rates + r];
            point.variant = v;
            point.rate_index = r;
            point.call_arrival_rate = rates[r];
            point.evaluations.resize(num_methods);
            point.deltas.resize(num_methods);
        }
    }

    // Store every slice, surfacing the first failure (backend-major,
    // variant-minor scan order) as its typed error.
    for (std::size_t b = 0; b < num_methods; ++b) {
        for (std::size_t v = 0; v < num_variants; ++v) {
            eval::GridOutcome& outcome = outcomes[b][v];
            if (!outcome.ok()) {
                return common::EvalError{
                    outcome.error().code,
                    "campaign backend \"" + effective.methods[b] +
                        "\": " + outcome.error().to_string()};
            }
            std::vector<eval::PointEvaluation> evaluations = outcome.take();
            for (std::size_t r = 0; r < num_rates; ++r) {
                result.points[v * num_rates + r].evaluations[b] =
                    std::move(evaluations[r]);
            }
        }
    }

    // Serial, point-ordered post-processing: pairwise deltas against the
    // first backend, the legacy model/sim view, and summary totals are all
    // independent of execution order.
    for (CampaignPoint& point : result.points) {
        const core::Measures& reference = point.evaluations.front().measures;
        for (std::size_t b = 1; b < num_methods; ++b) {
            const core::Measures& other = point.evaluations[b].measures;
            point.deltas[b] = {
                reference.carried_data_traffic - other.carried_data_traffic,
                reference.packet_loss_probability - other.packet_loss_probability,
                reference.queueing_delay - other.queueing_delay,
                reference.throughput_per_user_kbps - other.throughput_per_user_kbps,
            };
        }
        synthesize_legacy_view(point);
    }

    CampaignSummary& summary = result.summary;
    summary.variants = num_variants;
    summary.points = num_points;
    bool any_chain = false;
    for (const CampaignPoint& point : result.points) {
        for (const eval::PointEvaluation& evaluation : point.evaluations) {
            if (evaluation.iterations > 0) {
                any_chain = true;
                ++summary.model_solves;
                summary.total_iterations += evaluation.iterations;
                if (evaluation.warm_parent >= 0) {
                    ++summary.warm_offered_solves;
                }
                if (evaluation.warm_started) {
                    ++summary.warm_started_solves;
                }
            }
            if (evaluation.has_confidence) {
                summary.sim_replications +=
                    static_cast<long long>(evaluation.sim.replications.size());
                summary.sim_events += evaluation.sim.events_executed;
            }
        }
    }
    summary.warm_start = any_chain && effective.solver.warm_start;
    result.variants = workload.variants;
    return result;
}

CampaignResult CampaignRunner::run(const ScenarioSpec& spec, const CampaignOptions& options) {
    const auto t0 = std::chrono::steady_clock::now();
    CampaignWorkload workload = build_campaign_workload(spec, options);
    const ScenarioSpec& effective = workload.effective;
    const std::vector<double>& rates = effective.rates;
    const std::size_t num_rates = rates.size();
    const std::size_t num_variants = workload.variants.size();
    const std::size_t num_methods = effective.methods.size();

    const int width = common::ThreadPool::resolve_thread_count(options.num_threads);
    common::ThreadPool* pool = width > 1 ? &engine_.pool(width) : nullptr;

    eval::GridOptions grid;
    grid.num_threads = width;
    grid.pool = pool;
    grid.warm_start = effective.solver.warm_start;
    if (options.solve_progress) {
        // Both dispatch modes report the flat batch index v * num_rates + r
        // (the single-grid path adds the v offset below).
        grid.progress = [&options, num_rates](std::size_t flat,
                                              const eval::PointEvaluation& evaluation) {
            CampaignPoint snapshot;
            snapshot.variant = flat / num_rates;
            snapshot.rate_index = flat % num_rates;
            snapshot.call_arrival_rate = evaluation.call_arrival_rate;
            snapshot.has_model = true;
            snapshot.model = evaluation.measures;
            snapshot.iterations = evaluation.iterations;
            snapshot.residual = evaluation.residual;
            snapshot.solve_seconds = evaluation.wall_seconds;
            snapshot.warm_parent = evaluation.warm_parent;
            snapshot.warm_started = evaluation.warm_started;
            options.solve_progress(flat, snapshot);
        };
    }

    std::vector<std::vector<eval::GridOutcome>> outcomes;
    std::size_t batch_waves = 0;
    std::size_t sequential_waves = 0;
    std::size_t batch_tasks = 0;
    if (options.sequential_dispatch) {
        // A/B baseline: one evaluate_grid per (backend, variant), grid
        // after grid — no cross-variant or cross-backend overlap. The
        // service's per-slice path (src/service/service.cpp) evaluates
        // exactly this shape, which is why the two stay byte-identical.
        outcomes.reserve(num_methods);
        for (std::size_t b = 0; b < num_methods; ++b) {
            auto backend = eval::BackendRegistry::global().find(effective.methods[b]);
            if (!backend.ok()) {
                // validate() checked membership; a vanished backend would
                // be a registry mutation between then and now.
                throw SpecError(backend.error().message, 0);
            }
            std::vector<eval::GridOutcome> per_backend;
            per_backend.reserve(num_variants);
            for (std::size_t v = 0; v < num_variants; ++v) {
                eval::GridOptions per_grid = grid;
                // Disjoint substream blocks across variants: grid point r
                // of variant v is experiment block (v * num_rates + r) —
                // the flat point index, so replication streams never
                // overlap between variants sharing the spec's seed.
                per_grid.grid_offset = workload.grid_offset(v);
                if (grid.progress) {
                    per_grid.progress = [&grid, v, num_rates](
                                            std::size_t r,
                                            const eval::PointEvaluation& evaluation) {
                        grid.progress(v * num_rates + r, evaluation);
                    };
                }
                per_backend.push_back(
                    backend.value()->evaluate_grid(workload.queries[v], rates, per_grid));
            }
            outcomes.push_back(std::move(per_backend));
        }
    } else {
        // Merged batch: every backend plans its (variant, rate[,
        // replication]) work and eval::evaluate_campaign runs the union as
        // one flat wave-ordered task set on the engine's pool — narrow
        // warm-start waves of one variant interleave with other variants'
        // wide waves and with DES replications. Each plan writes a
        // disjoint slice of the point table, so output stays a pure
        // function of the spec at every width and in both dispatch modes.
        eval::CampaignRequest request;
        request.backends = effective.methods;
        request.queries = workload.queries;
        request.rates = rates;
        auto evaluated =
            eval::evaluate_campaign(eval::BackendRegistry::global(), request, grid);
        if (!evaluated.ok()) {
            throw SpecError(evaluated.error().message, 0);
        }
        eval::CampaignEvaluation evaluation = evaluated.take();
        batch_waves = evaluation.stats.waves;
        sequential_waves = evaluation.stats.sequential_waves;
        batch_tasks = evaluation.stats.tasks;
        outcomes = std::move(evaluation.outcomes);
    }

    auto assembled = assemble_campaign(workload, std::move(outcomes));
    if (!assembled.ok()) {
        throw std::runtime_error(assembled.error().message);
    }
    CampaignResult result = assembled.take();
    result.summary.batch_waves = batch_waves;
    result.summary.sequential_waves = sequential_waves;
    result.summary.batch_tasks = batch_tasks;
    result.summary.threads = width;
    result.summary.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return result;
}

CampaignResult run_campaign(const ScenarioSpec& spec, const CampaignOptions& options) {
    return CampaignRunner(ctmc::default_engine()).run(spec, options);
}

}  // namespace gprsim::campaign
