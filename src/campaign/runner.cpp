#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <utility>

#include "core/handover.hpp"
#include "core/initial_guess.hpp"
#include "core/model.hpp"

namespace gprsim::campaign {

namespace {

/// Deviation vectors (solved distribution / own product form, elementwise)
/// awaiting their warm-start dependents, one slot per (variant, grid
/// index). A slot is only populated when the schedule has at least one
/// dependent for it, each dependent copies the vector exactly once
/// (claim), and the claim that consumes the last reference frees the
/// slot — so peak memory follows the bisection frontier, not the grid.
/// Thread-safety: stores and claims of one slot never overlap (the wave
/// barrier separates a point's solve from its children's solves); claims of
/// one slot from several same-wave children only race on the atomic
/// reference count, and every copy is sequenced before its own decrement.
class WarmStartCache {
public:
    WarmStartCache(std::size_t variants, std::size_t grid, const std::vector<int>& parent)
        : grid_(grid), slots_(variants * grid), remaining_(variants * grid) {
        std::vector<int> children(grid, 0);
        for (const int p : parent) {
            if (p >= 0) {
                ++children[static_cast<std::size_t>(p)];
            }
        }
        children_ = std::move(children);
        for (std::size_t v = 0; v < variants; ++v) {
            for (std::size_t i = 0; i < grid; ++i) {
                remaining_[v * grid + i].store(children_[i], std::memory_order_relaxed);
            }
        }
    }

    /// Whether the schedule has any dependent for this grid index (callers
    /// skip building the deviation vector otherwise).
    bool has_dependents(std::size_t index) const { return children_[index] > 0; }

    /// Keeps the deviation vector iff some later point claims it.
    void store(std::size_t variant, std::size_t index, std::vector<double> deviation) {
        if (children_[index] > 0) {
            slots_[variant * grid_ + index] = std::move(deviation);
        }
    }

    /// Returns the parent's deviation and releases one claim. A count of 1
    /// means every other claimant has already decremented, so this claimant
    /// owns the slot exclusively and can move the vector out instead of
    /// copying (a ~2x peak-memory saving on multi-million-state chains).
    std::vector<double> claim(std::size_t variant, std::size_t parent_index) {
        const std::size_t slot = variant * grid_ + parent_index;
        if (remaining_[slot].load(std::memory_order_acquire) == 1) {
            std::vector<double> last = std::move(slots_[slot]);
            remaining_[slot].store(0, std::memory_order_release);
            return last;
        }
        std::vector<double> copy = slots_[slot];
        if (remaining_[slot].fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::vector<double>().swap(slots_[slot]);
        }
        return copy;
    }

private:
    std::size_t grid_ = 0;
    std::vector<int> children_;  ///< dependents per grid index (variant-agnostic)
    std::vector<std::vector<double>> slots_;
    std::vector<std::atomic<int>> remaining_;
};

}  // namespace

SolveSchedule bisection_schedule(std::size_t count, bool warm_start) {
    SolveSchedule schedule;
    schedule.parent.assign(count, -1);
    if (count == 0) {
        return schedule;
    }
    if (!warm_start) {
        // Cold start: no dependencies, every point in one maximal wave.
        std::vector<int> all(count);
        std::iota(all.begin(), all.end(), 0);
        schedule.levels.push_back(std::move(all));
        return schedule;
    }
    schedule.levels.push_back({0});
    if (count == 1) {
        return schedule;
    }
    const int last = static_cast<int>(count) - 1;
    schedule.parent[static_cast<std::size_t>(last)] = 0;
    schedule.levels.push_back({last});
    std::vector<std::pair<int, int>> segments{{0, last}};
    while (!segments.empty()) {
        std::vector<int> level;
        std::vector<std::pair<int, int>> next;
        for (const auto& [a, b] : segments) {
            if (b - a <= 1) {
                continue;
            }
            const int mid = a + (b - a) / 2;
            // Nearest solved endpoint: the floor midpoint is never closer
            // to b, so the lower endpoint always wins ("ties down").
            schedule.parent[static_cast<std::size_t>(mid)] = a;
            level.push_back(mid);
            next.emplace_back(a, mid);
            next.emplace_back(mid, b);
        }
        if (!level.empty()) {
            schedule.levels.push_back(std::move(level));
        }
        segments = std::move(next);
    }
    return schedule;
}

CampaignResult CampaignRunner::run(const ScenarioSpec& spec, const CampaignOptions& options) {
    const auto t0 = std::chrono::steady_clock::now();
    ScenarioSpec effective = spec;
    if (options.force_cold) {
        effective.solver.warm_start = false;
    }
    std::vector<Variant> variants = effective.expand();  // validates the spec
    const std::vector<double>& rates = effective.rates;
    const std::size_t num_rates = rates.size();
    const std::size_t num_variants = variants.size();
    const std::size_t num_points = num_variants * num_rates;

    const bool chain = effective.method == Method::ctmc || effective.method == Method::both;
    const bool des = effective.method == Method::des || effective.method == Method::both;
    const int replications = des ? effective.simulation.replications : 0;

    CampaignResult result;
    result.name = effective.name;
    result.method = effective.method;
    result.rates = rates;
    result.points.resize(num_points);
    for (std::size_t v = 0; v < num_variants; ++v) {
        for (std::size_t r = 0; r < num_rates; ++r) {
            CampaignPoint& point = result.points[v * num_rates + r];
            point.variant = v;
            point.rate_index = r;
            point.call_arrival_rate = rates[r];
        }
    }

    // Erlang-only campaigns never touch the pool: each point is one
    // fixed-point handover balance plus closed forms, microseconds apiece.
    if (effective.method == Method::erlang) {
        for (CampaignPoint& point : result.points) {
            core::Parameters p = variants[point.variant].parameters;
            p.call_arrival_rate = point.call_arrival_rate;
            point.model = core::closed_form_measures(p, core::balance_handover(p));
            point.has_model = true;
        }
    }

    const SolveSchedule schedule =
        bisection_schedule(chain ? num_rates : 0, effective.solver.warm_start);
    WarmStartCache cache(num_variants, chain ? num_rates : 0, schedule.parent);

    // Flat task set, grouped into dependency waves: wave k holds every
    // variant's level-k solves, and the independent DES replications are
    // round-robined across ALL waves — they have no dependencies, so they
    // fill the otherwise-narrow later solve waves instead of serializing
    // every post-root solve behind the whole simulation batch. Wave
    // assignment never affects any output (each task writes its own slot
    // and pooling happens afterwards in point order).
    struct Task {
        bool is_replication = false;
        std::size_t variant = 0;
        std::size_t rate = 0;
        int replication = 0;
    };
    std::vector<std::vector<Task>> waves;
    if (chain) {
        waves.resize(schedule.levels.size());
        for (std::size_t level = 0; level < schedule.levels.size(); ++level) {
            for (const int index : schedule.levels[level]) {
                for (std::size_t v = 0; v < num_variants; ++v) {
                    waves[level].push_back({false, v, static_cast<std::size_t>(index), 0});
                }
            }
        }
    }
    std::vector<std::vector<sim::SimulationResults>> replication_results;
    if (des) {
        replication_results.assign(
            num_points,
            std::vector<sim::SimulationResults>(static_cast<std::size_t>(replications)));
        if (waves.empty()) {
            waves.resize(1);
        }
        std::size_t next_wave = 0;
        for (std::size_t v = 0; v < num_variants; ++v) {
            for (std::size_t r = 0; r < num_rates; ++r) {
                for (int rep = 0; rep < replications; ++rep) {
                    waves[next_wave].push_back({true, v, r, rep});
                    next_wave = (next_wave + 1) % waves.size();
                }
            }
        }
    }

    const int width = common::ThreadPool::resolve_thread_count(options.num_threads);
    std::mutex progress_mutex;

    const auto run_task = [&](const Task& task) {
        const std::size_t flat = task.variant * num_rates + task.rate;
        if (task.is_replication) {
            sim::ExperimentConfig experiment;
            experiment.base.cell = variants[task.variant].parameters;
            experiment.base.cell.call_arrival_rate = rates[task.rate];
            experiment.base.warmup_time = effective.simulation.warmup_time;
            experiment.base.batch_count = effective.simulation.batch_count;
            experiment.base.batch_duration = effective.simulation.batch_duration;
            experiment.base.tcp_enabled = effective.simulation.tcp;
            experiment.replications = replications;
            experiment.seed = effective.simulation.seed;
            // Replication r of flat point p always draws from substream
            // block p * R + r of the experiment seed: disjoint streams for
            // every task, identical trajectories at every thread count.
            const std::uint64_t block =
                static_cast<std::uint64_t>(flat) * static_cast<std::uint64_t>(replications) +
                static_cast<std::uint64_t>(task.replication);
            const sim::SimulationConfig config = sim::replication_config(experiment, block);
            replication_results[flat][static_cast<std::size_t>(task.replication)] =
                sim::NetworkSimulator(config).run();
            return;
        }

        core::Parameters p = variants[task.variant].parameters;
        p.call_arrival_rate = rates[task.rate];
        core::GprsModel model(p);
        const std::vector<double> product =
            core::product_form_initial(p, model.balanced(), model.space());
        ctmc::SolveOptions solve;
        solve.tolerance = effective.solver.tolerance;
        solve.num_threads = 1;  // the points are the parallelism
        const int parent = schedule.parent[task.rate];
        if (parent >= 0) {
            // Candidate 0 (preferred): the plain product form; candidate 1:
            // the target's product form carrying the parent's deviation.
            // The transfer must undercut half the product form's initial
            // residual to be adopted — measured on the Fig. 6 cell, that
            // margin separates every transfer that converges faster from
            // the near-ties that plateau — so a poisoned transfer never
            // costs iterations.
            std::vector<double> transferred =
                cache.claim(task.variant, static_cast<std::size_t>(parent));
            for (std::size_t s = 0; s < transferred.size(); ++s) {
                transferred[s] *= product[s];
            }
            solve.initial_candidates.push_back(product);
            solve.initial_candidates.push_back(std::move(transferred));
            solve.candidate_margin = 0.5;
        }
        const ctmc::SolveResult& solved = model.solve(solve, engine_);
        if (cache.has_dependents(task.rate)) {
            std::vector<double> deviation(solved.distribution.size());
            for (std::size_t s = 0; s < deviation.size(); ++s) {
                deviation[s] =
                    product[s] > 0.0 ? solved.distribution[s] / product[s] : 0.0;
            }
            cache.store(task.variant, task.rate, std::move(deviation));
        }

        CampaignPoint& point = result.points[flat];
        point.has_model = true;
        point.model =
            core::compute_measures(p, model.balanced(), model.space(), solved.distribution);
        point.iterations = static_cast<long long>(solved.iterations);
        point.residual = solved.residual;
        point.solve_seconds = solved.seconds;
        point.warm_parent = parent;
        point.warm_started = solved.initial_selected == 1;
        if (options.solve_progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            options.solve_progress(flat, point);
        }
    };

    for (const std::vector<Task>& wave : waves) {
        if (wave.empty()) {
            continue;
        }
        const int wave_width = std::min<int>(width, static_cast<int>(wave.size()));
        if (wave_width <= 1) {
            for (const Task& task : wave) {
                run_task(task);
            }
        } else {
            engine_.pool(wave_width).run(
                static_cast<int>(wave.size()),
                [&](int t) { run_task(wave[static_cast<std::size_t>(t)]); }, wave_width);
        }
    }

    // Serial, point-ordered post-processing: replication pooling, deltas,
    // and summary totals are all independent of execution order.
    for (std::size_t flat = 0; flat < num_points; ++flat) {
        CampaignPoint& point = result.points[flat];
        if (des) {
            point.sim = sim::pool_replications(std::move(replication_results[flat]));
            point.sim.threads_used = width;
            point.has_sim = true;
        }
        if (point.has_model && point.has_sim) {
            point.delta_cdt = point.model.carried_data_traffic -
                              point.sim.carried_data_traffic.mean;
            point.delta_plp = point.model.packet_loss_probability -
                              point.sim.packet_loss_probability.mean;
            point.delta_qd = point.model.queueing_delay - point.sim.queueing_delay.mean;
            point.delta_atu = point.model.throughput_per_user_kbps -
                              point.sim.throughput_per_user_kbps.mean;
        }
    }

    CampaignSummary& summary = result.summary;
    summary.variants = num_variants;
    summary.points = num_points;
    summary.warm_start = chain && effective.solver.warm_start;
    summary.threads = width;
    for (const CampaignPoint& point : result.points) {
        if (chain && point.has_model) {
            ++summary.model_solves;
            summary.total_iterations += point.iterations;
            if (point.warm_parent >= 0) {
                ++summary.warm_offered_solves;
            }
            if (point.warm_started) {
                ++summary.warm_started_solves;
            }
        }
        if (point.has_sim) {
            summary.sim_replications += replications;
            summary.sim_events += point.sim.events_executed;
        }
    }
    result.variants = std::move(variants);
    summary.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return result;
}

CampaignResult run_campaign(const ScenarioSpec& spec, const CampaignOptions& options) {
    return CampaignRunner(ctmc::default_engine()).run(spec, options);
}

}  // namespace gprsim::campaign
