// CampaignRunner: executes a ScenarioSpec by batching every (backend,
// variant, rate-grid) slice through the eval::BackendRegistry as ONE
// merged task set.
//
//   campaign layer   (this file + spec.hpp + sink.hpp)
//        ^ expands variants x rate grid into one eval::CampaignRequest and
//          calls the registry-level eval::evaluate_campaign (batch.hpp):
//          every backend plans its grids (plan_grids) and the merged
//          wave-ordered task set runs on the engine's shared pool, so one
//          variant's narrow warm-start waves interleave with the other
//          variants' wide waves and DES replications backfill idle solver
//          threads; pairwise deltas and summaries are post-processed
//          deterministically. CampaignOptions::sequential_dispatch keeps
//          the old one-evaluate_grid-per-(backend, variant) loop as the
//          A/B baseline — output is bitwise identical either way.
//   eval layer       eval::Evaluator / BackendRegistry / evaluate_campaign
//        ^ backends keep their batch internals: the ctmc backend plans the
//          deterministic bisection warm-start transfer schedule (deviation
//          from the product form, adopted only when it undercuts half the
//          cold start's residual — see eval/backends.cpp), the des backend
//          plans (point, replication) tasks on disjoint substream blocks
//   model/sim layer  core::GprsModel, sim::NetworkSimulator/replication
//   consumers        bench/fig*, examples/gprsim_cli ("campaign" command),
//                    out-of-tree code via find_package(gprsim)
//
// Adding an analysis route no longer touches this file: register a backend
// (eval::register_backend) and name it in the spec's "methods" list.
//
// Determinism. Backends inherit the engines' guarantees: per-point chain
// solves run single-threaded (the points are the parallelism), DES
// replication r of flat point p always draws from substream block p * R + r
// of the experiment seed (GridOptions::grid_offset keeps variants on
// disjoint blocks), and every reduction (replication pooling, deltas,
// summary totals) runs serially in point order after the parallel phase —
// so campaign output is bitwise invariant to CampaignOptions::num_threads
// AND to the dispatch mode (merged batch vs sequential grids).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "core/measures.hpp"
#include "ctmc/engine.hpp"
#include "eval/backends.hpp"
#include "sim/experiment.hpp"

namespace gprsim::campaign {

// Grid-schedule vocabulary re-exported from the eval layer (the bisection
// warm-start schedule moved into the ctmc backend with PR 4).
using eval::bisection_schedule;
using eval::SolveSchedule;

/// Measures of the campaign's first backend (the delta reference) minus
/// one other backend; all zero for the first backend itself.
struct MeasureDeltas {
    double cdt = 0.0;
    double plp = 0.0;
    double qd = 0.0;
    double atu = 0.0;
};

/// One (variant, arrival rate) cell of the campaign.
///
/// `evaluations` / `deltas` carry the full per-backend results, parallel to
/// CampaignResult::methods. The scalar fields below them are the legacy
/// two-column view the sinks and benches render: model columns come from
/// the first non-stochastic backend, sim columns from the first stochastic
/// one, and delta_* is model minus pooled simulator mean — exactly the
/// table layout the pre-registry "erlang|ctmc|des|both" campaigns produced.
struct CampaignPoint {
    std::size_t variant = 0;  ///< index into CampaignResult::variants
    std::size_t rate_index = 0;
    double call_arrival_rate = 0.0;

    std::vector<eval::PointEvaluation> evaluations;
    std::vector<MeasureDeltas> deltas;  ///< vs methods.front(), pairwise

    bool has_model = false;  ///< model columns valid
    core::Measures model;    ///< closed-form only under the erlang backend
    long long iterations = 0;
    double residual = 0.0;
    double solve_seconds = 0.0;
    /// Grid index whose deviation vector was offered as a warm-start
    /// candidate; -1 = root (product form only).
    int warm_parent = -1;
    /// Whether the transferred candidate beat the plain product form in
    /// the engine's residual comparison (always false for roots).
    bool warm_started = false;

    bool has_sim = false;  ///< sim columns valid
    sim::ExperimentResults sim;

    /// Model minus pooled simulator mean; valid when has_model && has_sim.
    double delta_cdt = 0.0;
    double delta_plp = 0.0;
    double delta_qd = 0.0;
    double delta_atu = 0.0;
};

struct CampaignOptions {
    /// Execution width for sharding tasks across the engine's pool:
    /// 0 = all hardware threads, <= 1 = serial. Never changes any output.
    int num_threads = 1;
    /// Overrides ScenarioSpec::SolverSpec::warm_start with false (the
    /// cold-start baseline the summary is compared against).
    bool force_cold = false;
    /// Non-empty: overrides ScenarioSpec::SolverSpec::method for every
    /// chain solve of the run (canonical ctmc::method_name spelling, or
    /// "auto"). The A/B knob behind the CLI's --solver-method flag; an
    /// unknown spelling surfaces as each point's invalid_query error.
    std::string solver_method_override;
    /// Dispatches one evaluate_grid per (backend, variant) instead of the
    /// merged cross-variant task set — the pre-batch behavior, kept as the
    /// A/B baseline (and for out-of-tree backends whose evaluate_grid has
    /// batch internals but no plan). Output is bitwise identical either
    /// way; only the wave count (CampaignSummary::batch_waves) and the
    /// wall clock change.
    bool sequential_dispatch = false;
    /// Called after every finished chain solve (under a lock, NOT in point
    /// order): flat point index and the solved point.
    std::function<void(std::size_t, const CampaignPoint&)> solve_progress;
};

struct CampaignSummary {
    std::size_t variants = 0;
    std::size_t points = 0;
    std::size_t model_solves = 0;
    /// Solves that were offered a transferred deviation candidate, and the
    /// subset where it won the residual comparison.
    std::size_t warm_offered_solves = 0;
    std::size_t warm_started_solves = 0;
    bool warm_start = false;
    /// Summed chain-solve iterations — the number to compare between a
    /// warm-started run and a force_cold run of the same spec.
    long long total_iterations = 0;
    long long sim_replications = 0;
    std::uint64_t sim_events = 0;
    /// Merged-batch accounting (zero under sequential_dispatch): waves the
    /// flat cross-(backend, variant) task set executed vs the waves the
    /// same work needs dispatched one (backend, variant) grid at a time.
    /// batch_waves < sequential_waves is the recovered cross-variant
    /// interleaving the summary line reports.
    std::size_t batch_waves = 0;
    std::size_t sequential_waves = 0;
    /// Tasks of the merged set (chain solves + simulator replications +
    /// whole-grid closures of plain backends); zero under sequential
    /// dispatch.
    std::size_t batch_tasks = 0;
    double wall_seconds = 0.0;
    int threads = 1;
};

struct CampaignResult {
    std::string name;
    /// Whether the spec carried a network block; gates the network axis
    /// columns in the sinks (single-cell campaigns keep the legacy layout).
    bool network = false;
    /// Backend names in evaluation (and delta-reference) order.
    std::vector<std::string> methods;
    std::vector<double> rates;
    std::vector<Variant> variants;
    /// Variant-major, rate-minor: points[v * rates.size() + r].
    std::vector<CampaignPoint> points;
    CampaignSummary summary;

    const CampaignPoint& at(std::size_t variant, std::size_t rate_index) const {
        return points[variant * rates.size() + rate_index];
    }
};

/// The expanded, execution-ready form of a spec: the effective spec (with
/// the CampaignOptions overrides folded in), its materialized variants, and
/// one ScenarioQuery per variant. This is the shared front half of every
/// campaign execution path — CampaignRunner::run and the evaluation
/// service (src/service/) both build the same workload, so a service
/// request and a one-shot CLI run evaluate literally identical queries.
struct CampaignWorkload {
    ScenarioSpec effective;
    std::vector<Variant> variants;
    std::vector<eval::ScenarioQuery> queries;  ///< parallel to `variants`

    std::size_t num_rates() const { return effective.rates.size(); }
    /// Substream/grid offset of variant v — the flat point index of its
    /// first grid point. EVERY dispatch path must pass this as
    /// GridOptions::grid_offset so DES replications of variant v draw from
    /// the same substream blocks regardless of who evaluates the slice.
    std::uint64_t grid_offset(std::size_t v) const {
        return static_cast<std::uint64_t>(v * num_rates());
    }
};

/// Applies force_cold / solver_method_override and expands the spec.
/// Throws SpecError on an invalid spec (same contract as expand()).
CampaignWorkload build_campaign_workload(const ScenarioSpec& spec,
                                         const CampaignOptions& options = {});

/// Assembles per-(backend, variant) grid outcomes — outcomes[b][v] in
/// workload.effective.methods x workload.variants order — into a finished
/// CampaignResult: per-point evaluations, pairwise deltas, the legacy
/// model/sim view, and the summary counters. The first failed outcome
/// (scanned backend-major, variant-minor) is returned as its typed error
/// with the message prefixed "campaign backend \"<name>\": ".
/// Execution-shape summary fields (threads, wall_seconds, batch_waves,
/// batch_tasks) are left zero for the caller.
common::Result<CampaignResult> assemble_campaign(
    const CampaignWorkload& workload,
    std::vector<std::vector<eval::GridOutcome>> outcomes);

/// Runs campaigns on a SolverEngine's pool; backends shard their grid tasks
/// (chain solves, simulator replications) on the same workers. Like the
/// engines, one runner should live as long as the workload.
class CampaignRunner {
public:
    explicit CampaignRunner(ctmc::SolverEngine& engine) : engine_(engine) {}

    CampaignRunner(const CampaignRunner&) = delete;
    CampaignRunner& operator=(const CampaignRunner&) = delete;

    /// Expands and executes the spec. Throws SpecError on an invalid spec
    /// and std::runtime_error when a backend reports a typed evaluation
    /// error (non-convergence, invalid query); the message carries the
    /// backend name, error code, and scenario context.
    CampaignResult run(const ScenarioSpec& spec, const CampaignOptions& options = {});

private:
    ctmc::SolverEngine& engine_;
};

/// Convenience wrapper on the process-wide default engine.
CampaignResult run_campaign(const ScenarioSpec& spec, const CampaignOptions& options = {});

}  // namespace gprsim::campaign
