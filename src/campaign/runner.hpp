// CampaignRunner: executes a ScenarioSpec as one flat task set on the
// shared parallel runtime.
//
//   campaign layer   (this file + spec.hpp + sink.hpp)
//        ^ expands variants x rate grid into solver tasks + DES replication
//          tasks, dispatches them on one common::ThreadPool (the
//          ctmc::SolverEngine's), pools and post-processes deterministically
//   model/sim layer  core::GprsModel, sim::NetworkSimulator/replication
//   consumers        bench/fig*, examples/gprsim_cli ("campaign" command)
//
// Warm-start cache. Chain solves across an arrival-rate grid are highly
// redundant, so the runner transfers information between neighboring
// points — but a raw neighbor distribution is a poor initial guess
// whenever the solution moves faster along the grid than the model's
// closed-form product approximation (on the paper's Fig. 6 cell it LOSES
// to the plain product-form start everywhere). What does transfer well is
// the neighbor's *deviation from its own product form*: the cache stores,
// per solved point, the elementwise ratio solved/product, and each
// dependent point offers the engine two candidate initials — the plain
// product form, and the target's product form with the parent's deviation
// grafted on. The engine evaluates one scaled residual per candidate (an
// O(nnz) pass, no iterations) and adopts the transfer only when it
// undercuts HALF the product form's residual (near-ties routinely
// mispredict the iteration count, so they go to the product form), which
// makes a poisoned transfer cost nothing while a good transfer cuts the
// remaining sweeps severalfold (measured: 140 -> 40 on Fig. 6 high-load
// points, 320 -> 190 across a 30%-GPRS cell).
//
// To keep the output bitwise invariant to the thread count, the "nearest
// solved neighbor" is NOT whatever happens to be finished first: each
// variant's grid gets a deterministic bisection schedule fixed at
// expansion time (first point from the product form alone, last point
// offered the first's deviation, then recursively every segment midpoint
// offered its nearest solved endpoint's). Every point's candidate set is
// therefore a pure function of the spec, the schedule has O(log n) depth
// (so up to n/2 points of one variant solve concurrently), and deviation
// vectors are released as soon as the last dependent has claimed them,
// keeping the cache at the O(active frontier) rather than O(grid).
//
// Determinism. Per-point solves run single-threaded (the points are the
// parallelism), DES replication r of flat point p always draws from
// substream block p * replications + r of the experiment seed, and every
// reduction (replication pooling, summary totals) runs serially in point
// order after the parallel phase — so campaign output is bitwise invariant
// to CampaignOptions::num_threads, the same guarantee the two engines give.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "campaign/spec.hpp"
#include "core/measures.hpp"
#include "ctmc/engine.hpp"
#include "sim/experiment.hpp"

namespace gprsim::campaign {

/// One (variant, arrival rate) cell of the campaign.
struct CampaignPoint {
    std::size_t variant = 0;  ///< index into CampaignResult::variants
    std::size_t rate_index = 0;
    double call_arrival_rate = 0.0;

    bool has_model = false;  ///< model columns valid (erlang/ctmc/both)
    core::Measures model;    ///< closed-form only under Method::erlang
    long long iterations = 0;
    double residual = 0.0;
    double solve_seconds = 0.0;
    /// Grid index whose deviation vector was offered as a warm-start
    /// candidate; -1 = root (product form only).
    int warm_parent = -1;
    /// Whether the transferred candidate beat the plain product form in
    /// the engine's residual comparison (always false for roots).
    bool warm_started = false;

    bool has_sim = false;  ///< sim columns valid (des/both)
    sim::ExperimentResults sim;

    /// Model minus pooled simulator mean; valid when has_model && has_sim.
    double delta_cdt = 0.0;
    double delta_plp = 0.0;
    double delta_qd = 0.0;
    double delta_atu = 0.0;
};

struct CampaignOptions {
    /// Execution width for sharding tasks across the engine's pool:
    /// 0 = all hardware threads, <= 1 = serial. Never changes any output.
    int num_threads = 1;
    /// Overrides ScenarioSpec::SolverSpec::warm_start with false (the
    /// cold-start baseline the summary is compared against).
    bool force_cold = false;
    /// Called after every finished chain solve (under a lock, NOT in point
    /// order): flat point index and the solved point.
    std::function<void(std::size_t, const CampaignPoint&)> solve_progress;
};

struct CampaignSummary {
    std::size_t variants = 0;
    std::size_t points = 0;
    std::size_t model_solves = 0;
    /// Solves that were offered a transferred deviation candidate, and the
    /// subset where it won the residual comparison.
    std::size_t warm_offered_solves = 0;
    std::size_t warm_started_solves = 0;
    bool warm_start = false;
    /// Summed chain-solve iterations — the number to compare between a
    /// warm-started run and a force_cold run of the same spec.
    long long total_iterations = 0;
    long long sim_replications = 0;
    std::uint64_t sim_events = 0;
    double wall_seconds = 0.0;
    int threads = 1;
};

struct CampaignResult {
    std::string name;
    Method method = Method::ctmc;
    std::vector<double> rates;
    std::vector<Variant> variants;
    /// Variant-major, rate-minor: points[v * rates.size() + r].
    std::vector<CampaignPoint> points;
    CampaignSummary summary;

    const CampaignPoint& at(std::size_t variant, std::size_t rate_index) const {
        return points[variant * rates.size() + rate_index];
    }
};

/// Deterministic per-variant solve schedule (exposed for tests): parent[i]
/// is the grid index point i warm-starts from (-1 = cold), and levels groups
/// the indices into dependency waves — every parent of a level-k point sits
/// in a level < k. warm_start = false yields a single all-cold level.
struct SolveSchedule {
    std::vector<int> parent;
    std::vector<std::vector<int>> levels;
};

SolveSchedule bisection_schedule(std::size_t count, bool warm_start);

/// Runs campaigns on a SolverEngine's pool; chain solves and simulator
/// replications interleave on the same workers. Like the engines, one
/// runner should live as long as the workload.
class CampaignRunner {
public:
    explicit CampaignRunner(ctmc::SolverEngine& engine) : engine_(engine) {}

    CampaignRunner(const CampaignRunner&) = delete;
    CampaignRunner& operator=(const CampaignRunner&) = delete;

    /// Expands and executes the spec. Throws SpecError on an invalid spec
    /// and std::runtime_error when a chain solve fails to converge.
    CampaignResult run(const ScenarioSpec& spec, const CampaignOptions& options = {});

private:
    ctmc::SolverEngine& engine_;
};

/// Convenience wrapper on the process-wide default engine.
CampaignResult run_campaign(const ScenarioSpec& spec, const CampaignOptions& options = {});

}  // namespace gprsim::campaign
