#include "campaign/sink.hpp"

#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gprsim::campaign {

namespace {

/// Shortest decimal that round-trips the exact double (max_digits10).
std::string number_cell(double value) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.*g",
                  std::numeric_limits<double>::max_digits10, value);
    return buffer;
}

std::string quoted_cell(const std::string& value) {
    if (value.find_first_of(",\"") == std::string::npos) {
        return value;
    }
    std::string out = "\"";
    for (const char c : value) {
        if (c == '"') {
            out += '"';
        }
        out += c;
    }
    out += '"';
    return out;
}

/// JSON string escape for labels/names (the only free-form strings here).
std::string json_string(const std::string& value) {
    std::string out = "\"";
    for (const char c : value) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
    out += '"';
    return out;
}

const char* const kCsvColumns[] = {
    "scenario", "variant", "label", "traffic_model", "reserved_pdch", "gprs_fraction",
    "coding_scheme", "max_gprs_sessions", "call_arrival_rate",
    "model_cdt", "model_plp", "model_qd", "model_atu", "model_mql", "model_cvt",
    "model_ags", "model_gsm_blocking", "model_gprs_blocking",
    "iterations", "residual", "warm_parent", "warm_started",
    "sim_cdt", "sim_cdt_hw", "sim_plp", "sim_plp_hw", "sim_qd", "sim_qd_hw",
    "sim_atu", "sim_atu_hw", "sim_cvt", "sim_cvt_hw", "sim_gsm_blocking",
    "sim_gsm_blocking_hw", "sim_gprs_blocking", "sim_gprs_blocking_hw",
    "sim_replications", "sim_events",
    "delta_cdt", "delta_plp", "delta_qd", "delta_atu",
};

/// Column list of one result: the fixed legacy layout, plus — only for
/// multi-method campaigns — four pairwise-delta columns per non-reference
/// backend, "delta_<measure>:<method>" = methods.front() minus <method>,
/// plus — only for network campaigns — the network axis columns and the
/// aggregated routing-area-update rate. Single-cell single-method
/// campaigns keep the exact 42-column legacy table.
std::vector<std::string> csv_columns(const CampaignResult& result) {
    std::vector<std::string> columns(std::begin(kCsvColumns), std::end(kCsvColumns));
    if (result.methods.size() > 1) {
        for (std::size_t b = 1; b < result.methods.size(); ++b) {
            for (const char* prefix :
                 {"delta_cdt:", "delta_plp:", "delta_qd:", "delta_atu:"}) {
                columns.push_back(prefix + result.methods[b]);
            }
        }
    }
    if (result.network) {
        for (const char* name :
             {"network_cells", "speed_kmh", "reuse_factor", "rau_rate"}) {
            columns.push_back(name);
        }
    }
    return columns;
}

std::vector<std::string> point_cells(const CampaignResult& result,
                                     const CampaignPoint& point) {
    const Variant& variant = result.variants[point.variant];
    std::vector<std::string> cells;
    cells.reserve(std::size(kCsvColumns));
    cells.push_back(result.name);
    cells.push_back(std::to_string(point.variant));
    cells.push_back(variant.label);
    cells.push_back(std::to_string(variant.traffic_model));
    cells.push_back(std::to_string(variant.reserved_pdch));
    cells.push_back(number_cell(variant.gprs_fraction));
    cells.push_back(core::coding_scheme_name(variant.coding_scheme));
    cells.push_back(std::to_string(variant.parameters.max_gprs_sessions));
    cells.push_back(number_cell(point.call_arrival_rate));
    if (point.has_model) {
        cells.push_back(number_cell(point.model.carried_data_traffic));
        cells.push_back(number_cell(point.model.packet_loss_probability));
        cells.push_back(number_cell(point.model.queueing_delay));
        cells.push_back(number_cell(point.model.throughput_per_user_kbps));
        cells.push_back(number_cell(point.model.mean_queue_length));
        cells.push_back(number_cell(point.model.carried_voice_traffic));
        cells.push_back(number_cell(point.model.average_gprs_sessions));
        cells.push_back(number_cell(point.model.gsm_blocking));
        cells.push_back(number_cell(point.model.gprs_blocking));
        cells.push_back(std::to_string(point.iterations));
        cells.push_back(number_cell(point.residual));
        cells.push_back(std::to_string(point.warm_parent));
        cells.push_back(point.warm_started ? "1" : "0");
    } else {
        cells.insert(cells.end(), 13, std::string());
    }
    if (point.has_sim) {
        const auto estimate = [&](const sim::MetricEstimate& e) {
            cells.push_back(number_cell(e.mean));
            cells.push_back(number_cell(e.half_width));
        };
        estimate(point.sim.carried_data_traffic);
        estimate(point.sim.packet_loss_probability);
        estimate(point.sim.queueing_delay);
        estimate(point.sim.throughput_per_user_kbps);
        estimate(point.sim.carried_voice_traffic);
        estimate(point.sim.gsm_blocking);
        estimate(point.sim.gprs_blocking);
        cells.push_back(std::to_string(point.sim.carried_data_traffic.batches));
        cells.push_back(std::to_string(point.sim.events_executed));
    } else {
        cells.insert(cells.end(), 16, std::string());
    }
    if (point.has_model && point.has_sim) {
        cells.push_back(number_cell(point.delta_cdt));
        cells.push_back(number_cell(point.delta_plp));
        cells.push_back(number_cell(point.delta_qd));
        cells.push_back(number_cell(point.delta_atu));
    } else {
        cells.insert(cells.end(), 4, std::string());
    }
    for (std::size_t b = 1; b < result.methods.size(); ++b) {
        if (b < point.deltas.size()) {
            const MeasureDeltas& d = point.deltas[b];
            cells.push_back(number_cell(d.cdt));
            cells.push_back(number_cell(d.plp));
            cells.push_back(number_cell(d.qd));
            cells.push_back(number_cell(d.atu));
        } else {
            cells.insert(cells.end(), 4, std::string());
        }
    }
    if (result.network) {
        cells.push_back(std::to_string(variant.network_cells));
        cells.push_back(number_cell(variant.speed_kmh));
        cells.push_back(std::to_string(variant.reuse_factor));
        // The reference backend's aggregated routing-area-update rate.
        cells.push_back(point.evaluations.empty()
                            ? std::string()
                            : number_cell(point.evaluations.front().rau_rate));
    }
    return cells;
}

}  // namespace

void write_campaign_csv(const CampaignResult& result, std::ostream& out) {
    const std::vector<std::string> columns = csv_columns(result);
    for (std::size_t c = 0; c < columns.size(); ++c) {
        out << (c > 0 ? "," : "") << columns[c];
    }
    out << '\n';
    for (const CampaignPoint& point : result.points) {
        const std::vector<std::string> cells = point_cells(result, point);
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out << (c > 0 ? "," : "") << quoted_cell(cells[c]);
        }
        out << '\n';
    }
}

bool write_campaign_csv(const CampaignResult& result, const std::string& path) {
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "campaign: cannot write %s\n", path.c_str());
        return false;
    }
    write_campaign_csv(result, out);
    return static_cast<bool>(out);
}

void write_campaign_json(const CampaignResult& result, std::ostream& out) {
    const CampaignSummary& s = result.summary;
    out << "{\n  \"name\": " << json_string(result.name) << ",\n  \"methods\": [";
    for (std::size_t m = 0; m < result.methods.size(); ++m) {
        out << (m > 0 ? ", " : "") << json_string(result.methods[m]);
    }
    out << "],\n  \"summary\": {\"variants\": " << s.variants
        << ", \"points\": " << s.points << ", \"model_solves\": " << s.model_solves
        << ", \"warm_offered_solves\": " << s.warm_offered_solves
        << ", \"warm_started_solves\": " << s.warm_started_solves
        << ", \"warm_start\": " << (s.warm_start ? "true" : "false")
        << ", \"total_iterations\": " << s.total_iterations
        << ", \"sim_replications\": " << s.sim_replications
        << ", \"sim_events\": " << s.sim_events
        << ", \"batch_tasks\": " << s.batch_tasks
        << ", \"batch_waves\": " << s.batch_waves
        << ", \"sequential_waves\": " << s.sequential_waves << ", \"wall_seconds\": "
        << number_cell(s.wall_seconds) << ", \"threads\": " << s.threads << "},\n"
        << "  \"points\": [\n";
    const std::vector<std::string> columns = csv_columns(result);
    for (std::size_t i = 0; i < result.points.size(); ++i) {
        const std::vector<std::string> cells = point_cells(result, result.points[i]);
        out << "    {";
        bool first = true;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (cells[c].empty()) {
                continue;  // omit columns the method did not produce
            }
            // Numeric columns are emitted bare; the three string columns
            // (scenario, label, coding_scheme) are quoted.
            const std::string& name = columns[c];
            const bool is_string =
                name == "scenario" || name == "label" || name == "coding_scheme";
            out << (first ? "" : ", ") << '"' << name << "\": "
                << (is_string ? json_string(cells[c]) : cells[c]);
            first = false;
        }
        if (result.network) {
            // Per-cell detail of the reference backend (the CSV keeps only
            // the network aggregate): the four paper measures per cell.
            for (const eval::PointEvaluation& evaluation :
                 result.points[i].evaluations) {
                if (evaluation.cell_measures.empty()) {
                    continue;
                }
                out << (first ? "" : ", ") << "\"cells\": [";
                for (std::size_t c = 0; c < evaluation.cell_measures.size(); ++c) {
                    const core::Measures& m = evaluation.cell_measures[c];
                    out << (c > 0 ? ", " : "") << "{\"cdt\": "
                        << number_cell(m.carried_data_traffic)
                        << ", \"plp\": " << number_cell(m.packet_loss_probability)
                        << ", \"qd\": " << number_cell(m.queueing_delay)
                        << ", \"atu\": " << number_cell(m.throughput_per_user_kbps)
                        << "}";
                }
                out << "]";
                first = false;
                break;
            }
        }
        out << (i + 1 < result.points.size() ? "},\n" : "}\n");
    }
    out << "  ]\n}\n";
}

bool write_campaign_json(const CampaignResult& result, const std::string& path) {
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "campaign: cannot write %s\n", path.c_str());
        return false;
    }
    write_campaign_json(result, out);
    return static_cast<bool>(out);
}

std::size_t CsvTable::column(const std::string& name) const {
    for (std::size_t c = 0; c < columns.size(); ++c) {
        if (columns[c] == name) {
            return c;
        }
    }
    throw std::out_of_range("CsvTable: no column named " + name);
}

const std::string& CsvTable::cell(std::size_t row, const std::string& name) const {
    return rows.at(row).at(column(name));
}

CsvTable read_csv(std::istream& in) {
    CsvTable table;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') {
            line.pop_back();
        }
        std::vector<std::string> cells;
        std::string cell;
        bool quoted = false;
        for (std::size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            if (quoted) {
                if (c == '"') {
                    if (i + 1 < line.size() && line[i + 1] == '"') {
                        cell += '"';
                        ++i;
                    } else {
                        quoted = false;
                    }
                } else {
                    cell += c;
                }
            } else if (c == '"') {
                quoted = true;
            } else if (c == ',') {
                cells.push_back(std::move(cell));
                cell.clear();
            } else {
                cell += c;
            }
        }
        cells.push_back(std::move(cell));
        if (table.columns.empty()) {
            table.columns = std::move(cells);
        } else {
            if (cells.size() != table.columns.size()) {
                throw std::runtime_error("read_csv: row " +
                                         std::to_string(table.rows.size() + 1) + " has " +
                                         std::to_string(cells.size()) + " cells, expected " +
                                         std::to_string(table.columns.size()));
            }
            table.rows.push_back(std::move(cells));
        }
    }
    return table;
}

void print_campaign_summary(const CampaignResult& result, std::FILE* out) {
    const CampaignSummary& s = result.summary;
    std::string methods;
    for (const std::string& method : result.methods) {
        methods += methods.empty() ? "" : "+";
        methods += method;
    }
    std::fprintf(out, "\ncampaign '%s' (%s): %zu variants x %zu rates = %zu points\n",
                 result.name.c_str(), methods.c_str(), s.variants, result.rates.size(),
                 s.points);
    if (s.model_solves > 0) {
        std::fprintf(out,
                     "  chain solves: %zu (%zu of %zu offered transfers warm-started, "
                     "warm start %s), total solver iterations: %lld\n",
                     s.model_solves, s.warm_started_solves, s.warm_offered_solves,
                     s.warm_start ? "on" : "off", s.total_iterations);
    }
    if (s.sim_replications > 0) {
        std::fprintf(out, "  simulator replications: %lld (%.2e events)\n",
                     s.sim_replications, static_cast<double>(s.sim_events));
    }
    if (s.batch_waves > 0) {
        // Cross-variant interleaving: the merged task set runs every
        // (backend, variant) grid's wave w together, so fewer waves than
        // the per-grid sequential dispatch means more tasks per dispatch.
        std::fprintf(out,
                     "  task set: %zu tasks in %zu merged waves "
                     "(sequential dispatch: %zu waves)\n",
                     s.batch_tasks, s.batch_waves, s.sequential_waves);
    }
    std::fprintf(out, "  wall %.2f s on %d thread%s\n", s.wall_seconds, s.threads,
                 s.threads == 1 ? "" : "s");
}

}  // namespace gprsim::campaign
