// Result sinks for campaign runs: a flat CSV table (one row per point,
// doubles at full round-trip precision), a JSON document (points +
// summary), and the human-readable summary block every campaign consumer
// prints. A small CSV reader ships alongside the writer so downstream
// tooling — and the round-trip tests — can consume the files without a
// spreadsheet dependency.
#pragma once

#include <cstdio>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/runner.hpp"

namespace gprsim::campaign {

/// Column layout of write_campaign_csv, in order — the legacy two-column
/// view of CampaignPoint: model columns come from the first non-stochastic
/// backend (empty when every method is stochastic), sim and delta columns
/// are empty when no "des"-style backend ran. Doubles are printed with
/// max_digits10 precision, so reading a cell back with strtod reproduces
/// the exact bits.
///
///   scenario, variant, label, traffic_model, reserved_pdch, gprs_fraction,
///   coding_scheme, max_gprs_sessions, call_arrival_rate,
///   model_cdt, model_plp, model_qd, model_atu, model_mql, model_cvt,
///   model_ags, model_gsm_blocking, model_gprs_blocking,
///   iterations, residual, warm_parent, warm_started,
///   sim_cdt, sim_cdt_hw, sim_plp, sim_plp_hw, sim_qd, sim_qd_hw,
///   sim_atu, sim_atu_hw, sim_cvt, sim_cvt_hw, sim_gsm_blocking,
///   sim_gsm_blocking_hw, sim_gprs_blocking, sim_gprs_blocking_hw,
///   sim_replications, sim_events,
///   delta_cdt, delta_plp, delta_qd, delta_atu
///
/// Multi-method campaigns append four pairwise-delta columns per
/// non-reference backend — delta_cdt:<method>, delta_plp:<method>,
/// delta_qd:<method>, delta_atu:<method> — holding methods.front() minus
/// that backend (CampaignPoint::deltas). Single-method campaigns keep the
/// exact legacy column set above.
void write_campaign_csv(const CampaignResult& result, std::ostream& out);

/// Writes to a file; returns false (with a message on stderr) on I/O error.
bool write_campaign_csv(const CampaignResult& result, const std::string& path);

/// JSON mirror of the CSV: {"name", "methods": [...], "summary": {...},
/// "points": [...]} with the same per-point fields.
void write_campaign_json(const CampaignResult& result, std::ostream& out);
bool write_campaign_json(const CampaignResult& result, const std::string& path);

/// Parsed CSV: a header plus rows of raw cells (no type coercion).
struct CsvTable {
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;

    /// Index of a named column; throws std::out_of_range when absent.
    std::size_t column(const std::string& name) const;
    /// Cell by (row, column name); empty cells return "".
    const std::string& cell(std::size_t row, const std::string& name) const;
};

/// Reads a CSV document produced by write_campaign_csv (quoted cells with
/// embedded commas/quotes are handled; newlines inside cells are not).
/// Throws std::runtime_error on ragged rows.
CsvTable read_csv(std::istream& in);

/// The campaign summary block: points, solves, warm-start share, total
/// solver iterations (the warm-vs-cold comparison number), replications,
/// events, wall clock, threads.
void print_campaign_summary(const CampaignResult& result, std::FILE* out);

}  // namespace gprsim::campaign
