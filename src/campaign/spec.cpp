#include "campaign/spec.hpp"

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "campaign/json.hpp"
#include "core/sweep.hpp"
#include "eval/registry.hpp"
#include "traffic/threegpp.hpp"
#include "traffic/trace.hpp"

namespace gprsim::campaign {

namespace {

traffic::TrafficModelPreset preset_for_model(int model_id, int line) {
    switch (model_id) {
        case 1: return traffic::traffic_model_1();
        case 2: return traffic::traffic_model_2();
        case 3: return traffic::traffic_model_3();
        default:
            throw SpecError("traffic_model must be 1, 2 or 3, got " +
                                std::to_string(model_id),
                            line);
    }
}

int require_int(const JsonValue& value, const std::string& key) {
    const double number = value.as_number();
    if (number != std::floor(number) || number < static_cast<double>(INT_MIN) ||
        number > static_cast<double>(INT_MAX)) {
        throw SpecError("\"" + key + "\" must be an integer", value.line());
    }
    return static_cast<int>(number);
}

/// Seeds are uint64-valued; doubles represent integers exactly up to 2^53,
/// which is the precision the JSON number syntax can deliver anyway.
std::uint64_t require_seed(const JsonValue& value, const std::string& key) {
    const double number = value.as_number();
    if (number != std::floor(number) || number < 0.0 || number > 9.007199254740992e15) {
        throw SpecError("\"" + key + "\" must be a non-negative integer <= 2^53",
                        value.line());
    }
    return static_cast<std::uint64_t>(number);
}

/// Scalar-or-array convention of the axis keys: 2 and [2, 4] are both valid.
std::vector<double> number_axis(const JsonValue& value, const std::string& key) {
    std::vector<double> out;
    if (value.is_array()) {
        if (value.items().empty()) {
            throw SpecError("\"" + key + "\" must not be an empty array", value.line());
        }
        for (const JsonValue& item : value.items()) {
            out.push_back(item.as_number());
        }
    } else {
        out.push_back(value.as_number());
    }
    return out;
}

std::vector<int> int_axis(const JsonValue& value, const std::string& key) {
    std::vector<int> out;
    if (value.is_array()) {
        if (value.items().empty()) {
            throw SpecError("\"" + key + "\" must not be an empty array", value.line());
        }
        for (const JsonValue& item : value.items()) {
            out.push_back(require_int(item, key));
        }
    } else {
        out.push_back(require_int(value, key));
    }
    return out;
}

core::CodingScheme parse_scheme(const JsonValue& value) {
    const std::string& name = value.as_string();
    for (const auto& [scheme, spellings] :
         {std::pair{core::CodingScheme::cs1, std::pair{"cs1", "CS-1"}},
          std::pair{core::CodingScheme::cs2, std::pair{"cs2", "CS-2"}},
          std::pair{core::CodingScheme::cs3, std::pair{"cs3", "CS-3"}},
          std::pair{core::CodingScheme::cs4, std::pair{"cs4", "CS-4"}}}) {
        if (name == spellings.first || name == spellings.second) {
            return scheme;
        }
    }
    throw SpecError("unknown coding scheme \"" + name + "\" (use \"cs1\"..\"cs4\")",
                    value.line());
}

/// Expands legacy aliases: a plain backend name stays itself, "both" (the
/// pre-registry spelling of "model and simulator side by side") becomes
/// {"ctmc", "des"}. Registry membership is checked afterwards so the error
/// carries the key's line.
std::vector<std::string> expand_method_aliases(const std::string& name) {
    if (name == "both") {
        return {"ctmc", "des"};
    }
    return {name};
}

/// Throws the line-carrying SpecError for names missing from the registry
/// or duplicated in the list.
void check_method_names(const std::vector<std::string>& methods, int line) {
    for (std::size_t i = 0; i < methods.size(); ++i) {
        const std::string& name = methods[i];
        if (!eval::BackendRegistry::global().contains(name)) {
            std::string known;
            for (const eval::BackendInfo& info : eval::BackendRegistry::global().list()) {
                known += known.empty() ? "" : ", ";
                known += "\"" + info.name + "\"";
            }
            throw SpecError("unknown method \"" + name + "\" (registered backends: " +
                                known + "; \"both\" = ctmc + des)",
                            line);
        }
        for (std::size_t j = 0; j < i; ++j) {
            if (methods[j] == name) {
                throw SpecError("method \"" + name + "\" listed twice", line);
            }
        }
    }
}

std::vector<std::string> parse_methods(const JsonValue& value) {
    std::vector<std::string> methods;
    if (value.is_array()) {
        if (value.items().empty()) {
            throw SpecError("\"methods\" must not be an empty array", value.line());
        }
        for (const JsonValue& item : value.items()) {
            for (std::string& name : expand_method_aliases(item.as_string())) {
                methods.push_back(std::move(name));
            }
        }
    } else {
        methods = expand_method_aliases(value.as_string());
    }
    check_method_names(methods, value.line());
    return methods;
}

/// The traffic axis accepts integers (Table 3 presets), "trace:<file>"
/// strings (arrival traces fitted during expand()), or an array mixing
/// both. Fills the spec's two traffic vectors; any string without the
/// "trace:" prefix is rejected with the key's line.
void parse_traffic_axis(const JsonValue& value, ScenarioSpec& spec) {
    spec.traffic_models.clear();
    spec.traffic_traces.clear();
    const auto add_entry = [&spec](const JsonValue& item) {
        if (item.is_string()) {
            const std::string& text = item.as_string();
            if (text.rfind("trace:", 0) != 0 || text.size() <= 6) {
                throw SpecError(
                    "\"traffic_model\" strings must be \"trace:<file>\", got \"" + text +
                        "\"",
                    item.line());
            }
            spec.traffic_traces.push_back(text.substr(6));
        } else {
            spec.traffic_models.push_back(require_int(item, "traffic_model"));
        }
    };
    if (value.is_array()) {
        if (value.items().empty()) {
            throw SpecError("\"traffic_model\" must not be an empty array", value.line());
        }
        for (const JsonValue& item : value.items()) {
            add_entry(item);
        }
    } else {
        add_entry(value);
    }
}

std::vector<double> parse_rates(const JsonValue& value) {
    if (value.is_array()) {
        return number_axis(value, "rates");
    }
    if (!value.is_object()) {
        throw SpecError("\"rates\" must be an array or {\"first\",\"last\",\"count\"}",
                        value.line());
    }
    double first = 0.0;
    double last = 0.0;
    int count = 0;
    for (const JsonValue::Member& member : value.members()) {
        const auto& [key, v] = member;
        if (key == "first") {
            first = v.as_number();
        } else if (key == "last") {
            last = v.as_number();
        } else if (key == "count") {
            count = require_int(v, key);
        } else {
            throw SpecError("unknown \"rates\" key \"" + key + "\"", v.line());
        }
    }
    try {
        return core::arrival_rate_grid(first, last, count);
    } catch (const std::invalid_argument&) {
        throw SpecError("\"rates\" needs count >= 2 and last >= first", value.line());
    }
}

SolverSpec parse_solver(const JsonValue& value) {
    SolverSpec solver;
    for (const JsonValue::Member& member : value.members()) {
        const auto& [key, v] = member;
        if (key == "tolerance") {
            solver.tolerance = v.as_number();
        } else if (key == "warm_start") {
            solver.warm_start = v.as_bool();
        } else if (key == "method") {
            solver.method = v.as_string();
        } else {
            throw SpecError("unknown \"solver\" key \"" + key + "\"", v.line());
        }
    }
    return solver;
}

SimulationSpec parse_simulation(const JsonValue& value) {
    SimulationSpec simulation;
    for (const JsonValue::Member& member : value.members()) {
        const auto& [key, v] = member;
        if (key == "replications") {
            simulation.replications = require_int(v, key);
        } else if (key == "seed") {
            simulation.seed = require_seed(v, key);
        } else if (key == "warmup") {
            simulation.warmup_time = v.as_number();
        } else if (key == "batch_count") {
            simulation.batch_count = require_int(v, key);
        } else if (key == "batch_duration") {
            simulation.batch_duration = v.as_number();
        } else if (key == "tcp") {
            simulation.tcp = v.as_bool();
        } else {
            throw SpecError("unknown \"simulation\" key \"" + key + "\"", v.line());
        }
    }
    return simulation;
}

NetworkSpec parse_network(const JsonValue& value) {
    NetworkSpec network;
    network.enabled = true;
    for (const JsonValue::Member& member : value.members()) {
        const auto& [key, v] = member;
        if (key == "cells") {
            network.cell_counts = int_axis(v, key);
        } else if (key == "speeds_kmh") {
            network.speeds_kmh = number_axis(v, key);
        } else if (key == "reuse") {
            network.reuse_factors = int_axis(v, key);
        } else if (key == "topology") {
            network.topology = v.as_string();
        } else if (key == "wrap") {
            network.wrap = v.as_bool();
        } else if (key == "ra_block") {
            network.ra_block = require_int(v, key);
        } else if (key == "reference_speed_kmh") {
            network.reference_speed_kmh = v.as_number();
        } else if (key == "drift") {
            network.drift = v.as_number();
        } else if (key == "inner") {
            network.inner_backend = v.as_string();
        } else if (key == "tolerance") {
            network.outer_tolerance = v.as_number();
        } else if (key == "damping") {
            network.outer_damping = v.as_number();
        } else if (key == "max_outer_iterations") {
            network.outer_max_iterations = require_int(v, key);
        } else {
            throw SpecError("unknown \"network\" key \"" + key + "\"", v.line());
        }
    }
    return network;
}

/// Most-square factorization of a cell count: the largest divisor at most
/// sqrt(n) becomes the width (so width <= height); primes fall back to the
/// 1 x n strip. Keeps the "cells" axis a single number in specs.
std::pair<int, int> lattice_shape(int cells) {
    int width = 1;
    for (int d = 1; d * d <= cells; ++d) {
        if (cells % d == 0) {
            width = d;
        }
    }
    return {width, cells / width};
}

ApproxSpec parse_approx(const JsonValue& value) {
    ApproxSpec approx;
    for (const JsonValue::Member& member : value.members()) {
        const auto& [key, v] = member;
        if (key == "fp_tolerance") {
            approx.fp_tolerance = v.as_number();
        } else if (key == "fp_damping") {
            approx.fp_damping = v.as_number();
        } else if (key == "fp_max_iterations") {
            approx.fp_max_iterations = require_int(v, key);
        } else if (key == "ode_rel_tol") {
            approx.ode_rel_tol = v.as_number();
        } else if (key == "ode_abs_tol") {
            approx.ode_abs_tol = v.as_number();
        } else if (key == "ode_max_steps") {
            approx.ode_max_steps = require_int(v, key);
        } else if (key == "ode_stationary_rate") {
            approx.ode_stationary_rate = v.as_number();
        } else {
            throw SpecError("unknown \"approx\" key \"" + key + "\"", v.line());
        }
    }
    return approx;
}

}  // namespace

ScenarioSpec& ScenarioSpec::named(std::string value) {
    name = std::move(value);
    return *this;
}

ScenarioSpec& ScenarioSpec::with_method(const std::string& value) {
    methods = expand_method_aliases(value);
    return *this;
}

ScenarioSpec& ScenarioSpec::with_methods(std::vector<std::string> values) {
    methods = std::move(values);
    return *this;
}

ScenarioSpec& ScenarioSpec::over_traffic_models(std::vector<int> values) {
    traffic_models = std::move(values);
    return *this;
}

ScenarioSpec& ScenarioSpec::over_traffic_traces(std::vector<std::string> values) {
    traffic_traces = std::move(values);
    return *this;
}

ScenarioSpec& ScenarioSpec::over_reserved_pdch(std::vector<int> values) {
    reserved_pdch = std::move(values);
    return *this;
}

ScenarioSpec& ScenarioSpec::over_gprs_fractions(std::vector<double> values) {
    gprs_fractions = std::move(values);
    return *this;
}

ScenarioSpec& ScenarioSpec::over_coding_schemes(std::vector<core::CodingScheme> values) {
    coding_schemes = std::move(values);
    return *this;
}

ScenarioSpec& ScenarioSpec::over_session_limits(std::vector<int> values) {
    max_gprs_sessions = std::move(values);
    return *this;
}

ScenarioSpec& ScenarioSpec::with_rate_grid(double first, double last, int count) {
    try {
        rates = core::arrival_rate_grid(first, last, count);
    } catch (const std::invalid_argument&) {
        throw SpecError("with_rate_grid: need count >= 2 and last >= first", 0);
    }
    return *this;
}

ScenarioSpec& ScenarioSpec::with_rates(std::vector<double> values) {
    rates = std::move(values);
    return *this;
}

ScenarioSpec& ScenarioSpec::with_tolerance(double value) {
    solver.tolerance = value;
    return *this;
}

ScenarioSpec& ScenarioSpec::with_warm_start(bool value) {
    solver.warm_start = value;
    return *this;
}

ScenarioSpec& ScenarioSpec::with_solver_method(std::string value) {
    solver.method = std::move(value);
    return *this;
}

ScenarioSpec& ScenarioSpec::with_replications(int value) {
    simulation.replications = value;
    return *this;
}

ScenarioSpec& ScenarioSpec::with_seed(std::uint64_t value) {
    simulation.seed = value;
    return *this;
}

ScenarioSpec& ScenarioSpec::with_approx(ApproxSpec value) {
    approx = value;
    return *this;
}

ScenarioSpec& ScenarioSpec::with_network(NetworkSpec value) {
    network = std::move(value);
    network.enabled = true;
    return *this;
}

std::size_t ScenarioSpec::variant_count() const {
    const std::size_t network_axes =
        network.enabled ? network.cell_counts.size() * network.speeds_kmh.size() *
                              network.reuse_factors.size()
                        : 1;
    return (traffic_models.size() + traffic_traces.size()) * reserved_pdch.size() *
           gprs_fractions.size() * coding_schemes.size() * max_gprs_sessions.size() *
           network_axes;
}

bool ScenarioSpec::uses_backend(const std::string& backend) const {
    return std::find(methods.begin(), methods.end(), backend) != methods.end();
}

void ScenarioSpec::validate() const {
    if (name.empty()) {
        throw SpecError("campaign needs a non-empty name", 0);
    }
    if (methods.empty()) {
        throw SpecError("campaign needs at least one method (a registered backend name)",
                        0);
    }
    check_method_names(methods, 0);
    for (const char c : name) {
        // The name is the only user-controlled string reaching the CSV/JSON
        // sinks; control characters would corrupt their row/escape framing.
        if (static_cast<unsigned char>(c) < 0x20) {
            throw SpecError("campaign name must not contain control characters", 0);
        }
    }
    if ((traffic_models.empty() && traffic_traces.empty()) || reserved_pdch.empty() ||
        gprs_fractions.empty() || coding_schemes.empty() || max_gprs_sessions.empty()) {
        throw SpecError("every variant axis needs at least one value", 0);
    }
    for (const int model_id : traffic_models) {
        preset_for_model(model_id, 0);  // throws on an unknown id
    }
    for (std::size_t i = 0; i < traffic_traces.size(); ++i) {
        if (traffic_traces[i].empty()) {
            throw SpecError("traffic trace path must not be empty", 0);
        }
        for (std::size_t j = 0; j < i; ++j) {
            if (traffic_traces[j] == traffic_traces[i]) {
                throw SpecError("traffic trace \"" + traffic_traces[i] + "\" listed twice",
                                0);
            }
        }
    }
    for (const double fraction : gprs_fractions) {
        if (fraction <= 0.0 || fraction >= 1.0) {
            throw SpecError("gprs_fraction must be in (0, 1), got " +
                                std::to_string(fraction),
                            0);
        }
    }
    if (rates.empty()) {
        throw SpecError("campaign needs a non-empty arrival-rate grid", 0);
    }
    for (std::size_t i = 0; i < rates.size(); ++i) {
        if (rates[i] <= 0.0) {
            throw SpecError("arrival rates must be positive", 0);
        }
        if (i > 0 && rates[i] <= rates[i - 1]) {
            throw SpecError("arrival rates must be strictly ascending", 0);
        }
    }
    if (solver.tolerance <= 0.0) {
        throw SpecError("solver tolerance must be positive", 0);
    }
    if (approx.fp_tolerance <= 0.0) {
        throw SpecError("approx fp_tolerance must be positive", 0);
    }
    if (approx.fp_damping <= 0.0 || approx.fp_damping > 1.0) {
        throw SpecError("approx fp_damping must be in (0, 1]", 0);
    }
    if (approx.fp_max_iterations < 1) {
        throw SpecError("approx fp_max_iterations must be at least 1", 0);
    }
    if (approx.ode_rel_tol <= 0.0 || approx.ode_abs_tol <= 0.0) {
        throw SpecError("approx ode_rel_tol/ode_abs_tol must be positive", 0);
    }
    if (approx.ode_max_steps < 1) {
        throw SpecError("approx ode_max_steps must be at least 1", 0);
    }
    if (approx.ode_stationary_rate <= 0.0) {
        throw SpecError("approx ode_stationary_rate must be positive", 0);
    }
    if (network.enabled) {
        if (network.cell_counts.empty() || network.speeds_kmh.empty() ||
            network.reuse_factors.empty()) {
            throw SpecError("every network axis needs at least one value", 0);
        }
        for (const int cells : network.cell_counts) {
            if (cells < 1) {
                throw SpecError("network cells must be at least 1", 0);
            }
        }
        for (const double speed : network.speeds_kmh) {
            if (speed <= 0.0) {
                throw SpecError("network speeds_kmh must be positive", 0);
            }
        }
        for (const int reuse : network.reuse_factors) {
            if (reuse < 1) {
                throw SpecError("network reuse factors must be at least 1", 0);
            }
        }
        if (network.topology != "grid4" && network.topology != "grid8" &&
            network.topology != "hex" && network.topology != "clique") {
            throw SpecError("unknown network topology \"" + network.topology + "\"", 0);
        }
        if (network.ra_block < 0) {
            throw SpecError("network ra_block must be non-negative", 0);
        }
        if (network.reference_speed_kmh <= 0.0) {
            throw SpecError("network reference_speed_kmh must be positive", 0);
        }
        if (network.drift < 0.0 || network.drift >= 1.0) {
            throw SpecError("network drift must lie in [0, 1)", 0);
        }
        if (network.inner_backend.empty() ||
            network.inner_backend.rfind("network", 0) == 0) {
            throw SpecError("network inner backend must name a single-cell backend", 0);
        }
        check_method_names({network.inner_backend}, 0);
        if (network.outer_tolerance <= 0.0) {
            throw SpecError("network tolerance must be positive", 0);
        }
        if (network.outer_damping <= 0.0 || network.outer_damping > 1.0) {
            throw SpecError("network damping must be in (0, 1]", 0);
        }
        if (network.outer_max_iterations < 1) {
            throw SpecError("network max_outer_iterations must be at least 1", 0);
        }
    }
    if (uses_backend("des")) {
        if (simulation.replications < 1) {
            throw SpecError("simulation needs at least one replication", 0);
        }
        if (simulation.batch_count < 2) {
            throw SpecError("simulation needs at least two batches", 0);
        }
        if (simulation.warmup_time < 0.0 || simulation.batch_duration <= 0.0) {
            throw SpecError("simulation warmup/batch_duration out of range", 0);
        }
    }
}

std::vector<Variant> ScenarioSpec::expand() const {
    validate();
    // Unified traffic axis: the Table 3 presets, then each trace file
    // fitted once per expand() (traffic/trace.hpp). A fit failure —
    // unreadable file, degenerate trace — is a SpecError naming the path.
    struct TrafficEntry {
        int model_id = 0;  ///< 0 for trace entries
        std::string trace;
        traffic::TrafficModelPreset preset;
    };
    std::vector<TrafficEntry> traffic_axis;
    traffic_axis.reserve(traffic_models.size() + traffic_traces.size());
    for (const int model_id : traffic_models) {
        traffic_axis.push_back({model_id, {}, preset_for_model(model_id, 0)});
    }
    for (const std::string& path : traffic_traces) {
        auto fitted = traffic::fit_trace_file(path);
        if (!fitted.ok()) {
            throw SpecError("traffic trace \"" + path + "\": " + fitted.error().message,
                            0);
        }
        traffic_axis.push_back({0, path, std::move(fitted.value().preset)});
    }
    std::vector<Variant> variants;
    variants.reserve(variant_count());
    for (const TrafficEntry& entry : traffic_axis) {
        const int model_id = entry.model_id;
        const traffic::TrafficModelPreset& preset = entry.preset;
        for (const int pdch : reserved_pdch) {
            for (const double fraction : gprs_fractions) {
                for (const core::CodingScheme scheme : coding_schemes) {
                    for (const int sessions : max_gprs_sessions) {
                        Variant variant;
                        variant.traffic_model = model_id;
                        variant.traffic_trace = entry.trace;
                        variant.reserved_pdch = pdch;
                        variant.gprs_fraction = fraction;
                        variant.coding_scheme = scheme;
                        variant.max_gprs_sessions = sessions;

                        core::Parameters p = core::Parameters::with_traffic_model(preset);
                        p.reserved_pdch = pdch;
                        p.gprs_fraction = fraction;
                        p.total_channels = total_channels;
                        p.buffer_capacity = buffer_capacity;
                        p.flow_control_threshold = flow_control_threshold;
                        p.block_error_rate = block_error_rate;
                        p = core::with_coding_scheme(std::move(p), scheme);
                        if (sessions > 0) {
                            p.max_gprs_sessions = sessions;
                        }
                        p.call_arrival_rate = rates.front();
                        p.validate();  // std::invalid_argument names the field
                        variant.parameters = p;

                        char label[160];
                        if (entry.trace.empty()) {
                            std::snprintf(label, sizeof(label),
                                          "tm%d pdch=%d gprs=%g%% %s M=%d", model_id,
                                          pdch, 100.0 * fraction,
                                          core::coding_scheme_name(scheme),
                                          p.max_gprs_sessions);
                        } else {
                            // Trace variants label by the fitted preset's name
                            // ("trace:<basename>") in place of the tm id.
                            std::snprintf(label, sizeof(label),
                                          "%s pdch=%d gprs=%g%% %s M=%d",
                                          preset.name.c_str(), pdch, 100.0 * fraction,
                                          core::coding_scheme_name(scheme),
                                          p.max_gprs_sessions);
                        }
                        variant.label = label;
                        if (!network.enabled) {
                            variants.push_back(std::move(variant));
                            continue;
                        }
                        // Network axes, innermost: cells > speed > reuse.
                        for (const int cells : network.cell_counts) {
                            for (const double speed : network.speeds_kmh) {
                                for (const int reuse : network.reuse_factors) {
                                    Variant cell_variant = variant;
                                    cell_variant.network_cells = cells;
                                    const auto [nx, ny] = lattice_shape(cells);
                                    cell_variant.cells_x = nx;
                                    cell_variant.cells_y = ny;
                                    cell_variant.speed_kmh = speed;
                                    cell_variant.reuse_factor = reuse;
                                    char suffix[64];
                                    std::snprintf(suffix, sizeof(suffix),
                                                  " cells=%d v=%gkm/h reuse=%d", cells,
                                                  speed, reuse);
                                    cell_variant.label += suffix;
                                    variants.push_back(std::move(cell_variant));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return variants;
}

namespace {

ScenarioSpec interpret_spec(const JsonValue& root) {
    if (!root.is_object()) {
        throw SpecError("campaign spec must be a JSON object", root.line());
    }

    ScenarioSpec spec;
    bool have_rates = false;
    for (const JsonValue::Member& member : root.members()) {
        const auto& [key, value] = member;
        if (key == "name") {
            spec.name = value.as_string();
        } else if (key == "method" || key == "methods") {
            spec.methods = parse_methods(value);
        } else if (key == "traffic_model") {
            parse_traffic_axis(value, spec);
        } else if (key == "reserved_pdch") {
            spec.reserved_pdch = int_axis(value, key);
        } else if (key == "gprs_fraction") {
            spec.gprs_fractions = number_axis(value, key);
        } else if (key == "coding_scheme") {
            spec.coding_schemes.clear();
            if (value.is_array()) {
                for (const JsonValue& item : value.items()) {
                    spec.coding_schemes.push_back(parse_scheme(item));
                }
                if (spec.coding_schemes.empty()) {
                    throw SpecError("\"coding_scheme\" must not be an empty array",
                                    value.line());
                }
            } else {
                spec.coding_schemes.push_back(parse_scheme(value));
            }
        } else if (key == "max_gprs_sessions") {
            spec.max_gprs_sessions = int_axis(value, key);
        } else if (key == "channels") {
            spec.total_channels = require_int(value, key);
        } else if (key == "buffer") {
            spec.buffer_capacity = require_int(value, key);
        } else if (key == "eta") {
            spec.flow_control_threshold = value.as_number();
        } else if (key == "bler") {
            spec.block_error_rate = value.as_number();
        } else if (key == "rates") {
            spec.rates = parse_rates(value);
            have_rates = true;
        } else if (key == "solver") {
            spec.solver = parse_solver(value);
        } else if (key == "simulation") {
            spec.simulation = parse_simulation(value);
        } else if (key == "approx") {
            spec.approx = parse_approx(value);
        } else if (key == "network") {
            spec.network = parse_network(value);
        } else {
            throw SpecError("unknown campaign key \"" + key + "\"", value.line());
        }
    }
    if (!have_rates) {
        throw SpecError("campaign spec needs a \"rates\" key", root.line());
    }
    spec.validate();
    return spec;
}

}  // namespace

ScenarioSpec parse_spec(const std::string& text) {
    // Both parse failures and typed-accessor mismatches during
    // interpretation surface as JsonError; re-throw every one as SpecError
    // so callers have a single line-carrying exception type.
    try {
        return interpret_spec(parse_json(text));
    } catch (const JsonError& e) {
        throw SpecError(e.what(), e.line(), /*annotate=*/false);
    }
}

ScenarioSpec parse_spec_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw SpecError("cannot read campaign spec file: " + path, 0);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ScenarioSpec spec = parse_spec(buffer.str());
    // Relative trace paths resolve against the spec file's directory, so a
    // campaign and its captures travel together.
    const auto slash = path.find_last_of('/');
    if (slash != std::string::npos) {
        const std::string dir = path.substr(0, slash + 1);
        for (std::string& trace : spec.traffic_traces) {
            if (!trace.empty() && trace.front() != '/') {
                trace = dir + trace;
            }
        }
    }
    return spec;
}

}  // namespace gprsim::campaign
