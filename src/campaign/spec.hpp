// Declarative scenario campaigns (the batched front end of the paper's
// evaluation): a ScenarioSpec names a cartesian product of cell
// configurations — traffic model x reserved PDCHs x GPRS fraction x coding
// scheme x session cap — crossed with an arrival-rate grid, and names the
// eval backends each point runs through: any list of names registered in
// eval::BackendRegistry ("erlang", "ctmc", "des", "mm1k-approx", or an
// out-of-tree backend). Specs come from a small JSON-ish text format
// (parse_spec, with line-numbered errors) or from the chainable builder
// methods; CampaignRunner (runner.hpp) expands and executes them.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/coding_scheme.hpp"
#include "core/parameters.hpp"

namespace gprsim::campaign {

/// Spec-level error (parse or validation) with the 1-based line of the
/// offending construct; line() is 0 for programmatically built specs.
class SpecError : public std::invalid_argument {
public:
    /// `annotate` appends " (line N)" to the message; pass false when the
    /// message already carries its position (e.g. a rethrown JsonError).
    SpecError(const std::string& message, int line, bool annotate = true)
        : std::invalid_argument(annotate && line > 0
                                    ? message + " (line " + std::to_string(line) + ")"
                                    : message),
          line_(line) {}

    int line() const { return line_; }

private:
    int line_ = 0;
};

/// Chain-solve settings shared by every model point of the campaign.
struct SolverSpec {
    double tolerance = 1e-9;
    /// Warm-start each point from its already-solved nearest grid neighbor
    /// (runner.hpp describes the deterministic schedule). false = every
    /// point starts cold from the product-form guess.
    bool warm_start = true;
    /// Iteration scheme for the chain solves, by canonical
    /// ctmc::method_name spelling; "auto" (the default) lets the engine's
    /// cost model decide per point. NOTE this selects the iteration scheme
    /// of each solve — dispatch modes (sequential vs merged batch) are a
    /// runner concern (CampaignOptions::sequential_dispatch), not a solver
    /// method.
    std::string method = "auto";
};

/// Replication-experiment settings shared by every DES point.
struct SimulationSpec {
    int replications = 4;
    std::uint64_t seed = 1;
    double warmup_time = 1500.0;
    int batch_count = 10;
    double batch_duration = 1500.0;  ///< [s]
    bool tcp = true;                 ///< TCP Reno vs open-loop sources
};

/// Approximation-backend knobs (the "fixed-point" and "fluid" evaluators)
/// shared by every point; mirrors eval::ApproxKnobs. Backends that do not
/// approximate ignore the block.
struct ApproxSpec {
    double fp_tolerance = 1e-10;    ///< fixed-point residual target
    double fp_damping = 1.0;        ///< iterate step fraction in (0, 1]
    int fp_max_iterations = 5000;
    double ode_rel_tol = 1e-8;      ///< fluid RK4(5) relative tolerance
    double ode_abs_tol = 1e-10;
    long long ode_max_steps = 200000;
    double ode_stationary_rate = 1e-9;  ///< drift-norm stationarity bound [1/s]
};

/// Multi-cell network block (the "network-fp" / "network-des" evaluators).
/// `enabled` gates everything: a spec without a "network" block expands to
/// the classic single-cell campaign. The three vectors are variant axes
/// crossed into the cartesian product (innermost, after max_gprs_sessions);
/// the scalars are shared by every variant. Mirrors eval::NetworkKnobs.
struct NetworkSpec {
    bool enabled = false;
    /// Cell-count axis; each count n becomes the most-square w x h lattice
    /// with w <= h (largest divisor of n at most sqrt(n)).
    std::vector<int> cell_counts{4};
    std::vector<double> speeds_kmh{3.0};  ///< mobility axis [km/h]
    std::vector<int> reuse_factors{1};    ///< frequency-reuse pattern axis
    std::string topology = "grid4";       ///< grid4 | grid8 | hex | clique
    bool wrap = true;                     ///< torus vs hard lattice edge
    int ra_block = 0;                     ///< routing-area tile, 0 = one RA
    double reference_speed_kmh = 3.0;     ///< speed at which dwell = preset
    double drift = 0.0;                   ///< eastward bias in [0, 1)
    std::string inner_backend = "ctmc";   ///< network-fp per-cell solver
    double outer_tolerance = 1e-12;       ///< inflow residual target
    double outer_damping = 1.0;           ///< inflow step fraction (0, 1]
    int outer_max_iterations = 50;
};

/// One resolved cell configuration of the cartesian product. `parameters`
/// is complete except for call_arrival_rate, which the runner sets per grid
/// point.
struct Variant {
    std::string label;  ///< e.g. "tm3 pdch=1 gprs=5% CS-2"
    int traffic_model = 1;      ///< Table 3 preset id; 0 for trace variants
    /// Trace file path when this variant's traffic came from a fitted
    /// arrival trace ("traffic_model": "trace:<file>"); empty for presets.
    std::string traffic_trace;
    int reserved_pdch = 1;
    double gprs_fraction = 0.05;
    core::CodingScheme coding_scheme = core::CodingScheme::cs2;
    int max_gprs_sessions = 0;  ///< 0 = the traffic-model preset's M
    core::Parameters parameters;

    // --- network axes (meaningful only when NetworkSpec::enabled) --------
    int network_cells = 0;  ///< 0 = single-cell campaign (no network block)
    int cells_x = 0;        ///< lattice shape resolved from network_cells
    int cells_y = 0;
    double speed_kmh = 0.0;
    int reuse_factor = 0;
};

struct ScenarioSpec {
    std::string name = "campaign";
    /// Registered backend names each point is evaluated with, in order.
    /// The first backend is the delta reference (runner.hpp); duplicates
    /// are rejected. Legacy single-method strings parse as one-element
    /// lists and "both" expands to {"ctmc", "des"}.
    std::vector<std::string> methods{"ctmc"};

    // --- variant axes (cartesian product, outermost first) ---------------
    std::vector<int> traffic_models{1};
    /// Trace-workload extension of the traffic axis: arrival-trace files,
    /// each fitted to an IPP/3GPP model during expand() (traffic/trace.hpp)
    /// and crossed into the product after the integer presets. Spec files
    /// spell these as "traffic_model": "trace:<file>" entries.
    std::vector<std::string> traffic_traces;
    std::vector<int> reserved_pdch{1};
    std::vector<double> gprs_fractions{0.05};
    std::vector<core::CodingScheme> coding_schemes{core::CodingScheme::cs2};
    /// Session-cap axis; 0 keeps the preset M of the traffic model.
    std::vector<int> max_gprs_sessions{0};

    // --- scalar overrides shared by every variant ------------------------
    int total_channels = 20;
    int buffer_capacity = 100;
    double flow_control_threshold = 0.7;
    double block_error_rate = 0.0;

    /// Arrival-rate grid (the x-axis); required, ascending.
    std::vector<double> rates;

    SolverSpec solver;
    SimulationSpec simulation;
    ApproxSpec approx;
    NetworkSpec network;

    // --- chainable builders ----------------------------------------------
    ScenarioSpec& named(std::string value);
    /// Single backend ("ctmc") or legacy alias ("both" -> ctmc + des).
    ScenarioSpec& with_method(const std::string& value);
    ScenarioSpec& with_methods(std::vector<std::string> values);
    ScenarioSpec& over_traffic_models(std::vector<int> values);
    /// Trace-workload axis: arrival-trace file paths (fitted in expand()).
    ScenarioSpec& over_traffic_traces(std::vector<std::string> values);
    ScenarioSpec& over_reserved_pdch(std::vector<int> values);
    ScenarioSpec& over_gprs_fractions(std::vector<double> values);
    ScenarioSpec& over_coding_schemes(std::vector<core::CodingScheme> values);
    ScenarioSpec& over_session_limits(std::vector<int> values);
    /// Evenly spaced grid [first, last] with count >= 2 points.
    ScenarioSpec& with_rate_grid(double first, double last, int count);
    ScenarioSpec& with_rates(std::vector<double> values);
    ScenarioSpec& with_tolerance(double value);
    ScenarioSpec& with_warm_start(bool value);
    /// Iteration scheme (SolverSpec::method); "auto" = engine cost model.
    ScenarioSpec& with_solver_method(std::string value);
    ScenarioSpec& with_replications(int value);
    ScenarioSpec& with_seed(std::uint64_t value);
    /// Approximation-backend knob block (fixed-point / fluid).
    ScenarioSpec& with_approx(ApproxSpec value);
    /// Multi-cell network block; sets enabled = true.
    ScenarioSpec& with_network(NetworkSpec value);

    /// Number of variants (product of the axis sizes) and grid points.
    std::size_t variant_count() const;
    std::size_t point_count() const { return variant_count() * rates.size(); }

    /// Whether `backend` appears in `methods`.
    bool uses_backend(const std::string& backend) const;

    /// Throws SpecError when the spec is inconsistent (empty axes, empty or
    /// unsorted grid, bad ranges, a method name missing from the global
    /// BackendRegistry). Axis entries are validated individually; the
    /// per-variant Parameters::validate runs during expand().
    void validate() const;

    /// Validates, then materializes the cartesian product in deterministic
    /// order: the traffic axis (integer presets first, then traces, each in
    /// listed order, outermost) > reserved_pdch > gprs_fractions >
    /// coding_schemes > max_gprs_sessions > [network.cell_counts >
    /// network.speeds_kmh > network.reuse_factors] (innermost; network axes
    /// only when the network block is enabled). The runner's point order,
    /// the sinks' row order, and the benches' table indexing all rely on
    /// this order.
    std::vector<Variant> expand() const;
};

/// Parses the JSON-ish spec format. Top-level keys:
///   "name"               string
///   "methods"            array of registered backend names, e.g.
///                        ["ctmc", "des", "mm1k-approx"]
///   "method"             legacy single-string form: any backend name, or
///                        the alias "both" (= ["ctmc", "des"])
///   "traffic_model"      1|2|3 or "trace:<file>" (an arrival trace fitted
///                        to an IPP/3GPP model), or an array mixing both;
///                        presets expand before traces regardless of the
///                        listed order
///   "reserved_pdch"      int or array
///   "gprs_fraction"      number in (0,1) or array
///   "coding_scheme"      "cs1".."cs4" (or "CS-1".."CS-4"), or an array
///   "max_gprs_sessions"  int or array (0 = preset M)
///   "channels"           int        "buffer"   int
///   "eta"                number     "bler"     number
///   "rates"              array of numbers, or {"first","last","count"}
///   "solver"             {"tolerance", "warm_start", "method"}
///   "simulation"         {"replications","seed","warmup","batch_count",
///                         "batch_duration","tcp"}
///   "approx"             {"fp_tolerance","fp_damping","fp_max_iterations",
///                         "ode_rel_tol","ode_abs_tol","ode_max_steps",
///                         "ode_stationary_rate"}
///   "network"            {"cells" int or array, "speeds_kmh" number or
///                         array, "reuse" int or array, "topology","wrap",
///                         "ra_block","reference_speed_kmh","drift",
///                         "inner","tolerance","damping",
///                         "max_outer_iterations"}; presence of the block
///                         enables multi-cell expansion
/// Unknown keys are rejected. All errors — syntax and semantic alike — are
/// thrown as SpecError carrying the offending 1-based line.
ScenarioSpec parse_spec(const std::string& text);

/// Reads and parses a spec file; throws SpecError when unreadable.
/// Relative "trace:<file>" paths are resolved against the spec file's
/// directory, so campaign specs can ship next to their captures.
ScenarioSpec parse_spec_file(const std::string& path);

}  // namespace gprsim::campaign
