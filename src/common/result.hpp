// Expected-style result type and the typed evaluation error that crosses
// the gprsim::eval API boundary instead of exceptions.
//
// The eval layer's contract is "no exception escapes evaluate() /
// evaluate_grid()": backends translate every internal failure — a chain
// solve that did not converge, an inconsistent Parameters set, an unknown
// backend name — into an EvalError carrying a machine-checkable code plus a
// human-readable message with the scenario's key parameters, and return it
// inside a Result<T>. Consumers above the boundary (campaign, CLI, tests)
// decide whether to rethrow, retry, or report.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace gprsim::common {

/// Machine-checkable failure class of an evaluation.
enum class EvalErrorCode {
    /// The ScenarioQuery itself is inconsistent (non-positive rate, knobs
    /// out of range, Parameters::validate failure).
    invalid_query,
    /// The backend's iteration ran out of budget before reaching its
    /// tolerance; the message carries residual/iterations and the scenario.
    non_convergence,
    /// No backend registered under the requested name.
    unknown_backend,
    /// register_backend collided with an existing name.
    duplicate_backend,
    /// The backend cannot evaluate this (otherwise valid) query.
    unsupported,
    /// Anything else a backend caught at the boundary (bad_alloc, logic
    /// errors in third-party backends, ...).
    internal,
    /// The service's bounded admission queue is full; retry later. Never
    /// produced by backends themselves — only by the serving layer.
    saturated,
    /// The request was cancelled by the client before it completed.
    cancelled,
};

inline const char* eval_error_code_name(EvalErrorCode code) {
    switch (code) {
        case EvalErrorCode::invalid_query: return "invalid_query";
        case EvalErrorCode::non_convergence: return "non_convergence";
        case EvalErrorCode::unknown_backend: return "unknown_backend";
        case EvalErrorCode::duplicate_backend: return "duplicate_backend";
        case EvalErrorCode::unsupported: return "unsupported";
        case EvalErrorCode::internal: return "internal";
        case EvalErrorCode::saturated: return "saturated";
        case EvalErrorCode::cancelled: return "cancelled";
    }
    return "unknown";
}

/// Typed error crossing the eval API boundary. `message` is complete on its
/// own (it embeds the scenario context); `code` lets callers branch without
/// string matching.
struct EvalError {
    EvalErrorCode code = EvalErrorCode::internal;
    std::string message;

    /// "non_convergence: <message>" — the one-line form the CLI prints.
    std::string to_string() const {
        return std::string(eval_error_code_name(code)) + ": " + message;
    }
};

/// Minimal expected-style carrier: either a T or an EvalError. (The repo
/// targets C++20, so std::expected is not available.) value()/error() are
/// checked with assert in debug builds; callers test ok() first.
template <typename T>
class [[nodiscard]] Result {
public:
    Result(T value) : storage_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
    Result(EvalError error) : storage_(std::move(error)) {}    // NOLINT(google-explicit-constructor)

    bool ok() const { return std::holds_alternative<T>(storage_); }
    explicit operator bool() const { return ok(); }

    T& value() {
        assert(ok());
        return std::get<T>(storage_);
    }
    const T& value() const {
        assert(ok());
        return std::get<T>(storage_);
    }
    /// Moves the value out (for heavy payloads like per-point vectors).
    T take() {
        assert(ok());
        return std::move(std::get<T>(storage_));
    }

    const EvalError& error() const {
        assert(!ok());
        return std::get<EvalError>(storage_);
    }

    T value_or(T fallback) const {
        return ok() ? std::get<T>(storage_) : std::move(fallback);
    }

private:
    std::variant<T, EvalError> storage_;
};

/// Result for operations with no payload (registration, validation).
using Status = Result<std::monostate>;

inline Status ok_status() { return Status(std::monostate{}); }

}  // namespace gprsim::common
