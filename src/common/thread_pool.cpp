#include "common/thread_pool.hpp"

#include <algorithm>

namespace gprsim::common {

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(num_threads, 1)) {
    workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
    for (int t = 0; t < num_threads_ - 1; ++t) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

int ThreadPool::hardware_threads() {
    return std::max(1u, std::thread::hardware_concurrency());
}

int ThreadPool::resolve_thread_count(int requested) {
    if (requested == 0) {
        return hardware_threads();
    }
    return std::max(requested, 1);
}

void ThreadPool::execute_tasks() {
    while (true) {
        const int t = next_task_.fetch_add(1, std::memory_order_relaxed);
        if (t >= num_tasks_) {
            return;
        }
        try {
            (*task_)(t);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!first_error_) {
                first_error_ = std::current_exception();
            }
        }
    }
}

void ThreadPool::worker_loop() {
    std::uint64_t seen_generation = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
            if (stop_) {
                return;
            }
            seen_generation = generation_;
        }
        if (worker_tickets_.fetch_add(1, std::memory_order_relaxed) < worker_seats_) {
            execute_tasks();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++workers_done_;
        }
        done_cv_.notify_one();
    }
}

void ThreadPool::run(int num_tasks, const std::function<void(int)>& task, int max_width) {
    if (num_tasks <= 0) {
        return;
    }
    const int width = max_width <= 0 ? num_threads_ : std::min(max_width, num_threads_);
    if (workers_.empty() || num_tasks == 1 || width == 1) {
        for (int t = 0; t < num_tasks; ++t) {
            task(t);
        }
        return;
    }

    std::lock_guard<std::mutex> run_lock(run_mutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        task_ = &task;
        num_tasks_ = num_tasks;
        next_task_.store(0, std::memory_order_relaxed);
        worker_tickets_.store(0, std::memory_order_relaxed);
        worker_seats_ = width - 1;  // the calling thread takes one seat
        workers_done_ = 0;
        first_error_ = nullptr;
        ++generation_;
    }
    start_cv_.notify_all();
    execute_tasks();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock,
                      [&] { return workers_done_ == static_cast<int>(workers_.size()); });
        task_ = nullptr;
        if (first_error_) {
            std::exception_ptr error = first_error_;
            first_error_ = nullptr;
            lock.unlock();
            std::rethrow_exception(error);
        }
    }
}

void ThreadPool::run_tasks(std::span<const std::function<void()>> tasks, int max_width) {
    if (tasks.empty()) {
        return;
    }
    run(
        static_cast<int>(tasks.size()),
        [&tasks](int t) { tasks[static_cast<std::size_t>(t)](); }, max_width);
}

}  // namespace gprsim::common
