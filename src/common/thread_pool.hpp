// Reusable fixed-size worker pool for fork-join parallelism, shared by the
// CTMC solver engine (row ranges of an operator) and the simulation
// experiment engine (independent replications). The pool is created once
// (thread spawn is ~100us per worker) and reused across sweeps, residual
// evaluations, whole solves, and replication batches, so the per-dispatch
// overhead is two mutex handshakes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace gprsim::common {

/// Fork-join pool: run(num_tasks, task) invokes task(t) for every
/// t in [0, num_tasks) across the workers plus the calling thread and
/// blocks until all tasks finished. Concurrent run() calls from different
/// threads are serialized; tasks must not call run() on the same pool.
class ThreadPool {
public:
    /// `num_threads` <= 1 means no workers: run() executes inline.
    explicit ThreadPool(int num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total execution width (workers + calling thread).
    int size() const { return num_threads_; }

    /// Executes task(0) .. task(num_tasks - 1), blocking until done.
    /// Tasks are claimed dynamically, so uneven task costs load-balance.
    /// `max_width` caps the number of threads (including the caller) that
    /// claim tasks; 0 means the full pool. A pool wider than the requested
    /// solve width therefore never over-parallelizes a narrower job.
    /// The first exception thrown by a task is rethrown here.
    void run(int num_tasks, const std::function<void(int)>& task, int max_width = 0);

    /// Heterogeneous counterpart of run(): executes every closure of
    /// `tasks` exactly once, blocking until all finished. This is the
    /// dispatch shape of a merged batch wave (eval/batch.hpp), where one
    /// flat task set mixes chain solves, simulator replications, and
    /// whole-grid closures of different backends. Same claiming, width,
    /// and error semantics as run().
    void run_tasks(std::span<const std::function<void()>> tasks, int max_width = 0);

    /// Number of concurrent threads the hardware supports (>= 1).
    static int hardware_threads();

    /// Repo-wide thread-count convention: 0 -> all hardware threads,
    /// otherwise max(1, requested). Shared by the solver and experiment
    /// engines so every --threads flag means the same thing.
    static int resolve_thread_count(int requested);

private:
    void worker_loop();
    void execute_tasks();

    int num_threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    std::mutex run_mutex_;  // serializes concurrent run() callers

    // Current job; guarded by mutex_ except for the atomic cursors.
    const std::function<void(int)>* task_ = nullptr;
    int num_tasks_ = 0;
    std::atomic<int> next_task_{0};
    std::atomic<int> worker_tickets_{0};  // seats for workers beyond the caller
    int worker_seats_ = 0;
    std::uint64_t generation_ = 0;
    int workers_done_ = 0;
    std::exception_ptr first_error_;
    bool stop_ = false;
};

}  // namespace gprsim::common
