// Basic integer types shared across the library layers (CTMC substrate,
// cell model, traffic processes).
#pragma once

#include <cstdint>

namespace gprsim::common {

/// Index of a state in a (possibly very large) finite Markov chain.
/// 64-bit: the largest chain in the GPRS study has ~22 million states and
/// ~240 million transitions, which overflows 32-bit nonzero counters.
using index_type = std::int64_t;

}  // namespace gprsim::common
