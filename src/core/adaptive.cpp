#include "core/adaptive.hpp"

#include <stdexcept>

#include "core/model.hpp"

namespace gprsim::core {

AdaptationResult recommend_reservation(Parameters base, const QosTargets& targets,
                                       int max_reservation, ctmc::SolveOptions solve) {
    if (max_reservation < 0 || max_reservation >= base.total_channels) {
        throw std::invalid_argument(
            "recommend_reservation: max_reservation must leave at least one GSM channel");
    }
    if (solve.tolerance == ctmc::SolveOptions{}.tolerance) {
        solve.tolerance = 1e-9;  // dimensioning accuracy; much faster than default
    }

    AdaptationResult best;
    bool have_fallback = false;
    for (int pdch = 0; pdch <= max_reservation; ++pdch) {
        base.reserved_pdch = pdch;
        base.validate();
        GprsModel model(base);
        model.solve(solve);
        const Measures m = model.measures();
        const bool voice_ok = m.gsm_blocking <= targets.max_gsm_blocking;
        const bool data_ok = m.packet_loss_probability <= targets.max_packet_loss &&
                             m.queueing_delay <= targets.max_queueing_delay;
        if (voice_ok &&
            (!have_fallback ||
             m.packet_loss_probability < best.measures.packet_loss_probability)) {
            best.reserved_pdch = pdch;
            best.measures = m;
            best.feasible = false;
            have_fallback = true;
        }
        if (voice_ok && data_ok) {
            best.reserved_pdch = pdch;
            best.measures = m;
            best.feasible = true;
            best.evaluated = pdch + 1;
            return best;
        }
    }
    best.evaluated = max_reservation + 1;
    return best;
}

}  // namespace gprsim::core
