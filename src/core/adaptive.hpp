// Adaptive PDCH management (extension; the paper's future work, citing its
// companion work on adaptive performance management [14]).
//
// The paper's conclusions note that the right number of reserved PDCHs is a
// tradeoff between GSM and GPRS performance and should follow the traffic
// load. This module closes that loop: given QoS targets for both services,
// it recommends the smallest reservation meeting the data-side targets
// without violating the voice-side constraint — the decision an adaptive
// controller would re-evaluate as load estimates change.
#pragma once

#include "ctmc/solver.hpp"
#include "core/measures.hpp"
#include "core/parameters.hpp"

namespace gprsim::core {

struct QosTargets {
    double max_packet_loss = 1e-2;      ///< PLP ceiling for GPRS
    double max_queueing_delay = 2.0;    ///< seconds
    double max_gsm_blocking = 1.0;      ///< voice constraint (1 = unconstrained)
};

struct AdaptationResult {
    int reserved_pdch = 0;   ///< recommended N_GPRS
    Measures measures;       ///< model measures at the recommendation
    bool feasible = false;   ///< all targets met at the recommendation?
    int evaluated = 0;       ///< chain solves spent
};

/// Smallest reservation in [0, max_reservation] meeting `targets` at the
/// load in `base` (base.reserved_pdch is ignored). If no reservation
/// qualifies, returns the configuration with the lowest packet loss among
/// those satisfying the voice constraint (feasible = false) — the
/// best-effort answer an online controller would apply.
AdaptationResult recommend_reservation(Parameters base, const QosTargets& targets,
                                       int max_reservation = 8,
                                       ctmc::SolveOptions solve = {});

}  // namespace gprsim::core
