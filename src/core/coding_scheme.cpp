#include "core/coding_scheme.hpp"

#include <stdexcept>

namespace gprsim::core {

double coding_scheme_rate_kbps(CodingScheme scheme) {
    switch (scheme) {
        case CodingScheme::cs1:
            return 9.05;
        case CodingScheme::cs2:
            return 13.4;
        case CodingScheme::cs3:
            return 15.6;
        case CodingScheme::cs4:
            return 21.4;
    }
    throw std::invalid_argument("coding_scheme_rate_kbps: unknown scheme");
}

const char* coding_scheme_name(CodingScheme scheme) {
    switch (scheme) {
        case CodingScheme::cs1:
            return "CS-1";
        case CodingScheme::cs2:
            return "CS-2";
        case CodingScheme::cs3:
            return "CS-3";
        case CodingScheme::cs4:
            return "CS-4";
    }
    throw std::invalid_argument("coding_scheme_name: unknown scheme");
}

Parameters with_coding_scheme(Parameters base, CodingScheme scheme) {
    base.pdch_rate_kbps = coding_scheme_rate_kbps(scheme);
    return base;
}

}  // namespace gprsim::core
