// GPRS channel coding schemes (extension).
//
// The paper fixes CS-2 (13.4 kbit/s per PDCH, Section 3) and leaves other
// schemes to future work. GPRS defines four convolutional coding schemes
// trading robustness for rate (Cai & Goodman [7]); exposing them lets the
// model answer "what does a cleaner/noisier channel do to the dimensioning
// answer" — see bench/ablation_coding_scheme.
#pragma once

#include "core/parameters.hpp"

namespace gprsim::core {

enum class CodingScheme {
    cs1,  ///< rate-1/2 coding, most robust:  9.05 kbit/s
    cs2,  ///< the paper's choice:           13.4  kbit/s
    cs3,  ///< lighter coding:               15.6  kbit/s
    cs4,  ///< no coding, clean channel:     21.4  kbit/s
};

/// Net RLC data rate of one PDCH under the scheme [kbit/s].
double coding_scheme_rate_kbps(CodingScheme scheme);

/// Human-readable name ("CS-1" ... "CS-4").
const char* coding_scheme_name(CodingScheme scheme);

/// Returns `base` with the PDCH rate set for the scheme.
Parameters with_coding_scheme(Parameters base, CodingScheme scheme);

}  // namespace gprsim::core
