#include "core/generator.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace gprsim::core {

GprsGenerator::GprsGenerator(Parameters parameters, ModelRates rates)
    : parameters_(std::move(parameters)),
      rates_(rates),
      space_(parameters_.buffer_capacity, parameters_.gsm_channels(),
             parameters_.max_gprs_sessions) {
    parameters_.validate();
}

ctmc::QtMatrix GprsGenerator::to_qt_matrix() const {
    const common::index_type n = space_.size();

    // Rows of Q^T are exactly the incoming-transition lists, so the CSR can
    // be emitted row by row in index order with no staging triplets. The
    // inverse events of Table 1 never produce duplicate (pred, state) pairs,
    // which the per-row sort below would otherwise have to merge.
    std::vector<common::index_type> row_ptr;
    row_ptr.reserve(static_cast<std::size_t>(n) + 1);
    std::vector<ctmc::col_type> cols;
    std::vector<double> values;
    cols.reserve(static_cast<std::size_t>(n) * 10);
    values.reserve(static_cast<std::size_t>(n) * 10);
    std::vector<double> diag(static_cast<std::size_t>(n));

    row_ptr.push_back(0);
    std::vector<std::pair<common::index_type, double>> row;
    space_.for_each([&](const State& s, common::index_type i) {
        row.clear();
        core::for_each_incoming(parameters_, rates_, s,
                                [&](const State& pred, double rate) {
                                    row.emplace_back(space_.index_of(pred), rate);
                                });
        std::sort(row.begin(), row.end());
        for (const auto& [col, rate] : row) {
            cols.push_back(static_cast<ctmc::col_type>(col));
            values.push_back(rate);
        }
        row_ptr.push_back(static_cast<common::index_type>(cols.size()));
        diag[static_cast<std::size_t>(i)] = -total_exit_rate(parameters_, rates_, s);
    });

    ctmc::SparseMatrix off = ctmc::SparseMatrix::from_csr(
        n, n, std::move(row_ptr), std::move(cols), std::move(values));
    return ctmc::QtMatrix(std::move(off), std::move(diag));
}

ctmc::SparseMatrix GprsGenerator::to_generator_matrix() const {
    std::vector<ctmc::Triplet> triplets;
    space_.for_each([&](const State& s, common::index_type i) {
        double exit = 0.0;
        core::for_each_outgoing(parameters_, rates_, s,
                                [&](const State& succ, double rate) {
                                    triplets.push_back({i, space_.index_of(succ), rate});
                                    exit += rate;
                                });
        triplets.push_back({i, i, -exit});
    });
    return ctmc::SparseMatrix::from_triplets(space_.size(), space_.size(),
                                             std::move(triplets));
}

std::size_t GprsGenerator::estimated_qt_bytes() const {
    // ~10 incoming transitions per state, each costing a column index and a
    // value, plus the diagonal and row-pointer arrays.
    const auto n = static_cast<std::size_t>(space_.size());
    return n * 10 * (sizeof(common::index_type) + sizeof(double)) +
           n * (2 * sizeof(double) + sizeof(common::index_type));
}

}  // namespace gprsim::core
