// Generator-matrix views of the GPRS Markov chain.
//
// GprsGenerator is a matrix-free transposed-generator operator (satisfies
// ctmc::QtOperatorConcept): rows are enumerated on the fly from the Table 1
// transition structure, so even the 22-million-state chain of the paper's
// Fig. 10 (M = 150) can be solved without storing a matrix. to_qt_matrix()
// materializes the same operator as CSR when memory allows — roughly an
// order of magnitude faster per Gauss-Seidel sweep.
#pragma once

#include <cstddef>

#include "ctmc/solver.hpp"
#include "ctmc/sparse_matrix.hpp"
#include "core/parameters.hpp"
#include "core/state_space.hpp"
#include "core/transitions.hpp"

namespace gprsim::core {

class GprsGenerator {
public:
    /// `parameters` must be validated; `rates` normally comes from
    /// balance_handover() so that handover flows are in equilibrium.
    GprsGenerator(Parameters parameters, ModelRates rates);

    const Parameters& parameters() const { return parameters_; }
    const ModelRates& rates() const { return rates_; }
    const StateSpace& space() const { return space_; }

    // --- ctmc::QtOperatorConcept ---------------------------------------
    common::index_type size() const { return space_.size(); }

    double diagonal(common::index_type i) const {
        return -total_exit_rate(parameters_, rates_, space_.state_of(i));
    }

    template <typename F>
    void for_each_incoming(common::index_type i, F&& f) const {
        const State s = space_.state_of(i);
        core::for_each_incoming(parameters_, rates_, s,
                                [&](const State& pred, double rate) {
                                    f(space_.index_of(pred), rate);
                                });
    }

    // --- materialized forms ---------------------------------------------
    /// Transposed generator in CSR form (off-diagonal) plus diagonal array.
    ctmc::QtMatrix to_qt_matrix() const;

    /// The generator Q itself (diagonal included); used by GTH ground-truth
    /// solves in tests. O(n^2) memory via dense GTH, so small configs only.
    ctmc::SparseMatrix to_generator_matrix() const;

    /// Estimated heap footprint of to_qt_matrix(), used to decide between
    /// the CSR and matrix-free solve paths.
    std::size_t estimated_qt_bytes() const;

private:
    Parameters parameters_;
    ModelRates rates_;
    StateSpace space_;
};

}  // namespace gprsim::core
