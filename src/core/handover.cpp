#include "core/handover.hpp"

namespace gprsim::core {

namespace {

/// A pinned external inflow is already "balanced": one evaluation of the
/// response map fixes the offered load, and the iteration is trivial.
queueing::HandoverBalance pin_flow(double lambda, double mu, double mu_h, int servers,
                                   double incoming_rate) {
    const queueing::HandoverFlow flow =
        queueing::assess_handover_flow(lambda, mu, mu_h, servers, incoming_rate);
    queueing::HandoverBalance balance;
    balance.handover_arrival_rate = flow.incoming_rate;
    balance.offered_load = flow.offered_load;
    balance.iterations = 1;
    balance.converged = true;
    return balance;
}

}  // namespace

BalancedTraffic balance_handover(const Parameters& p) {
    p.validate();
    BalancedTraffic result;
    if (p.pinned_handover) {
        result.gsm = pin_flow(p.gsm_arrival_rate(), p.gsm_completion_rate(),
                              p.gsm_handover_rate(), p.gsm_channels(), p.gsm_handover_in);
        result.gprs = pin_flow(p.gprs_arrival_rate(), p.gprs_completion_rate(),
                               p.gprs_handover_rate(), p.max_gprs_sessions,
                               p.gprs_handover_in);
    } else {
        result.gsm =
            queueing::balance_handover_flow(p.gsm_arrival_rate(), p.gsm_completion_rate(),
                                            p.gsm_handover_rate(), p.gsm_channels());
        result.gprs =
            queueing::balance_handover_flow(p.gprs_arrival_rate(), p.gprs_completion_rate(),
                                            p.gprs_handover_rate(), p.max_gprs_sessions);
    }

    const traffic::Ipp ipp = p.traffic.ipp();
    result.rates.gsm_arrival = p.gsm_arrival_rate() + result.gsm.handover_arrival_rate;
    result.rates.gsm_departure = p.gsm_completion_rate() + p.gsm_handover_rate();
    result.rates.gprs_arrival = p.gprs_arrival_rate() + result.gprs.handover_arrival_rate;
    result.rates.gprs_departure = p.gprs_completion_rate() + p.gprs_handover_rate();
    result.rates.on_to_off = ipp.on_to_off_rate;
    result.rates.off_to_on = ipp.off_to_on_rate;
    result.rates.packet_rate = ipp.on_packet_rate;
    result.rates.service_rate = p.packet_service_rate();
    return result;
}

}  // namespace gprsim::core
