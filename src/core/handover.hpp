// Handover balancing for the GPRS cell model (paper Eq. 4-5).
//
// Wraps queueing::balance_handover_flow for both populations (GSM calls on
// N_GSM servers, GPRS sessions on M servers) and assembles the aggregated
// ModelRates the Markov chain runs with.
#pragma once

#include "core/parameters.hpp"
#include "core/transitions.hpp"
#include "queueing/handover.hpp"

namespace gprsim::core {

struct BalancedTraffic {
    queueing::HandoverBalance gsm;   ///< balanced GSM handover flow
    queueing::HandoverBalance gprs;  ///< balanced GPRS handover flow
    ModelRates rates;                ///< chain rates incl. handover terms
};

/// Runs the fixed-point iteration for both populations and derives the
/// aggregated transition rates. Throws on invalid parameters.
BalancedTraffic balance_handover(const Parameters& parameters);

}  // namespace gprsim::core
