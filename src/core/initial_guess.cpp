#include "core/initial_guess.hpp"

#include <cmath>

#include "ctmc/birth_death.hpp"
#include "core/transitions.hpp"
#include "queueing/erlang.hpp"

namespace gprsim::core {

std::vector<double> product_form_initial(const Parameters& p, const BalancedTraffic& balanced,
                                         const StateSpace& space) {
    const int n_max = space.gsm_channels();
    const int m_max = space.max_gprs_sessions();
    const int k_max = space.buffer_capacity();

    // Exact marginals of the modulator.
    const std::vector<double> pi_n = queueing::mmcc_distribution(balanced.gsm.offered_load, n_max);
    const std::vector<double> pi_m =
        queueing::mmcc_distribution(balanced.gprs.offered_load, m_max);
    const double p_on = balanced.rates.on_admission_probability();
    const double p_off = 1.0 - p_on;

    // Binomial split of r given m, in log space for large m.
    // weight(m, r) = C(m, r) p_off^r p_on^(m-r).
    std::vector<std::vector<double>> binom(static_cast<std::size_t>(m_max) + 1);
    const double log_on = std::log(std::max(p_on, 1e-300));
    const double log_off = std::log(std::max(p_off, 1e-300));
    std::vector<double> log_fact(static_cast<std::size_t>(m_max) + 1, 0.0);
    for (int i = 1; i <= m_max; ++i) {
        log_fact[static_cast<std::size_t>(i)] =
            log_fact[static_cast<std::size_t>(i) - 1] + std::log(static_cast<double>(i));
    }
    for (int m = 0; m <= m_max; ++m) {
        auto& row = binom[static_cast<std::size_t>(m)];
        row.resize(static_cast<std::size_t>(m) + 1);
        double sum = 0.0;
        for (int r = 0; r <= m; ++r) {
            const double log_c = log_fact[static_cast<std::size_t>(m)] -
                                 log_fact[static_cast<std::size_t>(r)] -
                                 log_fact[static_cast<std::size_t>(m - r)];
            row[static_cast<std::size_t>(r)] =
                std::exp(log_c + static_cast<double>(r) * log_off +
                         static_cast<double>(m - r) * log_on);
            sum += row[static_cast<std::size_t>(r)];
        }
        for (double& v : row) {
            v /= sum;  // guard tiny normalization drift
        }
    }

    // Modulator-averaged packet rates for the one-dimensional buffer chain.
    double mean_on_sources = 0.0;  // E[m - r] = E[m] * p_on
    for (int m = 0; m <= m_max; ++m) {
        mean_on_sources += pi_m[static_cast<std::size_t>(m)] * static_cast<double>(m) * p_on;
    }
    const double offered = mean_on_sources * balanced.rates.packet_rate;

    std::vector<double> birth(static_cast<std::size_t>(k_max));
    std::vector<double> death(static_cast<std::size_t>(k_max));
    for (int k = 0; k < k_max; ++k) {
        double service_k1 = 0.0;  // E[min(N - n, 8(k+1))] * mu_service
        double service_k = 0.0;
        for (int n = 0; n <= n_max; ++n) {
            const double w = pi_n[static_cast<std::size_t>(n)];
            service_k1 += w * std::min(p.total_channels - n, 8 * (k + 1));
            service_k += w * std::min(p.total_channels - n, 8 * k);
        }
        service_k1 *= balanced.rates.service_rate;
        service_k *= balanced.rates.service_rate;
        birth[static_cast<std::size_t>(k)] =
            k <= p.flow_control_onset() ? offered
                                        : std::min(offered, std::max(service_k, 1e-12));
        death[static_cast<std::size_t>(k)] = std::max(service_k1, 1e-12);
    }
    const std::vector<double> pi_k = ctmc::birth_death_distribution(birth, death);

    // Assemble the product.
    std::vector<double> initial(static_cast<std::size_t>(space.size()));
    space.for_each([&](const State& s, common::index_type i) {
        initial[static_cast<std::size_t>(i)] =
            pi_k[static_cast<std::size_t>(s.buffer)] *
            pi_n[static_cast<std::size_t>(s.gsm_calls)] *
            pi_m[static_cast<std::size_t>(s.gprs_sessions)] *
            binom[static_cast<std::size_t>(s.gprs_sessions)]
                 [static_cast<std::size_t>(s.off_sessions)];
    });
    double sum = 0.0;
    for (double v : initial) {
        sum += v;
    }
    for (double& v : initial) {
        v /= sum;
    }
    return initial;
}

}  // namespace gprsim::core
