// Product-form initial guess for the steady-state solver.
//
// The chain's (n) and (m, r) marginals are known exactly (Erlang and
// Erlang x binomial — paper Eq. 2-3 plus the IPP stationary split), and the
// buffer marginal is well approximated by a one-dimensional birth-death
// chain with modulator-averaged rates. Their product is not the true joint
// distribution (k is correlated with the modulator), but it is orders of
// magnitude closer than a uniform vector, which cuts Gauss-Seidel iteration
// counts substantially on the multi-million-state chains.
#pragma once

#include <vector>

#include "core/handover.hpp"
#include "core/parameters.hpp"
#include "core/state_space.hpp"

namespace gprsim::core {

/// Normalized product-form distribution over `space`.
std::vector<double> product_form_initial(const Parameters& parameters,
                                         const BalancedTraffic& balanced,
                                         const StateSpace& space);

}  // namespace gprsim::core
