#include "core/measures.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/transitions.hpp"
#include "queueing/erlang.hpp"

namespace gprsim::core {

Measures closed_form_measures(const Parameters& p, const BalancedTraffic& balanced) {
    Measures m;
    m.carried_voice_traffic =
        queueing::mmcc_carried_load(balanced.gsm.offered_load, p.gsm_channels());
    m.average_gprs_sessions =
        queueing::mmcc_carried_load(balanced.gprs.offered_load, p.max_gprs_sessions);
    m.gsm_blocking = queueing::erlang_b(balanced.gsm.offered_load, p.gsm_channels());
    m.gprs_blocking = queueing::erlang_b(balanced.gprs.offered_load, p.max_gprs_sessions);
    return m;
}

Measures compute_measures(const Parameters& p, const BalancedTraffic& balanced,
                          const StateSpace& space, std::span<const double> pi) {
    if (static_cast<common::index_type>(pi.size()) != space.size()) {
        throw std::invalid_argument("compute_measures: distribution size mismatch");
    }
    Measures m = closed_form_measures(p, balanced);

    double cdt = 0.0;
    double mql = 0.0;
    double offered = 0.0;
    space.for_each([&](const State& s, common::index_type i) {
        const double weight = pi[static_cast<std::size_t>(i)];
        if (weight == 0.0) {
            return;
        }
        cdt += weight * static_cast<double>(pdch_in_use(p, s));
        mql += weight * static_cast<double>(s.buffer);
        offered += weight * offered_packet_rate(p, balanced.rates, s);
    });

    m.carried_data_traffic = cdt;
    m.mean_queue_length = mql;
    m.offered_packet_rate = offered;

    const double throughput_packets = cdt * balanced.rates.service_rate;
    m.data_throughput_kbps = throughput_packets * p.traffic.packet_size_bits / 1000.0;
    // Eq. 9; clamp tiny negative values caused by the solver's residual.
    m.packet_loss_probability =
        offered > 0.0 ? std::clamp(1.0 - throughput_packets / offered, 0.0, 1.0) : 0.0;
    // Eq. 10 (Little's law on the BSC buffer).
    m.queueing_delay = throughput_packets > 0.0 ? mql / throughput_packets : 0.0;
    // Eq. 11.
    m.throughput_per_user_kbps =
        m.average_gprs_sessions > 0.0 ? m.data_throughput_kbps / m.average_gprs_sessions : 0.0;
    return m;
}

}  // namespace gprsim::core
