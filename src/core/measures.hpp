// Performance measures of the GPRS model (paper Section 4.2, Eq. 6-11).
#pragma once

#include <span>

#include "core/handover.hpp"
#include "core/parameters.hpp"
#include "core/state_space.hpp"

namespace gprsim::core {

/// All measures reported in the paper's evaluation.
struct Measures {
    // From the full chain's steady-state distribution:
    double carried_data_traffic = 0.0;      ///< CDT: E[PDCHs in use]    (Eq. 8)
    double packet_loss_probability = 0.0;   ///< PLP                     (Eq. 9)
    double queueing_delay = 0.0;            ///< QD [s]                  (Eq. 10)
    double throughput_per_user_kbps = 0.0;  ///< ATU                     (Eq. 11)
    double mean_queue_length = 0.0;         ///< MQL [packets]
    double offered_packet_rate = 0.0;       ///< lambda_avg [packets/s]
    double data_throughput_kbps = 0.0;      ///< CDT * 13.4 kbit/s

    // Closed-form (Erlang) measures:
    double carried_voice_traffic = 0.0;     ///< CVT: E[busy TCHs]       (Eq. 6)
    double average_gprs_sessions = 0.0;     ///< AGS: E[m]               (Eq. 7)
    double gsm_blocking = 0.0;              ///< p_GSM,N_GSM
    double gprs_blocking = 0.0;             ///< p_GPRS,M
};

/// Measures that need only the Erlang populations, not the chain solve
/// (CVT, AGS, both blocking probabilities). The remaining fields are zero.
Measures closed_form_measures(const Parameters& parameters, const BalancedTraffic& balanced);

/// Full set of measures from the chain's stationary distribution `pi`
/// (indexed by `space`). Throws std::invalid_argument on size mismatch.
Measures compute_measures(const Parameters& parameters, const BalancedTraffic& balanced,
                          const StateSpace& space, std::span<const double> pi);

}  // namespace gprsim::core
