#include "core/model.hpp"

#include <stdexcept>

#include "core/initial_guess.hpp"

namespace gprsim::core {

GprsModel::GprsModel(Parameters parameters)
    : parameters_(std::move(parameters)),
      balanced_(balance_handover(parameters_)),
      generator_(parameters_, balanced_.rates) {}

const ctmc::SolveResult& GprsModel::solve(const ctmc::SolveOptions& options) {
    return solve(options, ctmc::default_engine());
}

const ctmc::SolveResult& GprsModel::solve(const ctmc::SolveOptions& options,
                                          ctmc::SolverEngine& engine) {
    auto result = try_solve(options, engine);
    if (!result.ok()) {
        throw std::runtime_error("GprsModel::solve: " + result.error().message);
    }
    return result.value().get();
}

common::Result<std::reference_wrapper<const ctmc::SolveResult>> GprsModel::try_solve(
    const ctmc::SolveOptions& options) {
    return try_solve(options, ctmc::default_engine());
}

common::Result<std::reference_wrapper<const ctmc::SolveResult>> GprsModel::try_solve(
    const ctmc::SolveOptions& options, ctmc::SolverEngine& engine) {
    if (solution_) {
        return std::cref(*solution_);
    }
    const auto run = [&](const ctmc::SolveOptions& effective) {
        if (estimated_qt_bytes() <= memory_budget_) {
            const ctmc::QtMatrix qt = generator_.to_qt_matrix();
            used_matrix_free_ = false;
            if (effective.permutation.empty()) {
                // QBD level grouping (identity for this codec — detected
                // and skipped by the engine, but stated here so a codec
                // change automatically reorders the solve). Only explicit
                // matrices can be reindexed, hence CSR branch only.
                ctmc::SolveOptions ordered = effective;
                ordered.permutation = qbd_level_ordering(space());
                return engine.solve(qt, ordered);
            }
            return engine.solve(qt, effective);
        }
        used_matrix_free_ = true;
        return engine.solve(generator_, effective);
    };
    ctmc::SolveResult result;
    try {
        if (options.initial.empty() && options.initial_candidates.empty()) {
            // Warm-start from the closed-form product approximation;
            // typically several times fewer sweeps than a uniform start.
            // Callers supplying initial_candidates (the campaign runner) add
            // it themselves — and those candidate vectors are
            // state-space-sized, so the options are only copied here.
            ctmc::SolveOptions effective = options;
            effective.initial = product_form_initial(parameters_, balanced_, space());
            result = run(effective);
        } else {
            result = run(options);
        }
    } catch (const std::exception& e) {
        // Degenerate options/operator (engine throws invalid_argument).
        return common::EvalError{common::EvalErrorCode::invalid_query,
                                 std::string(e.what()) + " [" + parameters_.describe() +
                                     "]"};
    }
    if (!result.converged) {
        return common::EvalError{
            common::EvalErrorCode::non_convergence,
            "steady-state iteration did not converge (residual " +
                std::to_string(result.residual) + " after " +
                std::to_string(result.iterations) + " sweeps, tolerance " +
                std::to_string(options.tolerance) + ") [" + parameters_.describe() + "]"};
    }
    solution_ = std::move(result);
    return std::cref(*solution_);
}

const std::vector<double>& GprsModel::distribution() const {
    if (!solution_) {
        throw std::logic_error(
            "GprsModel::distribution: no converged solution yet — call solve() first [" +
            parameters_.describe() + "]");
    }
    return solution_->distribution;
}

Measures GprsModel::measures() {
    solve();
    return compute_measures(parameters_, balanced_, space(), distribution());
}

std::vector<double> GprsModel::buffer_distribution() const {
    const std::vector<double>& pi = distribution();
    std::vector<double> marginal(static_cast<std::size_t>(parameters_.buffer_capacity) + 1, 0.0);
    space().for_each([&](const State& s, common::index_type i) {
        marginal[static_cast<std::size_t>(s.buffer)] += pi[static_cast<std::size_t>(i)];
    });
    return marginal;
}

std::vector<double> GprsModel::gsm_distribution() const {
    const std::vector<double>& pi = distribution();
    std::vector<double> marginal(static_cast<std::size_t>(parameters_.gsm_channels()) + 1, 0.0);
    space().for_each([&](const State& s, common::index_type i) {
        marginal[static_cast<std::size_t>(s.gsm_calls)] += pi[static_cast<std::size_t>(i)];
    });
    return marginal;
}

std::vector<double> GprsModel::gprs_session_distribution() const {
    const std::vector<double>& pi = distribution();
    std::vector<double> marginal(static_cast<std::size_t>(parameters_.max_gprs_sessions) + 1,
                                 0.0);
    space().for_each([&](const State& s, common::index_type i) {
        marginal[static_cast<std::size_t>(s.gprs_sessions)] += pi[static_cast<std::size_t>(i)];
    });
    return marginal;
}

}  // namespace gprsim::core
