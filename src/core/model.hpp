// Facade tying the GPRS model together: parameters -> handover balance ->
// generator -> steady-state solve -> measures.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "common/result.hpp"
#include "ctmc/engine.hpp"
#include "ctmc/solver.hpp"
#include "core/generator.hpp"
#include "core/handover.hpp"
#include "core/measures.hpp"
#include "core/parameters.hpp"

namespace gprsim::core {

/// One-stop interface for analyzing a cell configuration.
///
///   GprsModel model(Parameters::base());
///   model.solve();
///   Measures m = model.measures();
///
/// The solver path is picked automatically: CSR when the transposed
/// generator fits the memory budget, matrix-free otherwise.
class GprsModel {
public:
    explicit GprsModel(Parameters parameters);

    const Parameters& parameters() const { return parameters_; }
    const BalancedTraffic& balanced() const { return balanced_; }
    const StateSpace& space() const { return generator_.space(); }
    const GprsGenerator& generator() const { return generator_; }

    /// Size the CSR representation would occupy; compare with memory_budget.
    std::size_t estimated_qt_bytes() const { return generator_.estimated_qt_bytes(); }
    /// CSR is used when estimated_qt_bytes() <= memory_budget (default 8 GiB).
    void set_memory_budget(std::size_t bytes) { memory_budget_ = bytes; }

    /// Solves for the stationary distribution (cached) on the process-wide
    /// default engine. Returns solver statistics; throws
    /// std::runtime_error — with the scenario's key parameters in the
    /// message — if the solve did not converge.
    const ctmc::SolveResult& solve(const ctmc::SolveOptions& options = {});

    /// Same, but on a caller-managed engine — the route every sweep and
    /// bench takes so one thread pool is reused across all solves.
    const ctmc::SolveResult& solve(const ctmc::SolveOptions& options,
                                   ctmc::SolverEngine& engine);

    /// Exception-free solve for the eval API boundary: a non-converged
    /// iteration or invalid solver options come back as a typed
    /// common::EvalError (non_convergence / invalid_query) whose message
    /// carries residual, iterations, and Parameters::describe(). On
    /// success the result is cached exactly like solve()'s.
    common::Result<std::reference_wrapper<const ctmc::SolveResult>> try_solve(
        const ctmc::SolveOptions& options = {});
    common::Result<std::reference_wrapper<const ctmc::SolveResult>> try_solve(
        const ctmc::SolveOptions& options, ctmc::SolverEngine& engine);

    bool solved() const { return solution_.has_value(); }
    /// Stationary distribution (requires a prior successful solve()).
    const std::vector<double>& distribution() const;

    /// Full measures; solves with default options on first use if needed.
    Measures measures();
    /// Erlang-only measures (no chain solve).
    Measures closed_form() const { return closed_form_measures(parameters_, balanced_); }

    /// Marginal distribution of the buffer occupancy k.
    std::vector<double> buffer_distribution() const;
    /// Marginal distribution of active GSM calls n. In exact arithmetic this
    /// equals the Erlang M/M/c/c law — a property the tests rely on.
    std::vector<double> gsm_distribution() const;
    /// Marginal distribution of active GPRS sessions m (Erlang over M).
    std::vector<double> gprs_session_distribution() const;
    /// Whether the last solve used the matrix-free path.
    bool used_matrix_free() const { return used_matrix_free_; }

private:
    Parameters parameters_;
    BalancedTraffic balanced_;
    GprsGenerator generator_;
    std::size_t memory_budget_ = std::size_t{8} * 1024 * 1024 * 1024;
    std::optional<ctmc::SolveResult> solution_;
    bool used_matrix_free_ = false;
};

}  // namespace gprsim::core
