#include "core/parameters.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace gprsim::core {

void Parameters::validate() const {
    if (total_channels < 1) {
        throw std::invalid_argument("Parameters: need at least one physical channel");
    }
    if (reserved_pdch < 0 || reserved_pdch > total_channels) {
        throw std::invalid_argument("Parameters: reserved PDCHs outside [0, N]");
    }
    if (gsm_channels() < 1) {
        throw std::invalid_argument(
            "Parameters: at least one channel must remain available to GSM "
            "(the model's GSM population would be degenerate)");
    }
    if (buffer_capacity < 1) {
        throw std::invalid_argument("Parameters: BSC buffer must hold at least one packet");
    }
    if (pdch_rate_kbps <= 0.0) {
        throw std::invalid_argument("Parameters: PDCH rate must be positive");
    }
    if (block_error_rate < 0.0 || block_error_rate >= 1.0) {
        throw std::invalid_argument("Parameters: block error rate must lie in [0, 1)");
    }
    if (call_arrival_rate <= 0.0) {
        throw std::invalid_argument(
            "Parameters: call arrival rate must be positive (the chain is "
            "reducible without arrivals)");
    }
    if (gprs_fraction <= 0.0 || gprs_fraction >= 1.0) {
        throw std::invalid_argument("Parameters: GPRS fraction must lie strictly in (0, 1)");
    }
    if (mean_gsm_call_duration <= 0.0 || mean_gsm_dwell_time <= 0.0 ||
        mean_gprs_dwell_time <= 0.0) {
        throw std::invalid_argument("Parameters: durations must be positive");
    }
    if (max_gprs_sessions < 1) {
        throw std::invalid_argument("Parameters: M must be at least 1");
    }
    if (flow_control_threshold <= 0.0 || flow_control_threshold > 1.0) {
        throw std::invalid_argument("Parameters: flow-control threshold must be in (0, 1]");
    }
    if (pinned_handover &&
        (!(gsm_handover_in >= 0.0) || !(gprs_handover_in >= 0.0) ||
         !std::isfinite(gsm_handover_in) || !std::isfinite(gprs_handover_in))) {
        throw std::invalid_argument(
            "Parameters: pinned handover inflows must be finite and non-negative");
    }
    traffic.validate();
}

std::string Parameters::describe() const {
    char buffer[224];
    std::snprintf(buffer, sizeof(buffer),
                  "rate=%.6g calls/s, N=%d channels (%d PDCH reserved), M=%d, K=%d, "
                  "gprs=%.4g%%",
                  call_arrival_rate, total_channels, reserved_pdch, max_gprs_sessions,
                  buffer_capacity, 100.0 * gprs_fraction);
    std::string text = buffer;
    if (pinned_handover) {
        std::snprintf(buffer, sizeof(buffer), ", pinned lh=(%.6g, %.6g)/s",
                      gsm_handover_in, gprs_handover_in);
        text += buffer;
    }
    return text;
}

Parameters Parameters::base() {
    Parameters p;
    p.traffic = traffic::traffic_model_1().session;
    p.max_gprs_sessions = traffic::traffic_model_1().max_gprs_sessions;
    return p;
}

Parameters Parameters::with_traffic_model(const traffic::TrafficModelPreset& preset) {
    Parameters p = base();
    p.traffic = preset.session;
    p.max_gprs_sessions = preset.max_gprs_sessions;
    return p;
}

}  // namespace gprsim::core
