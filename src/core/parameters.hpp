// Model parameters of the GPRS cell (paper Table 2 + traffic model).
#pragma once

#include <string>

#include "traffic/threegpp.hpp"

namespace gprsim::core {

/// Complete parameterization of the single-cell GSM/GPRS model.
///
/// Defaults reproduce the paper's base setting (Table 2) with traffic
/// model 1 (Table 3). All rates are per second, durations in seconds.
struct Parameters {
    // --- radio configuration -------------------------------------------
    int total_channels = 20;       ///< N: physical channels in the cell
    int reserved_pdch = 1;         ///< N_GPRS: channels fixed as PDCH
    int buffer_capacity = 100;     ///< K: BSC FIFO buffer, in packets
    double pdch_rate_kbps = 13.4;  ///< CS-2 coding scheme rate per PDCH
    /// RLC block error rate after FEC (extension; paper future work).
    /// The paper assumes the coding scheme recovers (almost) all losses
    /// (BLER = 0); a positive rate models ARQ retransmissions that consume
    /// channel capacity: the effective PDCH rate becomes rate*(1 - BLER).
    double block_error_rate = 0.0;

    // --- load ------------------------------------------------------------
    double call_arrival_rate = 0.5;  ///< combined GSM+GPRS arrivals [calls/s]
    double gprs_fraction = 0.05;     ///< share of arrivals that are GPRS

    // --- user behaviour ----------------------------------------------------
    double mean_gsm_call_duration = 120.0;  ///< 1/mu_GSM
    double mean_gsm_dwell_time = 60.0;      ///< 1/mu_h,GSM
    double mean_gprs_dwell_time = 120.0;    ///< 1/mu_h,GPRS
    int max_gprs_sessions = 50;             ///< M: admission cap

    // --- network coupling (multi-cell extension) --------------------------
    /// When true, the incoming handover flows are pinned to the external
    /// rates below instead of being balanced against the cell's own outflow
    /// (paper Eq. 4-5). This is how the single-cell backends serve as the
    /// inner solve of the network fixed point (src/network/): the lattice
    /// supplies each cell's incoming flow from its neighbors' populations.
    bool pinned_handover = false;
    double gsm_handover_in = 0.0;   ///< pinned lambda_h,GSM [calls/s]
    double gprs_handover_in = 0.0;  ///< pinned lambda_h,GPRS [sessions/s]

    // --- TCP flow-control approximation ----------------------------------
    /// eta: sources are throttled once the buffer holds more than
    /// floor(eta * K) packets; 1.0 disables flow control. The paper's
    /// calibration (Fig. 5) selects 0.7.
    double flow_control_threshold = 0.7;

    // --- per-session traffic (3GPP WWW model) ----------------------------
    traffic::ThreeGppSessionModel traffic;

    // --- derived quantities ----------------------------------------------
    /// N_GSM = N - N_GPRS: channels usable by GSM (on-demand pool).
    int gsm_channels() const { return total_channels - reserved_pdch; }
    /// mu_service: packet service rate of one PDCH [packets/s];
    /// 13.4 kbit/s / 3840 bit = 3.4896 for the base setting. A positive
    /// block error rate shrinks it by the ARQ retransmission overhead.
    double packet_service_rate() const {
        return pdch_rate_kbps * 1000.0 * (1.0 - block_error_rate) /
               traffic.packet_size_bits;
    }
    double gsm_arrival_rate() const { return (1.0 - gprs_fraction) * call_arrival_rate; }
    double gprs_arrival_rate() const { return gprs_fraction * call_arrival_rate; }
    double gsm_completion_rate() const { return 1.0 / mean_gsm_call_duration; }
    double gsm_handover_rate() const { return 1.0 / mean_gsm_dwell_time; }
    double gprs_completion_rate() const { return 1.0 / traffic.mean_session_duration(); }
    double gprs_handover_rate() const { return 1.0 / mean_gprs_dwell_time; }
    /// floor(eta * K): highest buffer level with unthrottled arrivals.
    int flow_control_onset() const {
        return static_cast<int>(flow_control_threshold * buffer_capacity);
    }

    /// Throws std::invalid_argument when the configuration is inconsistent
    /// (no channels, eta outside [0,1], non-positive rates, ...).
    void validate() const;

    /// "rate=0.5 calls/s, N=20 channels (1 PDCH reserved), M=50, K=100,
    /// gprs=5%" — the scenario context embedded in every solver and
    /// evaluation error message so a failure names the point producing it.
    std::string describe() const;

    /// Table 2 base setting with traffic model 1.
    static Parameters base();
    /// Base setting with session model and M taken from a Table 3 preset.
    static Parameters with_traffic_model(const traffic::TrafficModelPreset& preset);
};

}  // namespace gprsim::core
