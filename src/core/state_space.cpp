#include "core/state_space.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace gprsim::core {

namespace {

/// Index of (m, r) within the triangular enumeration (0,0), (1,0), (1,1),
/// (2,0), ...: m(m+1)/2 + r.
common::index_type pair_index(int m, int r) {
    return static_cast<common::index_type>(m) * (m + 1) / 2 + r;
}

}  // namespace

StateSpace::StateSpace(int buffer_capacity, int gsm_channels, int max_gprs_sessions)
    : capacity_(buffer_capacity), max_gsm_(gsm_channels), max_m_(max_gprs_sessions) {
    if (buffer_capacity < 0 || gsm_channels < 0 || max_gprs_sessions < 0) {
        throw std::invalid_argument("StateSpace: negative dimension");
    }
    pair_count_ = pair_index(max_m_, max_m_) + 1;
}

common::index_type StateSpace::index_of(const State& s) const {
    assert(s.buffer >= 0 && s.buffer <= capacity_);
    assert(s.gsm_calls >= 0 && s.gsm_calls <= max_gsm_);
    assert(s.gprs_sessions >= 0 && s.gprs_sessions <= max_m_);
    assert(s.off_sessions >= 0 && s.off_sessions <= s.gprs_sessions);
    const common::index_type per_k =
        (static_cast<common::index_type>(max_gsm_) + 1) * pair_count_;
    return static_cast<common::index_type>(s.buffer) * per_k +
           static_cast<common::index_type>(s.gsm_calls) * pair_count_ +
           pair_index(s.gprs_sessions, s.off_sessions);
}

State StateSpace::state_of(common::index_type index) const {
    assert(index >= 0 && index < size());
    const common::index_type per_k =
        (static_cast<common::index_type>(max_gsm_) + 1) * pair_count_;
    State s;
    s.buffer = static_cast<int>(index / per_k);
    index %= per_k;
    s.gsm_calls = static_cast<int>(index / pair_count_);
    const common::index_type p = index % pair_count_;

    // Invert p = m(m+1)/2 + r: start from the float estimate and correct.
    int m = static_cast<int>((std::sqrt(8.0 * static_cast<double>(p) + 1.0) - 1.0) / 2.0);
    while (pair_index(m + 1, 0) <= p) {
        ++m;
    }
    while (pair_index(m, 0) > p) {
        --m;
    }
    s.gprs_sessions = m;
    s.off_sessions = static_cast<int>(p - pair_index(m, 0));
    return s;
}

}  // namespace gprsim::core
