// State space of the aggregated GPRS Markov chain (paper Section 4.1).
//
// A state is (k, n, m, r): k packets in the BSC buffer, n active GSM calls,
// m active GPRS sessions, and r of those sessions currently OFF (reading).
// The aggregation of per-session IPPs into the (m+1)-state MMPP reduces the
// state count to (M+1)(M+2)/2 * (N_GSM+1) * (K+1).
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/types.hpp"

namespace gprsim::core {

struct State {
    int buffer = 0;         ///< k in [0, K]
    int gsm_calls = 0;      ///< n in [0, N_GSM]
    int gprs_sessions = 0;  ///< m in [0, M]
    int off_sessions = 0;   ///< r in [0, m]

    friend bool operator==(const State&, const State&) = default;
};

/// Bijective codec between State tuples and dense indices [0, size()).
///
/// Layout (innermost to outermost): (m, r) triangular pair, then n, then k.
/// Keeping k outermost makes Gauss-Seidel sweeps walk the buffer dimension
/// coherently, which is where the interesting coupling lives.
class StateSpace {
public:
    StateSpace(int buffer_capacity, int gsm_channels, int max_gprs_sessions);

    int buffer_capacity() const { return capacity_; }
    int gsm_channels() const { return max_gsm_; }
    int max_gprs_sessions() const { return max_m_; }

    common::index_type size() const {
        return (static_cast<common::index_type>(capacity_) + 1) *
               (static_cast<common::index_type>(max_gsm_) + 1) * pair_count_;
    }

    common::index_type index_of(const State& s) const;
    State state_of(common::index_type index) const;

    /// Number of (m, r) pairs: (M+1)(M+2)/2.
    common::index_type session_pair_count() const { return pair_count_; }

    /// Calls f(State, index) for every state in index order.
    template <typename F>
    void for_each(F&& f) const {
        common::index_type index = 0;
        for (int k = 0; k <= capacity_; ++k) {
            for (int n = 0; n <= max_gsm_; ++n) {
                for (int m = 0; m <= max_m_; ++m) {
                    for (int r = 0; r <= m; ++r) {
                        f(State{k, n, m, r}, index);
                        ++index;
                    }
                }
            }
        }
    }

private:
    int capacity_;
    int max_gsm_;
    int max_m_;
    common::index_type pair_count_;
};

/// QBD row ordering for the solver (ctmc::SolveOptions::permutation
/// convention, order[new] = old): states grouped by buffer level k, levels
/// ascending, original index order within a level — the ordering under
/// which a forward Gauss-Seidel sweep propagates along the chain's
/// repeating-level direction with minimal bandwidth. The codec above
/// already stores k outermost, so for this StateSpace the grouping IS the
/// index order and the result is the identity permutation (which the
/// solver detects and skips); the function keeps the invariant explicit
/// and survives a codec change.
inline std::vector<common::index_type> qbd_level_ordering(const StateSpace& space) {
    std::vector<common::index_type> order(static_cast<std::size_t>(space.size()));
    std::iota(order.begin(), order.end(), common::index_type{0});
    // Stable sort by buffer level. With the k-outermost codec the indices
    // are already level-sorted, so this is a single monotone pass.
    std::stable_sort(order.begin(), order.end(),
                     [&](common::index_type a, common::index_type b) {
                         return space.state_of(a).buffer < space.state_of(b).buffer;
                     });
    return order;
}

}  // namespace gprsim::core
