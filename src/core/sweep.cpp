#include "core/sweep.hpp"

#include <stdexcept>

#include "core/model.hpp"

namespace gprsim::core {

std::vector<SweepPoint> sweep_call_arrival_rate(const Parameters& base,
                                                std::span<const double> call_rates,
                                                const SweepOptions& options) {
    std::vector<SweepPoint> points;
    points.reserve(call_rates.size());
    std::vector<double> previous;
    for (std::size_t idx = 0; idx < call_rates.size(); ++idx) {
        Parameters p = base;
        p.call_arrival_rate = call_rates[idx];
        GprsModel model(p);

        ctmc::SolveOptions solve = options.solve;
        if (options.warm_start && !previous.empty()) {
            solve.initial = previous;
        }
        const ctmc::SolveResult& result = model.solve(solve);

        SweepPoint point;
        point.call_arrival_rate = call_rates[idx];
        point.measures = model.measures();
        point.iterations = result.iterations;
        point.residual = result.residual;
        point.seconds = result.seconds;
        if (options.warm_start) {
            previous = result.distribution;
        }
        if (options.progress) {
            options.progress(idx, point);
        }
        points.push_back(std::move(point));
    }
    return points;
}

std::vector<double> arrival_rate_grid(double first, double last, int count) {
    if (count < 2 || last < first) {
        throw std::invalid_argument("arrival_rate_grid: need count >= 2 and last >= first");
    }
    std::vector<double> grid(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        grid[static_cast<std::size_t>(i)] =
            first + (last - first) * static_cast<double>(i) / static_cast<double>(count - 1);
    }
    return grid;
}

}  // namespace gprsim::core
