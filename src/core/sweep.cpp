#include "core/sweep.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "core/model.hpp"

namespace gprsim::core {

namespace {

/// Solves one operating point and fills a SweepPoint. `solve.initial` must
/// already carry any warm start; `engine` provides the solver pool.
SweepPoint solve_point(const Parameters& base, double rate, ctmc::SolveOptions solve,
                       ctmc::SolverEngine& engine, std::vector<double>* distribution_out) {
    Parameters p = base;
    p.call_arrival_rate = rate;
    GprsModel model(p);
    const ctmc::SolveResult& result = model.solve(solve, engine);

    SweepPoint point;
    point.call_arrival_rate = rate;
    point.measures = model.measures();
    point.iterations = result.iterations;
    point.residual = result.residual;
    point.seconds = result.seconds;
    if (distribution_out != nullptr) {
        *distribution_out = result.distribution;
    }
    return point;
}

}  // namespace

std::vector<SweepPoint> ScenarioSweep::call_arrival_rate(const Parameters& base,
                                                         std::span<const double> call_rates,
                                                         const SweepOptions& options) {
    const std::size_t count = call_rates.size();
    std::vector<SweepPoint> points(count);
    if (count == 0) {
        return points;
    }

    const int width = std::min<int>(
        ctmc::SolverEngine::resolve_thread_count(options.num_threads),
        static_cast<int>(count));
    if (!options.parallel_points || width <= 1) {
        // Serial mode: one warm-start chain across the whole grid (the seed
        // behavior, bit-identical for default options).
        std::vector<double> previous;
        for (std::size_t idx = 0; idx < count; ++idx) {
            ctmc::SolveOptions solve = options.solve;
            if (options.warm_start && !previous.empty()) {
                solve.initial = previous;
            }
            points[idx] = solve_point(base, call_rates[idx], std::move(solve), engine_,
                                      options.warm_start ? &previous : nullptr);
            if (options.progress) {
                options.progress(idx, points[idx]);
            }
        }
        return points;
    }

    // Parallel mode: contiguous shards, warm-start chaining inside each
    // shard, per-point solves forced single-threaded (the shard is the unit
    // of parallelism; nested pool use would deadlock).
    const std::size_t shards = static_cast<std::size_t>(width);
    const std::size_t per_shard = (count + shards - 1) / shards;
    std::mutex progress_mutex;
    engine_.pool(width).run(
        static_cast<int>(shards),
        [&](int shard) {
            const std::size_t begin = per_shard * static_cast<std::size_t>(shard);
            const std::size_t end = std::min(begin + per_shard, count);
            std::vector<double> previous;
            for (std::size_t idx = begin; idx < end; ++idx) {
                ctmc::SolveOptions solve = options.solve;
                solve.num_threads = 1;
                if (options.warm_start && !previous.empty()) {
                    solve.initial = previous;
                }
                points[idx] = solve_point(base, call_rates[idx], std::move(solve), engine_,
                                          options.warm_start ? &previous : nullptr);
                if (options.progress) {
                    std::lock_guard<std::mutex> lock(progress_mutex);
                    options.progress(idx, points[idx]);
                }
            }
        },
        width);
    return points;
}

std::vector<ScenarioPoint> ScenarioSweep::sweep_scenarios(
    std::span<const Parameters> scenarios, const SweepOptions& options) {
    const std::size_t count = scenarios.size();
    std::vector<ScenarioPoint> points(count);
    if (count == 0) {
        return points;
    }

    const int width = std::min<int>(
        ctmc::SolverEngine::resolve_thread_count(options.num_threads),
        static_cast<int>(count));
    std::mutex progress_mutex;
    const auto solve_scenario = [&](int task) {
        const std::size_t idx = static_cast<std::size_t>(task);
        ctmc::SolveOptions solve = options.solve;
        if (width > 1) {
            solve.num_threads = 1;  // scenarios are the parallelism
        }
        GprsModel model(scenarios[idx]);
        const ctmc::SolveResult& result = model.solve(solve, engine_);
        ScenarioPoint& point = points[idx];
        point.parameters = scenarios[idx];
        point.measures = model.measures();
        point.iterations = result.iterations;
        point.residual = result.residual;
        point.seconds = result.seconds;
        if (options.progress) {
            SweepPoint view;
            view.call_arrival_rate = point.parameters.call_arrival_rate;
            view.measures = point.measures;
            view.iterations = point.iterations;
            view.residual = point.residual;
            view.seconds = point.seconds;
            std::lock_guard<std::mutex> lock(progress_mutex);
            options.progress(idx, view);
        }
    };
    if (width <= 1) {
        for (std::size_t idx = 0; idx < count; ++idx) {
            solve_scenario(static_cast<int>(idx));
        }
    } else {
        // Dynamic claiming load-balances heterogeneous state-space sizes;
        // the width cap keeps a wider pre-existing pool from running more
        // concurrent whole-model solves than the caller asked for.
        engine_.pool(width).run(static_cast<int>(count), solve_scenario, width);
    }
    return points;
}

std::vector<SweepPoint> sweep_call_arrival_rate(const Parameters& base,
                                                std::span<const double> call_rates,
                                                const SweepOptions& options) {
    return ScenarioSweep(ctmc::default_engine()).call_arrival_rate(base, call_rates, options);
}

std::vector<ScenarioPoint> sweep_scenarios(std::span<const Parameters> scenarios,
                                           const SweepOptions& options) {
    return ScenarioSweep(ctmc::default_engine()).sweep_scenarios(scenarios, options);
}

std::vector<double> arrival_rate_grid(double first, double last, int count) {
    if (count < 2 || last < first) {
        throw std::invalid_argument("arrival_rate_grid: need count >= 2 and last >= first");
    }
    std::vector<double> grid(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        grid[static_cast<std::size_t>(i)] =
            first + (last - first) * static_cast<double>(i) / static_cast<double>(count - 1);
    }
    return grid;
}

}  // namespace gprsim::core
