// Parameter sweeps over the call arrival rate — the x-axis of every
// performance figure in the paper — plus heterogeneous scenario batches
// and model-vs-simulator validation sweeps, all routed through a shared
// SolverEngine so independent work items (chain solves and simulator
// replications alike) shard across one thread pool.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "ctmc/engine.hpp"
#include "ctmc/solver.hpp"
#include "core/measures.hpp"
#include "core/parameters.hpp"
#include "sim/experiment.hpp"

namespace gprsim::core {

struct SweepPoint {
    double call_arrival_rate = 0.0;
    Measures measures;
    common::index_type iterations = 0;
    double residual = 0.0;
    double seconds = 0.0;
};

struct SweepOptions {
    ctmc::SolveOptions solve;
    /// Reuse the previous point's distribution as the next initial vector.
    /// All points share one state space, so this is always well-formed and
    /// typically cuts iteration counts by 3-10x on smooth sweeps. In
    /// parallel_points mode the chaining happens within each shard.
    bool warm_start = true;
    /// Shard *independent* sweep points across the engine's pool. Each of
    /// the num_threads contiguous shards is solved serially with warm-start
    /// chaining inside the shard; the per-point solves themselves run
    /// single-threaded (the points are the parallelism). Warm-start chains
    /// restart at shard boundaries (first point of a shard is a cold
    /// start), which lands on a different approximate solution within the
    /// residual tolerance: at loose tolerances (~1e-9) sensitive tail
    /// measures such as PLP can shift in their trailing printed digits
    /// versus the serial chain. Tighten solve.tolerance when serial and
    /// parallel outputs must agree to figure precision.
    bool parallel_points = false;
    /// Execution width for sharding work items across the pool: sweep
    /// points in call_arrival_rate (only when parallel_points is true) and
    /// scenarios in sweep_scenarios (always). 0 = all hardware threads,
    /// <= 1 = serial. When items are sharded the per-item solves are forced
    /// single-threaded; in the serial cases the per-point solver width
    /// comes from solve.num_threads instead.
    int num_threads = 1;
    /// Called after each completed point (index, point). In parallel_points
    /// mode this is invoked under a lock but NOT in index order.
    std::function<void(std::size_t, const SweepPoint&)> progress;
};

/// One operating point of a model-vs-simulator validation sweep: the
/// chain's exact measures next to the simulator's replication-level 95%
/// confidence intervals (paper Section 5.2 / Fig. 6).
struct ValidationPoint {
    double call_arrival_rate = 0.0;
    Measures model;                     ///< analytical (chain) measures
    common::index_type iterations = 0;  ///< chain solve iterations
    double residual = 0.0;
    sim::ExperimentResults simulated;   ///< pooled replication estimates
};

struct ValidationOptions {
    /// Per-point chain solves. solve.num_threads is overridden to 1: the
    /// work items are the parallelism, and a multi-threaded solve would
    /// switch methods (gauss_seidel -> red-black), breaking the identical-
    /// output-at-every-width guarantee.
    ctmc::SolveOptions solve;
    /// Simulator template, replication count, and experiment seed. The
    /// per-replication substream block also encodes the point index, so
    /// every point draws from disjoint substreams of one experiment seed;
    /// experiment.num_threads/progress are ignored here.
    sim::ExperimentConfig experiment;
    /// Execution width for sharding work items (model solves and
    /// individual replications claimed from one pool): 0 = all hardware
    /// threads, <= 1 = serial. Results are identical for every width.
    int num_threads = 1;
};

/// One solved heterogeneous scenario from ScenarioSweep::sweep_scenarios.
struct ScenarioPoint {
    Parameters parameters;
    Measures measures;
    common::index_type iterations = 0;
    double residual = 0.0;
    double seconds = 0.0;
};

/// Model-layer sweep driver bound to a SolverEngine.
///
///   ctmc::SolverEngine engine(8);
///   ScenarioSweep sweeps(engine);
///   auto points = sweeps.call_arrival_rate(base, rates, options);
///
/// The engine's pool is reused across calls; construct one ScenarioSweep
/// (or one engine) per workload, not per point.
class ScenarioSweep {
public:
    explicit ScenarioSweep(ctmc::SolverEngine& engine) : engine_(engine) {}

    /// Solves `base` at each arrival rate in `call_rates` (ascending order
    /// is fastest with warm starts) and returns the measures per point.
    std::vector<SweepPoint> call_arrival_rate(const Parameters& base,
                                              std::span<const double> call_rates,
                                              const SweepOptions& options = {});

    /// Solves a batch of heterogeneous scenarios (varying PDCH reservation,
    /// coding scheme, GPRS load, ...) concurrently: scenarios are claimed
    /// dynamically by the pool, one solve per scenario, each warm-started
    /// from its own product-form guess. Output order matches input order.
    std::vector<ScenarioPoint> sweep_scenarios(std::span<const Parameters> scenarios,
                                               const SweepOptions& options = {});

    /// Drives the paper's validation methodology as ONE pooled workload:
    /// for every arrival rate, one chain solve plus
    /// options.experiment.replications simulator replications, all claimed
    /// dynamically from the engine's pool so chain solves and replications
    /// interleave on the same workers. Replication r of point p runs on
    /// substream block p * replications + r of the experiment seed and the
    /// per-point pooling is a serial in-order reduction, so the output —
    /// model measures and simulator CIs alike — is bitwise invariant to
    /// num_threads.
    std::vector<ValidationPoint> validate_call_arrival_rate(
        const Parameters& base, std::span<const double> call_rates,
        const ValidationOptions& options = {});

private:
    ctmc::SolverEngine& engine_;
};

/// Convenience wrapper over ScenarioSweep on the process-wide default
/// engine; with default options this is the exact serial sweep of the seed.
std::vector<SweepPoint> sweep_call_arrival_rate(const Parameters& base,
                                                std::span<const double> call_rates,
                                                const SweepOptions& options = {});

/// Batch entry point on the default engine; see ScenarioSweep.
std::vector<ScenarioPoint> sweep_scenarios(std::span<const Parameters> scenarios,
                                           const SweepOptions& options = {});

/// Evenly spaced arrival-rate grid [first, last] with `count` points —
/// convenience for the benches (count >= 2).
std::vector<double> arrival_rate_grid(double first, double last, int count);

}  // namespace gprsim::core
