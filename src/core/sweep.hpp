// Parameter sweeps over the call arrival rate — the x-axis of every
// performance figure in the paper — plus heterogeneous scenario batches,
// routed through a shared SolverEngine so independent chain solves shard
// across one thread pool.
//
// These are the model-layer primitives; multi-axis workloads (variant
// grids, warm-start-cached dense sweeps, model-vs-simulator validation,
// spec files) belong one layer up in campaign::CampaignRunner
// (campaign/runner.hpp), which the figure benches and gprsim_cli go
// through.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "ctmc/engine.hpp"
#include "ctmc/solver.hpp"
#include "core/measures.hpp"
#include "core/parameters.hpp"

namespace gprsim::core {

struct SweepPoint {
    double call_arrival_rate = 0.0;
    Measures measures;
    common::index_type iterations = 0;
    double residual = 0.0;
    double seconds = 0.0;
};

struct SweepOptions {
    ctmc::SolveOptions solve;
    /// Reuse the previous point's distribution as the next initial vector.
    /// All points share one state space, so this is always well-formed and
    /// typically cuts iteration counts by 3-10x on smooth sweeps. In
    /// parallel_points mode the chaining happens within each shard.
    bool warm_start = true;
    /// Shard *independent* sweep points across the engine's pool. Each of
    /// the num_threads contiguous shards is solved serially with warm-start
    /// chaining inside the shard; the per-point solves themselves run
    /// single-threaded (the points are the parallelism). Warm-start chains
    /// restart at shard boundaries (first point of a shard is a cold
    /// start), which lands on a different approximate solution within the
    /// residual tolerance: at loose tolerances (~1e-9) sensitive tail
    /// measures such as PLP can shift in their trailing printed digits
    /// versus the serial chain. Tighten solve.tolerance when serial and
    /// parallel outputs must agree to figure precision.
    bool parallel_points = false;
    /// Execution width for sharding work items across the pool: sweep
    /// points in call_arrival_rate (only when parallel_points is true) and
    /// scenarios in sweep_scenarios (always). 0 = all hardware threads,
    /// <= 1 = serial. When items are sharded the per-item solves are forced
    /// single-threaded; in the serial cases the per-point solver width
    /// comes from solve.num_threads instead.
    int num_threads = 1;
    /// Called after each completed point (index, point). In parallel_points
    /// mode this is invoked under a lock but NOT in index order.
    std::function<void(std::size_t, const SweepPoint&)> progress;
};

/// One solved heterogeneous scenario from ScenarioSweep::sweep_scenarios.
struct ScenarioPoint {
    Parameters parameters;
    Measures measures;
    common::index_type iterations = 0;
    double residual = 0.0;
    double seconds = 0.0;
};

/// Model-layer sweep driver bound to a SolverEngine.
///
///   ctmc::SolverEngine engine(8);
///   ScenarioSweep sweeps(engine);
///   auto points = sweeps.call_arrival_rate(base, rates, options);
///
/// The engine's pool is reused across calls; construct one ScenarioSweep
/// (or one engine) per workload, not per point.
class ScenarioSweep {
public:
    explicit ScenarioSweep(ctmc::SolverEngine& engine) : engine_(engine) {}

    /// Solves `base` at each arrival rate in `call_rates` (ascending order
    /// is fastest with warm starts) and returns the measures per point.
    std::vector<SweepPoint> call_arrival_rate(const Parameters& base,
                                              std::span<const double> call_rates,
                                              const SweepOptions& options = {});

    /// Solves a batch of heterogeneous scenarios (varying PDCH reservation,
    /// coding scheme, GPRS load, ...) concurrently: scenarios are claimed
    /// dynamically by the pool, one solve per scenario, each warm-started
    /// from its own product-form guess. Output order matches input order.
    /// (Model-vs-simulator validation sweeps — a chain solve plus R
    /// replications per point — live in campaign::CampaignRunner with
    /// methods {"ctmc", "des"}.)
    std::vector<ScenarioPoint> sweep_scenarios(std::span<const Parameters> scenarios,
                                               const SweepOptions& options = {});

private:
    ctmc::SolverEngine& engine_;
};

/// Convenience wrapper over ScenarioSweep on the process-wide default
/// engine; with default options this is the exact serial sweep of the seed.
std::vector<SweepPoint> sweep_call_arrival_rate(const Parameters& base,
                                                std::span<const double> call_rates,
                                                const SweepOptions& options = {});

/// Batch entry point on the default engine; see ScenarioSweep.
std::vector<ScenarioPoint> sweep_scenarios(std::span<const Parameters> scenarios,
                                           const SweepOptions& options = {});

/// Evenly spaced arrival-rate grid [first, last] with `count` points —
/// convenience for the benches (count >= 2).
std::vector<double> arrival_rate_grid(double first, double last, int count);

}  // namespace gprsim::core
