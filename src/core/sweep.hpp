// Parameter sweeps over the call arrival rate — the x-axis of every
// performance figure in the paper — with warm-started solves.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "ctmc/solver.hpp"
#include "core/measures.hpp"
#include "core/parameters.hpp"

namespace gprsim::core {

struct SweepPoint {
    double call_arrival_rate = 0.0;
    Measures measures;
    ctmc::index_type iterations = 0;
    double residual = 0.0;
    double seconds = 0.0;
};

struct SweepOptions {
    ctmc::SolveOptions solve;
    /// Reuse the previous point's distribution as the next initial vector.
    /// All points share one state space, so this is always well-formed and
    /// typically cuts iteration counts by 3-10x on smooth sweeps.
    bool warm_start = true;
    /// Called after each completed point (index, point).
    std::function<void(std::size_t, const SweepPoint&)> progress;
};

/// Solves `base` at each arrival rate in `call_rates` (ascending order is
/// fastest with warm starts) and returns the measures per point.
std::vector<SweepPoint> sweep_call_arrival_rate(const Parameters& base,
                                                std::span<const double> call_rates,
                                                const SweepOptions& options = {});

/// Evenly spaced arrival-rate grid [first, last] with `count` points —
/// convenience for the benches (count >= 2).
std::vector<double> arrival_rate_grid(double first, double last, int count);

}  // namespace gprsim::core
