// Transition enumeration is header-only (templated emitters); this
// translation unit anchors the header into the library.
#include "core/transitions.hpp"
