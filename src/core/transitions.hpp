// Transition structure of the GPRS Markov chain — paper Table 1, verbatim.
//
// Every row of Table 1 appears here twice: once in for_each_outgoing() (used
// to assemble the generator and its diagonal) and once in for_each_incoming()
// (used by the matrix-free Gauss-Seidel path for chains too large to store).
// The test suite checks both views against each other entry by entry.
#pragma once

#include <algorithm>

#include "core/parameters.hpp"
#include "core/state_space.hpp"

namespace gprsim::core {

/// Aggregated transition rates of the model after handover balancing.
struct ModelRates {
    double gsm_arrival = 0.0;     ///< lambda_GSM + lambda_h,GSM
    double gsm_departure = 0.0;   ///< mu_GSM + mu_h,GSM       (per call)
    double gprs_arrival = 0.0;    ///< lambda_GPRS + lambda_h,GPRS
    double gprs_departure = 0.0;  ///< mu_GPRS + mu_h,GPRS     (per session)
    double on_to_off = 0.0;       ///< a  (packet call ends)
    double off_to_on = 0.0;       ///< b  (reading ends)
    double packet_rate = 0.0;     ///< lambda_packet while ON
    double service_rate = 0.0;    ///< mu_service per PDCH [packets/s]

    /// A newly arriving session starts ON with the IPP's stationary
    /// probability b/(a+b) so it is already in equilibrium (Section 4.1).
    double on_admission_probability() const {
        return off_to_on / (on_to_off + off_to_on);
    }
};

/// PDCHs carrying data in state s: min(N - n, 8k). At most 8 time slots per
/// packet (multislot) and 8 packets per PDCH; GSM calls preempt on-demand
/// channels, so only N - n channels remain for data.
inline int pdch_in_use(const Parameters& p, const State& s) {
    return std::min(p.total_channels - s.gsm_calls, 8 * s.buffer);
}

/// Aggregate packet service rate in state s.
inline double service_rate_in(const Parameters& p, const ModelRates& rates, const State& s) {
    return static_cast<double>(pdch_in_use(p, s)) * rates.service_rate;
}

/// Rate at which the (m - r) ON sources *offer* packets in state s. Below
/// the flow-control onset floor(eta K) the sources send at full speed; above
/// it the TCP approximation throttles them to the current service rate.
/// Arrivals offered at k = K are lost; they still count here, which is what
/// the packet loss probability (Eq. 9) divides by.
inline double offered_packet_rate(const Parameters& p, const ModelRates& rates,
                                  const State& s) {
    const double on_sources = static_cast<double>(s.gprs_sessions - s.off_sessions);
    const double full = on_sources * rates.packet_rate;
    if (s.buffer <= p.flow_control_onset()) {
        return full;
    }
    return std::min(full, service_rate_in(p, rates, s));
}

/// Rate of the k -> k+1 transition in state s (zero when the buffer is full).
inline double accepted_packet_rate(const Parameters& p, const ModelRates& rates,
                                   const State& s) {
    if (s.buffer >= p.buffer_capacity) {
        return 0.0;
    }
    return offered_packet_rate(p, rates, s);
}

/// Enumerates the outgoing transitions of state s (Table 1).
/// `emit(successor, rate)` is called for every transition with rate > 0.
template <typename F>
void for_each_outgoing(const Parameters& p, const ModelRates& rates, const State& s,
                       F&& emit) {
    const int k = s.buffer;
    const int n = s.gsm_calls;
    const int m = s.gprs_sessions;
    const int r = s.off_sessions;

    // GSM call arrival (fresh or handover).
    if (n < p.gsm_channels()) {
        emit(State{k, n + 1, m, r}, rates.gsm_arrival);
    }
    // GPRS session arrival; the newcomer is ON w.p. b/(a+b), OFF otherwise.
    if (m < p.max_gprs_sessions) {
        const double p_on = rates.on_admission_probability();
        emit(State{k, n, m + 1, r}, p_on * rates.gprs_arrival);
        emit(State{k, n, m + 1, r + 1}, (1.0 - p_on) * rates.gprs_arrival);
    }
    // GSM call leaves (completion or outgoing handover).
    if (n > 0) {
        emit(State{k, n - 1, m, r}, static_cast<double>(n) * rates.gsm_departure);
    }
    // GPRS session leaves; the leaver is OFF w.p. r/m, ON w.p. (m-r)/m.
    if (m > 0) {
        if (m - r > 0) {
            emit(State{k, n, m - 1, r},
                 static_cast<double>(m - r) * rates.gprs_departure);
        }
        if (r > 0) {
            emit(State{k, n, m - 1, r - 1},
                 static_cast<double>(r) * rates.gprs_departure);
        }
    }
    // Data packet arrival (possibly throttled by flow control).
    {
        const double rate = accepted_packet_rate(p, rates, s);
        if (rate > 0.0) {
            emit(State{k + 1, n, m, r}, rate);
        }
    }
    // Data packet service on min(N-n, 8k) PDCHs.
    {
        const double rate = service_rate_in(p, rates, s);
        if (rate > 0.0) {
            emit(State{k - 1, n, m, r}, rate);
        }
    }
    // Aggregated MMPP: one source finishes its packet call (less bursty)...
    if (r < m) {
        emit(State{k, n, m, r + 1}, static_cast<double>(m - r) * rates.on_to_off);
    }
    // ... or finishes reading (more bursty).
    if (r > 0) {
        emit(State{k, n, m, r - 1}, static_cast<double>(r) * rates.off_to_on);
    }
}

/// Total exit rate of state s; the generator diagonal is its negation.
inline double total_exit_rate(const Parameters& p, const ModelRates& rates, const State& s) {
    double total = 0.0;
    for_each_outgoing(p, rates, s, [&](const State&, double rate) { total += rate; });
    return total;
}

/// Enumerates the transitions *into* state s: `emit(predecessor, rate)` for
/// every predecessor with a positive rate toward s. This is the row of the
/// transposed generator needed by Gauss-Seidel, derived by inverting each
/// Table 1 event.
template <typename F>
void for_each_incoming(const Parameters& p, const ModelRates& rates, const State& s,
                       F&& emit) {
    const int k = s.buffer;
    const int n = s.gsm_calls;
    const int m = s.gprs_sessions;
    const int r = s.off_sessions;

    // GSM arrival happened: predecessor had n-1 calls.
    if (n >= 1) {
        emit(State{k, n - 1, m, r}, rates.gsm_arrival);
    }
    // GSM departure happened: predecessor had n+1 calls.
    if (n + 1 <= p.gsm_channels()) {
        emit(State{k, n + 1, m, r}, static_cast<double>(n + 1) * rates.gsm_departure);
    }
    // GPRS arrival in ON state: predecessor (m-1, r) — needs r <= m-1.
    if (m >= 1) {
        const double p_on = rates.on_admission_probability();
        if (r <= m - 1) {
            emit(State{k, n, m - 1, r}, p_on * rates.gprs_arrival);
        }
        // GPRS arrival in OFF state: predecessor (m-1, r-1).
        if (r >= 1) {
            emit(State{k, n, m - 1, r - 1}, (1.0 - p_on) * rates.gprs_arrival);
        }
    }
    // GPRS departure of an ON session: predecessor (m+1, r) had m+1-r > 0
    // ON sessions; rate (m+1-r) * mu.
    if (m + 1 <= p.max_gprs_sessions) {
        emit(State{k, n, m + 1, r},
             static_cast<double>(m + 1 - r) * rates.gprs_departure);
        // Departure of an OFF session: predecessor (m+1, r+1).
        emit(State{k, n, m + 1, r + 1},
             static_cast<double>(r + 1) * rates.gprs_departure);
    }
    // Packet arrival: predecessor one buffer level below.
    if (k >= 1) {
        const State pred{k - 1, n, m, r};
        const double rate = accepted_packet_rate(p, rates, pred);
        if (rate > 0.0) {
            emit(pred, rate);
        }
    }
    // Packet service: predecessor one buffer level above.
    if (k + 1 <= p.buffer_capacity) {
        const State pred{k + 1, n, m, r};
        const double rate = service_rate_in(p, rates, pred);
        if (rate > 0.0) {
            emit(pred, rate);
        }
    }
    // MMPP became less bursty (one source ON -> OFF): predecessor had r-1
    // OFF sources, i.e. m-(r-1) ON sources.
    if (r >= 1) {
        emit(State{k, n, m, r - 1}, static_cast<double>(m - r + 1) * rates.on_to_off);
    }
    // MMPP became more bursty (one source OFF -> ON): predecessor had r+1.
    if (r + 1 <= m) {
        emit(State{k, n, m, r + 1}, static_cast<double>(r + 1) * rates.off_to_on);
    }
}

}  // namespace gprsim::core
