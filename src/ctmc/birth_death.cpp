#include "ctmc/birth_death.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gprsim::ctmc {

std::vector<double> birth_death_distribution(std::span<const double> birth_rates,
                                             std::span<const double> death_rates) {
    if (birth_rates.size() != death_rates.size()) {
        throw std::invalid_argument("birth_death_distribution: rate vector size mismatch");
    }
    const std::size_t n = birth_rates.size();

    // log_w[k] = log of the unnormalized stationary weight of state k.
    std::vector<double> log_w(n + 1);
    log_w[0] = 0.0;
    bool truncated = false;
    for (std::size_t k = 0; k < n; ++k) {
        if (death_rates[k] <= 0.0) {
            throw std::invalid_argument("birth_death_distribution: death rate must be positive");
        }
        if (birth_rates[k] < 0.0) {
            throw std::invalid_argument("birth_death_distribution: negative birth rate");
        }
        if (truncated || birth_rates[k] == 0.0) {
            truncated = true;
            log_w[k + 1] = -std::numeric_limits<double>::infinity();
        } else {
            log_w[k + 1] = log_w[k] + std::log(birth_rates[k]) - std::log(death_rates[k]);
        }
    }

    const double log_max = *std::max_element(log_w.begin(), log_w.end());
    std::vector<double> pi(n + 1);
    double sum = 0.0;
    for (std::size_t k = 0; k <= n; ++k) {
        pi[k] = std::isinf(log_w[k]) ? 0.0 : std::exp(log_w[k] - log_max);
        sum += pi[k];
    }
    for (double& v : pi) {
        v /= sum;
    }
    return pi;
}

}  // namespace gprsim::ctmc
