// Closed-form stationary distribution of finite birth-death chains.
//
// Birth-death chains cover the M/M/c/c and M/M/1/K building blocks the GPRS
// paper relies on (Eq. 2-3) and give the test suite an independent oracle.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace gprsim::ctmc {

using common::index_type;

/// Stationary distribution of the birth-death chain on states 0..n where
/// birth_rates[i] is the rate i -> i+1 (size n) and death_rates[i] is the
/// rate i+1 -> i (size n). All death rates must be positive; a zero birth
/// rate truncates the reachable chain and leaves zero mass above it.
///
/// Products are accumulated in log space so extremely skewed chains (loss
/// probabilities of 1e-30 and below) remain accurate.
std::vector<double> birth_death_distribution(std::span<const double> birth_rates,
                                             std::span<const double> death_rates);

}  // namespace gprsim::ctmc
