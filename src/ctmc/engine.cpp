#include "ctmc/engine.hpp"

#include <algorithm>

namespace gprsim::ctmc {

SolverEngine::SolverEngine(int prewarm_threads) {
    if (prewarm_threads > 1) {
        pool_ = std::make_unique<common::ThreadPool>(prewarm_threads);
    }
}

int SolverEngine::resolve_thread_count(int requested) {
    return common::ThreadPool::resolve_thread_count(requested);
}

common::ThreadPool& SolverEngine::pool(int min_threads) {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    const int want = std::max(min_threads, 1);
    if (!pool_ || pool_->size() < want) {
        pool_.reset();  // join the old workers before spawning the new pool
        pool_ = std::make_unique<common::ThreadPool>(want);
    }
    return *pool_;
}

SolverEngine& default_engine() {
    static SolverEngine engine;
    return engine;
}

}  // namespace gprsim::ctmc
