#include "ctmc/engine.hpp"

#include <algorithm>
#include <sstream>

namespace gprsim::ctmc {

AutoSelection auto_select_method(index_type n, int threads) {
    // Cost model, measured on the Fig. 10 M = 10 chain (126k states; see
    // docs/benchmarks.md). All costs are per-sweep, relative to one
    // sequential Gauss-Seidel sweep; the iteration ratios are the observed
    // sweeps-to-tolerance of each method against serial Gauss-Seidel with
    // the product-form warm start.
    constexpr double kCostSerialSweep = 0.55;    // wavefront-pipelined kernel
    constexpr double kCostRedBlackSweep = 2.1;   // two colored phases + commit
    constexpr double kIterRatioRedBlack = 1.85;  // 1830 / 990 sweeps
    constexpr double kCostJacobiSweep = 1.9;     // two-vector sweep
    constexpr double kIterRatioJacobi = 5.0;     // 4990 / 990 sweeps
    constexpr double kParallelEfficiency = 0.8;  // pool dispatch + memory bw
    constexpr index_type kSmallChain = 50000;

    AutoSelection pick;
    std::ostringstream why;
    why << "auto_select(n=" << n << ", threads=" << threads << "): ";
    if (threads <= 1) {
        pick.method = SolveMethod::gauss_seidel;
        why << "serial budget -> pipelined serial Gauss-Seidel";
        pick.reason = why.str();
        return pick;
    }
    if (n < kSmallChain) {
        pick.method = SolveMethod::gauss_seidel;
        why << "chain below " << kSmallChain
            << " states -> serial Gauss-Seidel (parallel dispatch overhead dominates)";
        pick.reason = why.str();
        return pick;
    }
    const double width = static_cast<double>(threads) * kParallelEfficiency;
    const double serial_cost = kCostSerialSweep;
    const double red_black_cost = kCostRedBlackSweep * kIterRatioRedBlack / width;
    const double jacobi_cost = kCostJacobiSweep * kIterRatioJacobi / width;
    if (serial_cost <= red_black_cost && serial_cost <= jacobi_cost) {
        pick.method = SolveMethod::gauss_seidel;
        why << "serial cost " << serial_cost << " beats red-black " << red_black_cost
            << " and Jacobi " << jacobi_cost << " at this width";
    } else if (red_black_cost <= jacobi_cost) {
        pick.method = SolveMethod::red_black_gauss_seidel;
        why << "red-black cost " << red_black_cost << " beats serial " << serial_cost
            << " and Jacobi " << jacobi_cost;
    } else {
        pick.method = SolveMethod::jacobi;
        why << "Jacobi cost " << jacobi_cost << " beats serial " << serial_cost
            << " and red-black " << red_black_cost;
    }
    pick.reason = why.str();
    return pick;
}

SolverEngine::SolverEngine(int prewarm_threads) {
    if (prewarm_threads > 1) {
        pool_ = std::make_unique<common::ThreadPool>(prewarm_threads);
    }
}

int SolverEngine::resolve_thread_count(int requested) {
    return common::ThreadPool::resolve_thread_count(requested);
}

common::ThreadPool& SolverEngine::pool(int min_threads) {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    const int want = std::max(min_threads, 1);
    if (!pool_ || pool_->size() < want) {
        pool_.reset();  // join the old workers before spawning the new pool
        pool_ = std::make_unique<common::ThreadPool>(want);
    }
    return *pool_;
}

SolverEngine& default_engine() {
    static SolverEngine engine;
    return engine;
}

}  // namespace gprsim::ctmc
