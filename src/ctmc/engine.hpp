// SolverEngine: the reusable entry point of the steady-state stack.
//
//   engine layer   (this file + kernels.hpp + thread_pool.hpp)
//        ^ owns a shared common::ThreadPool, dispatches per-method kernels
//   model layer    (core/model.hpp, core/sweep.hpp)
//        ^ routes GprsModel::solve() and sweeps through an engine
//   consumers      (bench/, examples/)
//
// One engine should live as long as the workload: its pool is spawned once
// and reused across every solve, sweep point, and residual evaluation; a
// pool wider than a given solve's width never over-parallelizes it (the
// dispatch caps participating threads at num_threads).
// Thread-count semantics (SolveOptions::num_threads):
//   1  -> serial. For the Gauss-Seidel family this is the exact seed
//         arithmetic (bit-compatible); the parallel methods use
//         block-ordered reductions, whose rounding differs from the seed's
//         left-to-right sums in the last ulps.
//   0  -> all hardware threads,
//   N  -> N-wide execution. The parallel methods (jacobi, power,
//         red_black_gauss_seidel) produce bitwise identical distributions
//         for every thread count; plain gauss_seidel upgrades to
//         red_black_gauss_seidel when more than one thread is requested.
#pragma once

#include <chrono>
#include <memory>
#include <mutex>

#include "ctmc/kernels.hpp"
#include "ctmc/solver_options.hpp"
#include "common/thread_pool.hpp"

namespace gprsim::ctmc {

class SolverEngine {
public:
    /// `prewarm_threads` > 1 spawns the pool eagerly; otherwise the pool is
    /// created on first parallel solve (or pool() call).
    explicit SolverEngine(int prewarm_threads = 0);

    SolverEngine(const SolverEngine&) = delete;
    SolverEngine& operator=(const SolverEngine&) = delete;

    /// Resolves SolveOptions::num_threads via the repo-wide convention
    /// (common::ThreadPool::resolve_thread_count): 0 -> hardware threads,
    /// else max(1, requested).
    static int resolve_thread_count(int requested);

    /// The shared pool, grown (recreated) if narrower than `min_threads`.
    /// Do not resize while another thread is solving on this engine.
    common::ThreadPool& pool(int min_threads);

    /// Solves pi Q = 0, sum(pi) = 1 for the operator's chain.
    ///
    /// Throws std::invalid_argument for degenerate generators. A
    /// non-converged result (result.converged == false) is returned rather
    /// than thrown so callers can decide whether the residual is
    /// acceptable. Concurrent serial solves (num_threads == 1) on one
    /// engine are safe; concurrent *parallel* solves serialize on the pool.
    template <QtOperatorConcept Op>
    SolveResult solve(const Op& op, const SolveOptions& options = {});

private:
    std::unique_ptr<common::ThreadPool> pool_;
    std::mutex pool_mutex_;
};

/// Process-wide engine used by the solve_steady_state() convenience wrapper
/// and by model-layer callers that do not manage their own engine.
SolverEngine& default_engine();

// --- implementation -----------------------------------------------------

template <QtOperatorConcept Op>
SolveResult SolverEngine::solve(const Op& op, const SolveOptions& options) {
    const auto t0 = std::chrono::steady_clock::now();
    const index_type n = op.size();
    if (n <= 0) {
        throw std::invalid_argument("solve_steady_state: empty state space");
    }
    if (!options.initial.empty() &&
        static_cast<index_type>(options.initial.size()) != n) {
        throw std::invalid_argument("solve_steady_state: initial vector size mismatch");
    }
    if (!options.initial_candidates.empty() && !options.initial.empty()) {
        throw std::invalid_argument(
            "solve_steady_state: initial and initial_candidates are mutually exclusive");
    }

    const int threads = resolve_thread_count(options.num_threads);
    SolveMethod method = options.method;
    if (method == SolveMethod::gauss_seidel && threads > 1) {
        method = SolveMethod::red_black_gauss_seidel;
    }
    const bool parallel_family = method == SolveMethod::jacobi ||
                                 method == SolveMethod::power ||
                                 method == SolveMethod::red_black_gauss_seidel;
    detail::Executor exec;
    if (threads > 1 && parallel_family) {
        exec = {&this->pool(threads), threads};
    }

    SolveResult result;
    result.threads_used = exec.pool != nullptr ? threads : 1;
    result.method_used = method;
    const double lambda = detail::max_exit_rate(op, exec);

    const auto prepared_initial = [&](const std::vector<double>& raw) {
        std::vector<double> x = raw;
        for (double& v : x) {
            v = std::max(v, 0.0);
        }
        if (parallel_family) {
            detail::normalize_blocked(x, exec);
        } else {
            detail::normalize(x);
        }
        return x;
    };
    result.distribution.assign(static_cast<std::size_t>(n), 1.0 / static_cast<double>(n));
    if (!options.initial.empty()) {
        result.distribution = prepared_initial(options.initial);
    } else if (!options.initial_candidates.empty()) {
        // Competitive warm starts: one residual evaluation per candidate
        // (an O(nnz) pass, far cheaper than the sweeps a bad start costs),
        // then iterate from the winner. A later candidate only displaces
        // the incumbent when it undercuts margin * incumbent — see the
        // candidate_margin documentation for why near-ties go to the
        // earlier (preferred) candidate.
        if (options.candidate_margin <= 0.0 || options.candidate_margin > 1.0) {
            throw std::invalid_argument(
                "solve_steady_state: candidate_margin must be in (0, 1]");
        }
        double incumbent_residual = 0.0;
        for (std::size_t c = 0; c < options.initial_candidates.size(); ++c) {
            const std::vector<double>& raw = options.initial_candidates[c];
            if (static_cast<index_type>(raw.size()) != n) {
                throw std::invalid_argument(
                    "solve_steady_state: initial candidate size mismatch");
            }
            std::vector<double> x = prepared_initial(raw);
            const double residual = detail::scaled_residual(op, x, lambda, exec);
            if (result.initial_selected < 0 ||
                residual < options.candidate_margin * incumbent_residual) {
                incumbent_residual = residual;
                result.initial_selected = static_cast<int>(c);
                result.distribution = std::move(x);
            }
        }
    }
    std::vector<double>& x = result.distribution;
    const bool needs_old = method == SolveMethod::jacobi || method == SolveMethod::power;
    std::vector<double> old;
    if (needs_old) {
        old.resize(static_cast<std::size_t>(n));
    }
    std::vector<double> scratch;
    if (method == SolveMethod::red_black_gauss_seidel) {
        scratch.resize(static_cast<std::size_t>(n));
    }

    const double omega = method == SolveMethod::sor ? options.relaxation : 1.0;
    if (omega <= 0.0 || omega >= 2.0) {
        throw std::invalid_argument("solve_steady_state: relaxation must be in (0, 2)");
    }

    bool residual_current = false;  // does result.residual describe x as-is?
    for (index_type sweep = 1; sweep <= options.max_iterations; ++sweep) {
        switch (method) {
            case SolveMethod::gauss_seidel:
            case SolveMethod::sor:
                detail::gauss_seidel_forward(op, x, omega);
                break;
            case SolveMethod::symmetric_gauss_seidel:
                detail::gauss_seidel_forward(op, x, omega);
                detail::gauss_seidel_backward(op, x, omega);
                break;
            case SolveMethod::jacobi:
                old.swap(x);
                detail::jacobi_sweep(op, old, x, exec);
                break;
            case SolveMethod::power:
                old.swap(x);
                detail::power_sweep(op, old, x, lambda, exec);
                break;
            case SolveMethod::red_black_gauss_seidel:
                detail::red_black_sweep(op, x, scratch, exec);
                break;
        }
        result.iterations = sweep;
        residual_current = false;

        if (sweep % options.check_interval == 0 || sweep == options.max_iterations) {
            if (parallel_family) {
                detail::normalize_blocked(x, exec);
            } else {
                detail::normalize(x);
            }
            result.residual = detail::scaled_residual(op, x, lambda, exec);
            residual_current = true;
            if (options.progress) {
                options.progress(sweep, result.residual);
            }
            if (result.residual <= options.tolerance) {
                break;
            }
        }
    }

    // Every loop exit passes through a residual check (converged break or
    // the forced check on the final sweep), so the O(nnz) recomputation the
    // seed solver did here is skipped unless the loop never ran.
    if (!residual_current) {
        if (parallel_family) {
            detail::normalize_blocked(x, exec);
        } else {
            detail::normalize(x);
        }
        result.residual = detail::scaled_residual(op, x, lambda, exec);
    }
    result.converged = result.residual <= options.tolerance;
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return result;
}

}  // namespace gprsim::ctmc
