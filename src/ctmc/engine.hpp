// SolverEngine: the reusable entry point of the steady-state stack.
//
//   engine layer   (this file + kernels.hpp + thread_pool.hpp)
//        ^ owns a shared common::ThreadPool, dispatches per-method kernels
//   model layer    (core/model.hpp, core/sweep.hpp)
//        ^ routes GprsModel::solve() and sweeps through an engine
//   consumers      (bench/, examples/)
//
// One engine should live as long as the workload: its pool is spawned once
// and reused across every solve, sweep point, and residual evaluation; a
// pool wider than a given solve's width never over-parallelizes it (the
// dispatch caps participating threads at num_threads).
// Thread-count semantics (SolveOptions::num_threads):
//   1  -> serial. For the Gauss-Seidel family this is the exact seed
//         arithmetic (bit-compatible); the parallel methods use
//         block-ordered reductions, whose rounding differs from the seed's
//         left-to-right sums in the last ulps.
//   0  -> all hardware threads,
//   N  -> N-wide execution. The parallel methods (jacobi, power,
//         red_black_gauss_seidel) produce bitwise identical distributions
//         for every thread count; plain gauss_seidel upgrades to
//         red_black_gauss_seidel when more than one thread is requested
//         (unless auto_select picked it — the cost model's serial choice
//         is deliberate and runs serially whatever the width).
//
// The solve loop runs sweeps in batches of check_interval. Serial
// Gauss-Seidel on an explicit QtMatrix takes the raw-CSR wavefront kernel
// (kernels.hpp), which pipelines the batch and fuses the normalization sum
// into the final sweep and the residual into the normalizing division —
// bitwise identical to the one-sweep-at-a-time schedule, about 2x faster.
// With adaptive_checks the residual is evaluated only when the observed
// convergence rate predicts it could matter; normalization stays on the
// fixed every-interval schedule, so the iterate trajectory is unchanged.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <type_traits>

#include "ctmc/kernels.hpp"
#include "ctmc/ordering.hpp"
#include "ctmc/solver_options.hpp"
#include "common/thread_pool.hpp"

namespace gprsim::ctmc {

class SolverEngine {
public:
    /// `prewarm_threads` > 1 spawns the pool eagerly; otherwise the pool is
    /// created on first parallel solve (or pool() call).
    explicit SolverEngine(int prewarm_threads = 0);

    SolverEngine(const SolverEngine&) = delete;
    SolverEngine& operator=(const SolverEngine&) = delete;

    /// Resolves SolveOptions::num_threads via the repo-wide convention
    /// (common::ThreadPool::resolve_thread_count): 0 -> hardware threads,
    /// else max(1, requested).
    static int resolve_thread_count(int requested);

    /// The shared pool, grown (recreated) if narrower than `min_threads`.
    /// Do not resize while another thread is solving on this engine.
    common::ThreadPool& pool(int min_threads);

    /// Solves pi Q = 0, sum(pi) = 1 for the operator's chain.
    ///
    /// Throws std::invalid_argument for degenerate generators. A
    /// non-converged result (result.converged == false) is returned rather
    /// than thrown so callers can decide whether the residual is
    /// acceptable. Concurrent serial solves (num_threads == 1) on one
    /// engine are safe; concurrent *parallel* solves serialize on the pool.
    template <QtOperatorConcept Op>
    SolveResult solve(const Op& op, const SolveOptions& options = {});

private:
    std::unique_ptr<common::ThreadPool> pool_;
    std::mutex pool_mutex_;
};

/// Process-wide engine used by the solve_steady_state() convenience wrapper
/// and by model-layer callers that do not manage their own engine.
SolverEngine& default_engine();

// --- implementation -----------------------------------------------------

template <QtOperatorConcept Op>
SolveResult SolverEngine::solve(const Op& op, const SolveOptions& options) {
    const auto t0 = std::chrono::steady_clock::now();
    const index_type n = op.size();
    if (n <= 0) {
        throw std::invalid_argument("solve_steady_state: empty state space");
    }
    if (!options.initial.empty() &&
        static_cast<index_type>(options.initial.size()) != n) {
        throw std::invalid_argument("solve_steady_state: initial vector size mismatch");
    }
    if (!options.initial_candidates.empty() && !options.initial.empty()) {
        throw std::invalid_argument(
            "solve_steady_state: initial and initial_candidates are mutually exclusive");
    }
    if (options.check_interval <= 0) {
        throw std::invalid_argument("solve_steady_state: check_interval must be positive");
    }

    // Row reordering: solve the permuted system, then map the distribution
    // back to caller indexing. Only explicit matrices can be reindexed;
    // the reordered solve runs with an empty permutation, so the recursion
    // is exactly one level deep.
    if (!options.permutation.empty() && !is_identity_permutation(options.permutation)) {
        if constexpr (std::is_same_v<Op, QtMatrix>) {
            validate_permutation(options.permutation, n);
            const QtMatrix reordered = permute_qt_matrix(op, options.permutation);
            SolveOptions inner = options;
            inner.permutation.clear();
            if (!inner.initial.empty()) {
                inner.initial = permute_vector(inner.initial, options.permutation);
            }
            for (std::vector<double>& cand : inner.initial_candidates) {
                cand = permute_vector(cand, options.permutation);
            }
            SolveResult res = solve(reordered, inner);
            res.distribution =
                inverse_permute_vector(res.distribution, options.permutation);
            res.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                        t0)
                              .count();
            return res;
        } else {
            throw std::invalid_argument(
                "solve_steady_state: permutation requires an explicit QtMatrix operator");
        }
    }

    SolveResult result;
    const int threads = resolve_thread_count(options.num_threads);
    SolveMethod method = options.method;
    bool auto_serial = false;  // auto-picked gauss_seidel stays serial
    if (method == SolveMethod::auto_select) {
        const AutoSelection pick = auto_select_method(n, threads);
        method = pick.method;
        result.reason = pick.reason;
        auto_serial = method == SolveMethod::gauss_seidel;
    }
    if (method == SolveMethod::gauss_seidel && threads > 1 && !auto_serial) {
        method = SolveMethod::red_black_gauss_seidel;
        result.reason =
            "gauss_seidel is strictly serial; upgraded to red_black_gauss_seidel "
            "for the parallel run";
    }
    const bool parallel_family = method == SolveMethod::jacobi ||
                                 method == SolveMethod::power ||
                                 method == SolveMethod::red_black_gauss_seidel;
    detail::Executor exec;
    if (threads > 1 && parallel_family) {
        exec = {&this->pool(threads), threads};
    }

    result.threads_used = exec.pool != nullptr ? threads : 1;
    result.method_used = method;
    const double lambda = detail::max_exit_rate(op, exec);

    const auto prepared_initial = [&](const std::vector<double>& raw) {
        std::vector<double> x = raw;
        for (double& v : x) {
            v = std::max(v, 0.0);
        }
        if (parallel_family) {
            detail::normalize_blocked(x, exec);
        } else {
            detail::normalize(x);
        }
        return x;
    };
    result.distribution.assign(static_cast<std::size_t>(n), 1.0 / static_cast<double>(n));
    if (!options.initial.empty()) {
        result.distribution = prepared_initial(options.initial);
    } else if (!options.initial_candidates.empty()) {
        // Competitive warm starts: one residual evaluation per candidate
        // (an O(nnz) pass, far cheaper than the sweeps a bad start costs),
        // then iterate from the winner. A later candidate only displaces
        // the incumbent when it undercuts margin * incumbent — see the
        // candidate_margin documentation for why near-ties go to the
        // earlier (preferred) candidate.
        if (options.candidate_margin <= 0.0 || options.candidate_margin > 1.0) {
            throw std::invalid_argument(
                "solve_steady_state: candidate_margin must be in (0, 1]");
        }
        double incumbent_residual = 0.0;
        for (std::size_t c = 0; c < options.initial_candidates.size(); ++c) {
            const std::vector<double>& raw = options.initial_candidates[c];
            if (static_cast<index_type>(raw.size()) != n) {
                throw std::invalid_argument(
                    "solve_steady_state: initial candidate size mismatch");
            }
            std::vector<double> x = prepared_initial(raw);
            const double residual = detail::scaled_residual(op, x, lambda, exec);
            ++result.residual_evaluations;
            if (result.initial_selected < 0 ||
                residual < options.candidate_margin * incumbent_residual) {
                incumbent_residual = residual;
                result.initial_selected = static_cast<int>(c);
                result.distribution = std::move(x);
            }
        }
    }
    std::vector<double>& x = result.distribution;
    const bool needs_old = method == SolveMethod::jacobi || method == SolveMethod::power;
    std::vector<double> old;
    if (needs_old) {
        old.resize(static_cast<std::size_t>(n));
    }
    std::vector<double> scratch;
    if (method == SolveMethod::red_black_gauss_seidel) {
        scratch.resize(static_cast<std::size_t>(n));
    }

    const double omega = method == SolveMethod::sor ? options.relaxation : 1.0;
    if (omega <= 0.0 || omega >= 2.0) {
        throw std::invalid_argument("solve_steady_state: relaxation must be in (0, 2)");
    }

    // Serial Gauss-Seidel on an explicit matrix takes the raw-CSR wavefront
    // kernel; every other (method, operator, width) combination runs the
    // generic one-sweep-at-a-time kernels.
    const bool fast_gs = [&] {
        if constexpr (std::is_same_v<Op, QtMatrix>) {
            return method == SolveMethod::gauss_seidel && exec.pool == nullptr;
        } else {
            return false;
        }
    }();

    // Runs `count` sweeps; on the fast path returns the final sweep's
    // running sum (the normalization numerator), otherwise 0.
    const auto run_sweeps = [&](index_type count, bool want_sum) -> double {
        if constexpr (std::is_same_v<Op, QtMatrix>) {
            if (fast_gs) {
                return detail::gauss_seidel_sweeps(detail::csr_view(op), x.data(), count,
                                                   want_sum);
            }
        }
        (void)want_sum;
        for (index_type s = 0; s < count; ++s) {
            switch (method) {
                case SolveMethod::gauss_seidel:
                case SolveMethod::sor:
                    detail::gauss_seidel_forward(op, x, omega);
                    break;
                case SolveMethod::symmetric_gauss_seidel:
                    detail::gauss_seidel_forward(op, x, omega);
                    detail::gauss_seidel_backward(op, x, omega);
                    break;
                case SolveMethod::jacobi:
                    old.swap(x);
                    detail::jacobi_sweep(op, old, x, exec);
                    break;
                case SolveMethod::power:
                    old.swap(x);
                    detail::power_sweep(op, old, x, lambda, exec);
                    break;
                case SolveMethod::red_black_gauss_seidel:
                    detail::red_black_sweep(op, x, scratch, exec);
                    break;
                case SolveMethod::auto_select:
                    break;  // resolved above; unreachable
            }
        }
        return 0.0;
    };
    const auto normalize_x = [&] {
        if (parallel_family) {
            detail::normalize_blocked(x, exec);
        } else {
            detail::normalize(x);
        }
    };

    // Batched sweep loop. Checkpoints land at every multiple of
    // check_interval (and at max_iterations) exactly as in the
    // sweep-at-a-time schedule; normalization happens at every checkpoint,
    // the residual only where the adaptive schedule (or a fixed schedule
    // with adaptive_checks off) asks for it.
    bool have_residual = false;
    index_type next_residual = options.check_interval;
    index_type prev_sweep = 0;
    double prev_residual = -1.0;
    index_type sweep = 0;
    while (sweep < options.max_iterations) {
        const index_type target = std::min(sweep + options.check_interval,
                                           options.max_iterations);
        const bool want_residual = !options.adaptive_checks || target >= next_residual ||
                                   target == options.max_iterations;
        const double batch_sum = run_sweeps(target - sweep, fast_gs);
        if constexpr (std::is_same_v<Op, QtMatrix>) {
            if (fast_gs) {
                if (want_residual) {
                    result.residual = detail::fused_normalize_residual(
                        detail::csr_view(op), x.data(), batch_sum, lambda);
                    ++result.residual_evaluations;
                } else {
                    if (batch_sum <= 0.0) {
                        throw std::runtime_error(
                            "steady-state solve collapsed to the zero vector");
                    }
                    for (double& v : x) {
                        v /= batch_sum;
                    }
                }
            }
        }
        if (!fast_gs) {
            (void)batch_sum;
            normalize_x();
            if (want_residual) {
                result.residual = detail::scaled_residual(op, x, lambda, exec);
                ++result.residual_evaluations;
            }
        }
        sweep = target;
        result.iterations = sweep;
        have_residual = want_residual;
        if (!want_residual) {
            continue;
        }
        if (options.progress) {
            options.progress(sweep, result.residual);
        }
        if (result.residual <= options.tolerance) {
            break;
        }
        // Schedule the next residual evaluation. With two residuals on
        // record, extrapolate the per-sweep decay and skip ahead — but only
        // half the predicted remaining distance, in whole intervals, capped
        // at 16 intervals, so decelerating convergence cannot overshoot the
        // sweep where the fixed schedule would have stopped.
        index_type gap = options.check_interval;
        if (options.adaptive_checks && prev_residual > 0.0 && result.residual > 0.0 &&
            result.residual < prev_residual) {
            const double f = std::pow(result.residual / prev_residual,
                                      1.0 / static_cast<double>(sweep - prev_sweep));
            if (f > 0.0 && f < 1.0) {
                const double remaining =
                    std::log(options.tolerance / result.residual) / std::log(f);
                const double half_intervals =
                    remaining / 2.0 / static_cast<double>(options.check_interval);
                const index_type mult = std::clamp<index_type>(
                    static_cast<index_type>(half_intervals), 1, 16);
                gap = mult * options.check_interval;
            }
        }
        prev_sweep = sweep;
        prev_residual = result.residual;
        next_residual = sweep + gap;
    }

    // Every loop exit passes through a residual checkpoint (the converged
    // break, or the forced evaluation at max_iterations), so this fallback
    // only fires when max_iterations left the loop body unentered.
    if (!have_residual) {
        normalize_x();
        result.residual = detail::scaled_residual(op, x, lambda, exec);
        ++result.residual_evaluations;
    }
    result.converged = result.residual <= options.tolerance;
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return result;
}

}  // namespace gprsim::ctmc
