#include "ctmc/gth.hpp"

#include <cmath>
#include <stdexcept>

namespace gprsim::ctmc {

std::vector<double> solve_gth_dense(std::vector<double> rates, index_type n) {
    if (n <= 0) {
        throw std::invalid_argument("solve_gth_dense: empty chain");
    }
    if (rates.size() != static_cast<std::size_t>(n) * static_cast<std::size_t>(n)) {
        throw std::invalid_argument("solve_gth_dense: rate matrix size mismatch");
    }
    const auto q = [&](index_type i, index_type j) -> double& {
        return rates[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(j)];
    };

    // Forward elimination: censor states n-1, n-2, ..., 1 out of the chain.
    for (index_type k = n - 1; k >= 1; --k) {
        double total = 0.0;
        for (index_type j = 0; j < k; ++j) {
            total += q(k, j);
        }
        if (total <= 0.0) {
            throw std::runtime_error(
                "solve_gth_dense: zero pivot; chain is reducible or has an absorbing state");
        }
        for (index_type i = 0; i < k; ++i) {
            q(i, k) /= total;
        }
        for (index_type i = 0; i < k; ++i) {
            const double factor = q(i, k);
            if (factor == 0.0) {
                continue;
            }
            for (index_type j = 0; j < k; ++j) {
                if (j != i) {
                    q(i, j) += factor * q(k, j);
                }
            }
        }
    }

    // Back substitution: unnormalized stationary weights.
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    x[0] = 1.0;
    for (index_type k = 1; k < n; ++k) {
        double acc = 0.0;
        for (index_type i = 0; i < k; ++i) {
            acc += x[static_cast<std::size_t>(i)] * q(i, k);
        }
        x[static_cast<std::size_t>(k)] = acc;
    }

    double sum = 0.0;
    for (double v : x) {
        sum += v;
    }
    for (double& v : x) {
        v /= sum;
    }
    return x;
}

std::vector<double> solve_gth(const SparseMatrix& generator) {
    if (generator.rows() != generator.cols()) {
        throw std::invalid_argument("solve_gth: generator must be square");
    }
    const index_type n = generator.rows();
    std::vector<double> dense(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
    for (index_type i = 0; i < n; ++i) {
        const auto cols = generator.row_cols(i);
        const auto values = generator.row_values(i);
        for (std::size_t p = 0; p < cols.size(); ++p) {
            if (cols[p] != i) {
                dense[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                      static_cast<std::size_t>(cols[p])] = values[p];
            }
        }
    }
    return solve_gth_dense(std::move(dense), n);
}

}  // namespace gprsim::ctmc
