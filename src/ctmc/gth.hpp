// Grassmann-Taksar-Heyman (GTH) direct solution of small CTMCs.
//
// GTH is a pivoting-free Gaussian elimination on the transition rates that
// involves no subtractions, making it numerically exact up to rounding even
// for stiff chains. It is O(n^3) time and O(n^2) memory, so it is intended
// for chains up to a few thousand states; the test suite uses it as ground
// truth for the iterative solvers.
#pragma once

#include <vector>

#include "ctmc/sparse_matrix.hpp"
#include "common/types.hpp"

namespace gprsim::ctmc {

/// Stationary distribution of the CTMC whose off-diagonal rates are given in
/// the dense row-major matrix `rates` (rates[i*n+j] = Q_ij for i != j; the
/// diagonal entries are ignored). The chain must be irreducible.
///
/// Throws std::invalid_argument on dimension errors and std::runtime_error
/// when the chain is visibly reducible (a zero pivot appears).
std::vector<double> solve_gth_dense(std::vector<double> rates, index_type n);

/// Convenience overload for a sparse generator (diagonal entries ignored).
std::vector<double> solve_gth(const SparseMatrix& generator);

}  // namespace gprsim::ctmc
