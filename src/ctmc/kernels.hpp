// Per-method solver kernels: serial Gauss-Seidel sweeps plus block-sharded
// parallel kernels (Jacobi, power, red-black Gauss-Seidel, normalize,
// residual). All sharded kernels partition the state range into a FIXED
// number of contiguous blocks (kReductionBlocks, independent of the thread
// count) and combine per-block partials in block order, so every result is
// a pure function of the operator and the input vector — bitwise identical
// whether the blocks run on 1, 2, or 16 threads. Blocks are claimed
// dynamically from the pool, which load-balances rows of uneven degree.
//
// Serial Gauss-Seidel additionally has a raw-CSR fast path
// (gauss_seidel_sweeps on a QtCsrView) that pipelines several sweeps in a
// wavefront: T sweeps are in flight at once, sweep s+t trailing sweep
// s+t-1 by a row distance D > the matrix bandwidth, so every read sees
// exactly the value a sequential sweep sequence would — the iterates are
// bitwise identical to T back-to-back seed sweeps, but the per-row
// dependency chain (accumulate -> divide, the serial solver's actual
// bottleneck; the kernel is latency-bound, not bandwidth-bound) overlaps
// across the T in-flight sweeps. Measured on the Fig. 10 M=10 chain
// (126k states, bandwidth 1254): ~2x per sweep over the sequential loop.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ctmc/solver_options.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace gprsim::ctmc {
namespace detail {

/// Fixed shard count for all blocked kernels. 64 keeps per-block state in
/// one cache line's worth of partials while exposing enough slack for
/// dynamic load balancing on any realistic core count.
inline constexpr int kReductionBlocks = 64;

struct BlockRange {
    index_type begin = 0;
    index_type end = 0;
};

/// Contiguous block `block` of [0, n) split into kReductionBlocks pieces.
/// Depends only on n and the block id — never on the thread count.
inline BlockRange reduction_block(index_type n, int block) {
    const index_type per = (n + kReductionBlocks - 1) / kReductionBlocks;
    const index_type begin = std::min(per * static_cast<index_type>(block), n);
    return {begin, std::min(begin + per, n)};
}

/// Execution context for the blocked kernels: which pool to dispatch on
/// and how many threads of it may participate. A default-constructed
/// Executor runs inline — the serial path of every kernel.
struct Executor {
    common::ThreadPool* pool = nullptr;
    int width = 1;  ///< cap on participating threads (pool may be wider)

    /// Runs body(block) for every block; on the pool when one is given
    /// (and the width allows it), inline in ascending block order
    /// otherwise. The partition is fixed, so both paths — and any width —
    /// produce bitwise identical results for the blocked kernels.
    template <typename Body>
    void for_each_block(Body&& body) const {
        if (pool != nullptr && width > 1) {
            pool->run(kReductionBlocks, [&](int b) { body(b); }, width);
        } else {
            for (int b = 0; b < kReductionBlocks; ++b) {
                body(b);
            }
        }
    }
};

// --- reductions ---------------------------------------------------------

/// Serial left-to-right normalization — the seed solver's arithmetic; used
/// by the strictly serial Gauss-Seidel family for bit-compatibility.
inline void normalize(std::span<double> x) {
    double sum = 0.0;
    for (double v : x) {
        sum += v;
    }
    if (sum <= 0.0) {
        throw std::runtime_error("steady-state solve collapsed to the zero vector");
    }
    for (double& v : x) {
        v /= sum;
    }
}

/// Blocked sum: per-block partials combined in block order. Deterministic
/// across thread counts (including the inline path).
inline double blocked_sum(std::span<const double> x, const Executor& exec) {
    const index_type n = static_cast<index_type>(x.size());
    std::array<double, kReductionBlocks> partial{};
    exec.for_each_block([&](int b) {
        const BlockRange r = reduction_block(n, b);
        double s = 0.0;
        for (index_type i = r.begin; i < r.end; ++i) {
            s += x[static_cast<std::size_t>(i)];
        }
        partial[static_cast<std::size_t>(b)] = s;
    });
    double sum = 0.0;
    for (double p : partial) {
        sum += p;
    }
    return sum;
}

/// Thread-count-invariant normalization used by the parallel method family.
inline void normalize_blocked(std::span<double> x, const Executor& exec) {
    const double sum = blocked_sum(x, exec);
    if (sum <= 0.0) {
        throw std::runtime_error("steady-state solve collapsed to the zero vector");
    }
    const index_type n = static_cast<index_type>(x.size());
    exec.for_each_block([&](int b) {
        const BlockRange r = reduction_block(n, b);
        for (index_type i = r.begin; i < r.end; ++i) {
            x[static_cast<std::size_t>(i)] /= sum;
        }
    });
}

/// max_i |(pi Q)_i| / Lambda for a normalized pi. Max combines exactly, so
/// the sharded result is bitwise equal to the serial one for any partition.
template <QtOperatorConcept Op>
double scaled_residual(const Op& op, std::span<const double> x, double uniformization_rate,
                       const Executor& exec = {}) {
    const index_type n = op.size();
    std::array<double, kReductionBlocks> partial{};
    exec.for_each_block([&](int b) {
        const BlockRange r = reduction_block(n, b);
        double worst = 0.0;
        for (index_type i = r.begin; i < r.end; ++i) {
            double acc = op.diagonal(i) * x[static_cast<std::size_t>(i)];
            op.for_each_incoming(i, [&](index_type j, double rate) {
                acc += rate * x[static_cast<std::size_t>(j)];
            });
            worst = std::max(worst, std::fabs(acc));
        }
        partial[static_cast<std::size_t>(b)] = worst;
    });
    double worst = 0.0;
    for (double p : partial) {
        worst = std::max(worst, p);
    }
    return worst / uniformization_rate;
}

/// Lambda = max_i |Q_ii| (uniformization rate); exact under sharding.
template <QtOperatorConcept Op>
double max_exit_rate(const Op& op, const Executor& exec = {}) {
    const index_type n = op.size();
    std::array<double, kReductionBlocks> partial{};
    exec.for_each_block([&](int b) {
        const BlockRange r = reduction_block(n, b);
        double lambda = 0.0;
        for (index_type i = r.begin; i < r.end; ++i) {
            lambda = std::max(lambda, -op.diagonal(i));
        }
        partial[static_cast<std::size_t>(b)] = lambda;
    });
    double lambda = 0.0;
    for (double p : partial) {
        lambda = std::max(lambda, p);
    }
    if (lambda <= 0.0) {
        throw std::invalid_argument("generator has no transitions (all diagonal zero)");
    }
    return lambda;
}

// --- sweep kernels ------------------------------------------------------

/// One in-place Gauss-Seidel/SOR update of state i (the seed arithmetic).
template <QtOperatorConcept Op>
inline void gauss_seidel_update(const Op& op, std::span<double> x, double omega,
                                index_type i) {
    const double d = op.diagonal(i);
    if (d == 0.0) {
        return;  // isolated state keeps its (zero) mass
    }
    double acc = 0.0;
    op.for_each_incoming(i, [&](index_type j, double rate) {
        acc += rate * x[static_cast<std::size_t>(j)];
    });
    const double gs = acc / -d;
    double& xi = x[static_cast<std::size_t>(i)];
    xi = (1.0 - omega) * xi + omega * gs;
    if (xi < 0.0) {
        xi = 0.0;  // SOR overshoot guard; harmless for GS
    }
}

template <QtOperatorConcept Op>
void gauss_seidel_forward(const Op& op, std::span<double> x, double omega) {
    const index_type n = op.size();
    for (index_type i = 0; i < n; ++i) {
        gauss_seidel_update(op, x, omega, i);
    }
}

template <QtOperatorConcept Op>
void gauss_seidel_backward(const Op& op, std::span<double> x, double omega) {
    for (index_type i = op.size(); i-- > 0;) {
        gauss_seidel_update(op, x, omega, i);
    }
}

/// One Jacobi sweep: x <- D^{-1} R old, sharded over row blocks. Each x[i]
/// depends only on `old`, so any partition gives identical results.
template <QtOperatorConcept Op>
void jacobi_sweep(const Op& op, std::span<const double> old, std::span<double> x,
                  const Executor& exec) {
    const index_type n = op.size();
    exec.for_each_block([&](int b) {
        const BlockRange r = reduction_block(n, b);
        for (index_type i = r.begin; i < r.end; ++i) {
            const double d = op.diagonal(i);
            double acc = 0.0;
            op.for_each_incoming(i, [&](index_type j, double rate) {
                acc += rate * old[static_cast<std::size_t>(j)];
            });
            x[static_cast<std::size_t>(i)] = d == 0.0 ? 0.0 : acc / -d;
        }
    });
}

/// One uniformized power step: x <- old + (old Q)/Lambda, sharded.
template <QtOperatorConcept Op>
void power_sweep(const Op& op, std::span<const double> old, std::span<double> x,
                 double lambda, const Executor& exec) {
    const index_type n = op.size();
    exec.for_each_block([&](int b) {
        const BlockRange r = reduction_block(n, b);
        for (index_type i = r.begin; i < r.end; ++i) {
            double acc = op.diagonal(i) * old[static_cast<std::size_t>(i)];
            op.for_each_incoming(i, [&](index_type j, double rate) {
                acc += rate * old[static_cast<std::size_t>(j)];
            });
            x[static_cast<std::size_t>(i)] =
                old[static_cast<std::size_t>(i)] + acc / lambda;
        }
    });
}

/// One red-black Gauss-Seidel sweep. States are colored by index parity;
/// each color phase computes updates for all of its states from the vector
/// as it stood at the start of the phase (writes land in `scratch`, then
/// commit), so within a phase the updates are order-independent and shard
/// cleanly. Across phases the freshly committed opposite-color values are
/// used, which is what makes this Gauss-Seidel-like rather than Jacobi.
template <QtOperatorConcept Op>
void red_black_sweep(const Op& op, std::span<double> x, std::span<double> scratch,
                     const Executor& exec) {
    const index_type n = op.size();
    for (index_type color = 0; color < 2; ++color) {
        exec.for_each_block([&](int b) {
            const BlockRange r = reduction_block(n, b);
            index_type i = r.begin + ((r.begin & 1) == color ? 0 : 1);
            for (; i < r.end; i += 2) {
                const double d = op.diagonal(i);
                if (d == 0.0) {
                    scratch[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)];
                    continue;
                }
                double acc = 0.0;
                op.for_each_incoming(i, [&](index_type j, double rate) {
                    acc += rate * x[static_cast<std::size_t>(j)];
                });
                scratch[static_cast<std::size_t>(i)] = acc / -d;
            }
        });
        exec.for_each_block([&](int b) {
            const BlockRange r = reduction_block(n, b);
            index_type i = r.begin + ((r.begin & 1) == color ? 0 : 1);
            for (; i < r.end; i += 2) {
                x[static_cast<std::size_t>(i)] = scratch[static_cast<std::size_t>(i)];
            }
        });
    }
}

// --- raw-CSR serial Gauss-Seidel fast path ------------------------------

/// Borrowed contiguous view of a QtMatrix: off-diagonal CSR arrays plus the
/// diagonal, with the assembly-time bandwidth. The pipelined sweep kernels
/// work on this view so the hot loops touch plain arrays (32-bit columns,
/// no span re-materialization, no per-entry callback) the compiler can
/// schedule aggressively.
struct QtCsrView {
    index_type n = 0;
    const index_type* row_ptr = nullptr;
    const col_type* cols = nullptr;
    const double* vals = nullptr;
    const double* diag = nullptr;
    index_type bandwidth = 0;
};

inline QtCsrView csr_view(const QtMatrix& qt) {
    const SparseMatrix& off = qt.off_diagonal();
    return {qt.size(),        off.row_ptr_data(), off.col_data(),
            off.value_data(), qt.diagonal_data(), off.bandwidth()};
}

/// One Gauss-Seidel update of row i on the raw view. Bitwise equal to
/// gauss_seidel_update at omega == 1: there `xi = (1-1)*xi + 1*gs` is
/// `+0.0 + gs` (xi is never negative), which is exactly `gs`, and the SOR
/// overshoot clamp can never fire because acc >= 0 and -d > 0.
inline void gs_row_update(const QtCsrView& m, double* x, index_type i) {
    const double d = m.diag[i];
    if (d == 0.0) {
        return;  // isolated state keeps its (zero) mass
    }
    double acc = 0.0;
    const index_type end = m.row_ptr[i + 1];
    for (index_type p = m.row_ptr[i]; p < end; ++p) {
        acc += m.vals[p] * x[m.cols[p]];
    }
    x[i] = acc / -d;
}

/// T forward sweeps pipelined in one wavefront pass. Chain t executes sweep
/// t of the group and trails chain t-1 by D rows; with D > bandwidth every
/// row it reads above itself still holds the previous sweep's value and
/// every row below holds its own sweep's value — exactly the sequential
/// schedule, so the pass is bitwise identical to T back-to-back
/// gauss_seidel_forward calls. The win is throughput: the per-row
/// divide/accumulate dependency chains of the T sweeps interleave instead
/// of serializing. When `final_sum` is non-null the trailing chain (the
/// group's last sweep) accumulates x left-to-right as it writes, which
/// equals summing the finished vector afterwards.
template <int T>
void gs_wavefront_pass(const QtCsrView& m, double* x, index_type D, double* final_sum) {
    static_assert(T >= 1);
    const index_type n = m.n;
    const index_type trail_offset = static_cast<index_type>(T - 1) * D;

    const auto guarded_step = [&](index_type lead) {
        [&]<std::size_t... Ts>(std::index_sequence<Ts...>) {
            ([&] {
                const index_type row = lead - static_cast<index_type>(Ts) * D;
                if (row >= 0 && row < n) {
                    gs_row_update(m, x, row);
                    if constexpr (Ts == static_cast<std::size_t>(T - 1)) {
                        if (final_sum != nullptr) {
                            *final_sum += x[row];
                        }
                    }
                }
            }(),
             ...);
        }(std::make_index_sequence<static_cast<std::size_t>(T)>{});
    };

    index_type lead = 0;
    const index_type total = n + trail_offset;
    for (const index_type prologue_end = std::min(trail_offset, n); lead < prologue_end;
         ++lead) {
        guarded_step(lead);
    }
    // Steady state: all T chains in range — no bounds checks, the fold
    // expression keeps the T row updates in one straight-line loop body.
    for (; lead < n; ++lead) {
        [&]<std::size_t... Ts>(std::index_sequence<Ts...>) {
            (gs_row_update(m, x, lead - static_cast<index_type>(Ts) * D), ...);
        }(std::make_index_sequence<static_cast<std::size_t>(T)>{});
        if (final_sum != nullptr) {
            *final_sum += x[lead - trail_offset];
        }
    }
    for (; lead < total; ++lead) {
        guarded_step(lead);
    }
}

/// Runs `count` forward Gauss-Seidel sweeps (omega == 1) on the raw view,
/// pipelined in wavefront groups of up to 4 sweeps. Bitwise identical to
/// `count` sequential gauss_seidel_forward passes. When
/// `accumulate_final_sum` is set, returns the left-to-right sum of x after
/// the last sweep (equal to summing the final vector separately: the
/// trailing chain writes rows in order, and skipped zero-diagonal rows
/// contribute their unchanged value); otherwise returns 0.
inline double gauss_seidel_sweeps(const QtCsrView& m, double* x, index_type count,
                                  bool accumulate_final_sum) {
    double sum = 0.0;
    double* const tail_sum = accumulate_final_sum ? &sum : nullptr;
    const index_type D = m.bandwidth + 8;  // > bandwidth: safe wavefront gap
    // Pipelining pays off only when the steady state dominates; tiny chains
    // (or near-dense bandwidth) run the plain sequential schedule (T == 1).
    const bool pipeline = count > 1 && 8 * D < m.n;
    index_type left = count;
    while (left > 0) {
        if (pipeline && left >= 4) {
            gs_wavefront_pass<4>(m, x, D, left == 4 ? tail_sum : nullptr);
            left -= 4;
        } else if (pipeline && left >= 2) {
            gs_wavefront_pass<2>(m, x, D, left == 2 ? tail_sum : nullptr);
            left -= 2;
        } else {
            gs_wavefront_pass<1>(m, x, D, left == 1 ? tail_sum : nullptr);
            left -= 1;
        }
    }
    return sum;
}

/// Divides x by `sum` and evaluates the scaled residual in one pass, the
/// division running D > bandwidth rows ahead of the residual accumulation
/// so every residual row reads only fully normalized entries. Bitwise
/// identical to the divide loop of detail::normalize followed by
/// scaled_residual (max combines exactly, so fusing cannot change it).
/// Throws like normalize when the sweep collapsed to a non-positive sum.
inline double fused_normalize_residual(const QtCsrView& m, double* x, double sum,
                                       double uniformization_rate) {
    if (sum <= 0.0) {
        throw std::runtime_error("steady-state solve collapsed to the zero vector");
    }
    const index_type n = m.n;
    const index_type D = m.bandwidth + 1;
    double worst = 0.0;
    for (index_type lead = 0; lead < n + D; ++lead) {
        if (lead < n) {
            x[lead] /= sum;
        }
        const index_type i = lead - D;
        if (i >= 0) {
            double acc = m.diag[i] * x[i];
            const index_type end = m.row_ptr[i + 1];
            for (index_type p = m.row_ptr[i]; p < end; ++p) {
                acc += m.vals[p] * x[m.cols[p]];
            }
            worst = std::max(worst, std::fabs(acc));
        }
    }
    return worst / uniformization_rate;
}

}  // namespace detail
}  // namespace gprsim::ctmc
