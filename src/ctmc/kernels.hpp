// Per-method solver kernels: serial Gauss-Seidel sweeps plus block-sharded
// parallel kernels (Jacobi, power, red-black Gauss-Seidel, normalize,
// residual). All sharded kernels partition the state range into a FIXED
// number of contiguous blocks (kReductionBlocks, independent of the thread
// count) and combine per-block partials in block order, so every result is
// a pure function of the operator and the input vector — bitwise identical
// whether the blocks run on 1, 2, or 16 threads. Blocks are claimed
// dynamically from the pool, which load-balances rows of uneven degree.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "ctmc/solver_options.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace gprsim::ctmc {
namespace detail {

/// Fixed shard count for all blocked kernels. 64 keeps per-block state in
/// one cache line's worth of partials while exposing enough slack for
/// dynamic load balancing on any realistic core count.
inline constexpr int kReductionBlocks = 64;

struct BlockRange {
    index_type begin = 0;
    index_type end = 0;
};

/// Contiguous block `block` of [0, n) split into kReductionBlocks pieces.
/// Depends only on n and the block id — never on the thread count.
inline BlockRange reduction_block(index_type n, int block) {
    const index_type per = (n + kReductionBlocks - 1) / kReductionBlocks;
    const index_type begin = std::min(per * static_cast<index_type>(block), n);
    return {begin, std::min(begin + per, n)};
}

/// Execution context for the blocked kernels: which pool to dispatch on
/// and how many threads of it may participate. A default-constructed
/// Executor runs inline — the serial path of every kernel.
struct Executor {
    common::ThreadPool* pool = nullptr;
    int width = 1;  ///< cap on participating threads (pool may be wider)

    /// Runs body(block) for every block; on the pool when one is given
    /// (and the width allows it), inline in ascending block order
    /// otherwise. The partition is fixed, so both paths — and any width —
    /// produce bitwise identical results for the blocked kernels.
    template <typename Body>
    void for_each_block(Body&& body) const {
        if (pool != nullptr && width > 1) {
            pool->run(kReductionBlocks, [&](int b) { body(b); }, width);
        } else {
            for (int b = 0; b < kReductionBlocks; ++b) {
                body(b);
            }
        }
    }
};

// --- reductions ---------------------------------------------------------

/// Serial left-to-right normalization — the seed solver's arithmetic; used
/// by the strictly serial Gauss-Seidel family for bit-compatibility.
inline void normalize(std::span<double> x) {
    double sum = 0.0;
    for (double v : x) {
        sum += v;
    }
    if (sum <= 0.0) {
        throw std::runtime_error("steady-state solve collapsed to the zero vector");
    }
    for (double& v : x) {
        v /= sum;
    }
}

/// Blocked sum: per-block partials combined in block order. Deterministic
/// across thread counts (including the inline path).
inline double blocked_sum(std::span<const double> x, const Executor& exec) {
    const index_type n = static_cast<index_type>(x.size());
    std::array<double, kReductionBlocks> partial{};
    exec.for_each_block([&](int b) {
        const BlockRange r = reduction_block(n, b);
        double s = 0.0;
        for (index_type i = r.begin; i < r.end; ++i) {
            s += x[static_cast<std::size_t>(i)];
        }
        partial[static_cast<std::size_t>(b)] = s;
    });
    double sum = 0.0;
    for (double p : partial) {
        sum += p;
    }
    return sum;
}

/// Thread-count-invariant normalization used by the parallel method family.
inline void normalize_blocked(std::span<double> x, const Executor& exec) {
    const double sum = blocked_sum(x, exec);
    if (sum <= 0.0) {
        throw std::runtime_error("steady-state solve collapsed to the zero vector");
    }
    const index_type n = static_cast<index_type>(x.size());
    exec.for_each_block([&](int b) {
        const BlockRange r = reduction_block(n, b);
        for (index_type i = r.begin; i < r.end; ++i) {
            x[static_cast<std::size_t>(i)] /= sum;
        }
    });
}

/// max_i |(pi Q)_i| / Lambda for a normalized pi. Max combines exactly, so
/// the sharded result is bitwise equal to the serial one for any partition.
template <QtOperatorConcept Op>
double scaled_residual(const Op& op, std::span<const double> x, double uniformization_rate,
                       const Executor& exec = {}) {
    const index_type n = op.size();
    std::array<double, kReductionBlocks> partial{};
    exec.for_each_block([&](int b) {
        const BlockRange r = reduction_block(n, b);
        double worst = 0.0;
        for (index_type i = r.begin; i < r.end; ++i) {
            double acc = op.diagonal(i) * x[static_cast<std::size_t>(i)];
            op.for_each_incoming(i, [&](index_type j, double rate) {
                acc += rate * x[static_cast<std::size_t>(j)];
            });
            worst = std::max(worst, std::fabs(acc));
        }
        partial[static_cast<std::size_t>(b)] = worst;
    });
    double worst = 0.0;
    for (double p : partial) {
        worst = std::max(worst, p);
    }
    return worst / uniformization_rate;
}

/// Lambda = max_i |Q_ii| (uniformization rate); exact under sharding.
template <QtOperatorConcept Op>
double max_exit_rate(const Op& op, const Executor& exec = {}) {
    const index_type n = op.size();
    std::array<double, kReductionBlocks> partial{};
    exec.for_each_block([&](int b) {
        const BlockRange r = reduction_block(n, b);
        double lambda = 0.0;
        for (index_type i = r.begin; i < r.end; ++i) {
            lambda = std::max(lambda, -op.diagonal(i));
        }
        partial[static_cast<std::size_t>(b)] = lambda;
    });
    double lambda = 0.0;
    for (double p : partial) {
        lambda = std::max(lambda, p);
    }
    if (lambda <= 0.0) {
        throw std::invalid_argument("generator has no transitions (all diagonal zero)");
    }
    return lambda;
}

// --- sweep kernels ------------------------------------------------------

/// One in-place Gauss-Seidel/SOR update of state i (the seed arithmetic).
template <QtOperatorConcept Op>
inline void gauss_seidel_update(const Op& op, std::span<double> x, double omega,
                                index_type i) {
    const double d = op.diagonal(i);
    if (d == 0.0) {
        return;  // isolated state keeps its (zero) mass
    }
    double acc = 0.0;
    op.for_each_incoming(i, [&](index_type j, double rate) {
        acc += rate * x[static_cast<std::size_t>(j)];
    });
    const double gs = acc / -d;
    double& xi = x[static_cast<std::size_t>(i)];
    xi = (1.0 - omega) * xi + omega * gs;
    if (xi < 0.0) {
        xi = 0.0;  // SOR overshoot guard; harmless for GS
    }
}

template <QtOperatorConcept Op>
void gauss_seidel_forward(const Op& op, std::span<double> x, double omega) {
    const index_type n = op.size();
    for (index_type i = 0; i < n; ++i) {
        gauss_seidel_update(op, x, omega, i);
    }
}

template <QtOperatorConcept Op>
void gauss_seidel_backward(const Op& op, std::span<double> x, double omega) {
    for (index_type i = op.size(); i-- > 0;) {
        gauss_seidel_update(op, x, omega, i);
    }
}

/// One Jacobi sweep: x <- D^{-1} R old, sharded over row blocks. Each x[i]
/// depends only on `old`, so any partition gives identical results.
template <QtOperatorConcept Op>
void jacobi_sweep(const Op& op, std::span<const double> old, std::span<double> x,
                  const Executor& exec) {
    const index_type n = op.size();
    exec.for_each_block([&](int b) {
        const BlockRange r = reduction_block(n, b);
        for (index_type i = r.begin; i < r.end; ++i) {
            const double d = op.diagonal(i);
            double acc = 0.0;
            op.for_each_incoming(i, [&](index_type j, double rate) {
                acc += rate * old[static_cast<std::size_t>(j)];
            });
            x[static_cast<std::size_t>(i)] = d == 0.0 ? 0.0 : acc / -d;
        }
    });
}

/// One uniformized power step: x <- old + (old Q)/Lambda, sharded.
template <QtOperatorConcept Op>
void power_sweep(const Op& op, std::span<const double> old, std::span<double> x,
                 double lambda, const Executor& exec) {
    const index_type n = op.size();
    exec.for_each_block([&](int b) {
        const BlockRange r = reduction_block(n, b);
        for (index_type i = r.begin; i < r.end; ++i) {
            double acc = op.diagonal(i) * old[static_cast<std::size_t>(i)];
            op.for_each_incoming(i, [&](index_type j, double rate) {
                acc += rate * old[static_cast<std::size_t>(j)];
            });
            x[static_cast<std::size_t>(i)] =
                old[static_cast<std::size_t>(i)] + acc / lambda;
        }
    });
}

/// One red-black Gauss-Seidel sweep. States are colored by index parity;
/// each color phase computes updates for all of its states from the vector
/// as it stood at the start of the phase (writes land in `scratch`, then
/// commit), so within a phase the updates are order-independent and shard
/// cleanly. Across phases the freshly committed opposite-color values are
/// used, which is what makes this Gauss-Seidel-like rather than Jacobi.
template <QtOperatorConcept Op>
void red_black_sweep(const Op& op, std::span<double> x, std::span<double> scratch,
                     const Executor& exec) {
    const index_type n = op.size();
    for (index_type color = 0; color < 2; ++color) {
        exec.for_each_block([&](int b) {
            const BlockRange r = reduction_block(n, b);
            index_type i = r.begin + ((r.begin & 1) == color ? 0 : 1);
            for (; i < r.end; i += 2) {
                const double d = op.diagonal(i);
                if (d == 0.0) {
                    scratch[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)];
                    continue;
                }
                double acc = 0.0;
                op.for_each_incoming(i, [&](index_type j, double rate) {
                    acc += rate * x[static_cast<std::size_t>(j)];
                });
                scratch[static_cast<std::size_t>(i)] = acc / -d;
            }
        });
        exec.for_each_block([&](int b) {
            const BlockRange r = reduction_block(n, b);
            index_type i = r.begin + ((r.begin & 1) == color ? 0 : 1);
            for (; i < r.end; i += 2) {
                x[static_cast<std::size_t>(i)] = scratch[static_cast<std::size_t>(i)];
            }
        });
    }
}

}  // namespace detail
}  // namespace gprsim::ctmc
