// Row-ordering support for the steady-state solvers: permutation helpers
// and QtMatrix reindexing.
//
// A permutation is spelled as `order[new] = old` — position p of the
// reordered system holds what position order[p] held in the caller's
// indexing. SolveOptions::permutation uses this convention: the engine
// solves the reordered system (Gauss-Seidel sweeps then walk the rows in
// the order the permutation prescribes) and inverse-applies the
// permutation to the distribution before returning, so callers never see
// internal indices.
//
// For the GPRS generator the interesting ordering is the QBD level
// grouping (core::qbd_level_ordering): states grouped by buffer level so
// a forward sweep propagates along the chain's natural direction. The
// StateSpace codec already stores the buffer dimension outermost, so that
// ordering is the identity and the default solve path is untouched — the
// machinery below exists for alternative codecs and is validated by the
// scramble/round-trip tests in tests/ctmc/ordering_test.cpp.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "ctmc/solver_options.hpp"

namespace gprsim::ctmc {

/// Whether `order` maps every position to itself. An empty span counts as
/// identity (SolveOptions::permutation's "no reordering" spelling).
inline bool is_identity_permutation(std::span<const index_type> order) {
    for (std::size_t p = 0; p < order.size(); ++p) {
        if (order[p] != static_cast<index_type>(p)) {
            return false;
        }
    }
    return true;
}

/// Throws unless `order` is a bijection on [0, n).
inline void validate_permutation(std::span<const index_type> order, index_type n) {
    if (static_cast<index_type>(order.size()) != n) {
        throw std::invalid_argument("permutation size does not match the state count");
    }
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    for (const index_type old : order) {
        if (old < 0 || old >= n || seen[static_cast<std::size_t>(old)]) {
            throw std::invalid_argument("order is not a permutation of [0, n)");
        }
        seen[static_cast<std::size_t>(old)] = true;
    }
}

/// inverse[old] = new for `order[new] = old`.
inline std::vector<index_type> inverse_permutation(std::span<const index_type> order) {
    std::vector<index_type> inverse(order.size());
    for (std::size_t p = 0; p < order.size(); ++p) {
        inverse[static_cast<std::size_t>(order[p])] = static_cast<index_type>(p);
    }
    return inverse;
}

/// x reindexed into the permuted system: result[p] = x[order[p]].
inline std::vector<double> permute_vector(std::span<const double> x,
                                          std::span<const index_type> order) {
    std::vector<double> out(order.size());
    for (std::size_t p = 0; p < order.size(); ++p) {
        out[p] = x[static_cast<std::size_t>(order[p])];
    }
    return out;
}

/// The inverse map, back to caller indexing: result[order[p]] = x[p].
inline std::vector<double> inverse_permute_vector(std::span<const double> x,
                                                  std::span<const index_type> order) {
    std::vector<double> out(order.size());
    for (std::size_t p = 0; p < order.size(); ++p) {
        out[static_cast<std::size_t>(order[p])] = x[p];
    }
    return out;
}

/// The transposed generator reindexed by `order`: entry (p, q) of the
/// result is entry (order[p], order[q]) of `qt`, diagonal included.
inline QtMatrix permute_qt_matrix(const QtMatrix& qt,
                                  std::span<const index_type> order) {
    validate_permutation(order, qt.size());
    std::vector<double> diag(order.size());
    for (std::size_t p = 0; p < order.size(); ++p) {
        diag[p] = qt.diagonal(order[p]);
    }
    return QtMatrix(qt.off_diagonal().permuted(order), std::move(diag));
}

}  // namespace gprsim::ctmc
