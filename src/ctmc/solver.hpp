// Iterative steady-state solvers for large continuous-time Markov chains.
//
// All solvers compute the stationary distribution pi of an irreducible CTMC
// with generator Q, i.e. the solution of  pi * Q = 0,  sum(pi) = 1.
// They operate on the *transposed* generator: a type modelling the
// QtOperatorConcept below exposes, for every state i, the diagonal Q_ii and
// the incoming transition rates Q_ji (j != i). This works both for an
// explicitly stored CSR matrix (QtMatrix) and for matrix-free operators that
// enumerate transitions on the fly (used when the chain does not fit in RAM).
#pragma once

#include <chrono>
#include <cmath>
#include <concepts>
#include <cstddef>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "ctmc/sparse_matrix.hpp"
#include "ctmc/types.hpp"

namespace gprsim::ctmc {

/// Requirements for a transposed-generator operator usable by the solvers.
///
///   index_type size() const;                 // number of states
///   double diagonal(index_type i) const;     // Q_ii  (strictly negative
///                                            //  for non-absorbing states)
///   void for_each_incoming(index_type i, F&& f) const;
///                                            // f(j, rate) for every j != i
///                                            //  with Q_ji = rate > 0
template <typename Op>
concept QtOperatorConcept = requires(const Op& op, index_type i) {
    { op.size() } -> std::convertible_to<index_type>;
    { op.diagonal(i) } -> std::convertible_to<double>;
    op.for_each_incoming(i, [](index_type, double) {});
};

/// Transposed generator stored explicitly: off-diagonal CSR + diagonal array.
class QtMatrix {
public:
    QtMatrix() = default;
    QtMatrix(SparseMatrix off_diagonal_qt, std::vector<double> diagonal)
        : off_diag_(std::move(off_diagonal_qt)), diag_(std::move(diagonal)) {
        if (off_diag_.rows() != static_cast<index_type>(diag_.size()) ||
            off_diag_.cols() != static_cast<index_type>(diag_.size())) {
            throw std::invalid_argument("QtMatrix: dimension mismatch");
        }
    }

    index_type size() const { return static_cast<index_type>(diag_.size()); }
    double diagonal(index_type i) const { return diag_[static_cast<std::size_t>(i)]; }

    template <typename F>
    void for_each_incoming(index_type i, F&& f) const {
        const auto cols = off_diag_.row_cols(i);
        const auto values = off_diag_.row_values(i);
        for (std::size_t p = 0; p < cols.size(); ++p) {
            f(cols[p], values[p]);
        }
    }

    const SparseMatrix& off_diagonal() const { return off_diag_; }
    std::size_t memory_bytes() const {
        return off_diag_.memory_bytes() + diag_.capacity() * sizeof(double);
    }

private:
    SparseMatrix off_diag_;  // entry (i, j) = Q_ji, i != j
    std::vector<double> diag_;
};

/// Builds a QtMatrix from an enumerator of *outgoing* transitions.
///
/// `outgoing(i, emit)` must call `emit(j, rate)` for every transition
/// i -> j (j != i, rate > 0) of the chain. The diagonal is derived as the
/// negated row sum, so the result is a proper generator by construction.
template <typename Outgoing>
QtMatrix build_qt_matrix(index_type num_states, Outgoing&& outgoing) {
    std::vector<double> diag(static_cast<std::size_t>(num_states), 0.0);
    std::vector<Triplet> triplets;
    for (index_type i = 0; i < num_states; ++i) {
        outgoing(i, [&](index_type j, double rate) {
            if (rate <= 0.0) {
                return;
            }
            diag[static_cast<std::size_t>(i)] -= rate;
            triplets.push_back({j, i, rate});  // transposed: row=target, col=source
        });
    }
    SparseMatrix off = SparseMatrix::from_triplets(num_states, num_states, std::move(triplets));
    return QtMatrix(std::move(off), std::move(diag));
}

/// Iteration scheme used by solve_steady_state().
enum class SolveMethod {
    /// In-place forward sweeps; the default. With the product-form warm
    /// start of the GPRS model this needs roughly half the wall time of the
    /// symmetric variant per unit of residual reduction.
    gauss_seidel,
    /// Forward + backward pass per sweep (2x cost per sweep); converges in
    /// fewer sweeps on level-structured chains but rarely wins overall.
    symmetric_gauss_seidel,
    /// Gauss-Seidel with over-relaxation. NOTE: on this non-symmetric
    /// generator large omega oscillates; kept for experimentation.
    sor,
    jacobi,  ///< two-vector sweeps (parallelizable, slower convergence)
    power,   ///< uniformized power iteration pi <- pi (I + Q/Lambda)
};

struct SolveOptions {
    SolveMethod method = SolveMethod::gauss_seidel;
    /// Convergence target on max_i |(pi Q)_i| / Lambda with
    /// Lambda = max_i |Q_ii| (a dimensionless residual).
    double tolerance = 1e-12;
    index_type max_iterations = 200000;
    /// Relaxation factor for SolveMethod::sor (1 < omega < 2 accelerates).
    double relaxation = 1.2;
    /// Residual is evaluated every `check_interval` sweeps.
    index_type check_interval = 10;
    /// Warm start; empty means the uniform distribution. Non-negative,
    /// renormalized internally.
    std::vector<double> initial;
    /// Optional progress callback: (sweeps done, current residual).
    std::function<void(index_type, double)> progress;
};

struct SolveResult {
    std::vector<double> distribution;
    index_type iterations = 0;
    double residual = 0.0;
    bool converged = false;
    double seconds = 0.0;
};

namespace detail {

inline void normalize(std::span<double> x) {
    double sum = 0.0;
    for (double v : x) {
        sum += v;
    }
    if (sum <= 0.0) {
        throw std::runtime_error("steady-state solve collapsed to the zero vector");
    }
    for (double& v : x) {
        v /= sum;
    }
}

/// max_i |(pi Q)_i| / Lambda for a normalized pi.
template <QtOperatorConcept Op>
double scaled_residual(const Op& op, std::span<const double> x, double uniformization_rate) {
    const index_type n = op.size();
    double worst = 0.0;
    for (index_type i = 0; i < n; ++i) {
        double acc = op.diagonal(i) * x[static_cast<std::size_t>(i)];
        op.for_each_incoming(i, [&](index_type j, double rate) {
            acc += rate * x[static_cast<std::size_t>(j)];
        });
        worst = std::max(worst, std::fabs(acc));
    }
    return worst / uniformization_rate;
}

template <QtOperatorConcept Op>
double max_exit_rate(const Op& op) {
    double lambda = 0.0;
    for (index_type i = 0; i < op.size(); ++i) {
        lambda = std::max(lambda, -op.diagonal(i));
    }
    if (lambda <= 0.0) {
        throw std::invalid_argument("generator has no transitions (all diagonal zero)");
    }
    return lambda;
}

}  // namespace detail

/// Solves pi Q = 0, sum(pi) = 1 for the operator's chain.
///
/// Throws std::invalid_argument for degenerate generators. A non-converged
/// result (result.converged == false) is returned rather than thrown so
/// callers can decide whether the residual is acceptable.
template <QtOperatorConcept Op>
SolveResult solve_steady_state(const Op& op, const SolveOptions& options = {}) {
    const auto t0 = std::chrono::steady_clock::now();
    const index_type n = op.size();
    if (n <= 0) {
        throw std::invalid_argument("solve_steady_state: empty state space");
    }
    if (!options.initial.empty() &&
        static_cast<index_type>(options.initial.size()) != n) {
        throw std::invalid_argument("solve_steady_state: initial vector size mismatch");
    }

    SolveResult result;
    result.distribution.assign(static_cast<std::size_t>(n), 1.0 / static_cast<double>(n));
    if (!options.initial.empty()) {
        result.distribution = options.initial;
        for (double& v : result.distribution) {
            v = std::max(v, 0.0);
        }
        detail::normalize(result.distribution);
    }
    std::vector<double>& x = result.distribution;

    const double lambda = detail::max_exit_rate(op);
    const bool needs_old = options.method == SolveMethod::jacobi ||
                           options.method == SolveMethod::power;
    std::vector<double> old;
    if (needs_old) {
        old.resize(static_cast<std::size_t>(n));
    }

    const double omega =
        options.method == SolveMethod::sor ? options.relaxation : 1.0;
    if (omega <= 0.0 || omega >= 2.0) {
        throw std::invalid_argument("solve_steady_state: relaxation must be in (0, 2)");
    }

    const auto gs_update = [&](index_type i) {
        const double d = op.diagonal(i);
        if (d == 0.0) {
            return;  // isolated state keeps its (zero) mass
        }
        double acc = 0.0;
        op.for_each_incoming(i, [&](index_type j, double rate) {
            acc += rate * x[static_cast<std::size_t>(j)];
        });
        const double gs = acc / -d;
        double& xi = x[static_cast<std::size_t>(i)];
        xi = (1.0 - omega) * xi + omega * gs;
        if (xi < 0.0) {
            xi = 0.0;  // SOR overshoot guard; harmless for GS
        }
    };

    for (index_type sweep = 1; sweep <= options.max_iterations; ++sweep) {
        switch (options.method) {
            case SolveMethod::gauss_seidel:
            case SolveMethod::sor:
                for (index_type i = 0; i < n; ++i) {
                    gs_update(i);
                }
                break;
            case SolveMethod::symmetric_gauss_seidel:
                for (index_type i = 0; i < n; ++i) {
                    gs_update(i);
                }
                for (index_type i = n; i-- > 0;) {
                    gs_update(i);
                }
                break;
            case SolveMethod::jacobi:
                old.swap(x);
                for (index_type i = 0; i < n; ++i) {
                    const double d = op.diagonal(i);
                    double acc = 0.0;
                    op.for_each_incoming(i, [&](index_type j, double rate) {
                        acc += rate * old[static_cast<std::size_t>(j)];
                    });
                    x[static_cast<std::size_t>(i)] = d == 0.0 ? 0.0 : acc / -d;
                }
                break;
            case SolveMethod::power:
                old.swap(x);
                for (index_type i = 0; i < n; ++i) {
                    double acc = op.diagonal(i) * old[static_cast<std::size_t>(i)];
                    op.for_each_incoming(i, [&](index_type j, double rate) {
                        acc += rate * old[static_cast<std::size_t>(j)];
                    });
                    x[static_cast<std::size_t>(i)] =
                        old[static_cast<std::size_t>(i)] + acc / lambda;
                }
                break;
        }
        result.iterations = sweep;

        if (sweep % options.check_interval == 0 || sweep == options.max_iterations) {
            detail::normalize(x);
            result.residual = detail::scaled_residual(op, x, lambda);
            if (options.progress) {
                options.progress(sweep, result.residual);
            }
            if (result.residual <= options.tolerance) {
                result.converged = true;
                break;
            }
        }
    }

    detail::normalize(x);
    result.residual = detail::scaled_residual(op, x, lambda);
    result.converged = result.residual <= options.tolerance;
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return result;
}

}  // namespace gprsim::ctmc
