// Compatibility facade for the steady-state solver stack.
//
// The monolithic solver that used to live here is now layered:
//   solver_options.hpp - QtOperatorConcept, QtMatrix, options/result structs
//   kernels.hpp        - per-method serial and block-sharded kernels
//   thread_pool.hpp    - reusable fork-join worker pool
//   engine.hpp         - SolverEngine tying pool + kernels together
// This header re-exports all of it and keeps the original free-function
// entry point, which routes through the process-wide default engine.
#pragma once

#include "ctmc/engine.hpp"
#include "ctmc/kernels.hpp"
#include "ctmc/solver_options.hpp"

namespace gprsim::ctmc {

/// Solves pi Q = 0, sum(pi) = 1 for the operator's chain on the default
/// engine. With the default options.num_threads == 1 this is the exact
/// serial arithmetic of the original solver; see engine.hpp for the
/// parallel semantics.
template <QtOperatorConcept Op>
SolveResult solve_steady_state(const Op& op, const SolveOptions& options = {}) {
    return default_engine().solve(op, options);
}

}  // namespace gprsim::ctmc
