// Solver vocabulary shared by every layer of the steady-state stack: the
// transposed-generator operator concept, the explicit CSR operator, and the
// option/result structs consumed by SolverEngine (see engine.hpp).
//
// All solvers compute the stationary distribution pi of an irreducible CTMC
// with generator Q, i.e. the solution of  pi * Q = 0,  sum(pi) = 1.
// They operate on the *transposed* generator: a type modelling the
// QtOperatorConcept below exposes, for every state i, the diagonal Q_ii and
// the incoming transition rates Q_ji (j != i). This works both for an
// explicitly stored CSR matrix (QtMatrix) and for matrix-free operators that
// enumerate transitions on the fly (used when the chain does not fit in RAM).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ctmc/sparse_matrix.hpp"
#include "common/types.hpp"

namespace gprsim::ctmc {

/// Requirements for a transposed-generator operator usable by the solvers.
///
///   index_type size() const;                 // number of states
///   double diagonal(index_type i) const;     // Q_ii  (strictly negative
///                                            //  for non-absorbing states)
///   void for_each_incoming(index_type i, F&& f) const;
///                                            // f(j, rate) for every j != i
///                                            //  with Q_ji = rate > 0
template <typename Op>
concept QtOperatorConcept = requires(const Op& op, index_type i) {
    { op.size() } -> std::convertible_to<index_type>;
    { op.diagonal(i) } -> std::convertible_to<double>;
    op.for_each_incoming(i, [](index_type, double) {});
};

/// Transposed generator stored explicitly: off-diagonal CSR + diagonal array.
class QtMatrix {
public:
    QtMatrix() = default;
    QtMatrix(SparseMatrix off_diagonal_qt, std::vector<double> diagonal)
        : off_diag_(std::move(off_diagonal_qt)), diag_(std::move(diagonal)) {
        if (off_diag_.rows() != static_cast<index_type>(diag_.size()) ||
            off_diag_.cols() != static_cast<index_type>(diag_.size())) {
            throw std::invalid_argument("QtMatrix: dimension mismatch");
        }
    }

    index_type size() const { return static_cast<index_type>(diag_.size()); }
    double diagonal(index_type i) const { return diag_[static_cast<std::size_t>(i)]; }

    template <typename F>
    void for_each_incoming(index_type i, F&& f) const {
        const auto cols = off_diag_.row_cols(i);
        const auto values = off_diag_.row_values(i);
        for (std::size_t p = 0; p < cols.size(); ++p) {
            f(cols[p], values[p]);
        }
    }

    const SparseMatrix& off_diagonal() const { return off_diag_; }
    /// Contiguous diagonal array (size() entries) for the raw sweep kernels.
    const double* diagonal_data() const { return diag_.data(); }
    std::size_t memory_bytes() const {
        return off_diag_.memory_bytes() + diag_.capacity() * sizeof(double);
    }

private:
    SparseMatrix off_diag_;  // entry (i, j) = Q_ji, i != j
    std::vector<double> diag_;
};

/// Builds a QtMatrix from an enumerator of *outgoing* transitions.
///
/// `outgoing(i, emit)` must call `emit(j, rate)` for every transition
/// i -> j (j != i, rate > 0) of the chain. The diagonal is derived as the
/// negated row sum, so the result is a proper generator by construction.
template <typename Outgoing>
QtMatrix build_qt_matrix(index_type num_states, Outgoing&& outgoing) {
    std::vector<double> diag(static_cast<std::size_t>(num_states), 0.0);
    std::vector<Triplet> triplets;
    for (index_type i = 0; i < num_states; ++i) {
        outgoing(i, [&](index_type j, double rate) {
            if (rate <= 0.0) {
                return;
            }
            diag[static_cast<std::size_t>(i)] -= rate;
            triplets.push_back({j, i, rate});  // transposed: row=target, col=source
        });
    }
    SparseMatrix off = SparseMatrix::from_triplets(num_states, num_states, std::move(triplets));
    return QtMatrix(std::move(off), std::move(diag));
}

/// Iteration scheme used by SolverEngine::solve() / solve_steady_state().
enum class SolveMethod {
    /// In-place forward sweeps; the default. With the product-form warm
    /// start of the GPRS model this needs roughly half the wall time of the
    /// symmetric variant per unit of residual reduction. Strictly serial;
    /// with num_threads > 1 the engine substitutes the red-black variant.
    gauss_seidel,
    /// Forward + backward pass per sweep (2x cost per sweep); converges in
    /// fewer sweeps on level-structured chains but rarely wins overall.
    symmetric_gauss_seidel,
    /// Gauss-Seidel with over-relaxation. NOTE: on this non-symmetric
    /// generator large omega oscillates; kept for experimentation.
    sor,
    jacobi,  ///< two-vector sweeps (parallel across row shards)
    power,   ///< uniformized power iteration pi <- pi (I + Q/Lambda)
    /// Two-color Gauss-Seidel: states are split by index parity; each color
    /// phase updates all of its states from a consistent snapshot (writes go
    /// to a scratch half-vector, then commit), so the phase parallelizes
    /// over row shards and the result is bitwise independent of the thread
    /// count. Converges between Jacobi and serial Gauss-Seidel.
    red_black_gauss_seidel,
    /// Let the engine pick between serial Gauss-Seidel, red-black and
    /// Jacobi from the state count and thread budget via the measured cost
    /// model in engine.cpp (auto_select_method). The decision and its
    /// reasoning land in SolveResult::method_used / SolveResult::reason.
    /// Note an auto-selected gauss_seidel runs SERIALLY even when
    /// num_threads > 1 — choosing the serial pipelined kernel over the
    /// parallel methods is precisely the decision the cost model makes for
    /// small chains and narrow thread budgets.
    auto_select,
};

/// Canonical spelling of a method, as used by the eval/campaign layers and
/// the benches ("gauss_seidel", "auto", ...).
inline const char* method_name(SolveMethod method) {
    switch (method) {
        case SolveMethod::gauss_seidel:
            return "gauss_seidel";
        case SolveMethod::symmetric_gauss_seidel:
            return "symmetric_gauss_seidel";
        case SolveMethod::sor:
            return "sor";
        case SolveMethod::jacobi:
            return "jacobi";
        case SolveMethod::power:
            return "power";
        case SolveMethod::red_black_gauss_seidel:
            return "red_black_gauss_seidel";
        case SolveMethod::auto_select:
            return "auto";
    }
    return "unknown";
}

/// Inverse of method_name; nullopt for unrecognized spellings (callers turn
/// that into their own typed error).
inline std::optional<SolveMethod> method_from_name(std::string_view name) {
    if (name == "gauss_seidel") return SolveMethod::gauss_seidel;
    if (name == "symmetric_gauss_seidel") return SolveMethod::symmetric_gauss_seidel;
    if (name == "sor") return SolveMethod::sor;
    if (name == "jacobi") return SolveMethod::jacobi;
    if (name == "power") return SolveMethod::power;
    if (name == "red_black_gauss_seidel") return SolveMethod::red_black_gauss_seidel;
    if (name == "auto") return SolveMethod::auto_select;
    return std::nullopt;
}

struct SolveOptions {
    SolveMethod method = SolveMethod::gauss_seidel;
    /// Convergence target on max_i |(pi Q)_i| / Lambda with
    /// Lambda = max_i |Q_ii| (a dimensionless residual).
    double tolerance = 1e-12;
    index_type max_iterations = 200000;
    /// Relaxation factor for SolveMethod::sor (1 < omega < 2 accelerates).
    double relaxation = 1.2;
    /// Normalization interval in sweeps. The iterate is renormalized at
    /// every multiple of `check_interval` (a fixed schedule — the division
    /// changes the iterate, so it must not depend on anything adaptive for
    /// results to stay reproducible); the residual is evaluated there too,
    /// unless adaptive_checks thins the residual schedule.
    index_type check_interval = 10;
    /// Derive the residual-evaluation interval from the observed
    /// convergence rate: once two residuals have been seen, checks are
    /// scheduled at conservative multiples of check_interval (at most half
    /// the predicted remaining sweeps, capped at 16 intervals), skipping
    /// the O(nnz) residual passes a long solve would otherwise burn every
    /// interval. Normalization stays on the fixed every-interval schedule,
    /// so the iterate trajectory — and the converged distribution — is
    /// bitwise identical to adaptive_checks = false; only
    /// SolveResult::residual_evaluations (and the progress callback
    /// cadence) changes. Disable to force a residual at every interval.
    bool adaptive_checks = true;
    /// Row ordering applied to the solve (order[new] = old; empty = keep
    /// the operator's ordering). Only supported for explicit QtMatrix
    /// operators: the engine permutes the matrix and the initial vectors,
    /// sweeps the reordered system, and inverse-applies the permutation to
    /// the returned distribution, so callers never see internal indices.
    /// An identity permutation is detected and skipped (the GPRS
    /// generator's QBD level grouping — core::qbd_level_ordering — is the
    /// identity because the state codec already stores the buffer level
    /// outermost).
    std::vector<index_type> permutation;
    /// Execution width. 1 (default) runs serially; 0 means "all hardware
    /// threads". For the parallel methods (jacobi, power,
    /// red_black_gauss_seidel) results are bitwise identical for every
    /// thread count. The Gauss-Seidel family is inherently sequential:
    /// sor and symmetric_gauss_seidel run serially whatever the width,
    /// while plain gauss_seidel upgrades to red_black_gauss_seidel when
    /// more than one thread is requested.
    int num_threads = 1;
    /// Warm start; empty means the uniform distribution. Non-negative,
    /// renormalized internally.
    std::vector<double> initial;
    /// Competing warm starts, in preference order: when non-empty the
    /// engine evaluates the scaled residual of every candidate (one O(nnz)
    /// pass each, no iterations consumed) and starts from the winner;
    /// SolveResult::initial_selected reports the choice. The evaluation
    /// uses the same block-ordered reduction as the solve, so the
    /// selection is deterministic at every thread count. Mutually
    /// exclusive with `initial`.
    std::vector<std::vector<double>> initial_candidates;
    /// Preference margin for the candidate comparison: a later candidate
    /// replaces the incumbent only when its residual is strictly below
    /// margin * incumbent residual. 1.0 is a plain argmin with ties to the
    /// earlier candidate; smaller values demand a decisive advantage —
    /// the initial residual is only a proxy for iterations-to-converge,
    /// and near-ties routinely mispredict (measured on the paper's Fig. 6
    /// cell: a transfer candidate at 0.92x the product form's residual
    /// cost 2x the sweeps, while every candidate below 0.5x converged
    /// faster). Must be in (0, 1].
    double candidate_margin = 1.0;
    /// Optional progress callback: (sweeps done, current residual).
    std::function<void(index_type, double)> progress;
};

struct SolveResult {
    std::vector<double> distribution;
    index_type iterations = 0;
    double residual = 0.0;
    bool converged = false;
    double seconds = 0.0;
    /// Execution width actually used (after resolving num_threads == 0).
    int threads_used = 1;
    /// Method actually executed (gauss_seidel may upgrade to red-black).
    SolveMethod method_used = SolveMethod::gauss_seidel;
    /// Index of the winning SolveOptions::initial_candidates entry;
    /// -1 when no candidate list was supplied.
    int initial_selected = -1;
    /// Number of scaled-residual evaluations the solve performed (each is
    /// an O(nnz) pass; adaptive_checks exists to shrink this).
    index_type residual_evaluations = 0;
    /// Why method_used was chosen: the cost-model explanation for
    /// SolveMethod::auto_select, the upgrade note when gauss_seidel was
    /// promoted to red-black for a parallel run, empty when the caller's
    /// explicit choice ran as-is.
    std::string reason;
};

/// The auto_select decision for a chain of `n` states under a budget of
/// `threads` (already resolved; >= 1): the method to run and the
/// cost-model reasoning behind it. Deterministic in (n, threads) — the
/// eval layer relies on per-point decisions being reproducible.
struct AutoSelection {
    SolveMethod method = SolveMethod::gauss_seidel;
    std::string reason;
};
AutoSelection auto_select_method(index_type n, int threads);

}  // namespace gprsim::ctmc
