#include "ctmc/sparse_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace gprsim::ctmc {

namespace {

void check_col_capacity(index_type cols) {
    if (cols > static_cast<index_type>(std::numeric_limits<col_type>::max())) {
        throw std::invalid_argument(
            "SparseMatrix: column count exceeds 32-bit column storage");
    }
}

}  // namespace

void SparseMatrix::compute_bandwidth() {
    index_type w = 0;
    for (index_type i = 0; i < rows_; ++i) {
        const index_type begin = row_ptr_[static_cast<std::size_t>(i)];
        const index_type end = row_ptr_[static_cast<std::size_t>(i) + 1];
        if (begin == end) {
            continue;
        }
        // Columns are sorted, so only the row's extremes can set the max.
        const index_type lo = cols_idx_[static_cast<std::size_t>(begin)];
        const index_type hi = cols_idx_[static_cast<std::size_t>(end) - 1];
        w = std::max(w, i > lo ? i - lo : lo - i);
        w = std::max(w, i > hi ? i - hi : hi - i);
    }
    bandwidth_ = w;
}

SparseMatrix SparseMatrix::from_triplets(index_type rows, index_type cols,
                                         std::vector<Triplet> triplets) {
    if (rows < 0 || cols < 0) {
        throw std::invalid_argument("SparseMatrix: negative dimensions");
    }
    check_col_capacity(cols);
    for (const Triplet& t : triplets) {
        if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
            throw std::out_of_range("SparseMatrix: triplet outside matrix bounds");
        }
    }

    SparseMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);

    // Counting pass, then bucket fill, then per-row sort + duplicate merge.
    for (const Triplet& t : triplets) {
        ++m.row_ptr_[static_cast<std::size_t>(t.row) + 1];
    }
    for (index_type i = 0; i < rows; ++i) {
        m.row_ptr_[static_cast<std::size_t>(i) + 1] += m.row_ptr_[static_cast<std::size_t>(i)];
    }
    m.cols_idx_.resize(triplets.size());
    m.values_.resize(triplets.size());
    {
        std::vector<index_type> next(m.row_ptr_.begin(), m.row_ptr_.end() - 1);
        for (const Triplet& t : triplets) {
            const index_type pos = next[static_cast<std::size_t>(t.row)]++;
            m.cols_idx_[static_cast<std::size_t>(pos)] = static_cast<col_type>(t.col);
            m.values_[static_cast<std::size_t>(pos)] = t.value;
        }
    }

    // Sort each row by column and merge duplicates in place.
    std::vector<index_type> new_row_ptr(m.row_ptr_.size(), 0);
    index_type write = 0;
    std::vector<std::pair<col_type, double>> row_buf;
    for (index_type i = 0; i < rows; ++i) {
        const index_type begin = m.row_ptr_[static_cast<std::size_t>(i)];
        const index_type end = m.row_ptr_[static_cast<std::size_t>(i) + 1];
        row_buf.clear();
        for (index_type p = begin; p < end; ++p) {
            row_buf.emplace_back(m.cols_idx_[static_cast<std::size_t>(p)],
                                 m.values_[static_cast<std::size_t>(p)]);
        }
        std::sort(row_buf.begin(), row_buf.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        new_row_ptr[static_cast<std::size_t>(i)] = write;
        for (std::size_t p = 0; p < row_buf.size();) {
            const col_type col = row_buf[p].first;
            double sum = 0.0;
            while (p < row_buf.size() && row_buf[p].first == col) {
                sum += row_buf[p].second;
                ++p;
            }
            m.cols_idx_[static_cast<std::size_t>(write)] = col;
            m.values_[static_cast<std::size_t>(write)] = sum;
            ++write;
        }
    }
    new_row_ptr[static_cast<std::size_t>(rows)] = write;
    m.row_ptr_ = std::move(new_row_ptr);
    m.cols_idx_.resize(static_cast<std::size_t>(write));
    m.cols_idx_.shrink_to_fit();
    m.values_.resize(static_cast<std::size_t>(write));
    m.values_.shrink_to_fit();
    m.compute_bandwidth();
    return m;
}

SparseMatrix SparseMatrix::from_csr(index_type rows, index_type cols,
                                    std::vector<index_type> row_ptr,
                                    std::vector<col_type> cols_idx,
                                    std::vector<double> values) {
    if (rows < 0 || cols < 0) {
        throw std::invalid_argument("SparseMatrix::from_csr: negative dimensions");
    }
    check_col_capacity(cols);
    if (row_ptr.size() != static_cast<std::size_t>(rows) + 1 || row_ptr.front() != 0 ||
        row_ptr.back() != static_cast<index_type>(cols_idx.size()) ||
        cols_idx.size() != values.size()) {
        throw std::invalid_argument("SparseMatrix::from_csr: inconsistent CSR arrays");
    }
    for (index_type i = 0; i < rows; ++i) {
        const index_type begin = row_ptr[static_cast<std::size_t>(i)];
        const index_type end = row_ptr[static_cast<std::size_t>(i) + 1];
        if (begin > end) {
            throw std::invalid_argument("SparseMatrix::from_csr: row pointers not monotone");
        }
        for (index_type p = begin; p < end; ++p) {
            const col_type c = cols_idx[static_cast<std::size_t>(p)];
            if (c < 0 || static_cast<index_type>(c) >= cols) {
                throw std::invalid_argument("SparseMatrix::from_csr: column out of range");
            }
            if (p > begin && cols_idx[static_cast<std::size_t>(p) - 1] >= c) {
                throw std::invalid_argument(
                    "SparseMatrix::from_csr: columns must be sorted and unique per row");
            }
        }
    }
    SparseMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.row_ptr_ = std::move(row_ptr);
    m.cols_idx_ = std::move(cols_idx);
    m.values_ = std::move(values);
    m.compute_bandwidth();
    return m;
}

double SparseMatrix::at(index_type i, index_type j) const {
    if (i < 0 || i >= rows_ || j < 0 || j >= cols_) {
        throw std::out_of_range("SparseMatrix::at: index outside matrix");
    }
    const auto cols = row_cols(i);
    const auto it = std::lower_bound(cols.begin(), cols.end(), static_cast<col_type>(j));
    if (it == cols.end() || *it != static_cast<col_type>(j)) {
        return 0.0;
    }
    return row_values(i)[static_cast<std::size_t>(it - cols.begin())];
}

void SparseMatrix::multiply(std::span<const double> x, std::span<double> y) const {
    assert(static_cast<index_type>(x.size()) == cols_);
    assert(static_cast<index_type>(y.size()) == rows_);
    for (index_type i = 0; i < rows_; ++i) {
        double acc = 0.0;
        const index_type begin = row_ptr_[static_cast<std::size_t>(i)];
        const index_type end = row_ptr_[static_cast<std::size_t>(i) + 1];
        for (index_type p = begin; p < end; ++p) {
            acc += values_[static_cast<std::size_t>(p)] *
                   x[static_cast<std::size_t>(cols_idx_[static_cast<std::size_t>(p)])];
        }
        y[static_cast<std::size_t>(i)] = acc;
    }
}

void SparseMatrix::multiply_transposed(std::span<const double> x, std::span<double> y) const {
    assert(static_cast<index_type>(x.size()) == rows_);
    assert(static_cast<index_type>(y.size()) == cols_);
    std::fill(y.begin(), y.end(), 0.0);
    for (index_type i = 0; i < rows_; ++i) {
        const double xi = x[static_cast<std::size_t>(i)];
        if (xi == 0.0) {
            continue;
        }
        const index_type begin = row_ptr_[static_cast<std::size_t>(i)];
        const index_type end = row_ptr_[static_cast<std::size_t>(i) + 1];
        for (index_type p = begin; p < end; ++p) {
            y[static_cast<std::size_t>(cols_idx_[static_cast<std::size_t>(p)])] +=
                xi * values_[static_cast<std::size_t>(p)];
        }
    }
}

SparseMatrix SparseMatrix::transpose() const {
    std::vector<Triplet> triplets;
    triplets.reserve(static_cast<std::size_t>(nonzeros()));
    for (index_type i = 0; i < rows_; ++i) {
        const auto cols = row_cols(i);
        const auto values = row_values(i);
        for (std::size_t p = 0; p < cols.size(); ++p) {
            triplets.push_back({static_cast<index_type>(cols[p]), i, values[p]});
        }
    }
    return from_triplets(cols_, rows_, std::move(triplets));
}

SparseMatrix SparseMatrix::permuted(std::span<const index_type> order) const {
    if (rows_ != cols_) {
        throw std::invalid_argument("SparseMatrix::permuted: matrix must be square");
    }
    if (static_cast<index_type>(order.size()) != rows_) {
        throw std::invalid_argument("SparseMatrix::permuted: permutation size mismatch");
    }
    // inverse[old] = new, validating that `order` is a bijection.
    std::vector<index_type> inverse(static_cast<std::size_t>(rows_), -1);
    for (index_type p = 0; p < rows_; ++p) {
        const index_type old = order[static_cast<std::size_t>(p)];
        if (old < 0 || old >= rows_ || inverse[static_cast<std::size_t>(old)] != -1) {
            throw std::invalid_argument(
                "SparseMatrix::permuted: order is not a permutation of [0, rows)");
        }
        inverse[static_cast<std::size_t>(old)] = p;
    }

    std::vector<index_type> row_ptr;
    row_ptr.reserve(static_cast<std::size_t>(rows_) + 1);
    std::vector<col_type> cols;
    cols.reserve(values_.size());
    std::vector<double> values;
    values.reserve(values_.size());
    std::vector<std::pair<col_type, double>> row;
    row_ptr.push_back(0);
    for (index_type p = 0; p < rows_; ++p) {
        const index_type old = order[static_cast<std::size_t>(p)];
        const auto old_cols = row_cols(old);
        const auto old_values = row_values(old);
        row.clear();
        for (std::size_t e = 0; e < old_cols.size(); ++e) {
            row.emplace_back(
                static_cast<col_type>(inverse[static_cast<std::size_t>(old_cols[e])]),
                old_values[e]);
        }
        std::sort(row.begin(), row.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        for (const auto& [c, v] : row) {
            cols.push_back(c);
            values.push_back(v);
        }
        row_ptr.push_back(static_cast<index_type>(cols.size()));
    }
    return from_csr(rows_, cols_, std::move(row_ptr), std::move(cols), std::move(values));
}

std::size_t SparseMatrix::memory_bytes() const {
    return row_ptr_.capacity() * sizeof(index_type) +
           cols_idx_.capacity() * sizeof(col_type) + values_.capacity() * sizeof(double);
}

}  // namespace gprsim::ctmc
