// Compressed sparse row (CSR) matrix tailored to CTMC generator matrices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace gprsim::ctmc {

/// State indices are the library-wide common::index_type; the alias keeps
/// unqualified `index_type` spelled the same throughout the CTMC layer.
using common::index_type;

/// Column storage type. Columns are kept as 32-bit integers: the largest
/// chain the paper's configurations produce (~22 million states) is far
/// below 2^31, and halving the column array doubles the useful L2 reach of
/// the sweep kernels. Row pointers and nonzero counts stay 64-bit.
using col_type = std::int32_t;

/// One (row, col, value) entry used while assembling a sparse matrix.
struct Triplet {
    index_type row = 0;
    index_type col = 0;
    double value = 0.0;
};

/// Immutable CSR sparse matrix with double precision values.
///
/// Rows are stored contiguously; duplicate (row, col) triplets are summed
/// during assembly. Column indices within a row are sorted. Assembly also
/// records the bandwidth (max |i - j| over stored entries), which the
/// pipelined Gauss-Seidel kernel needs to pick a safe wavefront distance.
class SparseMatrix {
public:
    SparseMatrix() = default;

    /// Assembles a rows x cols matrix from triplets (duplicates are summed,
    /// explicit zeros are kept so structural patterns stay predictable).
    static SparseMatrix from_triplets(index_type rows, index_type cols,
                                      std::vector<Triplet> triplets);

    /// Adopts ready-made CSR arrays. Column indices within each row must be
    /// sorted and duplicate-free; this is validated. Used by generators that
    /// can emit rows in order, avoiding the triplet staging buffer (the
    /// largest GPRS chain has ~240 million nonzeros).
    static SparseMatrix from_csr(index_type rows, index_type cols,
                                 std::vector<index_type> row_ptr,
                                 std::vector<col_type> cols_idx,
                                 std::vector<double> values);

    index_type rows() const { return rows_; }
    index_type cols() const { return cols_; }
    index_type nonzeros() const { return static_cast<index_type>(values_.size()); }

    /// Column indices of row i (sorted ascending).
    std::span<const col_type> row_cols(index_type i) const {
        return {cols_idx_.data() + row_ptr_[i],
                static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
    }
    /// Values of row i, aligned with row_cols(i).
    std::span<const double> row_values(index_type i) const {
        return {values_.data() + row_ptr_[i],
                static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
    }

    // --- raw contiguous views (sweep kernels) ----------------------------
    const index_type* row_ptr_data() const { return row_ptr_.data(); }
    const col_type* col_data() const { return cols_idx_.data(); }
    const double* value_data() const { return values_.data(); }

    /// max |i - j| over stored entries (0 for an empty matrix). For the
    /// GPRS generator this is one QBD buffer level: (N_gsm + 1) times the
    /// (m, r) pair count.
    index_type bandwidth() const { return bandwidth_; }

    /// Value at (i, j); zero when the entry is not stored.
    double at(index_type i, index_type j) const;

    /// y = A * x  (x has cols() entries, y has rows() entries).
    void multiply(std::span<const double> x, std::span<double> y) const;

    /// x^T * A accumulated into y (y must have cols() entries).
    void multiply_transposed(std::span<const double> x, std::span<double> y) const;

    SparseMatrix transpose() const;

    /// The matrix reindexed by `order` (order[new] = old, a permutation of
    /// [0, rows)): result(i, j) = (*this)(order[i], order[j]). Requires a
    /// square matrix; columns are remapped through the inverse permutation
    /// and re-sorted per row. Used by the solver's QBD row-ordering path.
    SparseMatrix permuted(std::span<const index_type> order) const;

    /// Approximate heap footprint, used to pick CSR vs matrix-free solves.
    std::size_t memory_bytes() const;

private:
    void compute_bandwidth();

    index_type rows_ = 0;
    index_type cols_ = 0;
    index_type bandwidth_ = 0;
    std::vector<index_type> row_ptr_;
    std::vector<col_type> cols_idx_;
    std::vector<double> values_;
};

}  // namespace gprsim::ctmc
