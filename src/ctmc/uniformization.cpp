// Uniformization is header-only (templated over the operator); this
// translation unit exists so the library has a stable archive member and a
// place for future non-template helpers.
#include "ctmc/uniformization.hpp"
