// Transient analysis of CTMCs via uniformization (Jensen's method).
//
// The GPRS paper only needs steady state; transient solution is provided as
// an extension so the library can also answer "how does the cell behave in
// the minutes after a load change", the scenario behind the paper's
// future-work item on adaptive PDCH management.
#pragma once

#include <span>
#include <vector>

#include "ctmc/solver.hpp"
#include "common/types.hpp"

namespace gprsim::ctmc {

using common::index_type;

struct TransientOptions {
    /// Truncation error bound for the Poisson series.
    double epsilon = 1e-10;
    /// Hard cap on series terms (guards pathological Lambda * t).
    index_type max_terms = 2000000;
};

/// Distribution at time t of the chain described by the transposed-generator
/// operator, starting from `initial` (which must be a distribution).
template <QtOperatorConcept Op>
std::vector<double> transient_distribution(const Op& op, std::span<const double> initial,
                                           double t, const TransientOptions& options = {}) {
    const index_type n = op.size();
    if (static_cast<index_type>(initial.size()) != n) {
        throw std::invalid_argument("transient_distribution: initial vector size mismatch");
    }
    if (t < 0.0) {
        throw std::invalid_argument("transient_distribution: negative time");
    }
    std::vector<double> term(initial.begin(), initial.end());
    if (t == 0.0) {
        return term;
    }

    const double lambda = detail::max_exit_rate(op);
    const double lt = lambda * t;

    // pi(t) = sum_k Poisson(k; lt) * pi(0) P^k with P = I + Q/Lambda.
    std::vector<double> result(static_cast<std::size_t>(n), 0.0);
    std::vector<double> next(static_cast<std::size_t>(n), 0.0);

    double log_poisson = -lt;  // log of Poisson(0; lt)
    double accumulated = 0.0;
    for (index_type k = 0; k <= options.max_terms; ++k) {
        const double weight = std::exp(log_poisson);
        if (weight > 0.0) {
            for (index_type i = 0; i < n; ++i) {
                result[static_cast<std::size_t>(i)] +=
                    weight * term[static_cast<std::size_t>(i)];
            }
            accumulated += weight;
        }
        if (accumulated >= 1.0 - options.epsilon && static_cast<double>(k) >= lt) {
            break;
        }
        // term <- term * P   (computed through the incoming-transition view)
        for (index_type i = 0; i < n; ++i) {
            double acc = op.diagonal(i) * term[static_cast<std::size_t>(i)];
            op.for_each_incoming(i, [&](index_type j, double rate) {
                acc += rate * term[static_cast<std::size_t>(j)];
            });
            next[static_cast<std::size_t>(i)] =
                term[static_cast<std::size_t>(i)] + acc / lambda;
        }
        term.swap(next);
        log_poisson += std::log(lt) - std::log(static_cast<double>(k) + 1.0);
    }

    // Compensate the truncated tail by renormalizing.
    double sum = 0.0;
    for (double v : result) {
        sum += v;
    }
    for (double& v : result) {
        v /= sum;
    }
    return result;
}

}  // namespace gprsim::ctmc
