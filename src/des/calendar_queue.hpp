// Calendar queue: the event calendar behind des::Simulation.
//
// A Brown-style calendar queue (R. Brown, CACM 1988) replaces the binary
// heap: time is quantized into fixed-width *virtual buckets* (vb =
// floor(time / width)), and a power-of-two array of physical buckets holds
// the events of one "year" (num_buckets consecutive virtual buckets),
// wrapping modulo the array size. Dequeue scans forward from the current
// virtual bucket and pops the earliest event whose vb matches it; enqueue
// is an O(1) push into the target bucket. With the width adapted so that
// buckets hold O(1) events, both operations are amortized O(1) — against
// O(log n) heap sifts over 40+-byte entries.
//
//   * Events beyond the current year go to a sorted *overflow list*
//     (descending, so the earliest events sit at the back); they migrate
//     into the bucket array when the year advances. The sort is lazy: the
//     list absorbs appends unordered and sorts once per migration.
//   * The bucket width and array size adapt to the live event population:
//     the queue rebuilds when the size outgrows (or undershoots) the
//     bucket count, re-estimating the width from the median inter-event
//     gap of a sample — robust against the bursty/skewed schedule-time
//     distributions a GPRS cell produces (20 ms frame ticks next to
//     hour-scale dwell timers).
//   * When the current year is sparse (a full revolution finds nothing),
//     the queue falls back to a direct minimum search and jumps the
//     cursor straight to the next event instead of ticking through empty
//     years.
//
// Ordering contract: pop order is EXACTLY ascending (time, sequence) — the
// same stable FIFO tie-break the heap provided. Bucket geometry, width
// re-estimation, and the overflow threshold affect only *where* an event
// is stored, never the order it pops in: the quantization vb(t) is
// monotone in t, the per-bucket scan takes the (time, sequence)-minimum
// among entries of the current virtual bucket, and equal times always
// share a virtual bucket. Rebuilds therefore cannot perturb simulation
// trajectories.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gprsim::des {

/// One calendar entry: the schedule time, the global FIFO sequence number,
/// and the arena slot holding the callback.
struct CalendarEvent {
    double time;
    std::uint64_t sequence;
    std::uint32_t slot;
    /// Virtual bucket = floor(time * inv_width) under the width the queue
    /// had when this entry was (re)placed; recomputed on rebuild.
    std::int64_t vbucket;
};

class CalendarQueue {
public:
    CalendarQueue() { buckets_.resize(kMinBuckets); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /// Enqueues an event. `time` must be >= the time of the last popped
    /// event (the simulation clock never schedules into the past); equal
    /// times are ordered by `sequence`.
    void insert(double time, std::uint64_t sequence, std::uint32_t slot) {
        CalendarEvent ev{time, sequence, slot, vbucket_of(time)};
        place(ev);
        ++size_;
        if (size_ > (num_buckets() << 1) && num_buckets() < kMaxBuckets) {
            rebuild();
        }
    }

    /// Removes the earliest event (ascending (time, sequence)) into `out`
    /// and returns true — unless the queue is empty or the earliest event
    /// is later than `horizon` (inclusive bound: time == horizon pops).
    bool pop_until(double horizon, CalendarEvent& out) {
        if (size_ == 0) {
            return false;
        }
        std::size_t misses = 0;
        std::size_t work = 0;
        for (;;) {
            std::vector<CalendarEvent>& bucket = buckets_[bucket_index(cursor_vb_)];
            std::size_t best = bucket.size();
            for (std::size_t i = 0; i < bucket.size(); ++i) {
                if (bucket[i].vbucket == cursor_vb_ &&
                    (best == bucket.size() || earlier(bucket[i], bucket[best]))) {
                    best = i;
                }
            }
            work += bucket.size();
            if (best != bucket.size()) {
                if (bucket[best].time > horizon) {
                    return false;  // cursor stays; insert() may rewind it
                }
                out = bucket[best];
                bucket[best] = bucket.back();
                bucket.pop_back();
                --size_;
                note_pop(out.time, work + misses);
                if (size_ < (num_buckets() >> 3) && num_buckets() > kMinBuckets) {
                    rebuild();
                }
                return true;
            }
            ++cursor_vb_;
            if (cursor_vb_ == overflow_limit_vb_) {
                // Crossed into the next year: slide the overflow window.
                overflow_limit_vb_ += static_cast<std::int64_t>(num_buckets());
                migrate_overflow();
            }
            if (++misses > num_buckets()) {
                jump_to_minimum();  // sparse year: skip the empty buckets
                misses = 0;
            }
        }
    }

    /// Diagnostics for benches/tests: current bucket count and overflow
    /// population (events parked beyond the current year).
    std::size_t bucket_count() const { return num_buckets(); }
    std::size_t overflow_size() const { return overflow_.size(); }
    double bucket_width() const { return width_; }

private:
    static constexpr std::size_t kMinBuckets = 64;
    static constexpr std::size_t kMaxBuckets = std::size_t{1} << 21;
    /// Quantization cap: times so far out that time/width overflows the
    /// virtual-bucket range all share the last bucket (ordering within it
    /// is still exact via (time, sequence)).
    static constexpr std::int64_t kMaxVb = std::int64_t{1} << 62;

    static bool earlier(const CalendarEvent& a, const CalendarEvent& b) {
        if (a.time != b.time) {
            return a.time < b.time;
        }
        return a.sequence < b.sequence;
    }

    /// Records the inter-pop time delta (the *dequeue-side* event density —
    /// what actually determines scan cost) and the scan work this pop paid.
    /// When the rolling work average degrades, rebuilds with a width
    /// re-estimated from the recorded deltas. A population-gap estimate
    /// alone goes pathological here: the pending set is dominated by sparse
    /// far-future timers (dwell, TCP retransmission), so its median gap is
    /// orders of magnitude wider than the dense head (frame ticks, transit
    /// delays), and the head collapses into one bucket with quadratic pops.
    void note_pop(double time, std::size_t work) {
        const double delta = time - last_pop_time_;
        last_pop_time_ = time;
        if (delta > 0.0) {
            pop_deltas_[delta_pos_] = delta;
            delta_pos_ = (delta_pos_ + 1) & (kDeltaWindow - 1);
            if (delta_count_ < kDeltaWindow) {
                ++delta_count_;
            }
        }
        adapt_work_ += work;
        if (++adapt_pops_ >= kAdaptInterval) {
            // Average > ~6 entries touched per pop means the geometry may
            // no longer match the head density — but only rebuild if the
            // re-estimated width would actually change materially. High
            // scan work can also come from simultaneous events (a frame
            // grid), which no bucket width can separate: rebuilding on
            // those would thrash O(n) rebuilds every interval.
            if (adapt_work_ > kAdaptInterval * 6 && delta_count_ == kDeltaWindow &&
                size_ >= 2) {
                std::array<double, kDeltaWindow> deltas = pop_deltas_;
                std::nth_element(deltas.begin(), deltas.begin() + kDeltaWindow / 2,
                                 deltas.end());
                const double candidate = 2.0 * deltas[kDeltaWindow / 2];
                if (candidate > 0.0 && candidate < 1e300 &&
                    (candidate < 0.5 * width_ || candidate > 2.0 * width_)) {
                    rebuild();
                }
            }
            adapt_pops_ = 0;
            adapt_work_ = 0;
        }
    }

    std::size_t num_buckets() const { return buckets_.size(); }
    std::size_t bucket_index(std::int64_t vb) const {
        return static_cast<std::size_t>(vb) & (buckets_.size() - 1);
    }

    std::int64_t vbucket_of(double time) const {
        const double q = time * inv_width_;
        if (q >= static_cast<double>(kMaxVb)) {
            return kMaxVb;
        }
        if (q < 0.0) {
            return 0;
        }
        return static_cast<std::int64_t>(q);
    }

    void place(const CalendarEvent& ev) {
        if (ev.vbucket >= overflow_limit_vb_) {
            overflow_.push_back(ev);  // beyond the sorted prefix; sorted lazily
            return;
        }
        if (ev.vbucket < cursor_vb_) {
            // run_until() may leave the cursor parked at a future event;
            // a later schedule before that event rewinds the scan. Extra
            // empty buckets get scanned — ordering is unaffected.
            cursor_vb_ = ev.vbucket;
        }
        buckets_[bucket_index(ev.vbucket)].push_back(ev);
    }

    void sort_overflow() {
        // Descending (time, sequence): the earliest events end up at the
        // back, so migration pops them without shifting. Incremental: only
        // the appends since the last sort get sorted, then merged into the
        // sorted prefix — O(a log a + F) per year instead of O(F log F).
        if (overflow_sorted_ < overflow_.size()) {
            const auto desc = [](const CalendarEvent& a, const CalendarEvent& b) {
                return earlier(b, a);
            };
            const auto mid = overflow_.begin() +
                             static_cast<std::ptrdiff_t>(overflow_sorted_);
            std::sort(mid, overflow_.end(), desc);
            std::inplace_merge(overflow_.begin(), mid, overflow_.end(), desc);
            overflow_sorted_ = overflow_.size();
        }
    }

    /// Moves overflow events that now fall before the overflow limit into
    /// the bucket array.
    void migrate_overflow() {
        if (overflow_.empty()) {
            return;
        }
        sort_overflow();
        while (!overflow_.empty() && overflow_.back().vbucket < overflow_limit_vb_) {
            CalendarEvent ev = overflow_.back();
            overflow_.pop_back();
            if (ev.vbucket < cursor_vb_) {
                cursor_vb_ = ev.vbucket;
            }
            buckets_[bucket_index(ev.vbucket)].push_back(ev);
        }
        overflow_sorted_ = overflow_.size();
    }

    /// Direct minimum search across buckets and overflow; jumps the cursor
    /// (and the year window) to the earliest event. Called when a full
    /// revolution found nothing — size_ > 0 guarantees a minimum exists.
    void jump_to_minimum() {
        const CalendarEvent* min_ev = nullptr;
        for (const std::vector<CalendarEvent>& bucket : buckets_) {
            for (const CalendarEvent& ev : bucket) {
                if (min_ev == nullptr || earlier(ev, *min_ev)) {
                    min_ev = &ev;
                }
            }
        }
        std::int64_t target_vb;
        if (min_ev != nullptr) {
            target_vb = min_ev->vbucket;
            if (!overflow_.empty()) {
                sort_overflow();
                if (earlier(overflow_.back(), *min_ev)) {
                    target_vb = overflow_.back().vbucket;
                }
            }
        } else {
            sort_overflow();
            target_vb = overflow_.back().vbucket;
        }
        cursor_vb_ = target_vb;
        const auto n = static_cast<std::int64_t>(num_buckets());
        overflow_limit_vb_ = (target_vb / n + 1) * n;
        migrate_overflow();
    }

    /// Resizes the bucket array to ~one event per bucket and re-estimates
    /// the width from the median inter-event gap of a strided sample (the
    /// median keeps one heavy tail — dwell timers hours out — from
    /// stretching every bucket; Brown's mean-gap rule would).
    void rebuild() {
        std::vector<CalendarEvent> all;
        all.reserve(size_);
        for (std::vector<CalendarEvent>& bucket : buckets_) {
            all.insert(all.end(), bucket.begin(), bucket.end());
            bucket.clear();
        }
        all.insert(all.end(), overflow_.begin(), overflow_.end());
        overflow_.clear();
        overflow_sorted_ = 0;

        std::size_t n = kMinBuckets;
        while (n < all.size() && n < kMaxBuckets) {
            n <<= 1;
        }
        // resize (not assign) keeps the surviving buckets' capacities, so
        // steady-state adapt-rebuilds do no per-bucket reallocation.
        buckets_.resize(n);

        width_ = estimate_width(all);
        inv_width_ = 1.0 / width_;

        std::int64_t min_vb = kMaxVb;
        for (CalendarEvent& ev : all) {
            ev.vbucket = vbucket_of(ev.time);
            min_vb = std::min(min_vb, ev.vbucket);
        }
        cursor_vb_ = all.empty() ? 0 : min_vb;
        overflow_limit_vb_ =
            (cursor_vb_ / static_cast<std::int64_t>(n) + 1) * static_cast<std::int64_t>(n);
        for (const CalendarEvent& ev : all) {
            place(ev);
        }
    }

    double estimate_width(const std::vector<CalendarEvent>& all) const {
        // Two estimators, take the narrower:
        //   * median of recent nonzero inter-pop deltas — samples the
        //     *head* of the schedule, exactly the density the bucket width
        //     must match. The pending population mixes in sparse far-future
        //     timers (dwell, TCP retransmission) whose gaps would stretch
        //     the width by orders of magnitude and collapse the dense head
        //     into one quadratic bucket.
        //   * median population gap (strided sample) — covers cold starts
        //     and drains, where the remaining population *is* the future
        //     and recent pop deltas lag it.
        // Too-narrow merely walks empty buckets (bounded by the
        // jump-to-minimum fallback); too-wide is the quadratic failure, so
        // min() errs the survivable way.
        double delta_est = 0.0;
        if (delta_count_ == kDeltaWindow) {
            std::array<double, kDeltaWindow> deltas = pop_deltas_;
            std::nth_element(deltas.begin(), deltas.begin() + kDeltaWindow / 2,
                             deltas.end());
            const double gap = deltas[kDeltaWindow / 2];
            if (gap > 0.0 && gap < 1e300) {
                delta_est = 2.0 * gap;
            }
        }
        const double pop_est = estimate_population_width(all);
        if (delta_est > 0.0 && pop_est > 0.0) {
            return std::min(delta_est, pop_est);
        }
        if (delta_est > 0.0) {
            return delta_est;
        }
        return pop_est > 0.0 ? pop_est : width_;
    }

    double estimate_population_width(const std::vector<CalendarEvent>& all) const {
        if (all.size() < 2) {
            return 0.0;  // no data; caller keeps the current width
        }
        constexpr std::size_t kSample = 1024;
        std::vector<double> times;
        times.reserve(std::min(all.size(), kSample));
        const std::size_t stride = std::max<std::size_t>(1, all.size() / kSample);
        for (std::size_t i = 0; i < all.size(); i += stride) {
            times.push_back(all[i].time);
        }
        std::sort(times.begin(), times.end());
        std::vector<double> gaps;
        gaps.reserve(times.size());
        for (std::size_t i = 1; i < times.size(); ++i) {
            gaps.push_back(times[i] - times[i - 1]);
        }
        if (gaps.empty()) {
            return 0.0;
        }
        // A sampled gap spans ~`stride` population events, so the
        // population-level inter-event gap is the sampled gap / stride.
        std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2, gaps.end());
        double gap = gaps[gaps.size() / 2] / static_cast<double>(stride);
        if (gap <= 0.0) {
            // Median tie (many simultaneous events): fall back to the mean
            // gap over the sampled span.
            gap = (times.back() - times.front()) /
                  static_cast<double>(all.size() - 1);
        }
        if (gap <= 0.0 || !(gap < 1e300)) {
            return 0.0;  // all-equal times or degenerate span
        }
        // A couple of events per virtual bucket keeps the dequeue scan at
        // O(1) without making years so short that everything overflows.
        return 2.0 * gap;
    }

    std::vector<std::vector<CalendarEvent>> buckets_;
    std::vector<CalendarEvent> overflow_;  ///< events beyond the current year
    /// Length of the sorted prefix of overflow_; appends past it are merged
    /// in lazily by sort_overflow().
    std::size_t overflow_sorted_ = 0;
    std::size_t size_ = 0;
    double width_ = 1.0;
    double inv_width_ = 1.0;
    /// Next virtual bucket the dequeue scan will inspect; between pops it
    /// equals the vbucket of the last popped event (or earlier).
    std::int64_t cursor_vb_ = 0;
    /// Events with vbucket >= this go to the overflow list; always the end
    /// of the year (bucket-array span) containing the cursor.
    std::int64_t overflow_limit_vb_ = static_cast<std::int64_t>(kMinBuckets);

    /// Rolling window of nonzero inter-pop time deltas (head density) that
    /// feeds estimate_width(), plus the scan-work counters that trigger an
    /// adaptive rebuild when pops degrade.
    static constexpr std::size_t kDeltaWindow = 64;  // power of two
    static constexpr std::size_t kAdaptInterval = 1024;
    std::array<double, kDeltaWindow> pop_deltas_{};
    std::size_t delta_pos_ = 0;
    std::size_t delta_count_ = 0;
    double last_pop_time_ = 0.0;
    std::size_t adapt_pops_ = 0;
    std::size_t adapt_work_ = 0;
};

}  // namespace gprsim::des
