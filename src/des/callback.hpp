// Small-buffer event callback: the std::function replacement for the event
// core's hot path.
//
// Every callback the simulator schedules captures at most a `this` pointer
// plus a couple of ids (see sim/simulator.cpp), yet std::function pays a
// heap allocation as soon as the capture list outgrows its tiny SSO buffer
// (16 bytes on libstdc++) — one malloc/free pair per scheduled event at
// millions of events per second. EventCallback stores the callable inline
// in a fixed-capacity buffer instead and refuses, at compile time, any
// callable that does not fit: there is deliberately NO heap fallback, so a
// capture list that grows past kCapacity is a build error pointing at the
// offending schedule() call, not a silent performance regression.
//
// Trivially copyable callables (all of the simulator's lambdas) relocate
// with a memcpy and destroy as a no-op; non-trivial ones (a std::function
// passed through, a shared_ptr capture) go through a per-type ops table.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace gprsim::des {

class EventCallback {
public:
    /// Inline storage for the callable. Sized for the largest capture the
    /// simulator actually schedules (`this` + two 64-bit ids = 24 bytes)
    /// with headroom for a full std::function<void()> (32 bytes) so test
    /// code can still pass one through.
    static constexpr std::size_t kCapacity = 48;

    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= kCapacity,
                      "EventCallback: capture list exceeds the inline capacity; "
                      "shrink the captures (ids, not objects) or raise kCapacity");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "EventCallback: over-aligned callable");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "EventCallback: callable must be nothrow move constructible "
                      "(arena slots relocate callbacks without exception paths)");
        ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
        invoke_ = [](void* s) { (*static_cast<Fn*>(s))(); };
        if constexpr (std::is_trivially_copyable_v<Fn> &&
                      std::is_trivially_destructible_v<Fn>) {
            ops_ = nullptr;  // memcpy relocation, no destructor call
        } else {
            ops_ = &kOpsFor<Fn>;
        }
    }

    EventCallback(EventCallback&& other) noexcept { move_from(other); }

    EventCallback& operator=(EventCallback&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    EventCallback(const EventCallback&) = delete;
    EventCallback& operator=(const EventCallback&) = delete;

    ~EventCallback() { reset(); }

    /// True when a callable is stored (empty callbacks are rejected by
    /// Simulation::schedule, mirroring the std::function-based contract).
    explicit operator bool() const { return invoke_ != nullptr; }

    /// Invokes the stored callable; must not be called on an empty
    /// EventCallback (the event core only dispatches non-empty slots).
    void operator()() { invoke_(storage_); }

private:
    struct Ops {
        void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
        void (*destroy)(void* s);
    };

    template <typename Fn>
    static void relocate_impl(void* dst, void* src) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
    }

    template <typename Fn>
    static void destroy_impl(void* s) {
        static_cast<Fn*>(s)->~Fn();
    }

    template <typename Fn>
    static constexpr Ops kOpsFor{&relocate_impl<Fn>, &destroy_impl<Fn>};

    void move_from(EventCallback& other) noexcept {
        invoke_ = other.invoke_;
        ops_ = other.ops_;
        if (invoke_ != nullptr) {
            if (ops_ != nullptr) {
                ops_->relocate(storage_, other.storage_);
            } else {
                std::memcpy(storage_, other.storage_, kCapacity);
            }
            other.invoke_ = nullptr;
            other.ops_ = nullptr;
        }
    }

    void reset() noexcept {
        if (invoke_ != nullptr && ops_ != nullptr) {
            ops_->destroy(storage_);
        }
        invoke_ = nullptr;
        ops_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char storage_[kCapacity];
    void (*invoke_)(void*) = nullptr;
    const Ops* ops_ = nullptr;
};

}  // namespace gprsim::des
