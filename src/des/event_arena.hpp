// Pool-allocated event slots with generation-counted handles.
//
// The arena owns every scheduled-but-not-yet-fired callback. A slot is
// addressed by a 32-bit index; each slot carries a generation counter that
// is bumped when the slot is released, so an (index, generation) handle
// held by model code goes stale the moment its event fires or its
// cancelled calendar entry is reclaimed. That makes cancellation O(1) —
// flag the slot, no search, no hash probe — and makes cancel() of a fired
// or already-cancelled handle a *detectable* no-op: the generation (or the
// pending flag) no longer matches, so a recycled slot's new occupant can
// never be cancelled through an old handle. This replaces the previous
// design's two per-event unordered_set probes (pending-id tracking plus a
// lazy-deletion set) with plain array indexing.
//
// Slots are recycled through a LIFO free list, so a steady-state simulation
// reaches its high-water mark of concurrently pending events once and then
// performs no allocation at all in the schedule/fire loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "des/callback.hpp"

namespace gprsim::des {

class EventArena {
public:
    struct Slot {
        EventCallback callback;
        /// Matches the handle generation while the slot is live; bumped on
        /// release. Never 0 (0 marks an invalid/default handle). A stale
        /// handle could only alias a reused slot after ~2^32 reuses of that
        /// one slot between the handle's creation and the cancel — far
        /// beyond any replication horizon.
        std::uint32_t generation = 1;
        /// Scheduled and not yet fired or cancelled.
        bool pending = false;
        /// Cancelled; the calendar entry still exists and releases the slot
        /// when it surfaces.
        bool cancelled = false;
    };

    /// Stores `callback` in a recycled (or new) slot and returns its index;
    /// `generation_out` receives the slot's current generation for the
    /// handle. The slot starts pending.
    std::uint32_t acquire(EventCallback callback, std::uint32_t& generation_out) {
        std::uint32_t index;
        if (!free_.empty()) {
            index = free_.back();
            free_.pop_back();
        } else {
            index = static_cast<std::uint32_t>(slots_.size());
            slots_.emplace_back();
        }
        Slot& slot = slots_[index];
        slot.callback = std::move(callback);
        slot.pending = true;
        slot.cancelled = false;
        generation_out = slot.generation;
        return index;
    }

    /// O(1) cancellation: succeeds only when (index, generation) names the
    /// slot's *current* pending occupant. The callback is destroyed
    /// immediately (dropping captured resources); the slot itself is
    /// reclaimed when its calendar entry surfaces.
    bool cancel(std::uint32_t index, std::uint32_t generation) {
        if (index >= slots_.size()) {
            return false;
        }
        Slot& slot = slots_[index];
        if (slot.generation != generation || !slot.pending) {
            return false;
        }
        slot.pending = false;
        slot.cancelled = true;
        slot.callback = EventCallback();
        return true;
    }

    /// True when the slot's occupant was cancelled and awaits reclamation.
    bool is_cancelled(std::uint32_t index) const { return slots_[index].cancelled; }

    /// Moves the callback out for dispatch (the slot stays allocated until
    /// release()).
    EventCallback take_callback(std::uint32_t index) {
        Slot& slot = slots_[index];
        slot.pending = false;
        return std::move(slot.callback);
    }

    /// Returns the slot to the free list and bumps its generation, staling
    /// every outstanding handle to it.
    void release(std::uint32_t index) {
        Slot& slot = slots_[index];
        slot.callback = EventCallback();
        slot.pending = false;
        slot.cancelled = false;
        if (++slot.generation == 0) {
            slot.generation = 1;
        }
        free_.push_back(index);
    }

    /// Total slots ever allocated — the high-water mark of concurrently
    /// scheduled (incl. cancelled-unreclaimed) events. Exposed so tests and
    /// benches can assert that slot recycling actually bounds the pool.
    std::size_t slot_count() const { return slots_.size(); }

    /// Slots currently free for reuse.
    std::size_t free_count() const { return free_.size(); }

private:
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_;
};

}  // namespace gprsim::des
