#include "des/random.hpp"

#include <cmath>
#include <stdexcept>

namespace gprsim::des {

namespace {

/// SplitMix64 step; used to decorrelate (seed, stream) pairs before seeding
/// the Mersenne Twister.
std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// UniformRandomBitGenerator over a stream's prefetched block: hands
/// std::uniform_int_distribution the same word sequence the bare engine
/// would, so batching cannot change uniform_int results.
struct BlockEngineRef {
    using result_type = std::uint64_t;
    static constexpr result_type min() { return std::mt19937_64::min(); }
    static constexpr result_type max() { return std::mt19937_64::max(); }
    result_type operator()() { return stream->next_u64(); }
    RandomStream* stream;
};

}  // namespace

RandomStream::RandomStream(std::uint64_t seed, std::uint64_t stream_id) {
    // Finalize the seed word first, then absorb the stream id into the
    // avalanched state. The previous scheme xor-ed `seed` with a multiple
    // of `stream_id`, so low-entropy adjacent ids produced linearly related
    // pre-mix states; here every seed_seq word sits behind at least two
    // SplitMix64 finalizations of the pair.
    std::uint64_t state = seed;
    state = splitmix64(state) ^ stream_id;
    std::seed_seq seq{splitmix64(state), splitmix64(state), splitmix64(state),
                      splitmix64(state)};
    engine_.seed(seq);
}

void RandomStream::refill() {
    for (std::size_t i = 0; i < kBlock; ++i) {
        block_[i] = engine_();
    }
    pos_ = 0;
}

int RandomStream::uniform_int(int lo, int hi) {
    if (lo > hi) {
        throw std::invalid_argument("RandomStream::uniform_int: empty range");
    }
    BlockEngineRef ref{this};
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(ref);
}

double RandomStream::exponential(double mean) {
    if (mean <= 0.0) {
        throw std::invalid_argument("RandomStream::exponential: mean must be positive");
    }
    return -mean * std::log(uniform());
}

int RandomStream::geometric_count(double mean) {
    if (mean < 1.0) {
        throw std::invalid_argument("RandomStream::geometric_count: mean must be >= 1");
    }
    if (mean == 1.0) {
        return 1;
    }
    // P(X = j) = p (1-p)^(j-1), j >= 1, E[X] = 1/p.
    const double p = 1.0 / mean;
    const double u = uniform();
    const int count = 1 + static_cast<int>(std::floor(std::log(u) / std::log1p(-p)));
    return count < 1 ? 1 : count;
}

bool RandomStream::bernoulli(double p) {
    if (p < 0.0 || p > 1.0) {
        throw std::invalid_argument("RandomStream::bernoulli: p outside [0, 1]");
    }
    return uniform() < p;
}

}  // namespace gprsim::des
