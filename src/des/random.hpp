// Reproducible random-number streams for the simulator.
//
// Each model entity (GSM arrivals, GPRS arrivals, per-cell dwell times, ...)
// draws from its own stream so configuration changes do not shift the random
// sequences of unrelated entities (common-random-numbers discipline).
#pragma once

#include <cstdint>
#include <random>

namespace gprsim::des {

class RandomStream {
public:
    /// Stream `stream_id` of the experiment seeded by `seed`. Distinct
    /// (seed, stream_id) pairs give statistically independent sequences.
    ///
    /// Guarantee: the pair is mixed through the SplitMix64 finalizer before
    /// it seeds the mt19937_64 — the seed word is finalized, the stream id
    /// is absorbed into the finalized state, and every seed_seq word is a
    /// further finalizer output. Because each step avalanches all 64 bits,
    /// low-entropy adjacent ids (0, 1, 2, ... as used by per-replication
    /// substream blocks) land on unrelated engine seedings; no xor/multiply
    /// structure of the raw pair survives into the engine state.
    explicit RandomStream(std::uint64_t seed, std::uint64_t stream_id = 0);

    /// Uniform on (0, 1) — never returns exactly 0 or 1.
    double uniform();
    /// Uniform integer on [lo, hi] inclusive.
    int uniform_int(int lo, int hi);
    /// Exponential with the given mean (> 0).
    double exponential(double mean);
    /// Geometric on {1, 2, ...} with the given mean (>= 1): the paper's
    /// "number of packet calls per session" and "packets per packet call".
    int geometric_count(double mean);
    /// Bernoulli with success probability p.
    bool bernoulli(double p);

    std::uint64_t next_u64() { return engine_(); }

private:
    std::mt19937_64 engine_;
};

}  // namespace gprsim::des
