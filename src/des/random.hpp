// Reproducible random-number streams for the simulator.
//
// Each model entity (GSM arrivals, GPRS arrivals, per-cell dwell times, ...)
// draws from its own stream so configuration changes do not shift the random
// sequences of unrelated entities (common-random-numbers discipline).
//
// Draws are batched: the stream refills a block of raw 64-bit words from
// the engine at a time and serves every variate from that block, so the hot
// path of uniform()/exponential() is a load + increment instead of a
// Mersenne-Twister step per call. The block is a pure prefetch of the
// engine's output sequence — every consumer (uniform, uniform_int via the
// block-backed URBG adaptor, next_u64) sees exactly the words it would
// have drawn unbatched, so substream disjointness and bitwise determinism
// are untouched.
#pragma once

#include <array>
#include <cstdint>
#include <random>

namespace gprsim::des {

class RandomStream {
public:
    /// Stream `stream_id` of the experiment seeded by `seed`. Distinct
    /// (seed, stream_id) pairs give statistically independent sequences.
    ///
    /// Guarantee: the pair is mixed through the SplitMix64 finalizer before
    /// it seeds the mt19937_64 — the seed word is finalized, the stream id
    /// is absorbed into the finalized state, and every seed_seq word is a
    /// further finalizer output. Because each step avalanches all 64 bits,
    /// low-entropy adjacent ids (0, 1, 2, ... as used by per-replication
    /// substream blocks) land on unrelated engine seedings; no xor/multiply
    /// structure of the raw pair survives into the engine state.
    explicit RandomStream(std::uint64_t seed, std::uint64_t stream_id = 0);

    /// Uniform on (0, 1) — never returns exactly 0 or 1.
    double uniform() {
        // 53-bit mantissa in (0, 1): offset by half an ulp to exclude 0.
        const std::uint64_t bits = next_u64() >> 11;
        return (static_cast<double>(bits) + 0.5) * 0x1.0p-53;
    }
    /// Uniform integer on [lo, hi] inclusive.
    int uniform_int(int lo, int hi);
    /// Exponential with the given mean (> 0).
    double exponential(double mean);
    /// Geometric on {1, 2, ...} with the given mean (>= 1): the paper's
    /// "number of packet calls per session" and "packets per packet call".
    int geometric_count(double mean);
    /// Bernoulli with success probability p.
    bool bernoulli(double p);

    /// Next raw engine word, served from the prefetched block.
    std::uint64_t next_u64() {
        if (pos_ == kBlock) {
            refill();
        }
        return block_[pos_++];
    }

private:
    /// Words prefetched per refill. 256 (2 KiB) amortizes the engine's
    /// per-call overhead while staying cache-resident for the seven
    /// streams a simulator run owns.
    static constexpr std::size_t kBlock = 256;

    void refill();

    std::mt19937_64 engine_;
    std::array<std::uint64_t, kBlock> block_;
    std::size_t pos_ = kBlock;  ///< next unserved word; kBlock = refill
};

}  // namespace gprsim::des
