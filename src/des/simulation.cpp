#include "des/simulation.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

namespace gprsim::des {

EventHandle Simulation::schedule(double delay, EventCallback callback) {
    if (delay < 0.0) {
        throw std::invalid_argument("Simulation::schedule: negative delay");
    }
    return schedule_at(now_ + delay, std::move(callback));
}

EventHandle Simulation::schedule_at(double time, EventCallback callback) {
    if (time < now_) {
        throw std::invalid_argument("Simulation::schedule_at: time in the past");
    }
    if (!callback) {
        throw std::invalid_argument("Simulation::schedule_at: empty callback");
    }
    std::uint32_t generation = 0;
    const std::uint32_t slot = arena_.acquire(std::move(callback), generation);
    calendar_.insert(time, next_sequence_++, slot);
    ++pending_;
    return EventHandle(slot, generation);
}

bool Simulation::cancel(EventHandle handle) {
    if (!handle.valid() || !arena_.cancel(handle.index_, handle.generation_)) {
        // Invalid, already fired, already cancelled, or the slot has been
        // recycled for a newer event: the generation check makes every
        // stale cancel a detectable no-op — it can never hit the slot's
        // current occupant. The calendar entry of a genuine cancel stays
        // queued (flagged in the arena) and is reclaimed when it surfaces.
        return false;
    }
    --pending_;
    return true;
}

bool Simulation::dispatch_next(double horizon) {
    CalendarEvent ev;
    while (calendar_.pop_until(horizon, ev)) {
        if (arena_.is_cancelled(ev.slot)) {
            arena_.release(ev.slot);  // reclaim a lazily deleted entry
            continue;
        }
        now_ = ev.time;
        // Move the callback out and release the slot BEFORE invoking: the
        // firing event's own handle goes stale (a self-cancel observes
        // "fired"), and the slot is immediately reusable by whatever the
        // callback schedules.
        EventCallback callback = arena_.take_callback(ev.slot);
        arena_.release(ev.slot);
        --pending_;
        ++executed_;
        callback();
        return true;
    }
    return false;
}

void Simulation::run() {
    stopped_ = false;
    while (!stopped_ && dispatch_next(std::numeric_limits<double>::infinity())) {
    }
}

bool Simulation::run_until(double horizon) {
    if (horizon < now_) {
        throw std::invalid_argument("Simulation::run_until: horizon in the past");
    }
    stopped_ = false;
    while (!stopped_ && dispatch_next(horizon)) {
    }
    if (!stopped_) {
        now_ = horizon;
    }
    return !stopped_;
}

}  // namespace gprsim::des
