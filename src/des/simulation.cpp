#include "des/simulation.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

namespace gprsim::des {

EventHandle Simulation::schedule(double delay, EventCallback callback) {
    if (delay < 0.0) {
        throw std::invalid_argument("Simulation::schedule: negative delay");
    }
    return schedule_at(now_ + delay, std::move(callback));
}

EventHandle Simulation::schedule_at(double time, EventCallback callback) {
    if (time < now_) {
        throw std::invalid_argument("Simulation::schedule_at: time in the past");
    }
    if (!callback) {
        throw std::invalid_argument("Simulation::schedule_at: empty callback");
    }
    const std::uint64_t id = next_id_++;
    heap_.push(Entry{time, next_sequence_++, id, std::move(callback)});
    pending_.insert(id);
    return EventHandle(id);
}

bool Simulation::cancel(EventHandle handle) {
    if (!handle.valid() || pending_.erase(handle.id_) == 0) {
        // Invalid, already fired, or already cancelled: a stale id must not
        // enter the lazy-deletion set, where it would never be popped and
        // would corrupt the pending count forever.
        return false;
    }
    // Lazy deletion: remember the pending id; its entry is dropped when it
    // reaches the top of the heap.
    cancelled_.insert(handle.id_);
    return true;
}

bool Simulation::dispatch_next(double horizon) {
    while (!heap_.empty()) {
        const Entry& top = heap_.top();
        if (top.time > horizon) {
            return false;
        }
        if (cancelled_.erase(top.id) > 0) {
            heap_.pop();
            continue;
        }
        Entry entry = std::move(const_cast<Entry&>(top));
        heap_.pop();
        now_ = entry.time;
        // Un-track before the callback so a self-cancel observes "fired".
        pending_.erase(entry.id);
        ++executed_;
        entry.callback();
        return true;
    }
    return false;
}

void Simulation::run() {
    stopped_ = false;
    while (!stopped_ && dispatch_next(std::numeric_limits<double>::infinity())) {
    }
}

bool Simulation::run_until(double horizon) {
    if (horizon < now_) {
        throw std::invalid_argument("Simulation::run_until: horizon in the past");
    }
    stopped_ = false;
    while (!stopped_ && dispatch_next(horizon)) {
    }
    if (!stopped_) {
        now_ = horizon;
    }
    return !stopped_;
}

}  // namespace gprsim::des
