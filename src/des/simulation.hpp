// Discrete-event simulation engine (replacement for the commercial CSIM
// library the paper used).
//
// A Simulation owns a virtual clock and an event calendar. Callbacks are
// scheduled at absolute or relative times and executed in time order;
// simultaneous events fire in scheduling order (stable FIFO tie-break).
// Handles permit O(1) cancellation (dwell timers, TCP retransmission timers).
//
// Event core (see calendar_queue.hpp / event_arena.hpp / callback.hpp):
//   * the calendar is a width-adaptive calendar queue (amortized O(1)
//     schedule/fire against the former binary heap's O(log n) sifts),
//   * callbacks live in pool-allocated arena slots addressed by index —
//     no per-event heap traffic — and EventHandle carries the slot's
//     generation, so cancellation is an O(1) slot flag and a stale handle
//     (fired, cancelled, or recycled slot) is a detectable no-op,
//   * callbacks are fixed-capacity inline EventCallbacks, not heap-backed
//     std::functions.
// Determinism contract: the pop order is exactly ascending (time, global
// schedule sequence) — identical to the previous heap implementation, so
// simulation trajectories are unchanged.
#pragma once

#include <cstdint>

#include "des/calendar_queue.hpp"
#include "des/callback.hpp"
#include "des/event_arena.hpp"

namespace gprsim::des {

/// Token identifying a scheduled event; default-constructed handles are
/// invalid. Cancelling an already-fired handle is a harmless no-op: the
/// handle names (slot, generation), and the generation went stale when the
/// event fired, was cancelled, or its slot was recycled.
class EventHandle {
public:
    EventHandle() = default;
    bool valid() const { return generation_ != 0; }

private:
    friend class Simulation;
    EventHandle(std::uint32_t index, std::uint32_t generation)
        : index_(index), generation_(generation) {}
    std::uint32_t index_ = 0;
    std::uint32_t generation_ = 0;
};

class Simulation {
public:
    /// Current simulation time in seconds.
    double now() const { return now_; }

    /// Schedules `callback` to run `delay` seconds from now (delay >= 0).
    EventHandle schedule(double delay, EventCallback callback);
    /// Schedules `callback` at absolute time `time` (>= now()).
    EventHandle schedule_at(double time, EventCallback callback);

    /// Cancels a pending event. Returns true when the event was pending;
    /// cancelling an invalid, already-fired, or already-cancelled handle —
    /// including from inside a running callback, and including a handle
    /// whose slot has since been recycled for a newer event — is a no-op
    /// that returns false and leaves the calendar intact.
    bool cancel(EventHandle handle);

    /// Runs until the calendar is empty or stop() is called.
    void run();
    /// Runs all events with time <= horizon, then advances the clock to
    /// horizon. Returns false when stopped early via stop().
    bool run_until(double horizon);
    /// Stops the run loop after the current callback returns.
    void stop() { stopped_ = true; }

    std::uint64_t events_executed() const { return executed_; }
    std::size_t events_pending() const { return pending_; }

    /// Arena slot high-water mark (concurrently scheduled events, incl.
    /// cancelled entries awaiting reclamation); tests/benches use it to
    /// verify that slot recycling bounds the pool.
    std::size_t arena_slots() const { return arena_.slot_count(); }
    /// Calendar diagnostics: current bucket count of the calendar queue.
    std::size_t calendar_buckets() const { return calendar_.bucket_count(); }

private:
    /// Pops and runs the next event with time <= horizon, reclaiming any
    /// cancelled entries it surfaces first. Returns false if nothing ran.
    bool dispatch_next(double horizon);

    EventArena arena_;
    CalendarQueue calendar_;
    double now_ = 0.0;
    std::uint64_t next_sequence_ = 0;  ///< global FIFO tie-break counter
    std::uint64_t executed_ = 0;
    std::size_t pending_ = 0;  ///< scheduled, not yet fired or cancelled
    bool stopped_ = false;
};

}  // namespace gprsim::des
