// Discrete-event simulation engine (replacement for the commercial CSIM
// library the paper used).
//
// A Simulation owns a virtual clock and an event calendar. Callbacks are
// scheduled at absolute or relative times and executed in time order;
// simultaneous events fire in scheduling order (stable FIFO tie-break).
// Handles permit O(1) cancellation (dwell timers, TCP retransmission timers).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace gprsim::des {

using EventCallback = std::function<void()>;

/// Token identifying a scheduled event; default-constructed handles are
/// invalid. Cancelling an already-fired handle is a harmless no-op.
class EventHandle {
public:
    EventHandle() = default;
    bool valid() const { return id_ != 0; }

private:
    friend class Simulation;
    explicit EventHandle(std::uint64_t id) : id_(id) {}
    std::uint64_t id_ = 0;
};

class Simulation {
public:
    /// Current simulation time in seconds.
    double now() const { return now_; }

    /// Schedules `callback` to run `delay` seconds from now (delay >= 0).
    EventHandle schedule(double delay, EventCallback callback);
    /// Schedules `callback` at absolute time `time` (>= now()).
    EventHandle schedule_at(double time, EventCallback callback);

    /// Cancels a pending event. Returns true when the event was pending;
    /// cancelling an invalid, already-fired, or already-cancelled handle —
    /// including from inside a running callback — is a no-op that returns
    /// false and leaves the calendar intact.
    bool cancel(EventHandle handle);

    /// Runs until the calendar is empty or stop() is called.
    void run();
    /// Runs all events with time <= horizon, then advances the clock to
    /// horizon. Returns false when stopped early via stop().
    bool run_until(double horizon);
    /// Stops the run loop after the current callback returns.
    void stop() { stopped_ = true; }

    std::uint64_t events_executed() const { return executed_; }
    std::size_t events_pending() const { return pending_.size(); }

private:
    struct Entry {
        double time;
        std::uint64_t sequence;  // FIFO tie-break for equal times
        std::uint64_t id;
        EventCallback callback;

        bool operator>(const Entry& other) const {
            if (time != other.time) {
                return time > other.time;
            }
            return sequence > other.sequence;
        }
    };

    /// Pops and runs the next event; assumes the heap is non-empty after
    /// cancelled entries are skipped. Returns false if nothing runnable.
    bool dispatch_next(double horizon);

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    /// Ids scheduled but not yet fired or cancelled. Membership is what
    /// makes cancel() of a stale handle a detectable no-op instead of
    /// poisoning the lazy-deletion set with an id that never pops.
    std::unordered_set<std::uint64_t> pending_;
    /// Pending ids whose heap entries must be dropped when popped (lazy
    /// deletion); always a subset of ids still in the heap.
    std::unordered_set<std::uint64_t> cancelled_;
    double now_ = 0.0;
    std::uint64_t next_sequence_ = 0;
    std::uint64_t next_id_ = 1;
    std::uint64_t executed_ = 0;
    bool stopped_ = false;
};

}  // namespace gprsim::des
