#include "des/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gprsim::des {

void Welford::add(double value) {
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

double Welford::variance() const {
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

TimeWeighted::TimeWeighted(double start_time, double initial_value)
    : window_start_(start_time), last_time_(start_time), value_(initial_value) {}

void TimeWeighted::update(double time, double value) {
    if (time < last_time_) {
        throw std::invalid_argument("TimeWeighted::update: time went backwards");
    }
    integral_ += value_ * (time - last_time_);
    last_time_ = time;
    value_ = value;
}

double TimeWeighted::mean(double time) const {
    const double span = time - window_start_;
    if (span <= 0.0) {
        return value_;
    }
    const double integral = integral_ + value_ * (time - last_time_);
    return integral / span;
}

double TimeWeighted::restart(double time) {
    const double m = mean(time);
    integral_ = 0.0;
    window_start_ = time;
    last_time_ = time;
    return m;
}

double student_t_quantile(int dof, double confidence) {
    if (dof < 1) {
        throw std::invalid_argument("student_t_quantile: dof must be >= 1");
    }
    // Two-sided 95% and 99% tables (plus 90%) for dof 1..30; beyond that the
    // normal quantile is accurate to three digits.
    static constexpr double t95[] = {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
                                     2.306,  2.262, 2.228, 2.201, 2.179, 2.160, 2.145,
                                     2.131,  2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
                                     2.074,  2.069, 2.064, 2.060, 2.056, 2.052, 2.048,
                                     2.045,  2.042};
    static constexpr double t99[] = {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499,
                                     3.355,  3.250, 3.169, 3.106, 3.055, 3.012, 2.977,
                                     2.947,  2.921, 2.898, 2.878, 2.861, 2.845, 2.831,
                                     2.819,  2.807, 2.797, 2.787, 2.779, 2.771, 2.763,
                                     2.756,  2.750};
    static constexpr double t90[] = {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895,
                                     1.860, 1.833, 1.812, 1.796, 1.782, 1.771, 1.761,
                                     1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721,
                                     1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701,
                                     1.699, 1.697};
    const auto lookup = [&](const double* table, double asymptote) {
        return dof <= 30 ? table[dof - 1] : asymptote;
    };
    if (confidence == 0.95) {
        return lookup(t95, 1.960);
    }
    if (confidence == 0.99) {
        return lookup(t99, 2.576);
    }
    if (confidence == 0.90) {
        return lookup(t90, 1.645);
    }
    throw std::invalid_argument("student_t_quantile: supported confidences are 0.90/0.95/0.99");
}

void BatchMeans::add_batch(double batch_mean) { stats_.add(batch_mean); }

double BatchMeans::half_width(double confidence) const {
    const int n = count();
    if (n < 2) {
        return 0.0;
    }
    const double t = student_t_quantile(n - 1, confidence);
    return t * stats_.stddev() / std::sqrt(static_cast<double>(n));
}

bool BatchMeans::covers(double value, double confidence) const {
    return value >= lower(confidence) && value <= upper(confidence);
}

}  // namespace gprsim::des
