// Output analysis: running moments, time-weighted averages, and the
// batch-means confidence intervals the paper uses (95%, Student-t).
#pragma once

#include <cstdint>
#include <vector>

namespace gprsim::des {

/// Numerically stable running mean/variance (Welford).
class Welford {
public:
    void add(double value);
    std::uint64_t count() const { return count_; }
    double mean() const { return mean_; }
    /// Unbiased sample variance; 0 for fewer than two samples.
    double variance() const;
    double stddev() const;

private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/// Time average of a piecewise-constant signal (queue length, busy PDCHs).
class TimeWeighted {
public:
    explicit TimeWeighted(double start_time = 0.0, double initial_value = 0.0);

    /// Records that the signal takes `value` from time `time` on.
    void update(double time, double value);
    /// Time average over [window start, time].
    double mean(double time) const;
    /// Closes the current window at `time` and starts a new one (batching).
    /// Returns the mean of the closed window.
    double restart(double time);
    double current_value() const { return value_; }

private:
    double window_start_;
    double last_time_;
    double value_;
    double integral_ = 0.0;
};

/// Two-sided Student-t quantile t_{dof, (1+confidence)/2}; confidence in
/// {0.90, 0.95, 0.99} is tabulated exactly, others interpolated normally.
double student_t_quantile(int dof, double confidence);

/// Aggregates per-batch means into a point estimate with a confidence
/// interval — the paper computes its simulator confidence intervals with
/// exactly this batch-means method.
class BatchMeans {
public:
    void add_batch(double batch_mean);
    int count() const { return static_cast<int>(stats_.count()); }
    double mean() const { return stats_.mean(); }
    /// Half width of the confidence interval; 0 with fewer than 2 batches.
    double half_width(double confidence = 0.95) const;
    double lower(double confidence = 0.95) const { return mean() - half_width(confidence); }
    double upper(double confidence = 0.95) const { return mean() + half_width(confidence); }
    /// True when a value lies inside the interval (used by validation).
    bool covers(double value, double confidence = 0.95) const;

private:
    Welford stats_;
};

/// Pools one point estimate per independent replication into a
/// replication-level confidence interval (the classic independent-
/// replications method). The interval math is the same Student-t
/// construction as BatchMeans, but the samples here are means of whole
/// replications run on disjoint random substreams, so — unlike batches cut
/// from one long run — they are independent by construction and the CI
/// width shrinks like 1/sqrt(replications) without batch-size caveats.
class ReplicationStats {
public:
    void add_replication(double replication_mean) { means_.add_batch(replication_mean); }
    int replications() const { return means_.count(); }
    double mean() const { return means_.mean(); }
    /// Half width of the CI; 0 with fewer than 2 replications.
    double half_width(double confidence = 0.95) const {
        return means_.half_width(confidence);
    }
    double lower(double confidence = 0.95) const { return means_.lower(confidence); }
    double upper(double confidence = 0.95) const { return means_.upper(confidence); }
    bool covers(double value, double confidence = 0.95) const {
        return means_.covers(value, confidence);
    }

private:
    BatchMeans means_;
};

}  // namespace gprsim::des
