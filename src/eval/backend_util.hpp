// Shared scaffolding of the built-in backend implementations: the guarded
// evaluate fence, grid validation, the per-query probe/error-slot protocol
// of the batch planners, and the wave-poisoning marker. Internal to
// src/eval/ — the public surface is evaluator.hpp/backends.hpp.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "eval/batch.hpp"
#include "eval/evaluator.hpp"

namespace gprsim::eval::detail {

/// Scope timer filling PointEvaluation::wall_seconds.
class WallClock {
public:
    WallClock() : start_(std::chrono::steady_clock::now()) {}
    double seconds() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

/// Positive-and-ascending check shared by every grid entry point; grids
/// come from campaign specs (already validated) and from raw API callers
/// (not validated at all).
inline common::Status check_grid(std::span<const double> rates) {
    for (std::size_t i = 0; i < rates.size(); ++i) {
        if (!(rates[i] > 0.0)) {
            return common::EvalError{common::EvalErrorCode::invalid_query,
                                     "grid rates must be positive"};
        }
        if (i > 0 && rates[i] <= rates[i - 1]) {
            return common::EvalError{common::EvalErrorCode::invalid_query,
                                     "grid rates must be strictly ascending"};
        }
    }
    return common::ok_status();
}

/// A plan whose every query slot reports the same batch-level error (bad
/// rate grid): no tasks, constant collect.
inline GridPlan failed_plan(std::size_t num_queries, common::EvalError error) {
    GridPlan plan;
    plan.collect = [num_queries, error = std::move(error)] {
        std::vector<GridOutcome> outcomes;
        outcomes.reserve(num_queries);
        for (std::size_t q = 0; q < num_queries; ++q) {
            outcomes.push_back(error);
        }
        return outcomes;
    };
    return plan;
}

/// Shared per-query scaffolding of the batch planners: sizes each query's
/// error-slot vector to the grid and probe-validates the query against the
/// grid's first rate. planned[q] says whether query q gets tasks; a
/// failing probe's typed error lands in errors[q][0] and poisons nothing
/// else.
inline std::vector<bool> probe_queries(
    std::span<const ScenarioQuery> queries, std::span<const double> rates,
    std::vector<std::vector<std::unique_ptr<common::EvalError>>>& errors) {
    std::vector<bool> planned(queries.size(), false);
    for (std::size_t q = 0; q < queries.size(); ++q) {
        errors[q].resize(rates.size());
        if (rates.empty()) {
            continue;
        }
        ScenarioQuery probe = queries[q];
        probe.call_arrival_rate = rates.front();
        if (common::Status v = probe.validated(); !v.ok()) {
            errors[q][0] = std::make_unique<common::EvalError>(v.error());
            continue;
        }
        planned[q] = true;
    }
    return planned;
}

/// First recorded error of one query's grid, in grid order — the error its
/// GridOutcome reports (nullptr = the grid succeeded). Keeping the
/// selection in one place keeps the ordering contract identical across
/// backends.
inline const common::EvalError* first_error(
    const std::vector<std::unique_ptr<common::EvalError>>& errors) {
    for (const auto& error : errors) {
        if (error) {
            return error.get();
        }
    }
    return nullptr;
}

/// Lowers the "failure at wave w" marker; tasks of LATER waves skip (their
/// warm-start parent chain is broken), same-wave tasks still run — so the
/// set of recorded errors, and hence the error collect() reports, is
/// identical at every thread count.
inline void poison(std::atomic<long long>& poisoned_wave, long long wave) {
    long long current = poisoned_wave.load(std::memory_order_relaxed);
    while (wave < current &&
           !poisoned_wave.compare_exchange_weak(current, wave,
                                                std::memory_order_acq_rel)) {
    }
}

/// Executes a single backend's plan on options.pool and collects it — the
/// shape of the single-backend evaluate_grids overrides (the multi-backend
/// merge lives in eval::evaluate_campaign).
inline std::vector<GridOutcome> execute_single_plan(GridPlan plan,
                                                    const GridOptions& options) {
    execute_plans(std::span<GridPlan>(&plan, 1), options);
    return plan.collect();
}

/// Uncaught-exception fence: every backend body runs inside this so the
/// "no exception crosses the eval boundary" contract survives bugs in the
/// layers below (and bad_alloc on huge chains).
template <typename F>
common::Result<PointEvaluation> guarded(const ScenarioQuery& query, F&& body) {
    if (common::Status v = query.validated(); !v.ok()) {
        return v.error();
    }
    try {
        return body();
    } catch (const std::exception& e) {
        return common::EvalError{
            common::EvalErrorCode::internal,
            std::string(e.what()) + " [" +
                scenario_context(query.parameters, query.call_arrival_rate) + "]"};
    }
}

}  // namespace gprsim::eval::detail
