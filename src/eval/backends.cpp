#include "eval/backends.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <climits>
#include <cmath>
#include <memory>
#include <mutex>
#include <numeric>
#include <utility>

#include "core/handover.hpp"
#include "core/initial_guess.hpp"
#include "core/model.hpp"
#include "eval/backend_util.hpp"
#include "eval/batch.hpp"
#include "queueing/mm1k.hpp"
#include "sim/experiment.hpp"

namespace gprsim::eval {

SolveSchedule bisection_schedule(std::size_t count, bool warm_start) {
    SolveSchedule schedule;
    schedule.parent.assign(count, -1);
    if (count == 0) {
        return schedule;
    }
    if (!warm_start) {
        // Cold start: no dependencies, every point in one maximal wave.
        std::vector<int> all(count);
        std::iota(all.begin(), all.end(), 0);
        schedule.levels.push_back(std::move(all));
        return schedule;
    }
    schedule.levels.push_back({0});
    if (count == 1) {
        return schedule;
    }
    const int last = static_cast<int>(count) - 1;
    schedule.parent[static_cast<std::size_t>(last)] = 0;
    schedule.levels.push_back({last});
    std::vector<std::pair<int, int>> segments{{0, last}};
    while (!segments.empty()) {
        std::vector<int> level;
        std::vector<std::pair<int, int>> next;
        for (const auto& [a, b] : segments) {
            if (b - a <= 1) {
                continue;
            }
            const int mid = a + (b - a) / 2;
            // Nearest solved endpoint: the floor midpoint is never closer
            // to b, so the lower endpoint always wins ("ties down").
            schedule.parent[static_cast<std::size_t>(mid)] = a;
            level.push_back(mid);
            next.emplace_back(a, mid);
            next.emplace_back(mid, b);
        }
        if (!level.empty()) {
            schedule.levels.push_back(std::move(level));
        }
        segments = std::move(next);
    }
    return schedule;
}

namespace {

using common::EvalError;
using common::EvalErrorCode;
// Grid scaffolding shared with the large-population backends
// (eval/backend_util.hpp); only the warm-start cache stays local.
using detail::WallClock;
using detail::check_grid;
using detail::execute_single_plan;
using detail::failed_plan;
using detail::first_error;
using detail::guarded;
using detail::poison;
using detail::probe_queries;

/// Deviation vectors (solved distribution / own product form, elementwise)
/// awaiting their warm-start dependents, one slot per grid index. A slot is
/// only populated when the schedule has at least one dependent for it, each
/// dependent copies the vector exactly once (claim), and the claim that
/// consumes the last reference frees the slot — so peak memory follows the
/// bisection frontier, not the grid. Thread-safety: stores and claims of
/// one slot never overlap (the wave barrier separates a point's solve from
/// its children's solves); claims of one slot from several same-wave
/// children only race on the atomic reference count, and every copy is
/// sequenced before its own decrement.
class WarmStartCache {
public:
    WarmStartCache(std::size_t grid, const std::vector<int>& parent)
        : slots_(grid), remaining_(grid), children_(grid, 0) {
        for (const int p : parent) {
            if (p >= 0) {
                ++children_[static_cast<std::size_t>(p)];
            }
        }
        for (std::size_t i = 0; i < grid; ++i) {
            remaining_[i].store(children_[i], std::memory_order_relaxed);
        }
    }

    /// Whether the schedule has any dependent for this grid index (callers
    /// skip building the deviation vector otherwise).
    bool has_dependents(std::size_t index) const { return children_[index] > 0; }

    /// Keeps the deviation vector iff some later point claims it.
    void store(std::size_t index, std::vector<double> deviation) {
        if (children_[index] > 0) {
            slots_[index] = std::move(deviation);
        }
    }

    /// Returns the parent's deviation and releases one claim. A count of 1
    /// means every other claimant has already decremented, so this claimant
    /// owns the slot exclusively and can move the vector out instead of
    /// copying (a ~2x peak-memory saving on multi-million-state chains).
    std::vector<double> claim(std::size_t parent_index) {
        if (remaining_[parent_index].load(std::memory_order_acquire) == 1) {
            std::vector<double> last = std::move(slots_[parent_index]);
            remaining_[parent_index].store(0, std::memory_order_release);
            return last;
        }
        std::vector<double> copy = slots_[parent_index];
        if (remaining_[parent_index].fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::vector<double>().swap(slots_[parent_index]);
        }
        return copy;
    }

private:
    std::vector<std::vector<double>> slots_;
    std::vector<std::atomic<int>> remaining_;
    std::vector<int> children_;  ///< dependents per grid index
};

// --- erlang ---------------------------------------------------------------

class ErlangEvaluator final : public Evaluator {
public:
    const std::string& name() const override {
        static const std::string n = "erlang";
        return n;
    }
    const std::string& description() const override {
        static const std::string d =
            "closed-form Erlang populations and blocking (Eq. 2-7); no chain solve, "
            "data-plane measures stay zero";
        return d;
    }

    common::Result<PointEvaluation> evaluate(const ScenarioQuery& query) override {
        return guarded(query, [&]() -> common::Result<PointEvaluation> {
            const WallClock clock;
            const core::Parameters p = query.resolved_parameters();
            PointEvaluation point;
            point.backend = name();
            point.call_arrival_rate = query.call_arrival_rate;
            point.measures = core::closed_form_measures(p, core::balance_handover(p));
            point.wall_seconds = clock.seconds();
            return point;
        });
    }
};

// --- ctmc -----------------------------------------------------------------

class CtmcEvaluator final : public Evaluator {
public:
    const std::string& name() const override {
        static const std::string n = "ctmc";
        return n;
    }
    const std::string& description() const override {
        static const std::string d =
            "stationary solve of the full Markov chain (Table 1) with product-form "
            "warm starts; exact model measures";
        return d;
    }

    common::Result<PointEvaluation> evaluate(const ScenarioQuery& query) override {
        return guarded(query, [&]() -> common::Result<PointEvaluation> {
            const core::Parameters p = query.resolved_parameters();
            core::GprsModel model(p);
            ctmc::SolveOptions solve;
            solve.tolerance = query.solver.tolerance;
            solve.max_iterations = query.solver.max_iterations;
            // validated() (via guarded) already vetted the spelling.
            solve.method = *ctmc::method_from_name(query.solver.method);
            auto solved = model.try_solve(solve, ctmc::default_engine());
            if (!solved.ok()) {
                return solved.error();
            }
            const ctmc::SolveResult& result = solved.value().get();
            PointEvaluation point;
            point.backend = name();
            point.call_arrival_rate = query.call_arrival_rate;
            point.measures = core::compute_measures(p, model.balanced(), model.space(),
                                                    result.distribution);
            point.iterations = static_cast<long long>(result.iterations);
            point.residual = result.residual;
            point.solver_method = ctmc::method_name(result.method_used);
            point.solver_reason = result.reason;
            point.wall_seconds = result.seconds;
            return point;
        });
    }

    /// Single-grid evaluation is the one-query batch: same schedule, same
    /// candidates, same first-error-in-grid-order result.
    common::Result<std::vector<PointEvaluation>> evaluate_grid(
        const ScenarioQuery& base, std::span<const double> rates,
        const GridOptions& options) override {
        std::vector<GridOutcome> outcomes =
            evaluate_grids(std::span<const ScenarioQuery>(&base, 1), rates, options);
        return std::move(outcomes.front());
    }

    std::vector<GridOutcome> evaluate_grids(std::span<const ScenarioQuery> queries,
                                            std::span<const double> rates,
                                            const GridOptions& options) override {
        return execute_single_plan(plan_grids(queries, rates, options), options);
    }

    /// Grid planning with the deterministic bisection warm-start transfer:
    /// the solved/product-form deviation of each parent point is grafted
    /// onto its dependents' product form and offered to the engine as a
    /// competing initial (adopted only when it undercuts HALF the product
    /// form's initial residual — near-ties mispredict the iteration
    /// count). Per-point solves run single-threaded (the points are the
    /// parallelism); every query shares one wave structure (the schedule
    /// depends only on the grid size), so level-L points of ALL queries
    /// carry wave L and solve concurrently under the executor. Output is
    /// bitwise invariant to num_threads and to merging.
    GridPlan plan_grids(std::span<const ScenarioQuery> queries,
                        std::span<const double> rates,
                        const GridOptions& options) override {
        if (common::Status g = check_grid(rates); !g.ok()) {
            return failed_plan(queries.size(), g.error());
        }

        struct State {
            std::vector<ScenarioQuery> base;                     ///< per query
            std::vector<std::vector<PointEvaluation>> points;    ///< [q][i]
            std::vector<std::vector<std::unique_ptr<EvalError>>> errors;
            std::vector<std::unique_ptr<WarmStartCache>> caches;
            /// Wave of query q's first failure; later-wave tasks of q skip.
            std::vector<std::atomic<long long>> poisoned;
            std::vector<double> rates;
            SolveSchedule schedule;
            std::mutex progress_mutex;
        };
        const std::size_t nq = queries.size();
        const std::size_t n = rates.size();
        auto state = std::make_shared<State>();
        state->base.assign(queries.begin(), queries.end());
        state->points.assign(nq, std::vector<PointEvaluation>(n));
        state->errors.resize(nq);
        state->rates.assign(rates.begin(), rates.end());
        state->schedule = bisection_schedule(n, options.warm_start);
        std::vector<std::atomic<long long>> poisoned(nq);
        state->poisoned = std::move(poisoned);
        for (std::size_t q = 0; q < nq; ++q) {
            state->poisoned[q].store(LLONG_MAX, std::memory_order_relaxed);
        }
        // A failing probe only disables ITS query; no tasks are emitted
        // for it and the other slots plan normally.
        const std::vector<bool> planned = probe_queries(queries, rates, state->errors);
        state->caches.resize(nq);
        for (std::size_t q = 0; q < nq; ++q) {
            if (planned[q]) {
                state->caches[q] =
                    std::make_unique<WarmStartCache>(n, state->schedule.parent);
            }
        }

        const auto solve_point = [this, state, progress = options.progress](
                                     std::size_t q, int index, std::size_t wave) {
            if (state->poisoned[q].load(std::memory_order_acquire) <
                static_cast<long long>(wave)) {
                return;  // a parent wave of this query already failed
            }
            const ScenarioQuery& base = state->base[q];
            WarmStartCache& cache = *state->caches[q];
            try {
                core::Parameters p = base.parameters;
                p.call_arrival_rate = state->rates[static_cast<std::size_t>(index)];
                core::GprsModel model(p);
                const std::vector<double> product =
                    core::product_form_initial(p, model.balanced(), model.space());
                ctmc::SolveOptions solve;
                solve.tolerance = base.solver.tolerance;
                solve.max_iterations = base.solver.max_iterations;
                // Probed by validated(); "auto" resolves per point, and at
                // width 1 the decision depends only on the state count, so
                // provenance is identical at every executor thread count.
                solve.method = *ctmc::method_from_name(base.solver.method);
                solve.num_threads = 1;  // the points are the parallelism
                const int parent =
                    state->schedule.parent[static_cast<std::size_t>(index)];
                if (parent >= 0) {
                    // Candidate 0 (preferred): the plain product form;
                    // candidate 1: the target's product form carrying the
                    // parent's deviation.
                    std::vector<double> transferred =
                        cache.claim(static_cast<std::size_t>(parent));
                    for (std::size_t s = 0; s < transferred.size(); ++s) {
                        transferred[s] *= product[s];
                    }
                    solve.initial_candidates.push_back(product);
                    solve.initial_candidates.push_back(std::move(transferred));
                    solve.candidate_margin = 0.5;
                }
                auto solved = model.try_solve(solve, ctmc::default_engine());
                if (!solved.ok()) {
                    state->errors[q][static_cast<std::size_t>(index)] =
                        std::make_unique<EvalError>(solved.error());
                    poison(state->poisoned[q], static_cast<long long>(wave));
                    return;
                }
                const ctmc::SolveResult& result = solved.value().get();
                if (cache.has_dependents(static_cast<std::size_t>(index))) {
                    std::vector<double> deviation(result.distribution.size());
                    for (std::size_t s = 0; s < deviation.size(); ++s) {
                        deviation[s] = product[s] > 0.0
                                           ? result.distribution[s] / product[s]
                                           : 0.0;
                    }
                    cache.store(static_cast<std::size_t>(index), std::move(deviation));
                }
                PointEvaluation& point =
                    state->points[q][static_cast<std::size_t>(index)];
                point.backend = name();
                point.call_arrival_rate =
                    state->rates[static_cast<std::size_t>(index)];
                point.measures = core::compute_measures(p, model.balanced(),
                                                        model.space(),
                                                        result.distribution);
                point.iterations = static_cast<long long>(result.iterations);
                point.residual = result.residual;
                point.solver_method = ctmc::method_name(result.method_used);
                point.solver_reason = result.reason;
                point.warm_parent = parent;
                point.warm_started = result.initial_selected == 1;
                point.wall_seconds = result.seconds;
                if (progress) {
                    std::lock_guard<std::mutex> lock(state->progress_mutex);
                    progress(q * state->rates.size() +
                                 static_cast<std::size_t>(index),
                             point);
                }
            } catch (const std::exception& e) {
                state->errors[q][static_cast<std::size_t>(index)] =
                    std::make_unique<EvalError>(EvalError{
                        EvalErrorCode::internal,
                        std::string(e.what()) + " [" +
                            scenario_context(
                                base.parameters,
                                state->rates[static_cast<std::size_t>(index)]) +
                            "]"});
                poison(state->poisoned[q], static_cast<long long>(wave));
            }
        };

        GridPlan plan;
        for (std::size_t level = 0; level < state->schedule.levels.size(); ++level) {
            for (std::size_t q = 0; q < nq; ++q) {
                if (!planned[q]) {
                    continue;
                }
                for (const int index : state->schedule.levels[level]) {
                    plan.tasks.push_back(
                        {level, [solve_point, q, index, level] {
                             solve_point(q, index, level);
                         }});
                }
            }
        }
        plan.collect = [state, nq] {
            std::vector<GridOutcome> outcomes;
            outcomes.reserve(nq);
            for (std::size_t q = 0; q < nq; ++q) {
                if (const EvalError* failed = first_error(state->errors[q])) {
                    outcomes.push_back(*failed);
                } else {
                    outcomes.push_back(std::move(state->points[q]));
                }
            }
            return outcomes;
        };
        plan.waves = plan.tasks.empty() ? 0 : state->schedule.levels.size();
        plan.sequential_waves = state->schedule.levels.size() *
                                static_cast<std::size_t>(
                                    std::count(planned.begin(), planned.end(), true));
        return plan;
    }
};

// --- des ------------------------------------------------------------------

/// Pooled simulator means mapped onto the model's measure vocabulary, so
/// generic consumers can compare backends field by field.
core::Measures measures_from_sim(const sim::ExperimentResults& r,
                                 const core::Parameters& p) {
    core::Measures m;
    m.carried_data_traffic = r.carried_data_traffic.mean;
    m.packet_loss_probability = r.packet_loss_probability.mean;
    m.queueing_delay = r.queueing_delay.mean;
    m.throughput_per_user_kbps = r.throughput_per_user_kbps.mean;
    m.mean_queue_length = r.mean_queue_length.mean;
    m.carried_voice_traffic = r.carried_voice_traffic.mean;
    m.average_gprs_sessions = r.average_gprs_sessions.mean;
    m.gsm_blocking = r.gsm_blocking.mean;
    m.gprs_blocking = r.gprs_blocking.mean;
    m.data_throughput_kbps =
        m.carried_data_traffic * p.pdch_rate_kbps * (1.0 - p.block_error_rate);
    return m;
}

class DesEvaluator final : public Evaluator {
public:
    const std::string& name() const override {
        static const std::string n = "des";
        return n;
    }
    const std::string& description() const override {
        static const std::string d =
            "replications of the detailed network simulator, pooled into 95% "
            "confidence intervals (measures are replication means)";
        return d;
    }

    common::Result<PointEvaluation> evaluate(const ScenarioQuery& query) override {
        return guarded(query, [&]() -> common::Result<PointEvaluation> {
            const WallClock clock;
            const sim::ExperimentConfig experiment = experiment_config(query);
            const int replications = experiment.replications;
            std::vector<sim::SimulationResults> runs(
                static_cast<std::size_t>(replications));
            for (int rep = 0; rep < replications; ++rep) {
                const sim::SimulationConfig config = sim::replication_config(
                    experiment, static_cast<std::uint64_t>(rep));
                runs[static_cast<std::size_t>(rep)] = sim::NetworkSimulator(config).run();
            }
            PointEvaluation point =
                pooled_point(query, std::move(runs), /*threads_used=*/1);
            point.sim.wall_seconds = clock.seconds();
            point.wall_seconds = clock.seconds();
            return point;
        });
    }

    /// Single-grid evaluation is the one-query batch.
    common::Result<std::vector<PointEvaluation>> evaluate_grid(
        const ScenarioQuery& base, std::span<const double> rates,
        const GridOptions& options) override {
        std::vector<GridOutcome> outcomes =
            evaluate_grids(std::span<const ScenarioQuery>(&base, 1), rates, options);
        return std::move(outcomes.front());
    }

    std::vector<GridOutcome> evaluate_grids(std::span<const ScenarioQuery> queries,
                                            std::span<const double> rates,
                                            const GridOptions& options) override {
        return execute_single_plan(plan_grids(queries, rates, options), options);
    }

    /// Grid planning with the experiment engine's substream discipline:
    /// replication r of query q's grid point i always draws from substream
    /// block (grid_offset + q * rates.size() + i) * stride + r of that
    /// query's experiment seed, where stride is the LARGEST replication
    /// count in the batch — so streams stay disjoint even when queries
    /// sharing one seed ask for different replication budgets (with a
    /// uniform budget the stride equals R and blocks match the historic
    /// single-grid formula exactly). Every (query, point, replication) is
    /// its own wave-0 task — replications have no dependencies, so under a
    /// merged campaign they backfill whatever solver threads the iterative
    /// backends' narrow waves leave idle. Pooling runs serially in (query,
    /// point, replication) order inside collect, so output is bitwise
    /// invariant to num_threads and to merging.
    GridPlan plan_grids(std::span<const ScenarioQuery> queries,
                        std::span<const double> rates,
                        const GridOptions& options) override {
        if (common::Status g = check_grid(rates); !g.ok()) {
            return failed_plan(queries.size(), g.error());
        }

        struct State {
            std::vector<ScenarioQuery> base;  ///< per query
            /// runs[q][i][rep], written by disjoint tasks.
            std::vector<std::vector<std::vector<sim::SimulationResults>>> runs;
            /// First error of each (q, i); several replications of one
            /// point can fail concurrently, so the slot is mutex-guarded.
            std::vector<std::vector<std::unique_ptr<EvalError>>> errors;
            std::mutex error_mutex;
            std::vector<double> rates;
        };
        const std::size_t nq = queries.size();
        const std::size_t n = rates.size();
        auto state = std::make_shared<State>();
        state->base.assign(queries.begin(), queries.end());
        state->runs.resize(nq);
        state->errors.resize(nq);
        state->rates.assign(rates.begin(), rates.end());

        // One plan task: replication `rep` of query q's point `index` on
        // substream block `block`. Never throws.
        const auto run_replication = [this, state](std::size_t q, std::size_t index,
                                                   int rep, std::uint64_t block) {
            try {
                ScenarioQuery query = state->base[q];
                query.call_arrival_rate = state->rates[index];
                const sim::ExperimentConfig experiment = experiment_config(query);
                const sim::SimulationConfig config =
                    sim::replication_config(experiment, block);
                state->runs[q][index][static_cast<std::size_t>(rep)] =
                    sim::NetworkSimulator(config).run();
            } catch (const std::exception& e) {
                std::lock_guard<std::mutex> lock(state->error_mutex);
                if (!state->errors[q][index]) {
                    state->errors[q][index] = std::make_unique<EvalError>(EvalError{
                        EvalErrorCode::internal,
                        std::string(e.what()) + " [" +
                            scenario_context(state->base[q].parameters,
                                             state->rates[index]) +
                            "]"});
                }
            }
        };

        GridPlan plan;
        const std::vector<bool> planned = probe_queries(queries, rates, state->errors);
        // Substream stride: the batch's largest replication budget, so
        // blocks of different queries never collide even with unequal
        // budgets (uniform budgets reproduce the historic R stride).
        // Computed over EVERY query — valid or not, clamped at 1 for
        // nonsense budgets — so a query's random draws never depend on
        // whether an unrelated sibling passed validation.
        std::uint64_t stride = 1;
        for (const ScenarioQuery& query : queries) {
            stride = std::max(stride, static_cast<std::uint64_t>(std::max(
                                          1, query.simulation.replications)));
        }
        for (std::size_t q = 0; q < nq; ++q) {
            if (!planned[q]) {
                continue;
            }
            const int replications = queries[q].simulation.replications;
            state->runs[q].assign(n, std::vector<sim::SimulationResults>(
                                         static_cast<std::size_t>(replications)));
            for (std::size_t index = 0; index < n; ++index) {
                for (int rep = 0; rep < replications; ++rep) {
                    const std::uint64_t block =
                        (options.grid_offset +
                         static_cast<std::uint64_t>(q * n + index)) *
                            stride +
                        static_cast<std::uint64_t>(rep);
                    plan.tasks.push_back({0, [run_replication, q, index, rep, block] {
                                              run_replication(q, index, rep, block);
                                          }});
                }
            }
        }

        // threads_used provenance follows the single-grid formula (capped
        // at that query's own task count), so a merged run reports
        // bit-identical points to a sequential per-grid one.
        const int resolved = common::ThreadPool::resolve_thread_count(options.num_threads);
        plan.collect = [this, state, nq, n, resolved] {
            std::vector<GridOutcome> outcomes;
            outcomes.reserve(nq);
            for (std::size_t q = 0; q < nq; ++q) {
                if (const EvalError* failed = first_error(state->errors[q])) {
                    outcomes.push_back(*failed);
                    continue;
                }
                const int width = std::min<int>(
                    resolved,
                    static_cast<int>(n) * state->base[q].simulation.replications);
                // This query's own simulation cost (a merged batch has no
                // meaningful per-backend wall clock), spread evenly over
                // its points like the historic grid/N attribution.
                double query_wall = 0.0;
                for (const auto& point_runs : state->runs[q]) {
                    for (const sim::SimulationResults& run : point_runs) {
                        query_wall += run.wall_seconds;
                    }
                }
                std::vector<PointEvaluation> points;
                points.reserve(n);
                for (std::size_t index = 0; index < n; ++index) {
                    ScenarioQuery query = state->base[q];
                    query.call_arrival_rate = state->rates[index];
                    points.push_back(
                        pooled_point(query, std::move(state->runs[q][index]), width));
                    points.back().wall_seconds =
                        query_wall / static_cast<double>(std::max<std::size_t>(1, n));
                }
                outcomes.push_back(std::move(points));
            }
            return outcomes;
        };
        plan.waves = plan.tasks.empty() ? 0 : 1;
        plan.sequential_waves =
            static_cast<std::size_t>(std::count(planned.begin(), planned.end(), true));
        return plan;
    }

private:
    static sim::ExperimentConfig experiment_config(const ScenarioQuery& query) {
        sim::ExperimentConfig experiment;
        experiment.base.cell = query.resolved_parameters();
        experiment.base.warmup_time = query.simulation.warmup_time;
        experiment.base.batch_count = query.simulation.batch_count;
        experiment.base.batch_duration = query.simulation.batch_duration;
        experiment.base.tcp_enabled = query.simulation.tcp;
        experiment.replications = query.simulation.replications;
        experiment.seed = query.simulation.seed;
        return experiment;
    }

    /// Pools per-replication results (replication order) into the point.
    PointEvaluation pooled_point(const ScenarioQuery& query,
                                 std::vector<sim::SimulationResults> runs,
                                 int threads_used) {
        PointEvaluation point;
        point.backend = name();
        point.call_arrival_rate = query.call_arrival_rate;
        point.sim = sim::pool_replications(std::move(runs));
        point.sim.threads_used = threads_used;
        point.measures = measures_from_sim(point.sim, query.resolved_parameters());
        point.has_confidence = true;
        return point;
    }
};

// --- mm1k-approx ----------------------------------------------------------

class Mm1kApproxEvaluator final : public Evaluator {
public:
    const std::string& name() const override {
        static const std::string n = "mm1k-approx";
        return n;
    }
    const std::string& description() const override {
        static const std::string d =
            "cheap M/M/c/K approximation of the data plane over the Erlang "
            "populations (c = mean free channels); milliseconds per point";
        return d;
    }

    common::Result<PointEvaluation> evaluate(const ScenarioQuery& query) override {
        return guarded(query, [&]() -> common::Result<PointEvaluation> {
            const WallClock clock;
            const core::Parameters p = query.resolved_parameters();
            const core::BalancedTraffic balanced = core::balance_handover(p);
            core::Measures m = core::closed_form_measures(p, balanced);

            // Data plane as M/M/c/K: c PDCHs on average remain after the
            // Erlang-carried voice traffic claims its on-demand channels
            // (never below the reservation, never above N); packets are
            // offered by the mean ON-source population of the aggregated
            // IPP. This decouples the three populations the chain couples
            // exactly — the "cheapest possible" end of the accuracy axis.
            const int servers = std::clamp(
                static_cast<int>(std::lround(static_cast<double>(p.total_channels) -
                                             m.carried_voice_traffic)),
                std::max(p.reserved_pdch, 1), p.total_channels);
            const double on_share = balanced.rates.on_admission_probability();
            const double offered =
                m.average_gprs_sessions * on_share * balanced.rates.packet_rate;
            const double mu = balanced.rates.service_rate;
            const int capacity = std::max(p.buffer_capacity, servers);
            const queueing::FiniteQueueMetrics queue =
                queueing::mmck(offered, mu, servers, capacity);

            m.carried_data_traffic = queue.throughput / mu;
            m.packet_loss_probability = queue.loss_probability;
            m.mean_queue_length = queue.mean_queue_length;
            m.queueing_delay = queue.mean_delay;
            m.offered_packet_rate = offered;
            m.data_throughput_kbps =
                queue.throughput * p.traffic.packet_size_bits / 1000.0;
            m.throughput_per_user_kbps =
                m.average_gprs_sessions > 0.0
                    ? m.data_throughput_kbps / m.average_gprs_sessions
                    : 0.0;

            PointEvaluation point;
            point.backend = name();
            point.call_arrival_rate = query.call_arrival_rate;
            point.measures = m;
            point.wall_seconds = clock.seconds();
            return point;
        });
    }
};

}  // namespace

namespace detail {

void register_builtin_backends(BackendRegistry& registry) {
    const auto add = [&](BackendRegistry::Factory make) {
        const std::unique_ptr<Evaluator> instance = make();
        // Built-in registration cannot collide (it runs once, first).
        (void)registry.add(instance->name(), instance->description(), std::move(make));
    };
    add([] { return std::make_unique<ErlangEvaluator>(); });
    add([] { return std::make_unique<CtmcEvaluator>(); });
    add([] { return std::make_unique<DesEvaluator>(); });
    add([] { return std::make_unique<Mm1kApproxEvaluator>(); });
    register_large_population_backends(registry);
    register_network_backends(registry);
}

}  // namespace detail

}  // namespace gprsim::eval
