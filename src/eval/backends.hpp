// Built-in evaluation backends and the grid-scheduling vocabulary they
// share. Eight backends self-register in BackendRegistry::global():
//
//   erlang       closed-form Erlang populations and blocking (Eq. 2-7);
//                microseconds per point, no chain state
//   ctmc         stationary solve of the full Markov chain (Table 1);
//                plan_grids/evaluate_grid(s) keep the deterministic
//                bisection warm-start transfer schedule that used to live
//                in the campaign runner, with every variant of a batch
//                sharing one wave structure so level-L points of ALL
//                variants solve concurrently
//   des          replications of the detailed network simulator, pooled
//                into 95% CIs; plan_grids/evaluate_grid(s) emit one task
//                per (variant, point, replication) with the same
//                substream-block discipline as sim::ExperimentEngine, all
//                dependency-free so they backfill idle solver threads in a
//                merged campaign
//   mm1k-approx  cheap M/M/c/K fixed-point approximation of the data plane
//                over the Erlang populations — the proof that a third-party
//                approximation plugs into the registry without touching the
//                campaign runner, spec parser, or CLI
//   fixed-point  damped fixed-point decomposition over the (voice, session,
//                queue) dimensions: exact Erlang marginals coupled to a
//                level-dependent birth-death queue with mean-rate closure;
//                handles 10^6-session populations in milliseconds
//                (src/eval/large_population.cpp)
//   fluid        mean-field / fluid-limit ODE over the scaled occupancies,
//                integrated with an adaptive Cash-Karp RK4(5) stepper;
//                exact in the N -> infinity scaling
//                (src/eval/large_population.cpp)
//   network-fp   multi-cell lattice fixed point over handover inflows; each
//                cell solved by the single-cell backend named in
//                network.inner_backend under a pinned inflow, outer waves
//                laid out on the shared pool (src/network/backends.cpp)
//   network-des  replications of the simulator in multi-cell network mode
//                (per-cell parameters, weighted handover targets, routing
//                areas), pooled like des (src/network/backends.cpp)
//
// All eight return Results; no exception crosses evaluate() /
// evaluate_grid() / evaluate_grids() / a plan's tasks.
#pragma once

#include <cstddef>
#include <vector>

#include "eval/registry.hpp"

namespace gprsim::eval {

/// Deterministic warm-start schedule of an iterative backend's grid
/// (exposed for tests): parent[i] is the grid index point i transfers
/// information from (-1 = cold), and levels groups the indices into
/// dependency waves — every parent of a level-k point sits in a level < k.
/// warm_start = false yields a single all-cold level.
struct SolveSchedule {
    std::vector<int> parent;
    std::vector<std::vector<int>> levels;
};

/// The bisection schedule: first point cold from the product form, last
/// point offered the first's deviation, then recursively every segment
/// midpoint offered its nearest solved endpoint's ("ties down"). O(log n)
/// depth, so up to n/2 points of one grid solve concurrently; candidate
/// sets are a pure function of the grid size, which keeps grid output
/// bitwise invariant to the thread count.
SolveSchedule bisection_schedule(std::size_t count, bool warm_start);

namespace detail {

/// Registers the built-ins into `registry`. Called exactly once from
/// BackendRegistry::global(); explicit (rather than static-initializer
/// magic) because gprsim is a static library and the linker may drop
/// translation units nobody references.
void register_builtin_backends(BackendRegistry& registry);

/// Registers the large-population approximations (fixed-point, fluid);
/// called from register_builtin_backends, defined in
/// src/eval/large_population.cpp.
void register_large_population_backends(BackendRegistry& registry);

/// Registers the multi-cell network backends (network-fp, network-des);
/// called from register_builtin_backends, defined in
/// src/network/backends.cpp.
void register_network_backends(BackendRegistry& registry);

}  // namespace detail

}  // namespace gprsim::eval
