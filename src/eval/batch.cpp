#include "eval/batch.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "common/thread_pool.hpp"

namespace gprsim::eval {

BatchStats execute_plans(std::span<GridPlan> plans, const GridOptions& options) {
    BatchStats stats;
    for (const GridPlan& plan : plans) {
        stats.tasks += plan.tasks.size();
        // Trust the tasks' wave tags over the plan's self-reported depth:
        // a third-party plan that forgets to set `waves` must not index
        // past the bucket array.
        std::size_t depth = plan.waves;
        for (const BatchTask& task : plan.tasks) {
            depth = std::max(depth, task.wave + 1);
        }
        stats.waves = std::max(stats.waves, depth);
        stats.sequential_waves += plan.sequential_waves;
    }

    // Bucket by wave, keeping (plan, insertion) order inside each bucket so
    // the serial path executes in one deterministic order.
    std::vector<std::vector<std::function<void()>>> waves(stats.waves);
    for (GridPlan& plan : plans) {
        for (BatchTask& task : plan.tasks) {
            waves[task.wave].push_back(std::move(task.run));
        }
        plan.tasks.clear();
    }

    const int width = common::ThreadPool::resolve_thread_count(options.num_threads);
    for (const std::vector<std::function<void()>>& wave : waves) {
        stats.max_wave_width = std::max(stats.max_wave_width, wave.size());
        const int wave_width = std::min<int>(width, static_cast<int>(wave.size()));
        if (wave_width <= 1 || options.pool == nullptr) {
            for (const std::function<void()>& task : wave) {
                task();
            }
        } else {
            options.pool->run_tasks(wave, wave_width);
        }
    }
    return stats;
}

common::Result<CampaignEvaluation> evaluate_campaign(BackendRegistry& registry,
                                                     const CampaignRequest& request,
                                                     const GridOptions& options) {
    // Resolve every backend before planning anything: an unknown name is a
    // request-level error, not a per-slot one.
    std::vector<Evaluator*> backends;
    backends.reserve(request.backends.size());
    for (const std::string& name : request.backends) {
        common::Result<Evaluator*> backend = registry.find(name);
        if (!backend.ok()) {
            return backend.error();
        }
        backends.push_back(backend.value());
    }

    // Each plan serializes its OWN progress calls; merged execution can
    // finish points of different plans at once, so the batch adds one more
    // lock around the caller's callback.
    GridOptions shared = options;
    if (options.progress) {
        auto mutex = std::make_shared<std::mutex>();
        shared.progress = [mutex, inner = options.progress](
                              std::size_t index, const PointEvaluation& point) {
            std::lock_guard<std::mutex> lock(*mutex);
            inner(index, point);
        };
    }

    std::vector<GridPlan> plans;
    plans.reserve(backends.size());
    for (Evaluator* backend : backends) {
        plans.push_back(backend->plan_grids(request.queries, request.rates, shared));
    }

    CampaignEvaluation evaluation;
    evaluation.stats = execute_plans(plans, options);
    evaluation.outcomes.reserve(plans.size());
    for (GridPlan& plan : plans) {
        evaluation.outcomes.push_back(plan.collect());
    }
    return evaluation;
}

common::Result<CampaignEvaluation> evaluate_campaign(const CampaignRequest& request,
                                                     const GridOptions& options) {
    return evaluate_campaign(BackendRegistry::global(), request, options);
}

}  // namespace gprsim::eval
