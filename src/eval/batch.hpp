// Merged multi-grid batches: the cross-(backend, variant) parallelism the
// registry dispatch gave up, recovered without giving up per-backend
// encapsulation.
//
// A campaign is backends x variants x rates (x replications for stochastic
// backends). Dispatching one evaluate_grid per (backend, variant) runs the
// grids one after another, so the narrow early waves of each variant's
// warm-start schedule (1 task, then 1, then 2, ...) cannot overlap with
// the other variants' wide waves, and DES replications cannot backfill the
// solver threads those narrow waves leave idle. execute_plans() merges the
// wave-tagged task sets of several GridPlans (one per backend, each
// covering every variant — Evaluator::plan_grids) into ONE flat task set
// per wave on ONE pool: global wave w runs every backend's wave-w tasks
// together, so the merged depth is the MAXIMUM plan depth instead of the
// sum of per-(backend, variant) depths. evaluate_campaign() is the
// registry-level wrapper: resolve backend names, plan, execute merged,
// collect per (backend, query).
//
// Determinism: tasks of one wave write disjoint plan-private state and
// every order-sensitive reduction happens in the plans' serial collect
// step, so merged results are bitwise identical to looping evaluate_grid
// per (backend, variant) and invariant to the thread count.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "eval/evaluator.hpp"
#include "eval/registry.hpp"

namespace gprsim::eval {

/// Execution accounting of a merged batch — the numbers the campaign
/// summary prints to show cross-variant interleaving (waves <
/// sequential_waves whenever merging bought concurrency).
struct BatchStats {
    /// Total tasks executed across every merged plan.
    std::size_t tasks = 0;
    /// Pool dispatches actually executed: the DEEPEST merged plan's wave
    /// count, because global wave w runs every plan's wave-w tasks at once.
    std::size_t waves = 0;
    /// Waves the same work needs when each (backend, query) grid runs on
    /// its own (the sum of the plans' sequential_waves).
    std::size_t sequential_waves = 0;
    /// Largest single-wave task count — the peak concurrency the merged
    /// set offers the pool.
    std::size_t max_wave_width = 0;
};

/// Executes the plans' tasks as one flat wave-ordered task set on
/// options.pool (serially when the pool is absent or num_threads <= 1) and
/// returns the accounting. Wave w of every plan runs in one dispatch,
/// ordered (plan, insertion order) so the serial path is deterministic;
/// a wave-w task observes every earlier wave of every plan completed.
/// Tasks are consumed (moved out of the plans); the plans' collect
/// closures are NOT invoked — callers do that per plan afterwards.
BatchStats execute_plans(std::span<GridPlan> plans, const GridOptions& options);

/// One batched campaign: every named backend evaluates every query over
/// the shared ascending rate grid. Queries carry their own knob blocks
/// (the campaign runner builds them from one spec, but independent
/// scenarios batch just as well).
struct CampaignRequest {
    /// Registered backend names, evaluation order (empty = empty result).
    std::vector<std::string> backends;
    /// Scenario variants; query q's grid occupies flat batch indices
    /// [q * rates.size(), (q + 1) * rates.size()) for substream blocks and
    /// progress reporting.
    std::vector<ScenarioQuery> queries;
    /// Shared arrival-rate grid, strictly ascending and positive.
    std::vector<double> rates;
};

/// Result of evaluate_campaign: per-(backend, query) outcomes plus the
/// merged-execution accounting.
struct CampaignEvaluation {
    /// outcomes[b][q] is backend b's GridOutcome for query q — the full
    /// grid or that (backend, query)'s typed error; one failing slot never
    /// poisons another.
    std::vector<std::vector<GridOutcome>> outcomes;
    BatchStats stats;
};

/// Registry-level batch entry point: resolves request.backends in
/// `registry`, plans every backend's grids, executes the merged task set
/// (execute_plans), and collects per-plan. Fails wholesale only when a
/// backend name is unknown (unknown_backend); every evaluation failure
/// stays inside its (backend, query) slot. GridOptions::grid_offset /
/// progress follow the flat-batch-index convention of evaluate_grids.
common::Result<CampaignEvaluation> evaluate_campaign(
    BackendRegistry& registry, const CampaignRequest& request,
    const GridOptions& options = {});

/// evaluate_campaign on BackendRegistry::global().
common::Result<CampaignEvaluation> evaluate_campaign(
    const CampaignRequest& request, const GridOptions& options = {});

}  // namespace gprsim::eval
