#include "eval/evaluator.hpp"

#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "ctmc/solver_options.hpp"

namespace gprsim::eval {

std::string scenario_context(const core::Parameters& p, double rate) {
    core::Parameters resolved = p;
    resolved.call_arrival_rate = rate;
    return resolved.describe();
}

common::Status ScenarioQuery::validated() const {
    const auto fail = [&](const std::string& what) {
        return common::Status(common::EvalError{
            common::EvalErrorCode::invalid_query,
            what + " [" + scenario_context(parameters, call_arrival_rate) + "]"});
    };
    if (!(call_arrival_rate > 0.0)) {
        return fail("call_arrival_rate must be positive");
    }
    if (!(solver.tolerance > 0.0)) {
        return fail("solver.tolerance must be positive");
    }
    if (solver.max_iterations < 1) {
        return fail("solver.max_iterations must be at least 1");
    }
    if (!ctmc::method_from_name(solver.method)) {
        return fail("solver.method \"" + solver.method +
                    "\" is not a known iteration scheme");
    }
    if (simulation.replications < 1) {
        return fail("simulation.replications must be at least 1");
    }
    if (simulation.batch_count < 2) {
        return fail("simulation.batch_count must be at least 2");
    }
    if (simulation.warmup_time < 0.0 || !(simulation.batch_duration > 0.0)) {
        return fail("simulation warmup/batch_duration out of range");
    }
    if (!(approx.fp_tolerance > 0.0)) {
        return fail("approx.fp_tolerance must be positive");
    }
    if (!(approx.fp_damping > 0.0) || approx.fp_damping > 1.0) {
        return fail("approx.fp_damping must be in (0, 1]");
    }
    if (approx.fp_max_iterations < 1) {
        return fail("approx.fp_max_iterations must be at least 1");
    }
    if (!(approx.ode_rel_tol > 0.0) || !(approx.ode_abs_tol > 0.0)) {
        return fail("approx.ode_rel_tol/ode_abs_tol must be positive");
    }
    if (approx.ode_max_steps < 1) {
        return fail("approx.ode_max_steps must be at least 1");
    }
    if (!(approx.ode_stationary_rate > 0.0)) {
        return fail("approx.ode_stationary_rate must be positive");
    }
    if (network.cells_x < 1 || network.cells_y < 1) {
        return fail("network.cells_x/cells_y must be at least 1");
    }
    // Inline name list: the eval layer must not include network/ headers
    // (src/network/ sits above it and includes this file).
    if (network.topology != "grid4" && network.topology != "grid8" &&
        network.topology != "hex" && network.topology != "clique") {
        return fail("network.topology \"" + network.topology +
                    "\" is not a known lattice topology");
    }
    if (network.reuse_factor < 1) {
        return fail("network.reuse_factor must be at least 1");
    }
    if (network.ra_block < 0) {
        return fail("network.ra_block must be non-negative");
    }
    if (!(network.speed_kmh > 0.0) || !(network.reference_speed_kmh > 0.0)) {
        return fail("network speeds must be positive");
    }
    if (!(network.drift >= 0.0) || network.drift >= 1.0) {
        return fail("network.drift must lie in [0, 1)");
    }
    if (network.inner_backend.empty() ||
        network.inner_backend.rfind("network", 0) == 0) {
        return fail("network.inner_backend must name a single-cell backend");
    }
    if (!(network.outer_tolerance > 0.0)) {
        return fail("network.outer_tolerance must be positive");
    }
    if (!(network.outer_damping > 0.0) || network.outer_damping > 1.0) {
        return fail("network.outer_damping must be in (0, 1]");
    }
    if (network.outer_max_iterations < 1) {
        return fail("network.outer_max_iterations must be at least 1");
    }
    try {
        resolved_parameters().validate();
    } catch (const std::exception& e) {
        return fail(e.what());
    }
    return common::ok_status();
}

common::Result<std::vector<PointEvaluation>> Evaluator::evaluate_grid(
    const ScenarioQuery& base, std::span<const double> rates, const GridOptions&) {
    std::vector<PointEvaluation> points;
    points.reserve(rates.size());
    for (const double rate : rates) {
        ScenarioQuery query = base;
        query.call_arrival_rate = rate;
        common::Result<PointEvaluation> point = evaluate(query);
        if (!point.ok()) {
            return point.error();
        }
        points.push_back(point.take());
    }
    return points;
}

namespace {

/// Per-query GridOptions of a multi-grid batch: query q's grid starts at
/// flat batch index q * rates.size(), so its substream offset and progress
/// indices shift by that much. `serial` strips the pool for plan tasks
/// (they already run ON the executor's pool and must not re-enter it).
GridOptions query_options(const GridOptions& options, std::size_t query,
                          std::size_t grid_size, bool serial,
                          std::mutex* progress_mutex) {
    GridOptions adjusted = options;
    adjusted.grid_offset = options.grid_offset + query * grid_size;
    if (serial) {
        adjusted.pool = nullptr;
        adjusted.num_threads = 1;
    }
    if (options.progress) {
        const std::size_t base = query * grid_size;
        const auto inner = options.progress;
        adjusted.progress = [inner, base, progress_mutex](
                                std::size_t index, const PointEvaluation& point) {
            if (progress_mutex != nullptr) {
                // Backends lock only within one grid call; concurrent plan
                // tasks of different queries need a batch-wide lock.
                std::lock_guard<std::mutex> lock(*progress_mutex);
                inner(base + index, point);
            } else {
                inner(base + index, point);
            }
        };
    }
    return adjusted;
}

}  // namespace

std::vector<GridOutcome> Evaluator::evaluate_grids(
    std::span<const ScenarioQuery> queries, std::span<const double> rates,
    const GridOptions& options) {
    std::vector<GridOutcome> outcomes;
    outcomes.reserve(queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
        outcomes.push_back(evaluate_grid(
            queries[q], rates,
            query_options(options, q, rates.size(), /*serial=*/false, nullptr)));
    }
    return outcomes;
}

GridPlan Evaluator::plan_grids(std::span<const ScenarioQuery> queries,
                               std::span<const double> rates,
                               const GridOptions& options) {
    // Shared by the tasks and the collect closure; the executor guarantees
    // collect runs after every task, so slot writes never race with reads.
    // Queries and rates are copied in (plan execution may outlive the
    // caller's buffers).
    struct State {
        std::vector<std::optional<GridOutcome>> outcomes;
        std::vector<ScenarioQuery> queries;
        std::vector<double> rates;
        std::mutex progress_mutex;
    };
    auto state = std::make_shared<State>();
    state->outcomes.resize(queries.size());
    state->queries.assign(queries.begin(), queries.end());
    state->rates.assign(rates.begin(), rates.end());

    GridPlan plan;
    plan.tasks.reserve(queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const GridOptions adjusted = query_options(options, q, rates.size(),
                                                   /*serial=*/true,
                                                   &state->progress_mutex);
        plan.tasks.push_back(
            {0, [this, state, q, adjusted] {
                 // evaluate_grid's contract is "no exception escapes", so
                 // this task body needs no fence of its own.
                 state->outcomes[q].emplace(
                     evaluate_grid(state->queries[q], state->rates, adjusted));
             }});
    }
    plan.collect = [state, queries_size = queries.size()] {
        std::vector<GridOutcome> outcomes;
        outcomes.reserve(queries_size);
        for (std::optional<GridOutcome>& slot : state->outcomes) {
            if (slot.has_value()) {
                outcomes.push_back(std::move(*slot));
            } else {
                outcomes.push_back(common::EvalError{
                    common::EvalErrorCode::internal,
                    "batch executor dropped a grid task before it ran"});
            }
        }
        return outcomes;
    };
    plan.waves = plan.tasks.empty() ? 0 : 1;
    plan.sequential_waves = plan.tasks.size();
    return plan;
}

}  // namespace gprsim::eval
