#include "eval/evaluator.hpp"

#include <stdexcept>

namespace gprsim::eval {

std::string scenario_context(const core::Parameters& p, double rate) {
    core::Parameters resolved = p;
    resolved.call_arrival_rate = rate;
    return resolved.describe();
}

common::Status ScenarioQuery::validated() const {
    const auto fail = [&](const std::string& what) {
        return common::Status(common::EvalError{
            common::EvalErrorCode::invalid_query,
            what + " [" + scenario_context(parameters, call_arrival_rate) + "]"});
    };
    if (!(call_arrival_rate > 0.0)) {
        return fail("call_arrival_rate must be positive");
    }
    if (!(solver.tolerance > 0.0)) {
        return fail("solver.tolerance must be positive");
    }
    if (solver.max_iterations < 1) {
        return fail("solver.max_iterations must be at least 1");
    }
    if (simulation.replications < 1) {
        return fail("simulation.replications must be at least 1");
    }
    if (simulation.batch_count < 2) {
        return fail("simulation.batch_count must be at least 2");
    }
    if (simulation.warmup_time < 0.0 || !(simulation.batch_duration > 0.0)) {
        return fail("simulation warmup/batch_duration out of range");
    }
    try {
        resolved_parameters().validate();
    } catch (const std::exception& e) {
        return fail(e.what());
    }
    return common::ok_status();
}

common::Result<std::vector<PointEvaluation>> Evaluator::evaluate_grid(
    const ScenarioQuery& base, std::span<const double> rates, const GridOptions&) {
    std::vector<PointEvaluation> points;
    points.reserve(rates.size());
    for (const double rate : rates) {
        ScenarioQuery query = base;
        query.call_arrival_rate = rate;
        common::Result<PointEvaluation> point = evaluate(query);
        if (!point.ok()) {
            return point.error();
        }
        points.push_back(point.take());
    }
    return points;
}

}  // namespace gprsim::eval
