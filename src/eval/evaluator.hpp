// The unified evaluation API: one vocabulary for "evaluate this GPRS
// scenario" regardless of how the answer is computed.
//
//   eval layer      (this file + registry.hpp + backends.hpp + batch.hpp)
//        ^ ScenarioQuery -> Evaluator::evaluate -> Result<PointEvaluation>
//          multi-grid batches: Evaluator::evaluate_grids / plan_grids,
//          merged across backends by eval::evaluate_campaign (batch.hpp);
//          string-keyed BackendRegistry; built-ins erlang / ctmc / des /
//          mm1k-approx / fixed-point / fluid / network-fp / network-des,
//          out-of-tree backends register alongside them
//   model/sim layer core::GprsModel, sim::ExperimentEngine, queueing::*
//   consumers       campaign::CampaignRunner, gprsim_cli, benches, tests,
//                   out-of-tree code via find_package(gprsim)
//
// The paper's contribution is comparing the SAME scenario across analysis
// methods (closed-form Erlang bounds, the CTMC model, the validating
// simulator); this layer makes "a way to evaluate a scenario" a first-class
// object so new routes (queueing approximations, fluid or transient
// backends) plug in without touching the campaign runner, spec parser, or
// CLI. Contract: no exception crosses evaluate() / evaluate_grid() /
// evaluate_grids() / the tasks of a plan_grids() plan — every failure
// surfaces as a typed common::EvalError inside a common::Result.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/thread_pool.hpp"
#include "core/measures.hpp"
#include "core/parameters.hpp"
#include "sim/experiment.hpp"

namespace gprsim::eval {

/// Knobs consumed by iterative (chain-solving) backends.
struct SolverKnobs {
    double tolerance = 1e-9;
    long long max_iterations = 200000;
    /// Iteration scheme, by canonical ctmc::method_name spelling
    /// ("gauss_seidel", "red_black_gauss_seidel", "jacobi", ...). "auto"
    /// (the default) lets the engine's cost model pick per point; the
    /// decision and its reasoning land in PointEvaluation::solver_method /
    /// solver_reason. Unknown spellings fail validated() with
    /// invalid_query. Campaign points solve at width 1 (the points are the
    /// parallelism), where auto deterministically picks serial
    /// Gauss-Seidel — so the default produces bitwise the same measures as
    /// explicit "gauss_seidel".
    std::string method = "auto";
};

/// Knobs consumed by stochastic (simulating) backends.
struct SimulationKnobs {
    int replications = 4;
    std::uint64_t seed = 1;
    double warmup_time = 1500.0;
    int batch_count = 10;
    double batch_duration = 1500.0;  ///< [s]
    bool tcp = true;                 ///< TCP Reno vs open-loop sources
};

/// Knobs consumed by the large-population approximation backends
/// (fixed-point, fluid). Tolerances trade accuracy against per-point cost;
/// both backends report how hard they worked in PointEvaluation
/// iterations/residual.
struct ApproxKnobs {
    // fixed-point decomposition
    double fp_tolerance = 1e-10;  ///< max relative change of the iterate
    double fp_damping = 1.0;      ///< step fraction in (0, 1]
    int fp_max_iterations = 5000;
    // fluid ODE integrator
    double ode_rel_tol = 1e-8;
    double ode_abs_tol = 1e-10;
    long long ode_max_steps = 200000;
    /// Stationarity threshold on the scaled drift norm [1/s].
    double ode_stationary_rate = 1e-9;
};

/// Knobs consumed by the multi-cell network backends (network-fp,
/// network-des): the lattice shape, the mobility model, and the outer
/// fixed-point controls. The single-cell backends ignore the block.
struct NetworkKnobs {
    // Lattice (src/network/lattice.hpp).
    int cells_x = 2;
    int cells_y = 2;
    /// "grid4", "grid8", "hex", or "clique".
    std::string topology = "grid4";
    bool wrap = true;              ///< periodic boundary (torus)
    int reuse_factor = 1;          ///< frequency-reuse channel split
    int ra_block = 0;              ///< routing-area tile edge; 0 = one area
    // Mobility (src/network/mobility.hpp).
    double speed_kmh = 3.0;
    double reference_speed_kmh = 3.0;
    double drift = 0.0;            ///< eastward bias in [0, 1)
    // network-fp outer iteration.
    /// Single-cell backend delegated to for the per-cell solves
    /// ("ctmc", "fixed-point", "fluid", ...; never a network backend).
    std::string inner_backend = "ctmc";
    double outer_tolerance = 1e-12;
    double outer_damping = 1.0;    ///< inflow step fraction in (0, 1]
    int outer_max_iterations = 50;
};

/// One evaluable scenario point: a complete cell configuration, the load to
/// apply, and the per-backend knobs. Backends read the knob block they
/// understand and ignore the rest, so the same query can be handed to every
/// registered backend.
struct ScenarioQuery {
    /// Complete cell configuration; `parameters.call_arrival_rate` is
    /// overwritten with `call_arrival_rate` before evaluation.
    core::Parameters parameters;
    /// Combined GSM+GPRS arrival rate [calls/s]; must be positive.
    double call_arrival_rate = 0.5;

    SolverKnobs solver;
    SimulationKnobs simulation;
    ApproxKnobs approx;
    NetworkKnobs network;

    /// Checks the query without throwing: rate positive, knobs in range,
    /// and Parameters::validate() clean. The error message names the
    /// offending field and the scenario's key parameters.
    common::Status validated() const;

    /// The parameters with the query's arrival rate applied.
    core::Parameters resolved_parameters() const {
        core::Parameters p = parameters;
        p.call_arrival_rate = call_arrival_rate;
        return p;
    }
};

/// One evaluated point with its provenance: which backend produced it and
/// how hard it had to work. Iterative backends fill iterations/residual
/// (and, under a grid's warm-start schedule, warm_parent/warm_started);
/// stochastic backends set has_confidence and attach the full
/// replication-pooled detail in `sim`.
struct PointEvaluation {
    std::string backend;
    double call_arrival_rate = 0.0;
    core::Measures measures;

    // --- iterative provenance -------------------------------------------
    long long iterations = 0;
    double residual = 0.0;
    /// Method the solve actually executed (ctmc::method_name spelling) and
    /// why — the cost-model explanation when SolverKnobs::method was
    /// "auto", the upgrade note when a serial method was promoted for a
    /// parallel run, empty when the explicit choice ran as-is.
    std::string solver_method;
    std::string solver_reason;
    /// Grid index whose warm-start information this point was offered;
    /// -1 = cold (also for all non-grid evaluations).
    int warm_parent = -1;
    /// Whether the transferred candidate beat the cold start.
    bool warm_started = false;

    // --- stochastic provenance ------------------------------------------
    /// True when `measures` are replication-pooled means and `sim` carries
    /// the 95% CI detail.
    bool has_confidence = false;
    sim::ExperimentResults sim;

    // --- network provenance (network-fp / network-des only) --------------
    /// Per-cell measures in lattice cell order; `measures` is then the
    /// network aggregate. Empty for single-cell backends.
    std::vector<core::Measures> cell_measures;
    /// network-fp: per-cell inflow residual at the final outer iteration
    /// (`iterations` counts the outer loop, `residual` its max norm).
    std::vector<double> cell_residuals;
    /// Routing-area updates per second, network-wide (0 without routing
    /// areas).
    double rau_rate = 0.0;

    double wall_seconds = 0.0;
};

/// Batch-evaluation settings for Evaluator::evaluate_grid. Sharding never
/// changes any output (the eval layer inherits the engines' bitwise
/// thread-count invariance).
struct GridOptions {
    /// Execution width: 0 = all hardware threads, <= 1 = serial.
    int num_threads = 1;
    /// Pool to shard on; nullptr (or width <= 1) evaluates serially.
    /// Not owned; must be at least num_threads wide.
    common::ThreadPool* pool = nullptr;
    /// Whether iterative backends may transfer information between grid
    /// points (the ctmc backend's bisection warm-start schedule).
    bool warm_start = true;
    /// Offset added to each point's grid index when stochastic backends
    /// derive per-task random substream blocks: the des backend uses block
    /// (grid_offset + i) * stride + r, where the stride is the batch's
    /// largest replication budget (equal to the query's own R whenever the
    /// batch shares one budget — every single-grid call and every campaign
    /// does). Callers evaluating several grids under one experiment seed
    /// (the campaign runner's variants) pass disjoint offsets so no two
    /// tasks share a substream. Multi-grid entry points (evaluate_grids /
    /// plan_grids) advance the offset by rates.size() per query
    /// themselves, so query q's point i sits on block
    /// (grid_offset + q * rates.size() + i) * stride + r.
    std::uint64_t grid_offset = 0;
    /// Invoked by iterative backends after each finished point (under a
    /// lock, NOT in grid order): grid index and the finished evaluation.
    /// Multi-grid entry points report the flat batch index
    /// q * rates.size() + i for point i of query q.
    std::function<void(std::size_t, const PointEvaluation&)> progress;
};

/// Per-query outcome of a multi-grid batch: the query's full rate grid (one
/// PointEvaluation per rate, grid order) or the typed error that stopped
/// that query. One query's failure never poisons the others' slots.
using GridOutcome = common::Result<std::vector<PointEvaluation>>;

/// One unit of a backend's batched work, contributed to a merged task set.
/// Tasks carrying the same wave may run concurrently (with any same-wave
/// task of any backend); a task may assume every task of every earlier
/// wave has finished. `run` must not throw — failures are recorded in the
/// plan's shared state and surface from GridPlan::collect.
struct BatchTask {
    std::size_t wave = 0;
    std::function<void()> run;
};

/// A backend's contribution to a (possibly multi-backend) batch, produced
/// by Evaluator::plan_grids: wave-tagged tasks plus a serial collect step.
/// The executor (eval/batch.hpp) runs the merged task set wave by wave on
/// one pool, so the narrow early waves of one grid's dependency schedule
/// interleave with other grids' wide waves, then invokes each plan's
/// collect serially. Tasks only write plan-private state captured in their
/// closures; all cross-plan coordination is the executor's wave barrier.
struct GridPlan {
    std::vector<BatchTask> tasks;
    /// Assembles the per-query outcomes. Called exactly once, serially,
    /// after every task of every merged plan has finished; performs the
    /// order-sensitive reductions (replication pooling, first-error-in-
    /// grid-order selection) so results stay thread-count-invariant.
    std::function<std::vector<GridOutcome>()> collect;
    /// Dependency depth of this plan: 1 + the largest task wave (0 when
    /// the plan has no tasks).
    std::size_t waves = 0;
    /// Waves the same work would occupy dispatched one query at a time —
    /// the number merged execution is measured against (batch.hpp's
    /// BatchStats reports both).
    std::size_t sequential_waves = 0;
};

/// "rate=0.5 calls/s, N=20 channels (1 PDCH reserved), M=50, K=100, ..." —
/// the scenario context every EvalError message embeds so a failure names
/// the point that produced it.
std::string scenario_context(const core::Parameters& parameters, double call_arrival_rate);

/// A way to evaluate a GPRS scenario. Implementations must be safe to call
/// concurrently from several threads (the built-ins are stateless between
/// calls) and must not let any exception escape the virtual entry points —
/// failures are returned as typed EvalErrors.
class Evaluator {
public:
    virtual ~Evaluator() = default;

    /// Registry key, e.g. "ctmc".
    virtual const std::string& name() const = 0;
    /// One-line human description for --list-backends.
    virtual const std::string& description() const = 0;

    /// Evaluates a single scenario point.
    virtual common::Result<PointEvaluation> evaluate(const ScenarioQuery& query) = 0;

    /// Evaluates the query at every arrival rate of an ascending grid.
    /// Returns one PointEvaluation per rate, in grid order. The default
    /// implementation loops over evaluate(); backends override it to keep
    /// their batch internals (the ctmc backend's warm-start transfer
    /// schedule, the des backend's replication sharding) without widening
    /// the single-point API.
    virtual common::Result<std::vector<PointEvaluation>> evaluate_grid(
        const ScenarioQuery& base, std::span<const double> rates,
        const GridOptions& options = {});

    /// Evaluates SEVERAL scenario variants over one shared rate grid in a
    /// single batch, returning one GridOutcome per query (query order).
    /// The default implementation loops over evaluate_grid, isolating each
    /// query's error in its own slot; the ctmc and des backends override
    /// it to execute their plan_grids task set, so one variant's narrow
    /// warm-start waves overlap with the other variants' wide waves (and
    /// DES replications backfill idle solver threads) instead of running
    /// grid after grid. Results are invariant to the thread count, and —
    /// for batches whose queries share one replication budget (a
    /// campaign's always do) — bitwise identical to the looped path; with
    /// unequal budgets the des backend widens its substream stride to the
    /// batch maximum to keep streams disjoint, which legitimately changes
    /// the draws versus separate evaluate_grid calls.
    virtual std::vector<GridOutcome> evaluate_grids(
        std::span<const ScenarioQuery> queries, std::span<const double> rates,
        const GridOptions& options = {});

    /// Plans the same work as evaluate_grids without executing it, as
    /// wave-tagged tasks for a merged multi-backend task set (the
    /// registry-level eval::evaluate_campaign in batch.hpp). The default
    /// implementation emits one wave-0 task per query that runs that
    /// query's whole evaluate_grid serially — correct for any backend, and
    /// already cross-query parallel; backends with internal dependency
    /// structure (ctmc) or finer task grain (des) override it to expose
    /// per-point / per-replication tasks. Implementations copy queries
    /// and rates into the plan's shared state, so the caller's buffers
    /// only need to outlive this call, not the plan's execution.
    /// GridOptions::pool is ignored at
    /// planning time: tasks run wherever the executor schedules them and
    /// must therefore never touch a pool themselves.
    virtual GridPlan plan_grids(std::span<const ScenarioQuery> queries,
                                std::span<const double> rates,
                                const GridOptions& options = {});
};

}  // namespace gprsim::eval
