// The large-population approximation backends: `fixed-point` (damped
// decomposition over the voice/session/queue dimensions,
// queueing/fixed_point.hpp) and `fluid` (mean-field ODE limit,
// queueing/fluid.hpp). Both are analytic and cheap per point, so their
// batch plans are pointwise: one dependency-free wave-0 task per (query,
// point) that a merged campaign freely interleaves with other backends'
// waves. Every task computes pure serial double arithmetic with no shared
// mutable state, so grid output is bitwise invariant to thread count,
// dispatch mode, and repetition by construction.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>

#include "eval/backend_util.hpp"
#include "eval/backends.hpp"
#include "queueing/fixed_point.hpp"
#include "queueing/fluid.hpp"

namespace gprsim::eval {

namespace {

using common::EvalError;
using common::EvalErrorCode;

/// Pointwise plan shared by both backends: per-(query, point) wave-0 tasks
/// calling self.evaluate (which never throws), first-error-in-grid-order
/// collection, progress reported under the batch-wide lock at the flat
/// index q * rates.size() + i.
GridPlan pointwise_plan(Evaluator& self, std::span<const ScenarioQuery> queries,
                        std::span<const double> rates, const GridOptions& options) {
    if (common::Status g = detail::check_grid(rates); !g.ok()) {
        return detail::failed_plan(queries.size(), g.error());
    }

    struct State {
        std::vector<ScenarioQuery> base;
        std::vector<std::vector<PointEvaluation>> points;  ///< [q][i]
        std::vector<std::vector<std::unique_ptr<EvalError>>> errors;
        std::vector<double> rates;
        std::mutex progress_mutex;
    };
    const std::size_t nq = queries.size();
    const std::size_t n = rates.size();
    auto state = std::make_shared<State>();
    state->base.assign(queries.begin(), queries.end());
    state->points.assign(nq, std::vector<PointEvaluation>(n));
    state->errors.resize(nq);
    state->rates.assign(rates.begin(), rates.end());
    const std::vector<bool> planned = detail::probe_queries(queries, rates, state->errors);

    GridPlan plan;
    for (std::size_t q = 0; q < nq; ++q) {
        if (!planned[q]) {
            continue;
        }
        for (std::size_t i = 0; i < n; ++i) {
            plan.tasks.push_back(
                {0, [&self, state, q, i, progress = options.progress] {
                     ScenarioQuery query = state->base[q];
                     query.call_arrival_rate = state->rates[i];
                     common::Result<PointEvaluation> point = self.evaluate(query);
                     if (!point.ok()) {
                         state->errors[q][i] =
                             std::make_unique<EvalError>(point.error());
                         return;
                     }
                     state->points[q][i] = point.take();
                     if (progress) {
                         std::lock_guard<std::mutex> lock(state->progress_mutex);
                         progress(q * state->rates.size() + i, state->points[q][i]);
                     }
                 }});
        }
    }
    plan.collect = [state, nq] {
        std::vector<GridOutcome> outcomes;
        outcomes.reserve(nq);
        for (std::size_t q = 0; q < nq; ++q) {
            if (const EvalError* failed = detail::first_error(state->errors[q])) {
                outcomes.push_back(*failed);
            } else {
                outcomes.push_back(std::move(state->points[q]));
            }
        }
        return outcomes;
    };
    plan.waves = plan.tasks.empty() ? 0 : 1;
    plan.sequential_waves =
        static_cast<std::size_t>(std::count(planned.begin(), planned.end(), true));
    return plan;
}

/// Grid entry points shared by both backends (the single-grid call is the
/// one-query batch; the batch executes the pointwise plan).
class LargePopulationEvaluator : public Evaluator {
public:
    common::Result<std::vector<PointEvaluation>> evaluate_grid(
        const ScenarioQuery& base, std::span<const double> rates,
        const GridOptions& options) override {
        std::vector<GridOutcome> outcomes =
            evaluate_grids(std::span<const ScenarioQuery>(&base, 1), rates, options);
        return std::move(outcomes.front());
    }

    std::vector<GridOutcome> evaluate_grids(std::span<const ScenarioQuery> queries,
                                            std::span<const double> rates,
                                            const GridOptions& options) override {
        return detail::execute_single_plan(plan_grids(queries, rates, options), options);
    }

    GridPlan plan_grids(std::span<const ScenarioQuery> queries,
                        std::span<const double> rates,
                        const GridOptions& options) override {
        return pointwise_plan(*this, queries, rates, options);
    }
};

// --- fixed-point ----------------------------------------------------------

class FixedPointEvaluator final : public LargePopulationEvaluator {
public:
    const std::string& name() const override {
        static const std::string n = "fixed-point";
        return n;
    }
    const std::string& description() const override {
        static const std::string d =
            "damped fixed-point decomposition (voice/session/queue marginals with "
            "mean-rate closure); milliseconds per point at any population size";
        return d;
    }

    common::Result<PointEvaluation> evaluate(const ScenarioQuery& query) override {
        return detail::guarded(query, [&]() -> common::Result<PointEvaluation> {
            const detail::WallClock clock;
            const core::Parameters p = query.resolved_parameters();
            queueing::FixedPointOptions options;
            options.tolerance = query.approx.fp_tolerance;
            options.damping = query.approx.fp_damping;
            options.max_iterations = query.approx.fp_max_iterations;
            const queueing::FixedPointResult r = queueing::solve_fixed_point(p, options);
            if (!r.converged) {
                char what[160];
                std::snprintf(what, sizeof(what),
                              "fixed-point decomposition did not converge: residual "
                              "%.3e after %d sweeps (tolerance %.1e, damping %g)",
                              r.residual, r.iterations, options.tolerance,
                              options.damping);
                return EvalError{EvalErrorCode::non_convergence,
                                 std::string(what) + " [" +
                                     scenario_context(query.parameters,
                                                      query.call_arrival_rate) +
                                     "]"};
            }
            PointEvaluation point;
            point.backend = name();
            point.call_arrival_rate = query.call_arrival_rate;
            point.measures = r.measures;
            point.iterations = r.iterations;
            point.residual = r.residual;
            point.solver_method = "fixed-point";
            char reason[128];
            std::snprintf(reason, sizeof(reason),
                          "decomposition sweeps (damping %g, %s ON-count marginal)",
                          options.damping,
                          r.normal_on_count ? "discretized-normal" : "exact binomial");
            point.solver_reason = reason;
            point.wall_seconds = clock.seconds();
            return point;
        });
    }
};

// --- fluid ----------------------------------------------------------------

class FluidEvaluator final : public LargePopulationEvaluator {
public:
    const std::string& name() const override {
        static const std::string n = "fluid";
        return n;
    }
    const std::string& description() const override {
        static const std::string d =
            "mean-field fluid-limit ODE (adaptive Cash-Karp RK4(5) to "
            "stationarity); exact as the cell scales to infinity";
        return d;
    }

    common::Result<PointEvaluation> evaluate(const ScenarioQuery& query) override {
        return detail::guarded(query, [&]() -> common::Result<PointEvaluation> {
            const detail::WallClock clock;
            const core::Parameters p = query.resolved_parameters();
            queueing::FluidOptions options;
            options.rel_tol = query.approx.ode_rel_tol;
            options.abs_tol = query.approx.ode_abs_tol;
            options.max_steps = query.approx.ode_max_steps;
            options.stationary_rate = query.approx.ode_stationary_rate;
            const queueing::FluidResult r = queueing::solve_fluid(p, options);
            if (!r.converged) {
                char what[200];
                std::snprintf(what, sizeof(what),
                              "fluid ODE did not reach stationarity: drift norm %.3e "
                              "at t=%.3g s after %lld accepted / %lld rejected steps",
                              r.drift_norm, r.end_time, r.steps_accepted,
                              r.steps_rejected);
                return EvalError{EvalErrorCode::non_convergence,
                                 std::string(what) + " [" +
                                     scenario_context(query.parameters,
                                                      query.call_arrival_rate) +
                                     "]"};
            }
            PointEvaluation point;
            point.backend = name();
            point.call_arrival_rate = query.call_arrival_rate;
            point.measures = r.measures;
            point.iterations = r.steps_accepted;
            point.residual = r.drift_norm;
            point.solver_method = "fluid-rk45";
            char reason[160];
            std::snprintf(reason, sizeof(reason),
                          "Cash-Karp RK4(5) steps (rel_tol %.1e, %lld rejected, "
                          "stationary at t=%.3g s)",
                          options.rel_tol, r.steps_rejected, r.end_time);
            point.solver_reason = reason;
            point.wall_seconds = clock.seconds();
            return point;
        });
    }
};

}  // namespace

namespace detail {

void register_large_population_backends(BackendRegistry& registry) {
    const auto add = [&](BackendRegistry::Factory make) {
        const std::unique_ptr<Evaluator> instance = make();
        // Built-in registration cannot collide (it runs once, first).
        (void)registry.add(instance->name(), instance->description(), std::move(make));
    };
    add([] { return std::make_unique<FixedPointEvaluator>(); });
    add([] { return std::make_unique<FluidEvaluator>(); });
}

}  // namespace detail

}  // namespace gprsim::eval
