#include "eval/registry.hpp"

#include <algorithm>

#include "eval/backends.hpp"

namespace gprsim::eval {

common::Status BackendRegistry::add(std::string name, std::string description,
                                    Factory factory) {
    if (name.empty()) {
        return common::EvalError{common::EvalErrorCode::invalid_query,
                                 "backend name must not be empty"};
    }
    if (!factory) {
        return common::EvalError{common::EvalErrorCode::invalid_query,
                                 "backend \"" + name + "\" needs a factory"};
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [existing, entry] : entries_) {
        (void)entry;
        if (existing == name) {
            return common::EvalError{
                common::EvalErrorCode::duplicate_backend,
                "backend \"" + name + "\" is already registered"};
        }
    }
    entries_.emplace_back(std::move(name),
                          Entry{std::move(description), std::move(factory), nullptr});
    return common::ok_status();
}

bool BackendRegistry::contains(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::any_of(entries_.begin(), entries_.end(),
                       [&](const auto& e) { return e.first == name; });
}

common::Result<Evaluator*> BackendRegistry::find(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, entry] : entries_) {
        if (key != name) {
            continue;
        }
        if (!entry.instance) {
            entry.instance = entry.factory();
        }
        return entry.instance.get();
    }
    std::string known;
    for (const auto& [key, entry] : entries_) {
        (void)entry;
        known += known.empty() ? "" : ", ";
        known += key;
    }
    return common::EvalError{common::EvalErrorCode::unknown_backend,
                             "no backend named \"" + name + "\" (registered: " + known +
                                 ")"};
}

std::vector<BackendInfo> BackendRegistry::list() const {
    std::vector<BackendInfo> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.reserve(entries_.size());
        for (const auto& [name, entry] : entries_) {
            out.push_back({name, entry.description});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const BackendInfo& a, const BackendInfo& b) { return a.name < b.name; });
    return out;
}

BackendRegistry& BackendRegistry::global() {
    // The built-ins are registered inside the same call_once that creates
    // the registry: gprsim is a static library, so relying on unreferenced
    // static registrar objects would let the linker drop backends.cpp —
    // this explicit hook guarantees the four built-ins exist before any
    // lookup, while out-of-tree backends use the same add() path.
    static BackendRegistry registry;
    static std::once_flag built_ins;
    std::call_once(built_ins, [] { detail::register_builtin_backends(registry); });
    return registry;
}

common::Status register_backend(std::string name, std::string description,
                                BackendRegistry::Factory factory) {
    return BackendRegistry::global().add(std::move(name), std::move(description),
                                         std::move(factory));
}

}  // namespace gprsim::eval
