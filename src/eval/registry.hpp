// String-keyed registry of scenario evaluators.
//
// The built-ins (erlang, ctmc, des, mm1k-approx — see backends.hpp)
// register themselves the first time the global registry is touched;
// out-of-tree code registers additional backends through the same
// register_backend() call, after which campaign specs, the CLI, and every
// other consumer can dispatch to them by name — no enum to extend, no
// runner/parser edits. Registration and lookup return typed Results
// (duplicate_backend / unknown_backend) instead of throwing. The
// registry-level batch entry point — eval::evaluate_campaign, which merges
// every named backend's plan_grids task set into one flat wave-ordered
// pool dispatch — lives in eval/batch.hpp.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "eval/evaluator.hpp"

namespace gprsim::eval {

/// Listing entry for --list-backends and docs.
struct BackendInfo {
    std::string name;
    std::string description;
};

class BackendRegistry {
public:
    using Factory = std::function<std::unique_ptr<Evaluator>()>;

    BackendRegistry() = default;
    BackendRegistry(const BackendRegistry&) = delete;
    BackendRegistry& operator=(const BackendRegistry&) = delete;

    /// Registers a backend under `name`. The factory is invoked lazily on
    /// first find(); the instance is cached for the registry's lifetime
    /// (evaluators must be callable concurrently). Fails with
    /// duplicate_backend when the name is taken.
    common::Status add(std::string name, std::string description, Factory factory);

    bool contains(const std::string& name) const;

    /// The cached evaluator registered under `name` (created on first use).
    /// Fails with unknown_backend, naming the known backends.
    common::Result<Evaluator*> find(const std::string& name);

    /// All registered backends, sorted by name.
    std::vector<BackendInfo> list() const;

    /// The process-wide registry with the built-ins pre-registered.
    static BackendRegistry& global();

private:
    struct Entry {
        std::string description;
        Factory factory;
        std::unique_ptr<Evaluator> instance;  ///< created on first find()
    };

    mutable std::mutex mutex_;
    std::vector<std::pair<std::string, Entry>> entries_;  ///< insertion order
};

/// Registers `factory` under `name` in the global registry — the one-call
/// extension point for out-of-tree backends.
common::Status register_backend(std::string name, std::string description,
                                BackendRegistry::Factory factory);

}  // namespace gprsim::eval
