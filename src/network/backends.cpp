// The multi-cell evaluation backends (declared in eval/backends.hpp):
//
//   network-fp   outer fixed point over the lattice's handover inflows
//                (network/coupling.hpp); each cell solved by the delegated
//                single-cell backend under a pinned inflow. plan_grids lays
//                every outer iteration out as one wave of per-cell tasks,
//                with the serial damped inflow update folded exactly once
//                per (point, wave) — so a merged campaign solves all cells
//                of all points of one iteration concurrently, and output
//                stays bitwise invariant to thread count and dispatch mode.
//   network-des  replications of the detailed simulator in network mode
//                (per-cell parameters, weighted handover targets, routing
//                areas, per-cell measurement), pooled like the des backend
//                with the same substream-block discipline.
//
// Both aggregate per-cell measures with network::aggregate_measures and
// attach the full per-cell detail to PointEvaluation::cell_measures.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "eval/backend_util.hpp"
#include "eval/backends.hpp"
#include "network/coupling.hpp"
#include "network/lattice.hpp"
#include "network/mobility.hpp"
#include "sim/experiment.hpp"

namespace gprsim::eval {

namespace {

using common::EvalError;
using common::EvalErrorCode;
using detail::WallClock;
using detail::check_grid;
using detail::execute_single_plan;
using detail::failed_plan;
using detail::first_error;
using detail::guarded;
using detail::probe_queries;

/// Lattice of the query: the resolved cell parameters replicated over the
/// knobs' shape, reuse split applied by CellLattice::build. Throws on
/// inconsistent specs (callers run under guarded / a task's try fence).
network::CellLattice lattice_from(const ScenarioQuery& query) {
    network::LatticeSpec spec;
    spec.width = query.network.cells_x;
    spec.height = query.network.cells_y;
    spec.topology = network::topology_from_string(query.network.topology);
    spec.wrap = query.network.wrap;
    spec.reuse_factor = query.network.reuse_factor;
    spec.ra_block = query.network.ra_block;
    spec.cell = query.resolved_parameters();
    return network::CellLattice::build(spec);
}

network::MobilityModel mobility_from(const ScenarioQuery& query) {
    network::MobilityModel mobility;
    mobility.speed_kmh = query.network.speed_kmh;
    mobility.reference_speed_kmh = query.network.reference_speed_kmh;
    mobility.drift = query.network.drift;
    return mobility;
}

network::NetworkOptions outer_options(const ScenarioQuery& query) {
    network::NetworkOptions options;
    options.tolerance = query.network.outer_tolerance;
    options.damping = query.network.outer_damping;
    options.max_outer_iterations = query.network.outer_max_iterations;
    return options;
}

// --- network-fp -----------------------------------------------------------

class NetworkFpEvaluator final : public Evaluator {
public:
    const std::string& name() const override {
        static const std::string n = "network-fp";
        return n;
    }
    const std::string& description() const override {
        static const std::string d =
            "multi-cell lattice fixed point over handover inflows; per-cell solves "
            "delegate to the single-cell backend named by network.inner_backend";
        return d;
    }

    common::Result<PointEvaluation> evaluate(const ScenarioQuery& query) override {
        return guarded(query, [&]() -> common::Result<PointEvaluation> {
            const WallClock clock;
            common::Result<Evaluator*> inner =
                BackendRegistry::global().find(query.network.inner_backend);
            if (!inner.ok()) {
                return inner.error();
            }
            network::NetworkFixedPoint fp(lattice_from(query), mobility_from(query),
                                          query, *inner.value(), outer_options(query));
            common::Result<network::NetworkSolution> solution = fp.solve();
            if (!solution.ok()) {
                return solution.error();
            }
            PointEvaluation point = from_solution(query, solution.take());
            point.wall_seconds = clock.seconds();
            return point;
        });
    }

    /// Single-grid evaluation is the one-query batch.
    common::Result<std::vector<PointEvaluation>> evaluate_grid(
        const ScenarioQuery& base, std::span<const double> rates,
        const GridOptions& options) override {
        std::vector<GridOutcome> outcomes =
            evaluate_grids(std::span<const ScenarioQuery>(&base, 1), rates, options);
        return std::move(outcomes.front());
    }

    std::vector<GridOutcome> evaluate_grids(std::span<const ScenarioQuery> queries,
                                            std::span<const double> rates,
                                            const GridOptions& options) override {
        return execute_single_plan(plan_grids(queries, rates, options), options);
    }

    /// Grid planning as a flat wave-ordered task set: outer iteration w of
    /// every point carries wave w, one task per (query, point, cell). The
    /// first task of a point to reach wave w folds the previous iteration's
    /// inflow update exactly once (std::call_once), exploiting the
    /// executor's wave barrier — all of wave w-1's cell solves have
    /// finished. Converged points no-op their remaining waves; finish()
    /// folds the last executed wave inside the serial collect. The call
    /// sequence is identical to the serial solve() loop, so results are
    /// bitwise invariant to thread count and to merging.
    GridPlan plan_grids(std::span<const ScenarioQuery> queries,
                        std::span<const double> rates,
                        const GridOptions& options) override {
        if (common::Status g = check_grid(rates); !g.ok()) {
            return failed_plan(queries.size(), g.error());
        }

        /// One point's network solve and the per-wave fold gates
        /// (advanced[w-1] fires the fold that opens wave w).
        struct PointRun {
            network::NetworkFixedPoint fp;
            std::vector<std::once_flag> advanced;
            PointRun(network::CellLattice lattice,
                     const network::MobilityModel& mobility, const ScenarioQuery& query,
                     Evaluator& inner, const network::NetworkOptions& outer,
                     std::size_t waves)
                : fp(std::move(lattice), mobility, query, inner, outer),
                  advanced(waves > 0 ? waves - 1 : 0) {}
        };
        struct State {
            std::vector<ScenarioQuery> base;
            std::vector<double> rates;
            std::vector<std::vector<std::unique_ptr<PointRun>>> runs;  ///< [q][i]
            std::vector<std::vector<std::unique_ptr<EvalError>>> errors;
            std::mutex progress_mutex;
        };
        const std::size_t nq = queries.size();
        const std::size_t n = rates.size();
        auto state = std::make_shared<State>();
        state->base.assign(queries.begin(), queries.end());
        state->rates.assign(rates.begin(), rates.end());
        state->runs.resize(nq);
        state->errors.resize(nq);

        const std::vector<bool> planned = probe_queries(queries, rates, state->errors);
        std::size_t max_waves = 0;
        for (std::size_t q = 0; q < nq; ++q) {
            state->runs[q].resize(n);
            if (!planned[q]) {
                continue;
            }
            const ScenarioQuery& base = state->base[q];
            common::Result<Evaluator*> inner =
                BackendRegistry::global().find(base.network.inner_backend);
            if (!inner.ok()) {
                state->errors[q][0] = std::make_unique<EvalError>(inner.error());
                continue;
            }
            const std::size_t waves =
                static_cast<std::size_t>(base.network.outer_max_iterations);
            for (std::size_t i = 0; i < n; ++i) {
                ScenarioQuery query = base;
                query.call_arrival_rate = state->rates[i];
                try {
                    state->runs[q][i] = std::make_unique<PointRun>(
                        lattice_from(query), mobility_from(query), query,
                        *inner.value(), outer_options(query), waves);
                } catch (const std::exception& e) {
                    if (!state->errors[q][i]) {
                        state->errors[q][i] = std::make_unique<EvalError>(EvalError{
                            EvalErrorCode::invalid_query,
                            std::string(e.what()) + " [" +
                                scenario_context(base.parameters, state->rates[i]) +
                                "]"});
                    }
                    continue;
                }
                max_waves = std::max(max_waves, waves);
            }
        }

        // solve_cell never throws and no-ops once the point is done, so
        // the task body needs no fence beyond the call_once gate.
        const auto run_cell = [state](std::size_t q, std::size_t i, std::size_t wave,
                                      int cell) {
            PointRun* run = state->runs[q][i].get();
            if (wave > 0) {
                std::call_once(run->advanced[wave - 1], [run] { run->fp.advance(); });
            }
            run->fp.solve_cell(cell);
        };

        GridPlan plan;
        for (std::size_t wave = 0; wave < max_waves; ++wave) {
            for (std::size_t q = 0; q < nq; ++q) {
                for (std::size_t i = 0; i < n; ++i) {
                    PointRun* run = state->runs[q][i].get();
                    if (run == nullptr ||
                        wave >= run->advanced.size() + 1) {
                        continue;
                    }
                    for (int cell = 0; cell < run->fp.cell_count(); ++cell) {
                        plan.tasks.push_back({wave, [run_cell, q, i, wave, cell] {
                                                  run_cell(q, i, wave, cell);
                                              }});
                    }
                }
            }
        }

        plan.collect = [this, state, nq, n, progress = options.progress,
                        batch_clock = WallClock()] {
            // Serial: finish() folds each point's last executed wave and
            // assembles the solution in fixed (query, point) order.
            std::size_t finished = 0;
            std::vector<std::vector<PointEvaluation>> points(nq);
            for (std::size_t q = 0; q < nq; ++q) {
                points[q].resize(n);
                for (std::size_t i = 0; i < n; ++i) {
                    PointRun* run = state->runs[q][i].get();
                    if (run == nullptr) {
                        continue;
                    }
                    ScenarioQuery query = state->base[q];
                    query.call_arrival_rate = state->rates[i];
                    common::Result<network::NetworkSolution> solution =
                        run->fp.finish();
                    if (!solution.ok()) {
                        if (!state->errors[q][i]) {
                            state->errors[q][i] =
                                std::make_unique<EvalError>(solution.error());
                        }
                        continue;
                    }
                    points[q][i] = from_solution(query, solution.take());
                    ++finished;
                }
            }
            const double wall_each =
                batch_clock.seconds() / static_cast<double>(std::max<std::size_t>(
                                            1, finished));
            std::vector<GridOutcome> outcomes;
            outcomes.reserve(nq);
            for (std::size_t q = 0; q < nq; ++q) {
                if (const EvalError* failed = first_error(state->errors[q])) {
                    outcomes.push_back(*failed);
                    continue;
                }
                for (std::size_t i = 0; i < n; ++i) {
                    points[q][i].wall_seconds = wall_each;
                    if (progress) {
                        std::lock_guard<std::mutex> lock(state->progress_mutex);
                        progress(q * n + i, points[q][i]);
                    }
                }
                outcomes.push_back(std::move(points[q]));
            }
            return outcomes;
        };
        plan.waves = plan.tasks.empty() ? 0 : max_waves;
        plan.sequential_waves =
            max_waves * static_cast<std::size_t>(
                            std::count(planned.begin(), planned.end(), true));
        return plan;
    }

private:
    PointEvaluation from_solution(const ScenarioQuery& query,
                                  network::NetworkSolution solution) {
        PointEvaluation point;
        point.backend = name();
        point.call_arrival_rate = query.call_arrival_rate;
        point.measures = solution.aggregate;
        point.cell_measures = std::move(solution.cells);
        point.cell_residuals = std::move(solution.cell_residuals);
        point.iterations = solution.outer_iterations;
        point.residual = solution.residual;
        point.rau_rate = solution.rau_rate;
        point.solver_method = query.network.inner_backend;
        char reason[128];
        std::snprintf(reason, sizeof(reason),
                      "%dx%d %s lattice: %d outer iterations, %lld inner",
                      query.network.cells_x, query.network.cells_y,
                      query.network.topology.c_str(), solution.outer_iterations,
                      solution.inner_iterations);
        point.solver_reason = reason;
        return point;
    }
};

// --- network-des ----------------------------------------------------------

class NetworkDesEvaluator final : public Evaluator {
public:
    const std::string& name() const override {
        static const std::string n = "network-des";
        return n;
    }
    const std::string& description() const override {
        static const std::string d =
            "multi-cell replications of the network simulator (weighted handover "
            "targets, routing areas, per-cell measurement), pooled into 95% CIs";
        return d;
    }

    common::Result<PointEvaluation> evaluate(const ScenarioQuery& query) override {
        return guarded(query, [&]() -> common::Result<PointEvaluation> {
            const WallClock clock;
            const sim::ExperimentConfig experiment = experiment_config(query);
            const int replications = experiment.replications;
            std::vector<sim::SimulationResults> runs(
                static_cast<std::size_t>(replications));
            for (int rep = 0; rep < replications; ++rep) {
                const sim::SimulationConfig config = sim::replication_config(
                    experiment, static_cast<std::uint64_t>(rep));
                runs[static_cast<std::size_t>(rep)] = sim::NetworkSimulator(config).run();
            }
            PointEvaluation point = pooled_point(query, experiment.base,
                                                 std::move(runs), /*threads_used=*/1);
            point.sim.wall_seconds = clock.seconds();
            point.wall_seconds = clock.seconds();
            return point;
        });
    }

    /// Single-grid evaluation is the one-query batch.
    common::Result<std::vector<PointEvaluation>> evaluate_grid(
        const ScenarioQuery& base, std::span<const double> rates,
        const GridOptions& options) override {
        std::vector<GridOutcome> outcomes =
            evaluate_grids(std::span<const ScenarioQuery>(&base, 1), rates, options);
        return std::move(outcomes.front());
    }

    std::vector<GridOutcome> evaluate_grids(std::span<const ScenarioQuery> queries,
                                            std::span<const double> rates,
                                            const GridOptions& options) override {
        return execute_single_plan(plan_grids(queries, rates, options), options);
    }

    /// Same plan shape and substream-block discipline as the des backend:
    /// one dependency-free wave-0 task per (query, point, replication) on
    /// block (grid_offset + q*n + i) * stride + rep, pooling serial in
    /// collect — bitwise invariant to thread count and to merging.
    GridPlan plan_grids(std::span<const ScenarioQuery> queries,
                        std::span<const double> rates,
                        const GridOptions& options) override {
        if (common::Status g = check_grid(rates); !g.ok()) {
            return failed_plan(queries.size(), g.error());
        }

        struct State {
            std::vector<ScenarioQuery> base;
            /// runs[q][i][rep], written by disjoint tasks.
            std::vector<std::vector<std::vector<sim::SimulationResults>>> runs;
            std::vector<std::vector<std::unique_ptr<EvalError>>> errors;
            std::mutex error_mutex;
            std::vector<double> rates;
        };
        const std::size_t nq = queries.size();
        const std::size_t n = rates.size();
        auto state = std::make_shared<State>();
        state->base.assign(queries.begin(), queries.end());
        state->runs.resize(nq);
        state->errors.resize(nq);
        state->rates.assign(rates.begin(), rates.end());

        const auto run_replication = [this, state](std::size_t q, std::size_t index,
                                                   int rep, std::uint64_t block) {
            try {
                ScenarioQuery query = state->base[q];
                query.call_arrival_rate = state->rates[index];
                const sim::ExperimentConfig experiment = experiment_config(query);
                const sim::SimulationConfig config =
                    sim::replication_config(experiment, block);
                state->runs[q][index][static_cast<std::size_t>(rep)] =
                    sim::NetworkSimulator(config).run();
            } catch (const std::exception& e) {
                std::lock_guard<std::mutex> lock(state->error_mutex);
                if (!state->errors[q][index]) {
                    state->errors[q][index] = std::make_unique<EvalError>(EvalError{
                        EvalErrorCode::internal,
                        std::string(e.what()) + " [" +
                            scenario_context(state->base[q].parameters,
                                             state->rates[index]) +
                            "]"});
                }
            }
        };

        GridPlan plan;
        const std::vector<bool> planned = probe_queries(queries, rates, state->errors);
        std::uint64_t stride = 1;
        for (const ScenarioQuery& query : queries) {
            stride = std::max(stride, static_cast<std::uint64_t>(std::max(
                                          1, query.simulation.replications)));
        }
        for (std::size_t q = 0; q < nq; ++q) {
            if (!planned[q]) {
                continue;
            }
            const int replications = queries[q].simulation.replications;
            state->runs[q].assign(n, std::vector<sim::SimulationResults>(
                                         static_cast<std::size_t>(replications)));
            for (std::size_t index = 0; index < n; ++index) {
                for (int rep = 0; rep < replications; ++rep) {
                    const std::uint64_t block =
                        (options.grid_offset +
                         static_cast<std::uint64_t>(q * n + index)) *
                            stride +
                        static_cast<std::uint64_t>(rep);
                    plan.tasks.push_back({0, [run_replication, q, index, rep, block] {
                                              run_replication(q, index, rep, block);
                                          }});
                }
            }
        }

        const int resolved = common::ThreadPool::resolve_thread_count(options.num_threads);
        plan.collect = [this, state, nq, n, resolved] {
            std::vector<GridOutcome> outcomes;
            outcomes.reserve(nq);
            for (std::size_t q = 0; q < nq; ++q) {
                if (const EvalError* failed = first_error(state->errors[q])) {
                    outcomes.push_back(*failed);
                    continue;
                }
                const int width = std::min<int>(
                    resolved,
                    static_cast<int>(n) * state->base[q].simulation.replications);
                double query_wall = 0.0;
                for (const auto& point_runs : state->runs[q]) {
                    for (const sim::SimulationResults& run : point_runs) {
                        query_wall += run.wall_seconds;
                    }
                }
                std::vector<PointEvaluation> points;
                points.reserve(n);
                bool failed_late = false;
                for (std::size_t index = 0; index < n; ++index) {
                    ScenarioQuery query = state->base[q];
                    query.call_arrival_rate = state->rates[index];
                    try {
                        const sim::ExperimentConfig experiment =
                            experiment_config(query);
                        points.push_back(pooled_point(
                            query, experiment.base,
                            std::move(state->runs[q][index]), width));
                    } catch (const std::exception& e) {
                        outcomes.push_back(EvalError{
                            EvalErrorCode::internal,
                            std::string(e.what()) + " [" +
                                scenario_context(query.parameters,
                                                 query.call_arrival_rate) +
                                "]"});
                        failed_late = true;
                        break;
                    }
                    points.back().wall_seconds =
                        query_wall / static_cast<double>(std::max<std::size_t>(1, n));
                }
                if (!failed_late) {
                    outcomes.push_back(std::move(points));
                }
            }
            return outcomes;
        };
        plan.waves = plan.tasks.empty() ? 0 : 1;
        plan.sequential_waves =
            static_cast<std::size_t>(std::count(planned.begin(), planned.end(), true));
        return plan;
    }

private:
    /// Simulator configuration of the query's lattice: per-cell parameters
    /// with the reuse split applied, edge weights 1 + drift*east matching
    /// the analytic mobility shares, dwell scale = speed scale, routing
    /// areas when ra_block tiles the lattice, per-cell measurement on.
    static sim::ExperimentConfig experiment_config(const ScenarioQuery& query) {
        const network::CellLattice lattice = lattice_from(query);
        const network::MobilityModel mobility = mobility_from(query);
        mobility.validate();

        sim::ExperimentConfig experiment;
        experiment.base.cell = query.resolved_parameters();
        experiment.base.warmup_time = query.simulation.warmup_time;
        experiment.base.batch_count = query.simulation.batch_count;
        experiment.base.batch_duration = query.simulation.batch_duration;
        experiment.base.tcp_enabled = query.simulation.tcp;
        experiment.replications = query.simulation.replications;
        experiment.seed = query.simulation.seed;

        const int cells = lattice.size();
        experiment.base.num_cells = cells;
        experiment.base.network_cells.reserve(static_cast<std::size_t>(cells));
        experiment.base.network_targets.resize(static_cast<std::size_t>(cells));
        experiment.base.network_weights.resize(static_cast<std::size_t>(cells));
        for (int c = 0; c < cells; ++c) {
            experiment.base.network_cells.push_back(lattice.cell_parameters(c));
            for (const network::DirectedEdge& edge : lattice.edges(c)) {
                experiment.base.network_targets[static_cast<std::size_t>(c)].push_back(
                    edge.to);
                experiment.base.network_weights[static_cast<std::size_t>(c)].push_back(
                    1.0 + mobility.drift * edge.east);
            }
        }
        experiment.base.network_dwell_scale = mobility.speed_scale();
        if (query.network.ra_block > 0) {
            experiment.base.network_routing_areas.reserve(
                static_cast<std::size_t>(cells));
            for (int c = 0; c < cells; ++c) {
                experiment.base.network_routing_areas.push_back(
                    lattice.routing_area(c));
            }
        }
        experiment.base.measure_all_cells = true;
        return experiment;
    }

    /// Pools per-replication results (replication order): per-cell means of
    /// the replication batch-means estimates, aggregated network-wide; the
    /// mid-cell CI detail lands in point.sim as usual.
    PointEvaluation pooled_point(const ScenarioQuery& query,
                                 const sim::SimulationConfig& config,
                                 std::vector<sim::SimulationResults> runs,
                                 int threads_used) {
        PointEvaluation point;
        point.backend = name();
        point.call_arrival_rate = query.call_arrival_rate;

        const std::size_t cells = config.network_cells.size();
        const double reps = static_cast<double>(runs.size());
        point.cell_measures.resize(cells);
        for (std::size_t c = 0; c < cells; ++c) {
            core::Measures& m = point.cell_measures[c];
            for (const sim::SimulationResults& run : runs) {
                const sim::CellEstimates& e = run.cells[c];
                m.carried_data_traffic += e.carried_data_traffic.mean;
                m.packet_loss_probability += e.packet_loss_probability.mean;
                m.queueing_delay += e.queueing_delay.mean;
                m.throughput_per_user_kbps += e.throughput_per_user_kbps.mean;
                m.mean_queue_length += e.mean_queue_length.mean;
                m.carried_voice_traffic += e.carried_voice_traffic.mean;
                m.average_gprs_sessions += e.average_gprs_sessions.mean;
                m.gsm_blocking += e.gsm_blocking.mean;
                m.gprs_blocking += e.gprs_blocking.mean;
            }
            m.carried_data_traffic /= reps;
            m.packet_loss_probability /= reps;
            m.queueing_delay /= reps;
            m.throughput_per_user_kbps /= reps;
            m.mean_queue_length /= reps;
            m.carried_voice_traffic /= reps;
            m.average_gprs_sessions /= reps;
            m.gsm_blocking /= reps;
            m.gprs_blocking /= reps;
            const core::Parameters& p = config.network_cells[c];
            m.data_throughput_kbps = m.carried_data_traffic * p.pdch_rate_kbps *
                                     (1.0 - p.block_error_rate);
        }
        double rau = 0.0;
        for (const sim::SimulationResults& run : runs) {
            rau += run.routing_area_update_rate;
        }
        point.rau_rate = rau / reps;
        point.measures = network::aggregate_measures(point.cell_measures);

        point.sim = sim::pool_replications(std::move(runs));
        point.sim.threads_used = threads_used;
        point.has_confidence = true;
        return point;
    }
};

}  // namespace

namespace detail {

void register_network_backends(BackendRegistry& registry) {
    const auto add = [&](BackendRegistry::Factory make) {
        const std::unique_ptr<Evaluator> instance = make();
        // Built-in registration cannot collide (it runs once, first).
        (void)registry.add(instance->name(), instance->description(), std::move(make));
    };
    add([] { return std::make_unique<NetworkFpEvaluator>(); });
    add([] { return std::make_unique<NetworkDesEvaluator>(); });
}

}  // namespace detail

}  // namespace gprsim::eval
