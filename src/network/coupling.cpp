#include "network/coupling.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>

#include "queueing/handover.hpp"

namespace gprsim::network {

namespace {

using common::EvalError;
using common::EvalErrorCode;

double relative_change(double next, double current) {
    return std::fabs(next - current) / std::max(1.0, std::fabs(current));
}

/// Weighted mean with uniform fallback when the weights sum to zero.
double weighted_mean(const std::vector<core::Measures>& cells,
                     double core::Measures::* value, double core::Measures::* weight) {
    double num = 0.0;
    double den = 0.0;
    for (const core::Measures& m : cells) {
        num += (m.*value) * (m.*weight);
        den += m.*weight;
    }
    if (den > 0.0) {
        return num / den;
    }
    double sum = 0.0;
    for (const core::Measures& m : cells) {
        sum += m.*value;
    }
    return sum / static_cast<double>(cells.size());
}

double mean(const std::vector<core::Measures>& cells, double core::Measures::* value) {
    double sum = 0.0;
    for (const core::Measures& m : cells) {
        sum += m.*value;
    }
    return sum / static_cast<double>(cells.size());
}

}  // namespace

core::Measures aggregate_measures(const std::vector<core::Measures>& cells) {
    core::Measures a;
    if (cells.empty()) {
        return a;
    }
    a.carried_data_traffic = mean(cells, &core::Measures::carried_data_traffic);
    a.mean_queue_length = mean(cells, &core::Measures::mean_queue_length);
    a.offered_packet_rate = mean(cells, &core::Measures::offered_packet_rate);
    a.data_throughput_kbps = mean(cells, &core::Measures::data_throughput_kbps);
    a.carried_voice_traffic = mean(cells, &core::Measures::carried_voice_traffic);
    a.average_gprs_sessions = mean(cells, &core::Measures::average_gprs_sessions);
    a.packet_loss_probability =
        weighted_mean(cells, &core::Measures::packet_loss_probability,
                      &core::Measures::offered_packet_rate);
    a.queueing_delay = weighted_mean(cells, &core::Measures::queueing_delay,
                                     &core::Measures::carried_data_traffic);
    a.throughput_per_user_kbps =
        weighted_mean(cells, &core::Measures::throughput_per_user_kbps,
                      &core::Measures::average_gprs_sessions);
    a.gsm_blocking = mean(cells, &core::Measures::gsm_blocking);
    a.gprs_blocking = mean(cells, &core::Measures::gprs_blocking);
    return a;
}

struct NetworkFixedPoint::Impl {
    CellLattice lattice;
    MobilityMatrices matrices;
    eval::ScenarioQuery base_query;
    eval::Evaluator* inner = nullptr;
    NetworkOptions options;

    /// Per-cell inner parameters: lattice parameters with the dwell times
    /// rescaled to the mobility speed and the handover inflow pinned.
    std::vector<core::Parameters> cell_parameters;

    // The outer iterate: pinned incoming handover flows per cell.
    std::vector<double> in_v;
    std::vector<double> in_s;

    /// Per-cell slots of the current iteration. solve_cell(c) writes only
    /// slot c; advance()/finish() read them serially.
    struct CellSlot {
        core::Measures measures;
        long long iterations = 0;
        std::unique_ptr<EvalError> error;
    };
    std::vector<CellSlot> slots;

    std::vector<double> residuals;
    double residual = 0.0;
    int iterations = 0;
    bool converged = false;
    bool done = false;
    std::atomic<bool> pending_fold{false};
    long long inner_iterations = 0;
    std::unique_ptr<EvalError> failure;

    void fold();
};

NetworkFixedPoint::NetworkFixedPoint(CellLattice lattice, const MobilityModel& mobility,
                                     const eval::ScenarioQuery& cell_query,
                                     eval::Evaluator& inner, const NetworkOptions& options)
    : impl_(std::make_unique<Impl>()) {
    impl_->lattice = std::move(lattice);
    impl_->matrices = build_mobility(impl_->lattice, mobility);
    impl_->base_query = cell_query;
    impl_->inner = &inner;
    impl_->options = options;

    const int n = impl_->lattice.size();
    const double scale = mobility.speed_scale();
    impl_->cell_parameters.reserve(static_cast<std::size_t>(n));
    impl_->in_v.resize(static_cast<std::size_t>(n));
    impl_->in_s.resize(static_cast<std::size_t>(n));
    impl_->slots.resize(static_cast<std::size_t>(n));
    impl_->residuals.assign(static_cast<std::size_t>(n), 0.0);
    for (int c = 0; c < n; ++c) {
        core::Parameters p = impl_->lattice.cell_parameters(c);
        p.mean_gsm_dwell_time /= scale;
        p.mean_gprs_dwell_time /= scale;
        p.pinned_handover = true;
        // Initial inflows: each cell's own symmetric balance (paper
        // Eq. 4-5) at the scaled dwell rates — exact for a homogeneous
        // wrapped lattice, a warm start everywhere else.
        impl_->in_v[static_cast<std::size_t>(c)] =
            queueing::balance_handover_flow(p.gsm_arrival_rate(), p.gsm_completion_rate(),
                                            p.gsm_handover_rate(), p.gsm_channels())
                .handover_arrival_rate;
        impl_->in_s[static_cast<std::size_t>(c)] =
            queueing::balance_handover_flow(p.gprs_arrival_rate(), p.gprs_completion_rate(),
                                            p.gprs_handover_rate(), p.max_gprs_sessions)
                .handover_arrival_rate;
        impl_->cell_parameters.push_back(p);
    }
}

NetworkFixedPoint::~NetworkFixedPoint() = default;

int NetworkFixedPoint::cell_count() const { return impl_->lattice.size(); }
bool NetworkFixedPoint::done() const { return impl_->done; }
int NetworkFixedPoint::iterations() const { return impl_->iterations; }

void NetworkFixedPoint::solve_cell(int cell) {
    Impl& s = *impl_;
    if (s.done) {
        return;
    }
    const std::size_t c = static_cast<std::size_t>(cell);
    eval::ScenarioQuery query = s.base_query;
    query.parameters = s.cell_parameters[c];
    query.parameters.gsm_handover_in = s.in_v[c];
    query.parameters.gprs_handover_in = s.in_s[c];
    query.call_arrival_rate = query.parameters.call_arrival_rate;
    common::Result<eval::PointEvaluation> point = s.inner->evaluate(query);
    Impl::CellSlot& slot = s.slots[c];
    if (!point.ok()) {
        slot.error = std::make_unique<EvalError>(point.error());
    } else {
        slot.error.reset();
        slot.measures = point.value().measures;
        slot.iterations = point.value().iterations;
    }
    s.pending_fold.store(true, std::memory_order_relaxed);
}

void NetworkFixedPoint::Impl::fold() {
    pending_fold.store(false, std::memory_order_relaxed);
    const std::size_t n = slots.size();
    for (std::size_t c = 0; c < n; ++c) {
        if (slots[c].error) {
            char where[48];
            std::snprintf(where, sizeof(where), "network cell %zu: ", c);
            failure = std::make_unique<EvalError>(
                EvalError{slots[c].error->code, where + slots[c].error->message});
            done = true;
            return;
        }
        inner_iterations += slots[c].iterations;
    }

    // The coupling update: cell j's new inflow is its neighbors' mean
    // populations pushed through the directed per-user rate matrices.
    residual = 0.0;
    const double theta = options.damping;
    std::vector<double> next_v(n, 0.0);
    std::vector<double> next_s(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double pop_v = slots[i].measures.carried_voice_traffic;
        const double pop_s = slots[i].measures.average_gprs_sessions;
        for (std::size_t j = 0; j < n; ++j) {
            next_v[j] += pop_v * matrices.gsm[i][j];
            next_s[j] += pop_s * matrices.gprs[i][j];
        }
    }
    for (std::size_t j = 0; j < n; ++j) {
        residuals[j] = std::max(relative_change(next_v[j], in_v[j]),
                                relative_change(next_s[j], in_s[j]));
        residual = std::max(residual, residuals[j]);
        in_v[j] += theta * (next_v[j] - in_v[j]);
        in_s[j] += theta * (next_s[j] - in_s[j]);
    }
    ++iterations;
    converged = residual <= options.tolerance;
    done = converged || iterations >= options.max_outer_iterations;
}

void NetworkFixedPoint::advance() {
    if (impl_->done) {
        return;
    }
    impl_->fold();
}

common::Result<NetworkSolution> NetworkFixedPoint::finish() {
    Impl& s = *impl_;
    // A wave-ordered execution leaves the last round's solves unfolded
    // (the next wave's fold never ran); fold them now so the serial and
    // wave paths execute identical arithmetic.
    if (!s.done && s.pending_fold.load(std::memory_order_relaxed)) {
        s.fold();
    }
    if (s.failure) {
        return *s.failure;
    }
    if (!s.converged) {
        char what[192];
        std::snprintf(what, sizeof(what),
                      "network fixed point did not converge: inflow residual %.3e "
                      "after %d outer iterations (tolerance %.1e, damping %g)",
                      s.residual, s.iterations, s.options.tolerance, s.options.damping);
        return EvalError{EvalErrorCode::non_convergence,
                         std::string(what) + " [" +
                             eval::scenario_context(s.base_query.parameters,
                                                    s.base_query.call_arrival_rate) +
                             "]"};
    }
    NetworkSolution solution;
    const std::size_t n = s.slots.size();
    solution.cells.reserve(n);
    std::vector<double> pop_v(n);
    std::vector<double> pop_s(n);
    for (std::size_t c = 0; c < n; ++c) {
        solution.cells.push_back(s.slots[c].measures);
        pop_v[c] = s.slots[c].measures.carried_voice_traffic;
        pop_s[c] = s.slots[c].measures.average_gprs_sessions;
    }
    solution.aggregate = aggregate_measures(solution.cells);
    solution.cell_residuals = s.residuals;
    solution.outer_iterations = s.iterations;
    solution.residual = s.residual;
    solution.converged = s.converged;
    solution.rau_rate = routing_area_update_rate(s.matrices, pop_v, pop_s);
    solution.inner_iterations = s.inner_iterations;
    return solution;
}

common::Result<NetworkSolution> NetworkFixedPoint::solve() {
    while (!done()) {
        for (int c = 0; c < cell_count(); ++c) {
            solve_cell(c);
        }
        advance();
    }
    return finish();
}

}  // namespace gprsim::network
