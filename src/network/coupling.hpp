// The analytic network coupling: an outer fixed-point iteration over the
// lattice's incoming handover flows, with each cell solved by a delegated
// single-cell backend under a pinned external inflow.
//
// The paper balances one cell's handover flow against its own outflow
// (Eq. 4-5); on a lattice the incoming flow of cell j is instead set by
// its neighbors' populations through the mobility matrices:
//
//   in_v[j] = sum_i  E[n_v,i] * H_gsm[i][j]       (and likewise sessions)
//
// The outer loop alternates independent per-cell solves at pinned inflows
// (Parameters::pinned_handover — any registered analytic backend works as
// the inner solve) with a serial damped update of the inflow vector. On a
// homogeneous wrapped lattice the doubly-stochastic mobility matrices make
// the paper's self-balanced single cell the exact fixed point, which the
// network symmetry tests pin to 1e-10.
//
// Determinism contract: solve_cell() calls within one outer iteration are
// independent (they read the iteration's frozen inflows and write disjoint
// per-cell slots), and every reduction — the inflow update, residuals,
// aggregation — runs serially in fixed cell order inside advance() /
// finish(). The serial solve() entry point and the wave-ordered plan of
// the network-fp backend execute the identical call sequence, so results
// are bitwise invariant to thread count and dispatch mode.
#pragma once

#include <memory>
#include <vector>

#include "common/result.hpp"
#include "core/measures.hpp"
#include "eval/evaluator.hpp"
#include "network/lattice.hpp"
#include "network/mobility.hpp"

namespace gprsim::network {

struct NetworkOptions {
    double tolerance = 1e-12;  ///< max relative inflow change across cells
    double damping = 1.0;      ///< inflow step fraction in (0, 1]
    int max_outer_iterations = 50;
};

struct NetworkSolution {
    std::vector<core::Measures> cells;   ///< per-cell measures, cell order
    core::Measures aggregate;            ///< network aggregate (see below)
    std::vector<double> cell_residuals;  ///< per-cell inflow change at the last fold
    int outer_iterations = 0;
    double residual = 0.0;  ///< max of cell_residuals
    bool converged = false;
    double rau_rate = 0.0;  ///< routing-area updates per second, network-wide
    long long inner_iterations = 0;  ///< summed over all inner solves
};

/// Network aggregate of per-cell measures: per-cell means for the
/// extensive quantities (CDT, MQL, CVT, AGS, offered rate, throughput) so
/// aggregates stay comparable to single-cell values at any lattice size;
/// flow-weighted means for the ratios (PLP by offered packet rate, QD and
/// ATU by carried data / sessions) so empty cells cannot dilute them; plain
/// means for the blocking probabilities. Uniform fallback when a weight
/// vector sums to zero.
core::Measures aggregate_measures(const std::vector<core::Measures>& cells);

/// One network fixed-point computation, exposed as separate phases so the
/// network-fp backend can lay the per-cell solves of each outer iteration
/// onto a shared thread pool as one wave of tasks:
///
///   while (!done()) { solve_cell(0..n-1)  [any order / concurrently];
///                     advance()           [serial, once per iteration]; }
///   finish()
///
/// solve() runs that loop serially — same calls, same order, bitwise the
/// same result.
class NetworkFixedPoint {
public:
    /// `cell_query` supplies the per-cell knob blocks (solver, approx) and
    /// the base arrival rate; per-cell parameters and arrival rates come
    /// from the lattice. `inner` must outlive this object.
    NetworkFixedPoint(CellLattice lattice, const MobilityModel& mobility,
                      const eval::ScenarioQuery& cell_query, eval::Evaluator& inner,
                      const NetworkOptions& options);
    ~NetworkFixedPoint();

    int cell_count() const;
    /// True once converged, failed, or at the iteration cap; later
    /// solve_cell() calls are no-ops.
    bool done() const;
    int iterations() const;

    /// Solves cell `cell` at the current iteration's pinned inflows.
    /// Thread-safe across DISTINCT cells of one iteration; never throws.
    void solve_cell(int cell);
    /// Folds the iteration's cell solves into new damped inflows and the
    /// convergence decision. Serial; call exactly once after each full
    /// round of solve_cell().
    void advance();
    /// Assembles the solution (serial). Typed non_convergence error when
    /// the outer loop hit the iteration cap, inner-solve errors forwarded
    /// with their cell named.
    common::Result<NetworkSolution> finish();

    /// The serial reference path: full solve in one call.
    common::Result<NetworkSolution> solve();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace gprsim::network
