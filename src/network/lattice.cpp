#include "network/lattice.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace gprsim::network {

namespace {

/// Relative neighbor offset with its unit east-component.
struct Offset {
    int dx;
    int dy;
    double east;
};

const double kDiag = 1.0 / std::sqrt(2.0);

/// Offsets in fixed scan order (E, W, S, N first, then diagonals) so edge
/// lists are deterministic and the east/west pair leads for drift tests.
std::vector<Offset> grid4_offsets() {
    return {{1, 0, 1.0}, {-1, 0, -1.0}, {0, 1, 0.0}, {0, -1, 0.0}};
}

std::vector<Offset> grid8_offsets() {
    return {{1, 0, 1.0},   {-1, 0, -1.0}, {0, 1, 0.0},    {0, -1, 0.0},
            {1, 1, kDiag}, {1, -1, kDiag}, {-1, 1, -kDiag}, {-1, -1, -kDiag}};
}

/// Odd-r offset hex rows: even rows lean west, odd rows lean east.
std::vector<Offset> hex_offsets(int y) {
    const int lean = (y % 2 == 0) ? -1 : 0;
    return {{1, 0, 1.0},           {-1, 0, -1.0},
            {lean + 1, 1, 0.5},    {lean, 1, -0.5},
            {lean + 1, -1, 0.5},   {lean, -1, -0.5}};
}

int wrap_coord(int value, int extent) {
    const int m = value % extent;
    return m < 0 ? m + extent : m;
}

}  // namespace

Topology topology_from_string(const std::string& name) {
    if (name == "grid4") {
        return Topology::grid4;
    }
    if (name == "grid8") {
        return Topology::grid8;
    }
    if (name == "hex") {
        return Topology::hex;
    }
    if (name == "clique") {
        return Topology::clique;
    }
    throw std::invalid_argument("unknown lattice topology '" + name +
                                "' (expected grid4, grid8, hex, or clique)");
}

const char* to_string(Topology topology) {
    switch (topology) {
        case Topology::grid4:
            return "grid4";
        case Topology::grid8:
            return "grid8";
        case Topology::hex:
            return "hex";
        case Topology::clique:
            return "clique";
    }
    return "?";
}

CellLattice CellLattice::build(const LatticeSpec& spec) {
    if (spec.width < 1 || spec.height < 1) {
        throw std::invalid_argument("CellLattice: lattice extents must be at least 1x1");
    }
    if (spec.reuse_factor < 1) {
        throw std::invalid_argument("CellLattice: reuse factor must be at least 1");
    }
    if (spec.ra_block < 0) {
        throw std::invalid_argument("CellLattice: routing-area block must be >= 0");
    }

    CellLattice lattice;
    lattice.width_ = spec.width;
    lattice.height_ = spec.height;
    lattice.topology_ = spec.topology;
    lattice.wrap_ = spec.wrap;
    lattice.reuse_factor_ = spec.reuse_factor;

    const int cells = spec.width * spec.height;
    const int k = spec.reuse_factor;
    // Deterministic reuse coloring: adjacent rows shift by k/2 + 1 so no
    // two row-neighbors share a group for the supported cluster sizes.
    const int row_shift = k == 1 ? 0 : k / 2 + 1;

    lattice.parameters_.reserve(static_cast<std::size_t>(cells));
    lattice.reuse_group_.reserve(static_cast<std::size_t>(cells));
    lattice.routing_area_.reserve(static_cast<std::size_t>(cells));

    const int ra_cols =
        spec.ra_block > 0 ? (spec.width + spec.ra_block - 1) / spec.ra_block : 1;
    const int pool = spec.cell.total_channels;
    for (int y = 0; y < spec.height; ++y) {
        for (int x = 0; x < spec.width; ++x) {
            const int group = (x + y * row_shift) % k;
            // The spectrum pool splits into k groups; remainder channels go
            // to the lowest-numbered groups, so reuse patterns with
            // k-indivisible pools produce genuinely heterogeneous cells.
            const int share = pool / k + (group < pool % k ? 1 : 0);
            core::Parameters p = spec.cell;
            p.total_channels = share;
            if (p.reserved_pdch > share) {
                throw std::invalid_argument(
                    "CellLattice: reuse split leaves fewer channels than the "
                    "reserved PDCHs (group " +
                    std::to_string(group) + " gets " + std::to_string(share) + ")");
            }
            lattice.reuse_group_.push_back(group);
            lattice.routing_area_.push_back(
                spec.ra_block > 0 ? (y / spec.ra_block) * ra_cols + x / spec.ra_block
                                  : 0);
            lattice.parameters_.push_back(p);
        }
    }
    for (const auto& [cell, replacement] : spec.overrides) {
        if (cell < 0 || cell >= cells) {
            throw std::invalid_argument("CellLattice: override cell index out of range");
        }
        lattice.parameters_[static_cast<std::size_t>(cell)] = replacement;
    }
    for (const core::Parameters& p : lattice.parameters_) {
        p.validate();
    }

    lattice.edges_.assign(static_cast<std::size_t>(cells), {});
    for (int y = 0; y < spec.height; ++y) {
        for (int x = 0; x < spec.width; ++x) {
            auto& edges = lattice.edges_[static_cast<std::size_t>(lattice.cell_index(x, y))];
            if (spec.topology == Topology::clique) {
                for (int other = 0; other < cells; ++other) {
                    if (other != lattice.cell_index(x, y)) {
                        edges.push_back({other, 0.0});
                    }
                }
            } else {
                const std::vector<Offset> offsets =
                    spec.topology == Topology::grid4
                        ? grid4_offsets()
                        : (spec.topology == Topology::grid8 ? grid8_offsets()
                                                            : hex_offsets(y));
                for (const Offset& o : offsets) {
                    int nx = x + o.dx;
                    int ny = y + o.dy;
                    if (spec.wrap) {
                        nx = wrap_coord(nx, spec.width);
                        ny = wrap_coord(ny, spec.height);
                    } else if (nx < 0 || nx >= spec.width || ny < 0 || ny >= spec.height) {
                        continue;  // open boundary: flow leaves the network
                    }
                    edges.push_back({lattice.cell_index(nx, ny), o.east});
                }
            }
            if (edges.empty()) {
                // 1x1 lattice (or 1-cell clique): the cell is its own
                // neighborhood, which is exactly the paper's symmetric
                // single-cell balance.
                edges.push_back({lattice.cell_index(x, y), 0.0});
            }
        }
    }
    return lattice;
}

bool CellLattice::homogeneous() const {
    for (std::size_t c = 1; c < parameters_.size(); ++c) {
        const core::Parameters& a = parameters_[0];
        const core::Parameters& b = parameters_[c];
        if (a.total_channels != b.total_channels || a.reserved_pdch != b.reserved_pdch ||
            a.buffer_capacity != b.buffer_capacity ||
            a.max_gprs_sessions != b.max_gprs_sessions ||
            a.call_arrival_rate != b.call_arrival_rate ||
            a.gprs_fraction != b.gprs_fraction ||
            edges_[c].size() != edges_[0].size()) {
            return false;
        }
    }
    return true;
}

}  // namespace gprsim::network
