// Cell-lattice topology for multi-cell GPRS networks.
//
// The paper analyzes one cell; production GPRS is a grid of cells coupled
// by handover and routing-area updates. CellLattice models the topology
// side of that coupling: a W x H lattice of cells with a configurable
// neighborhood (4/8-connected grid, hexagonal, or fully connected), an
// optional toroidal wrap, a frequency-reuse pattern that partitions the
// spectrum pool across reuse groups, routing areas as rectangular cell
// blocks, and per-cell Parameters overrides for heterogeneous scenarios.
//
// Everything here is deterministic: neighbor lists are built in a fixed
// scan order, so every consumer (analytic coupling, DES target selection)
// sees the same directed edge sequence regardless of thread count.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/parameters.hpp"

namespace gprsim::network {

/// Neighborhood shape of the lattice.
enum class Topology {
    grid4,   ///< von Neumann: N/S/E/W
    grid8,   ///< Moore: N/S/E/W + diagonals
    hex,     ///< hexagonal (odd-r offset rows), 6 neighbors
    clique,  ///< every cell neighbors every other (mean-field check)
};

/// Parses "grid4" / "grid8" / "hex" / "clique"; throws std::invalid_argument.
Topology topology_from_string(const std::string& name);
const char* to_string(Topology topology);

/// One directed neighbor edge. `east` is the unit east-component of the
/// crossing direction (+1 = due east, -1 = due west, 0 = north/south or
/// direction-free), used by the mobility model's drift weighting. Wrap
/// duplicates are kept as separate edges (a 2x1 wrapped row reaches its
/// neighbor both east and west), so edge weights always sum correctly.
struct DirectedEdge {
    int to = 0;
    double east = 0.0;
};

/// Construction recipe for a CellLattice.
struct LatticeSpec {
    int width = 2;
    int height = 2;
    Topology topology = Topology::grid4;
    /// Toroidal wrap. With wrap every cell of a homogeneous lattice is
    /// equivalent (the symmetry the network tests pin); without it the
    /// boundary is open and outward handover flow leaves the network.
    bool wrap = true;
    /// Cells per frequency-reuse cluster: the spectrum pool of
    /// `cell.total_channels` physical channels is split across this many
    /// reuse groups (remainder channels go to the lowest groups), and each
    /// cell carries its group's share. 1 = every cell gets the full pool
    /// (the single-cell limit).
    int reuse_factor = 1;
    /// Routing-area block edge, in cells: RAs tile the lattice in
    /// ra_block x ra_block squares. 0 = the whole lattice is one RA (no
    /// routing-area updates ever fire).
    int ra_block = 0;
    /// Base per-cell parameters (the spectrum pool before the reuse split).
    core::Parameters cell;
    /// Full per-cell replacements, applied after the reuse split; the
    /// override's own channel counts are taken verbatim.
    std::vector<std::pair<int, core::Parameters>> overrides;
};

class CellLattice {
public:
    /// Validates the spec and builds the lattice; throws
    /// std::invalid_argument on inconsistent specs (including a reuse
    /// split that leaves some group without a usable GSM channel).
    static CellLattice build(const LatticeSpec& spec);

    int size() const { return width_ * height_; }
    int width() const { return width_; }
    int height() const { return height_; }
    Topology topology() const { return topology_; }
    bool wrap() const { return wrap_; }
    int reuse_factor() const { return reuse_factor_; }

    int cell_index(int x, int y) const { return y * width_ + x; }
    int cell_x(int cell) const { return cell % width_; }
    int cell_y(int cell) const { return cell / width_; }

    const core::Parameters& cell_parameters(int cell) const {
        return parameters_[static_cast<std::size_t>(cell)];
    }
    /// Frequency-reuse group in [0, reuse_factor).
    int reuse_group(int cell) const { return reuse_group_[static_cast<std::size_t>(cell)]; }
    /// Routing-area id; handovers between cells with different ids fire a
    /// routing-area update.
    int routing_area(int cell) const {
        return routing_area_[static_cast<std::size_t>(cell)];
    }
    /// True when a handover from `from` to `to` crosses an RA boundary.
    bool crosses_routing_area(int from, int to) const {
        return routing_area(from) != routing_area(to);
    }

    /// Directed outgoing edges of `cell` in deterministic order. A cell
    /// whose neighborhood is empty (1x1 clique/no-wrap lattice) gets a
    /// single self-loop so handover flow is conserved and the 1-cell
    /// lattice reproduces the paper's self-balanced single cell.
    const std::vector<DirectedEdge>& edges(int cell) const {
        return edges_[static_cast<std::size_t>(cell)];
    }

    /// True when every cell has identical parameters and the same number
    /// of outgoing edges (the precondition of the symmetry tests).
    bool homogeneous() const;

private:
    int width_ = 0;
    int height_ = 0;
    Topology topology_ = Topology::grid4;
    bool wrap_ = true;
    int reuse_factor_ = 1;
    std::vector<core::Parameters> parameters_;
    std::vector<int> reuse_group_;
    std::vector<int> routing_area_;
    std::vector<std::vector<DirectedEdge>> edges_;
};

}  // namespace gprsim::network
