#include "network/mobility.hpp"

#include <stdexcept>

namespace gprsim::network {

void MobilityModel::validate() const {
    if (!(speed_kmh > 0.0) || !(reference_speed_kmh > 0.0)) {
        throw std::invalid_argument("MobilityModel: speeds must be positive");
    }
    if (!(drift >= 0.0) || drift >= 1.0) {
        throw std::invalid_argument("MobilityModel: drift must lie in [0, 1)");
    }
}

MobilityMatrices build_mobility(const CellLattice& lattice, const MobilityModel& mobility) {
    mobility.validate();
    const std::size_t n = static_cast<std::size_t>(lattice.size());
    MobilityMatrices matrices;
    matrices.gsm.assign(n, std::vector<double>(n, 0.0));
    matrices.gprs.assign(n, std::vector<double>(n, 0.0));
    matrices.rau_gsm.assign(n, std::vector<double>(n, 0.0));
    matrices.rau_gprs.assign(n, std::vector<double>(n, 0.0));

    const double scale = mobility.speed_scale();
    for (int from = 0; from < lattice.size(); ++from) {
        const std::vector<DirectedEdge>& edges = lattice.edges(from);
        double total_weight = 0.0;
        for (const DirectedEdge& edge : edges) {
            total_weight += 1.0 + mobility.drift * edge.east;
        }
        const core::Parameters& p = lattice.cell_parameters(from);
        const double out_gsm = p.gsm_handover_rate() * scale;
        const double out_gprs = p.gprs_handover_rate() * scale;
        for (const DirectedEdge& edge : edges) {
            const double share = (1.0 + mobility.drift * edge.east) / total_weight;
            const std::size_t i = static_cast<std::size_t>(from);
            const std::size_t j = static_cast<std::size_t>(edge.to);
            matrices.gsm[i][j] += out_gsm * share;
            matrices.gprs[i][j] += out_gprs * share;
            if (lattice.crosses_routing_area(from, edge.to)) {
                matrices.rau_gsm[i][j] += out_gsm * share;
                matrices.rau_gprs[i][j] += out_gprs * share;
            }
        }
    }
    return matrices;
}

double routing_area_update_rate(const MobilityMatrices& matrices,
                                const std::vector<double>& voice_population,
                                const std::vector<double>& session_population) {
    double rate = 0.0;
    for (std::size_t i = 0; i < matrices.rau_gsm.size(); ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < matrices.rau_gsm[i].size(); ++j) {
            row += matrices.rau_gsm[i][j] * voice_population[i] +
                   matrices.rau_gprs[i][j] * session_population[i];
        }
        rate += row;
    }
    return rate;
}

}  // namespace gprsim::network
