// Mobility model: per-user speed/dwell parameters -> directed inter-cell
// handover and routing-area-update rate matrices.
//
// The paper's single-cell model carries per-population dwell times
// (1/mu_h); the network layer needs to know *where* that outflow goes and
// *how fast* users actually move. Following the fluid-flow mobility
// tradition the per-user boundary-crossing rate scales linearly with
// speed, so the dwell rates calibrated at `reference_speed_kmh` are scaled
// by speed_kmh / reference_speed_kmh, and the crossing direction is split
// over the lattice neighborhood with an optional eastward drift (a
// directional bias modelling commuter flows — the asymmetric case the
// generalized handover balance exists for). Routing-area updates follow
// the distance-based location-update scheme: an update fires exactly when
// a handover crosses a routing-area boundary, so the RAU matrices are the
// handover matrices masked to RA-crossing edges.
#pragma once

#include <vector>

#include "network/lattice.hpp"

namespace gprsim::network {

struct MobilityModel {
    double speed_kmh = 3.0;            ///< mean user speed
    double reference_speed_kmh = 3.0;  ///< speed the dwell times are calibrated at
    /// Eastward directional bias in [0, 1): edge weights are
    /// 1 + drift * east-component, so 0 is isotropic and 0.9 sends nearly
    /// twice as much flow east as west.
    double drift = 0.0;

    /// Dwell-rate multiplier speed/reference (1 at the calibration speed).
    double speed_scale() const { return speed_kmh / reference_speed_kmh; }

    /// Throws std::invalid_argument on non-positive speeds or drift
    /// outside [0, 1).
    void validate() const;
};

/// Dense directed rate matrices over the lattice; entry [i][j] is the rate
/// at which one user in cell i hands over to cell j [1/s]. Row i sums to
/// cell i's scaled dwell rate (minus any flow across an open boundary).
struct MobilityMatrices {
    std::vector<std::vector<double>> gsm;
    std::vector<std::vector<double>> gprs;
    /// Handover matrices masked to routing-area-crossing edges: the
    /// per-user signalling rate of the distance-based update scheme.
    std::vector<std::vector<double>> rau_gsm;
    std::vector<std::vector<double>> rau_gprs;
};

/// Builds the directed rate matrices. Deterministic: edge weights are
/// accumulated in the lattice's fixed edge order.
MobilityMatrices build_mobility(const CellLattice& lattice, const MobilityModel& mobility);

/// Total routing-area updates per second given the per-cell mean
/// populations (voice calls, GPRS sessions): the RAU flow is the masked
/// per-user rate times the sending cell's population, summed over edges.
double routing_area_update_rate(const MobilityMatrices& matrices,
                                const std::vector<double>& voice_population,
                                const std::vector<double>& session_population);

}  // namespace gprsim::network
