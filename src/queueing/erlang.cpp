#include "queueing/erlang.hpp"

#include <cmath>
#include <stdexcept>

namespace gprsim::queueing {

double erlang_b(double offered_load, int servers) {
    if (offered_load < 0.0) {
        throw std::invalid_argument("erlang_b: negative offered load");
    }
    if (servers < 0) {
        throw std::invalid_argument("erlang_b: negative server count");
    }
    double b = 1.0;
    for (int c = 1; c <= servers; ++c) {
        b = offered_load * b / (static_cast<double>(c) + offered_load * b);
    }
    return b;
}

double erlang_c(double offered_load, int servers) {
    if (servers <= 0) {
        return 1.0;
    }
    if (offered_load >= static_cast<double>(servers)) {
        return 1.0;
    }
    const double b = erlang_b(offered_load, servers);
    const double rho = offered_load / static_cast<double>(servers);
    return b / (1.0 - rho * (1.0 - b));
}

std::vector<double> mmcc_distribution(double offered_load, int servers) {
    if (offered_load < 0.0) {
        throw std::invalid_argument("mmcc_distribution: negative offered load");
    }
    if (servers < 0) {
        throw std::invalid_argument("mmcc_distribution: negative server count");
    }
    // Build unnormalized weights relative to the largest term to avoid
    // overflow of rho^n / n! for large loads.
    std::vector<double> log_w(static_cast<std::size_t>(servers) + 1);
    log_w[0] = 0.0;
    for (int n = 1; n <= servers; ++n) {
        log_w[static_cast<std::size_t>(n)] =
            log_w[static_cast<std::size_t>(n) - 1] +
            (offered_load > 0.0 ? std::log(offered_load) : -INFINITY) -
            std::log(static_cast<double>(n));
    }
    double log_max = log_w[0];
    for (double v : log_w) {
        log_max = std::max(log_max, v);
    }
    std::vector<double> pi(log_w.size());
    double sum = 0.0;
    for (std::size_t n = 0; n < log_w.size(); ++n) {
        pi[n] = std::exp(log_w[n] - log_max);
        sum += pi[n];
    }
    for (double& v : pi) {
        v /= sum;
    }
    return pi;
}

double mmcc_carried_load(double offered_load, int servers) {
    return offered_load * (1.0 - erlang_b(offered_load, servers));
}

}  // namespace gprsim::queueing
