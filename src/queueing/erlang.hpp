// Erlang loss/delay formulas and the M/M/c/c state distribution.
//
// These closed forms carry the GSM-call and GPRS-session populations of the
// paper's model (Eq. 1-3) and its blocking/carried-traffic measures
// (Eq. 6-7 and the blocking probabilities of Section 4.2).
#pragma once

#include <vector>

namespace gprsim::queueing {

/// Erlang-B blocking probability for `servers` servers offered
/// `offered_load` Erlangs, via the numerically stable recursion
/// B(0) = 1, B(c) = rho B(c-1) / (c + rho B(c-1)).
double erlang_b(double offered_load, int servers);

/// Erlang-C probability of waiting for an M/M/c queue (requires
/// offered_load < servers for a finite result; returns 1.0 otherwise).
double erlang_c(double offered_load, int servers);

/// Stationary distribution (pi_0 ... pi_c) of the M/M/c/c loss system with
/// the given offered load (paper Eq. 2-3). Computed in a normalized way that
/// stays finite for very large loads.
std::vector<double> mmcc_distribution(double offered_load, int servers);

/// Mean number of busy servers of M/M/c/c: rho * (1 - ErlangB). This is the
/// paper's carried voice traffic (Eq. 6) and average GPRS sessions (Eq. 7).
double mmcc_carried_load(double offered_load, int servers);

}  // namespace gprsim::queueing
