#include "queueing/fixed_point.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "queueing/erlang.hpp"

namespace gprsim::queueing {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Marginal pmf of the ON-source count J = m - r on an integer support
/// [lo, lo + pmf.size()), with cumulative sums for O(1) capped-expectation
/// queries: cum0[i] = P(J <= lo + i), cum1[i] = E[J 1{J <= lo + i}].
struct OnCountPmf {
    int lo = 0;
    std::vector<double> pmf;
    std::vector<double> cum0;
    std::vector<double> cum1;
    double mean = 0.0;

    void finalize() {
        cum0.resize(pmf.size());
        cum1.resize(pmf.size());
        double c0 = 0.0;
        double c1 = 0.0;
        for (std::size_t i = 0; i < pmf.size(); ++i) {
            c0 += pmf[i];
            c1 += pmf[i] * static_cast<double>(lo + static_cast<int>(i));
            cum0[i] = c0;
            cum1[i] = c1;
        }
        mean = c1;
    }

    /// E[min(J * lambda_p, cap)] — the throttled offer against a service
    /// ceiling `cap` [packets/s].
    double capped_offer(double lambda_p, double cap) const {
        if (pmf.empty()) {
            return 0.0;
        }
        // J * lambda_p <= cap  <=>  J <= cap / lambda_p.
        const double threshold = cap / lambda_p;
        const int hi = lo + static_cast<int>(pmf.size()) - 1;
        if (threshold >= static_cast<double>(hi)) {
            return lambda_p * mean;
        }
        const int jt = static_cast<int>(std::floor(threshold));
        if (jt < lo) {
            return cap;
        }
        const std::size_t i = static_cast<std::size_t>(jt - lo);
        return lambda_p * cum1[i] + cap * (1.0 - cum0[i]);
    }
};

/// Exact mixture: J | m ~ Binomial(m, p_on) over the Erlang session pmf.
/// Each binomial row is built by two-sided recurrence from its mode so no
/// row underflows to all-zero even for extreme p_on. O(M^2).
OnCountPmf exact_on_count(const std::vector<double>& session_pmf, double p_on) {
    OnCountPmf result;
    const int cap = static_cast<int>(session_pmf.size()) - 1;
    result.lo = 0;
    result.pmf.assign(static_cast<std::size_t>(cap) + 1, 0.0);
    std::vector<double> row(static_cast<std::size_t>(cap) + 1);
    for (int m = 0; m <= cap; ++m) {
        const double weight = session_pmf[static_cast<std::size_t>(m)];
        if (weight <= 0.0) {
            continue;
        }
        const int mode = std::clamp(
            static_cast<int>(static_cast<double>(m + 1) * p_on), 0, m);
        row[static_cast<std::size_t>(mode)] = 1.0;
        for (int j = mode; j < m; ++j) {
            row[static_cast<std::size_t>(j) + 1] =
                row[static_cast<std::size_t>(j)] *
                (static_cast<double>(m - j) * p_on) /
                (static_cast<double>(j + 1) * (1.0 - p_on));
        }
        for (int j = mode; j > 0; --j) {
            row[static_cast<std::size_t>(j) - 1] =
                row[static_cast<std::size_t>(j)] *
                (static_cast<double>(j) * (1.0 - p_on)) /
                (static_cast<double>(m - j + 1) * p_on);
        }
        double sum = 0.0;
        for (int j = 0; j <= m; ++j) {
            sum += row[static_cast<std::size_t>(j)];
        }
        for (int j = 0; j <= m; ++j) {
            result.pmf[static_cast<std::size_t>(j)] +=
                weight * row[static_cast<std::size_t>(j)] / sum;
            row[static_cast<std::size_t>(j)] = 0.0;
        }
    }
    result.finalize();
    return result;
}

/// Large-cap path: J is a binomial mixed over the Erlang session pmf, so
/// match its first two moments (E[J] = p E[m], Var[J] = p(1-p) E[m] +
/// p^2 Var[m]) with a normal discretized on the integer grid mean +- 8
/// sigma. Takes the session moments directly — the Erlang-loss pmf has
/// closed-form moments (see the caller), so this path never materializes
/// the O(M) session distribution. O(sigma).
OnCountPmf normal_on_count(double e1, double e2, int cap, double p_on) {
    const double mean = p_on * e1;
    const double variance =
        p_on * (1.0 - p_on) * e1 + p_on * p_on * std::max(0.0, e2 - e1 * e1);
    const double sigma = std::sqrt(std::max(variance, 0.0));

    OnCountPmf result;
    if (!(sigma > 0.0)) {
        result.lo = std::clamp(static_cast<int>(std::lround(mean)), 0, cap);
        result.pmf.assign(1, 1.0);
        result.finalize();
        return result;
    }
    const int lo = std::clamp(static_cast<int>(std::floor(mean - 8.0 * sigma)), 0, cap);
    const int hi = std::clamp(static_cast<int>(std::ceil(mean + 8.0 * sigma)), lo, cap);
    result.lo = lo;
    result.pmf.resize(static_cast<std::size_t>(hi - lo) + 1);
    const double inv = 1.0 / (sigma * std::sqrt(2.0));
    // Continuity-corrected cell masses Phi(j + 1/2) - Phi(j - 1/2),
    // renormalized over the truncated support.
    double total = 0.0;
    double prev = std::erf((static_cast<double>(lo) - 0.5 - mean) * inv);
    for (int j = lo; j <= hi; ++j) {
        const double next = std::erf((static_cast<double>(j) + 0.5 - mean) * inv);
        const double mass = 0.5 * (next - prev);
        result.pmf[static_cast<std::size_t>(j - lo)] = mass;
        total += mass;
        prev = next;
    }
    for (double& mass : result.pmf) {
        mass /= total;
    }
    result.finalize();
    return result;
}

double relative_change(double next, double current) {
    const double scale = std::max({std::fabs(next), std::fabs(current), 1e-12});
    return std::fabs(next - current) / scale;
}

}  // namespace

FixedPointResult solve_fixed_point(const core::Parameters& p,
                                   const FixedPointOptions& options) {
    p.validate();
    const int channels = p.total_channels;
    const int voice_servers = p.gsm_channels();
    const int session_cap = p.max_gprs_sessions;
    const int capacity = p.buffer_capacity;
    const int onset = p.flow_control_onset();
    const traffic::Ipp ipp = p.traffic.ipp();
    const double p_on = ipp.off_to_on_rate / (ipp.on_to_off_rate + ipp.off_to_on_rate);
    const double lambda_p = ipp.on_packet_rate;
    const double mu_srv = p.packet_service_rate();

    const double lambda_v = p.gsm_arrival_rate();
    const double mu_v = p.gsm_completion_rate();
    const double mu_h_v = p.gsm_handover_rate();
    const double lambda_s = p.gprs_arrival_rate();
    const double mu_s = p.gprs_completion_rate();
    const double mu_h_s = p.gprs_handover_rate();

    FixedPointResult result;
    result.normal_on_count = session_cap > kExactOnCountLimit;

    // The iterate: both handover flows (paper Eq. 4-5, initialized at the
    // fresh rates like queueing::balance_handover_flow) plus the queue
    // throughput that closes the loop through the data plane. Under a
    // pinned external inflow (network inner solve) the handover components
    // are held at the supplied rates and only the throughput iterates.
    const bool pinned = p.pinned_handover;
    double lh_v = pinned ? p.gsm_handover_in : lambda_v;
    double lh_s = pinned ? p.gprs_handover_in : lambda_s;
    double throughput = 0.0;

    double rho_v = 0.0;
    double rho_s = 0.0;
    std::vector<double> pi(static_cast<std::size_t>(capacity) + 1, 0.0);
    std::vector<double> served(static_cast<std::size_t>(capacity) + 1, 0.0);
    std::vector<double> offered(static_cast<std::size_t>(capacity) + 1, 0.0);
    std::vector<double> log_pi(static_cast<std::size_t>(capacity) + 1);
    std::vector<double> avail_p(static_cast<std::size_t>(channels) + 1);
    std::vector<double> g(static_cast<std::size_t>(channels) + 1);
    std::vector<double> cum_p(static_cast<std::size_t>(channels) + 1);
    std::vector<double> cum_pa(static_cast<std::size_t>(channels) + 1);
    std::vector<double> cum_pg(static_cast<std::size_t>(channels) + 1);

    const double theta = options.damping;
    for (int iteration = 1; iteration <= options.max_iterations; ++iteration) {
        result.iterations = iteration;
        rho_v = (lambda_v + lh_v) / (mu_v + mu_h_v);
        rho_s = (lambda_s + lh_s) / (mu_s + mu_h_s);

        // (a) voice sub-model: Erlang update of the GSM handover flow.
        const std::vector<double> voice = mmcc_distribution(rho_v, voice_servers);
        const double carried_v = mmcc_carried_load(rho_v, voice_servers);
        const double lh_v_next = pinned ? lh_v : mu_h_v * carried_v;

        // (b) session sub-model: same update over the session cap. The
        // ON-count marginal for the queue rides along: either the exact
        // binomial-Erlang mixture from the full session pmf, or (above the
        // exact-path cap) a moment-matched normal from the closed-form
        // Erlang-loss moments E[m] = rho (1 - B) and
        // E[m^2] = rho (E[m] + (1 - B) - M B), which keeps every sweep
        // O(sigma) instead of O(M) at million-session populations.
        OnCountPmf on_count;
        double carried_s = 0.0;
        if (result.normal_on_count) {
            // 40 sigma past the offered load the Erlang-B recursion
            // underflows to exactly 0.0 anyway; skip its O(M) pass so
            // lightly-loaded sweeps over million-session caps stay O(sigma).
            const bool no_blocking =
                static_cast<double>(session_cap) >
                rho_s + 40.0 * std::sqrt(rho_s) + 100.0;
            const double blocking_s =
                no_blocking ? 0.0 : erlang_b(rho_s, session_cap);
            carried_s = rho_s * (1.0 - blocking_s);
            const double e2 =
                rho_s * (carried_s + (1.0 - blocking_s) -
                         static_cast<double>(session_cap) * blocking_s);
            on_count = normal_on_count(carried_s, e2, session_cap, p_on);
        } else {
            const std::vector<double> sessions =
                mmcc_distribution(rho_s, session_cap);
            carried_s = mmcc_carried_load(rho_s, session_cap);
            on_count = exact_on_count(sessions, p_on);
        }
        const double lh_s_next = pinned ? lh_s : mu_h_s * carried_s;

        // (c) queue sub-model: level-dependent birth-death over the buffer
        // with mean-rate closure against the current marginals.
        const double full_rate = lambda_p * on_count.mean;

        // Available-channel pmf: A = N - n over the voice marginal, plus
        // prefix sums in a so E[min(A, c)] and E[g(min(A, c))] are O(1).
        std::fill(avail_p.begin(), avail_p.end(), 0.0);
        for (int n = 0; n <= voice_servers; ++n) {
            avail_p[static_cast<std::size_t>(channels - n)] =
                voice[static_cast<std::size_t>(n)];
        }
        for (int c = 0; c <= channels; ++c) {
            g[static_cast<std::size_t>(c)] =
                on_count.capped_offer(lambda_p, static_cast<double>(c) * mu_srv);
        }
        double c0 = 0.0;
        double ca = 0.0;
        double cg = 0.0;
        for (int a = 0; a <= channels; ++a) {
            const double w = avail_p[static_cast<std::size_t>(a)];
            c0 += w;
            ca += w * static_cast<double>(a);
            cg += w * g[static_cast<std::size_t>(a)];
            cum_p[static_cast<std::size_t>(a)] = c0;
            cum_pa[static_cast<std::size_t>(a)] = ca;
            cum_pg[static_cast<std::size_t>(a)] = cg;
        }

        for (int k = 0; k <= capacity; ++k) {
            const std::size_t cap =
                static_cast<std::size_t>(std::min(8LL * k, static_cast<long long>(channels)));
            // E[min(A, 8k)] — mean PDCHs serving at level k.
            served[static_cast<std::size_t>(k)] =
                cum_pa[cap] + static_cast<double>(cap) * (1.0 - cum_p[cap]);
            // Offered rate at level k: full below the flow-control onset,
            // E[min(J lambda_p, min(A, 8k) mu_srv)] above it (Table 1).
            offered[static_cast<std::size_t>(k)] =
                k <= onset ? full_rate
                           : cum_pg[cap] + g[cap] * (1.0 - cum_p[cap]);
        }

        log_pi[0] = 0.0;
        for (int k = 0; k < capacity; ++k) {
            const double birth = offered[static_cast<std::size_t>(k)];
            const double death = mu_srv * served[static_cast<std::size_t>(k) + 1];
            log_pi[static_cast<std::size_t>(k) + 1] =
                (birth > 0.0 && death > 0.0)
                    ? log_pi[static_cast<std::size_t>(k)] + std::log(birth) -
                          std::log(death)
                    : kNegInf;
        }
        const double peak = *std::max_element(log_pi.begin(), log_pi.end());
        double norm = 0.0;
        for (int k = 0; k <= capacity; ++k) {
            pi[static_cast<std::size_t>(k)] =
                std::exp(log_pi[static_cast<std::size_t>(k)] - peak);
            norm += pi[static_cast<std::size_t>(k)];
        }
        for (double& mass : pi) {
            mass /= norm;
        }
        double carried_data = 0.0;
        for (int k = 1; k <= capacity; ++k) {
            carried_data +=
                pi[static_cast<std::size_t>(k)] * served[static_cast<std::size_t>(k)];
        }
        const double throughput_next = mu_srv * carried_data;

        result.residual = std::max({relative_change(lh_v_next, lh_v),
                                    relative_change(lh_s_next, lh_s),
                                    relative_change(throughput_next, throughput)});
        lh_v += theta * (lh_v_next - lh_v);
        lh_s += theta * (lh_s_next - lh_s);
        throughput += theta * (throughput_next - throughput);
        if (result.residual <= options.tolerance) {
            result.converged = true;
            break;
        }
    }

    // Measures from the last sweep's marginals and queue distribution (the
    // queue was solved against exactly these, so the set is consistent).
    core::Measures& m = result.measures;
    m.carried_voice_traffic = mmcc_carried_load(rho_v, voice_servers);
    m.average_gprs_sessions = mmcc_carried_load(rho_s, session_cap);
    m.gsm_blocking = erlang_b(rho_v, voice_servers);
    m.gprs_blocking = erlang_b(rho_s, session_cap);
    double carried_data = 0.0;
    double queue_length = 0.0;
    double offered_rate = 0.0;
    for (int k = 0; k <= capacity; ++k) {
        const double w = pi[static_cast<std::size_t>(k)];
        carried_data += w * served[static_cast<std::size_t>(k)];
        queue_length += w * static_cast<double>(k);
        offered_rate += w * offered[static_cast<std::size_t>(k)];
    }
    m.carried_data_traffic = carried_data;
    m.mean_queue_length = queue_length;
    m.offered_packet_rate = offered_rate;
    const double packet_throughput = carried_data * mu_srv;
    m.data_throughput_kbps = packet_throughput * p.traffic.packet_size_bits / 1000.0;
    m.packet_loss_probability =
        offered_rate > 0.0
            ? std::clamp(1.0 - packet_throughput / offered_rate, 0.0, 1.0)
            : 0.0;
    m.queueing_delay = packet_throughput > 0.0 ? queue_length / packet_throughput : 0.0;
    m.throughput_per_user_kbps = m.average_gprs_sessions > 0.0
                                     ? m.data_throughput_kbps / m.average_gprs_sessions
                                     : 0.0;
    return result;
}

}  // namespace gprsim::queueing
