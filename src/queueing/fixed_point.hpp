// Damped fixed-point decomposition of the single-cell model for the
// large-population regime.
//
// The exact chain couples four dimensions (buffer k, voice calls n, GPRS
// sessions m, OFF sessions r); its state count explodes at production
// scale. The decomposition keeps the three marginal sub-models the paper's
// structure makes exact or near-exact —
//
//   voice     n ~ M/M/c/c on the on-demand channels (Eq. 2),
//   sessions  m ~ M/M/M/M on the session cap (Eq. 3),
//   ON count  J | m ~ Binomial(m, p_on) with p_on = b / (a + b),
//
// — and closes the one genuinely coupled dimension, the PDCH queue, as a
// level-dependent birth-death process whose per-level rates are mean-rate
// expectations over those marginals:
//
//   mu(k)     = mu_s * E[min(N - n, 8k)]            (service, Section 2)
//   lambda(k) = E[J] * lambda_p                      below the flow-control
//               E[min(J lambda_p, min(N - n, 8k) mu_s)]  onset, throttled above
//
// The handover flows (paper Eq. 4-5) of BOTH populations and the queue
// throughput are iterated jointly to a damped fixed point; the residual is
// the max relative change of (lambda_h_gsm, lambda_h_gprs, throughput).
// Only the queue <-> (n, J) correlation is approximated (independence /
// mean-rate closure); everything else matches the exact chain, so the
// decomposition lands within a couple percent of `ctmc` on small cells and
// costs O(sweeps * (N + M + K * N)) regardless of population size. For
// session caps above kExactOnCountLimit the exact binomial-Erlang mixture
// of J is replaced by a moment-matched discretized normal (error O(1/sqrt(M)),
// vanishing exactly where the large-population regime begins).
#pragma once

#include "core/measures.hpp"
#include "core/parameters.hpp"

namespace gprsim::queueing {

/// Session caps up to this bound use the exact O(M^2) binomial-Erlang
/// mixture for the ON-source count; larger caps switch to the
/// moment-matched discretized normal (O(M) setup, O(sigma) support).
inline constexpr int kExactOnCountLimit = 2048;

struct FixedPointOptions {
    double tolerance = 1e-10;  ///< max relative change of the iterate
    double damping = 1.0;      ///< step fraction theta in (0, 1]
    int max_iterations = 5000;
};

struct FixedPointResult {
    core::Measures measures;
    int iterations = 0;       ///< outer sweeps performed
    double residual = 0.0;    ///< final max relative change
    bool converged = false;
    /// True when the ON-count marginal used the discretized normal
    /// (session cap above kExactOnCountLimit).
    bool normal_on_count = false;
};

/// Runs the decomposition to a damped fixed point. Parameters must be
/// valid (core::Parameters::validate passes); options are trusted by this
/// layer and range-checked by eval::ScenarioQuery::validated upstream.
FixedPointResult solve_fixed_point(const core::Parameters& params,
                                   const FixedPointOptions& options);

}  // namespace gprsim::queueing
