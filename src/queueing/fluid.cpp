#include "queueing/fluid.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace gprsim::queueing {

namespace {

using Vec = std::array<double, 4>;  // (v, s, w, q)

/// C^1 smoothstep on [0, 1] — the regularization of the flow-control and
/// buffer-full kinks (a discontinuous drift makes the embedded error
/// estimator collapse the step to the tolerance scale at the crossing).
double ramp(double x) {
    if (x <= 0.0) {
        return 0.0;
    }
    if (x >= 1.0) {
        return 1.0;
    }
    return x * x * (3.0 - 2.0 * x);
}

/// The fluid drift and everything the measures need from one state.
struct FluidModel {
    // populations
    double lambda_v = 0.0, dep_v = 0.0, mu_h_v = 0.0, voice_cap = 0.0;
    double lambda_s = 0.0, dep_s = 0.0, mu_h_s = 0.0, session_cap = 0.0;
    double a = 0.0, b = 0.0, p_on = 0.0;
    // data plane
    double channels = 0.0, lambda_p = 0.0, mu_srv = 0.0;
    double buffer_cap = 0.0, onset = 0.0;
    bool flow_control = false;
    double onset_width = 0.0, loss_width = 0.0;
    // network inner solve: constant external handover inflow instead of the
    // mean-field self-coupling
    bool pinned = false;
    double ext_v = 0.0, ext_s = 0.0;

    explicit FluidModel(const core::Parameters& p) {
        lambda_v = p.gsm_arrival_rate();
        dep_v = p.gsm_completion_rate() + p.gsm_handover_rate();
        mu_h_v = p.gsm_handover_rate();
        voice_cap = static_cast<double>(p.gsm_channels());
        lambda_s = p.gprs_arrival_rate();
        dep_s = p.gprs_completion_rate() + p.gprs_handover_rate();
        mu_h_s = p.gprs_handover_rate();
        session_cap = static_cast<double>(p.max_gprs_sessions);
        const traffic::Ipp ipp = p.traffic.ipp();
        a = ipp.on_to_off_rate;
        b = ipp.off_to_on_rate;
        p_on = b / (a + b);
        channels = static_cast<double>(p.total_channels);
        lambda_p = ipp.on_packet_rate;
        mu_srv = p.packet_service_rate();
        buffer_cap = static_cast<double>(p.buffer_capacity);
        onset = static_cast<double>(p.flow_control_onset());
        flow_control = onset < buffer_cap;
        onset_width = flow_control
                          ? std::min(1.0, 0.5 * (buffer_cap - onset))
                          : 0.0;
        loss_width = std::min(1.0, 0.5 * std::max(buffer_cap, 1e-300));
        pinned = p.pinned_handover;
        ext_v = p.gsm_handover_in;
        ext_s = p.gprs_handover_in;
    }

    /// Handover inflow mirrors the cell's own outflow (every cell is its
    /// own neighbor in the mean-field limit) unless pinned to an external
    /// rate, in which case the neighbors' populations set a constant term.
    double voice_arrivals(double v) const {
        return lambda_v + (pinned ? ext_v : mu_h_v * std::min(v, voice_cap));
    }
    double session_arrivals(double s) const {
        return lambda_s + (pinned ? ext_s : mu_h_s * std::min(s, session_cap));
    }
    double admitted_voice(double v) const {
        const double arr = voice_arrivals(v);
        return v < voice_cap ? arr : std::min(arr, dep_v * voice_cap);
    }
    double admitted_sessions(double s) const {
        const double arr = session_arrivals(s);
        return s < session_cap ? arr : std::min(arr, dep_s * session_cap);
    }

    double service_rate(double v, double q) const {
        return std::min(channels - std::min(v, voice_cap), 8.0 * q) * mu_srv;
    }
    /// Offered packet rate with the flow-control throttle ramped in over
    /// onset_width packets above floor(eta K).
    double offered_rate_at(double w, double v, double q) const {
        const double full = w * lambda_p;
        if (!flow_control) {
            return full;
        }
        const double serve = service_rate(v, q);
        const double throttled = std::min(full, serve);
        return full - (full - throttled) * ramp((q - onset) / onset_width);
    }
    /// Accepted rate: the loss ramp pins dq/dt <= 0 at the buffer boundary.
    double accepted_rate_at(double w, double v, double q) const {
        const double offered = offered_rate_at(w, v, q);
        const double serve = service_rate(v, q);
        const double capped = std::min(offered, serve);
        return offered -
               (offered - capped) * ramp((q - (buffer_cap - loss_width)) / loss_width);
    }

    Vec drift(const Vec& y) const {
        const double v = y[0];
        const double s = y[1];
        const double w = y[2];
        const double q = y[3];
        Vec f;
        f[0] = admitted_voice(v) - dep_v * std::min(v, voice_cap);
        const double admitted_s = admitted_sessions(s);
        f[1] = admitted_s - dep_s * std::min(s, session_cap);
        f[2] = p_on * admitted_s + b * (std::min(s, session_cap) - w) - (a + dep_s) * w;
        f[3] = accepted_rate_at(w, v, q) - service_rate(v, q);
        return f;
    }

    void clamp(Vec& y) const {
        y[0] = std::clamp(y[0], 0.0, voice_cap);
        y[1] = std::clamp(y[1], 0.0, session_cap);
        y[2] = std::clamp(y[2], 0.0, y[1]);
        y[3] = std::clamp(y[3], 0.0, buffer_cap);
    }

    /// Algebraic equilibrium of the slow population variables; only the
    /// queue transient is left for the integrator (starting the populations
    /// cold would make the system stiff: their 10^2-10^3 s timescales vs
    /// the queue's ~10^-2 s).
    Vec initial_state() const {
        Vec y;
        // Uncapped population equilibria: with the self-coupled inflow the
        // handover terms cancel one mu_h from the departure rate; with a
        // pinned inflow they add a constant to the fresh arrivals.
        y[0] = pinned ? std::min((lambda_v + ext_v) / dep_v, voice_cap)
                      : std::min(lambda_v / (dep_v - mu_h_v), voice_cap);
        y[1] = pinned ? std::min((lambda_s + ext_s) / dep_s, session_cap)
                      : std::min(lambda_s / (dep_s - mu_h_s), session_cap);
        y[2] = p_on * y[1];
        y[3] = 0.0;
        return y;
    }
};

double scaled_drift_norm(const Vec& y, const Vec& f) {
    double worst = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        worst = std::max(worst, std::fabs(f[i]) / std::max(1.0, std::fabs(y[i])));
    }
    return worst;
}

}  // namespace

FluidResult solve_fluid(const core::Parameters& p, const FluidOptions& options) {
    p.validate();
    const FluidModel model(p);
    FluidResult result;

    Vec y = model.initial_state();
    model.clamp(y);
    double t = 0.0;
    double h = 1e-3;
    Vec k1 = model.drift(y);
    result.drift_norm = scaled_drift_norm(y, k1);
    result.converged = result.drift_norm <= options.stationary_rate;

    // Cash-Karp embedded RK4(5) tableau.
    static constexpr double a21 = 1.0 / 5.0;
    static constexpr double a31 = 3.0 / 40.0, a32 = 9.0 / 40.0;
    static constexpr double a41 = 3.0 / 10.0, a42 = -9.0 / 10.0, a43 = 6.0 / 5.0;
    static constexpr double a51 = -11.0 / 54.0, a52 = 5.0 / 2.0, a53 = -70.0 / 27.0,
                            a54 = 35.0 / 27.0;
    static constexpr double a61 = 1631.0 / 55296.0, a62 = 175.0 / 512.0,
                            a63 = 575.0 / 13824.0, a64 = 44275.0 / 110592.0,
                            a65 = 253.0 / 4096.0;
    static constexpr double b1 = 37.0 / 378.0, b3 = 250.0 / 621.0, b4 = 125.0 / 594.0,
                            b6 = 512.0 / 1771.0;
    static constexpr double d1 = 2825.0 / 27648.0, d3 = 18575.0 / 48384.0,
                            d4 = 13525.0 / 55296.0, d5 = 277.0 / 14336.0,
                            d6 = 1.0 / 4.0;

    // Stall detection: an explicit stepper can only hold the drift at the
    // tolerance noise floor near a fast-relaxing equilibrium (the step
    // controller rides the stability boundary and the state chatters by
    // ~abs_tol + rel_tol*|y| per step), so once the drift norm stops
    // improving the integration has done all it can and the endgame is
    // finished algebraically below.
    double best_drift = result.drift_norm;
    long long stalled = 0;
    constexpr long long kStallLimit = 64;

    while (!result.converged && stalled < kStallLimit && t < options.max_time &&
           result.steps_accepted + result.steps_rejected < options.max_steps) {
        h = std::min(h, options.max_time - t);
        Vec y2, y3, y4, y5, y6;
        for (std::size_t i = 0; i < y.size(); ++i) {
            y2[i] = y[i] + h * a21 * k1[i];
        }
        const Vec k2 = model.drift(y2);
        for (std::size_t i = 0; i < y.size(); ++i) {
            y3[i] = y[i] + h * (a31 * k1[i] + a32 * k2[i]);
        }
        const Vec k3 = model.drift(y3);
        for (std::size_t i = 0; i < y.size(); ++i) {
            y4[i] = y[i] + h * (a41 * k1[i] + a42 * k2[i] + a43 * k3[i]);
        }
        const Vec k4 = model.drift(y4);
        for (std::size_t i = 0; i < y.size(); ++i) {
            y5[i] = y[i] + h * (a51 * k1[i] + a52 * k2[i] + a53 * k3[i] + a54 * k4[i]);
        }
        const Vec k5 = model.drift(y5);
        for (std::size_t i = 0; i < y.size(); ++i) {
            y6[i] = y[i] + h * (a61 * k1[i] + a62 * k2[i] + a63 * k3[i] +
                                a64 * k4[i] + a65 * k5[i]);
        }
        const Vec k6 = model.drift(y6);

        Vec next;
        double err = 0.0;
        for (std::size_t i = 0; i < y.size(); ++i) {
            const double high =
                y[i] + h * (b1 * k1[i] + b3 * k3[i] + b4 * k4[i] + b6 * k6[i]);
            const double low = y[i] + h * (d1 * k1[i] + d3 * k3[i] + d4 * k4[i] +
                                           d5 * k5[i] + d6 * k6[i]);
            next[i] = high;
            const double scale =
                options.abs_tol +
                options.rel_tol * std::max(std::fabs(y[i]), std::fabs(high));
            err = std::max(err, std::fabs(high - low) / scale);
        }

        const double factor =
            err > 0.0 ? std::clamp(0.9 * std::pow(err, -0.2), 0.2, 5.0) : 5.0;
        if (err <= 1.0) {
            t += h;
            y = next;
            model.clamp(y);
            ++result.steps_accepted;
            k1 = model.drift(y);
            result.drift_norm = scaled_drift_norm(y, k1);
            result.converged = result.drift_norm <= options.stationary_rate;
            if (result.drift_norm < 0.9 * best_drift) {
                best_drift = result.drift_norm;
                stalled = 0;
            } else {
                ++stalled;
            }
        } else {
            ++result.steps_rejected;
        }
        h = std::min(factor * h, 1e5);
    }
    result.end_time = t;

    // Endgame polish: the population variables start at (and stay on) their
    // algebraic equilibria, so once the integration stalls the only live
    // residual is the queue equation. Pin q* by bisection on the scalar
    // accepted(q) - served(q) = 0 (non-increasing in q: service grows with
    // q while the throttle/loss ramps only shrink acceptance), which the
    // chattering explicit stepper cannot do below its tolerance noise
    // floor. On a flow-control plateau (accepted == served identically)
    // the bracket converges to the plateau's left edge — the equilibrium a
    // trajectory from below reaches first.
    if (!result.converged) {
        const auto imbalance = [&](double qq) {
            return model.accepted_rate_at(y[2], y[0], qq) - model.service_rate(y[0], qq);
        };
        if (imbalance(0.0) <= 0.0) {
            y[3] = 0.0;
        } else {
            double lo = 0.0;
            double hi = model.buffer_cap;
            for (int i = 0; i < 200 && hi - lo > 0.0; ++i) {
                const double mid = 0.5 * (lo + hi);
                (imbalance(mid) > 0.0 ? lo : hi) = mid;
            }
            y[3] = 0.5 * (lo + hi);
        }
        model.clamp(y);
        k1 = model.drift(y);
        result.drift_norm = scaled_drift_norm(y, k1);
        result.converged = result.drift_norm <= options.stationary_rate;
    }

    // Measures at the (near-)equilibrium state.
    const double v = std::min(y[0], model.voice_cap);
    const double s = std::min(y[1], model.session_cap);
    const double w = y[2];
    const double q = y[3];
    core::Measures& m = result.measures;
    m.carried_voice_traffic = v;
    m.average_gprs_sessions = s;
    const double voice_arr = model.voice_arrivals(v);
    m.gsm_blocking =
        voice_arr > 0.0
            ? std::clamp(1.0 - model.admitted_voice(v) / voice_arr, 0.0, 1.0)
            : 0.0;
    const double session_arr = model.session_arrivals(s);
    m.gprs_blocking =
        session_arr > 0.0
            ? std::clamp(1.0 - model.admitted_sessions(s) / session_arr, 0.0, 1.0)
            : 0.0;
    const double serve = model.service_rate(v, q);
    const double offered = model.offered_rate_at(w, v, q);
    m.carried_data_traffic = serve / model.mu_srv;
    m.mean_queue_length = q;
    m.offered_packet_rate = offered;
    m.data_throughput_kbps = serve * p.traffic.packet_size_bits / 1000.0;
    m.packet_loss_probability =
        offered > 0.0 ? std::clamp(1.0 - serve / offered, 0.0, 1.0) : 0.0;
    m.queueing_delay = serve > 0.0 ? q / serve : 0.0;
    m.throughput_per_user_kbps = s > 0.0 ? m.data_throughput_kbps / s : 0.0;
    return result;
}

}  // namespace gprsim::queueing
