// Mean-field / fluid-limit approximation of the single-cell model.
//
// Scale the cell by c (channels, buffer, session cap, arrival rates all
// multiplied by c) and divide the occupancies by c: as c -> infinity the
// scaled process (v, s, w, q) = (voice calls, GPRS sessions, ON sessions,
// buffered packets) converges to the deterministic ODE
//
//   dv/dt = admitted_v(v)            - mu_v * v
//   ds/dt = admitted_s(s)            - mu_s * s
//   dw/dt = p_on * admitted_s(s) + b (s - w) - (a + mu_s) w
//   dq/dt = accepted(w, v, q)        - min(N - v, 8q) * mu_srv
//
// where admitted rates clamp at the capacity boundaries (v = N_GSM, s = M)
// and accepted() applies the paper's flow-control throttle above
// floor(eta K). Handover flows cancel in the fluid limit (every cell sees
// its own outflow back as inflow), so fresh rates drive the drift and the
// balance iteration disappears.
//
// The slow populations (v, s, w) decouple from the queue and have algebraic
// equilibria; integrating them alongside the fast queue variable would make
// the system stiff (session timescale ~10^3 s vs queue timescale ~10^-2 s),
// so the integrator starts AT those equilibria with an empty queue and only
// the queue transient is genuinely integrated — by an adaptive Cash-Karp
// RK4(5) stepper with the standard embedded-error step controller — until
// the scaled drift norm drops below the stationarity threshold.
//
// The flow-control throttle and the buffer-full boundary are discontinuous
// in the exact drift; both are smoothed over a sub-packet ramp (width
// min(1, gap/2) packets) so the error controller never collapses the step
// at the kink. The O(1-packet) bias this adds to the queue length vanishes
// under the fluid scaling.
//
// Being the c -> infinity limit, the approximation is EXACT in that scaling
// (finite-size corrections are O(1/c)) but ignores all stochastic
// fluctuation: on small cells expect errors of several percent, and a zero
// packet-loss probability whenever the fluid equilibrium sits strictly
// below the buffer boundary.
#pragma once

#include "core/measures.hpp"
#include "core/parameters.hpp"

namespace gprsim::queueing {

struct FluidOptions {
    double rel_tol = 1e-8;          ///< per-step relative error target
    double abs_tol = 1e-10;         ///< per-step absolute error floor
    long long max_steps = 200000;   ///< accepted + rejected step budget
    /// Stationarity: stop when max_i |dy_i/dt| / max(1, |y_i|) falls below
    /// this rate [1/s].
    double stationary_rate = 1e-9;
    double max_time = 1e7;          ///< integration horizon [s]
};

struct FluidResult {
    core::Measures measures;
    long long steps_accepted = 0;
    long long steps_rejected = 0;
    double end_time = 0.0;     ///< model time at which stationarity was met
    double drift_norm = 0.0;   ///< final scaled drift norm [1/s]
    bool converged = false;
};

/// Integrates the fluid ODE to stationarity and maps the equilibrium onto
/// the model's measure vocabulary. Parameters must be valid.
FluidResult solve_fluid(const core::Parameters& params, const FluidOptions& options);

}  // namespace gprsim::queueing
