#include "queueing/handover.hpp"

#include <cmath>
#include <stdexcept>

#include "queueing/erlang.hpp"

namespace gprsim::queueing {

HandoverBalance balance_handover_flow(double lambda, double mu, double mu_h, int servers,
                                      double tolerance, int max_iterations) {
    if (lambda < 0.0 || mu <= 0.0 || mu_h < 0.0 || servers < 1) {
        throw std::invalid_argument("balance_handover_flow: invalid parameters");
    }
    HandoverBalance result;
    double lambda_h = lambda;  // paper's initialization lambda_h^(0) = lambda
    const double total_mu = mu + mu_h;
    for (int i = 1; i <= max_iterations; ++i) {
        const double rho = (lambda + lambda_h) / total_mu;
        const double carried = mmcc_carried_load(rho, servers);  // = E[n]
        const double next = mu_h * carried;
        result.iterations = i;
        const double scale = std::max(1.0, std::fabs(lambda_h));
        if (std::fabs(next - lambda_h) <= tolerance * scale) {
            lambda_h = next;
            result.converged = true;
            break;
        }
        lambda_h = next;
    }
    result.handover_arrival_rate = lambda_h;
    result.offered_load = (lambda + lambda_h) / total_mu;
    return result;
}

}  // namespace gprsim::queueing
