#include "queueing/handover.hpp"

#include <cmath>
#include <stdexcept>

#include "queueing/erlang.hpp"

namespace gprsim::queueing {

HandoverFlow assess_handover_flow(double lambda, double mu, double mu_h, int servers,
                                  double incoming_rate) {
    if (lambda < 0.0 || mu <= 0.0 || mu_h < 0.0 || servers < 1 || incoming_rate < 0.0 ||
        !std::isfinite(incoming_rate)) {
        throw std::invalid_argument("assess_handover_flow: invalid parameters");
    }
    HandoverFlow flow;
    flow.incoming_rate = incoming_rate;
    flow.offered_load = (lambda + incoming_rate) / (mu + mu_h);
    flow.carried_users = mmcc_carried_load(flow.offered_load, servers);  // = E[n]
    flow.outgoing_rate = mu_h * flow.carried_users;
    return flow;
}

HandoverBalance balance_handover_flow(double lambda, double mu, double mu_h, int servers,
                                      double tolerance, int max_iterations) {
    if (lambda < 0.0 || mu <= 0.0 || mu_h < 0.0 || servers < 1) {
        throw std::invalid_argument("balance_handover_flow: invalid parameters");
    }
    HandoverBalance result;
    double lambda_h = lambda;  // paper's initialization lambda_h^(0) = lambda
    for (int i = 1; i <= max_iterations; ++i) {
        const double next =
            assess_handover_flow(lambda, mu, mu_h, servers, lambda_h).outgoing_rate;
        result.iterations = i;
        const double scale = std::max(1.0, std::fabs(lambda_h));
        if (std::fabs(next - lambda_h) <= tolerance * scale) {
            lambda_h = next;
            result.converged = true;
            break;
        }
        lambda_h = next;
    }
    result.handover_arrival_rate = lambda_h;
    result.offered_load = (lambda + lambda_h) / (mu + mu_h);
    return result;
}

}  // namespace gprsim::queueing
