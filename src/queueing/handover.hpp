// Handover-flow balancing for single-cell Markov models (paper Eq. 4-5).
//
// A cell analyzed in isolation needs the rate of handovers arriving from its
// (unmodeled) neighbors. Following Marsan et al. [2] the paper assumes that
// in steady state the incoming handover flow equals the outgoing one and
// computes it by fixed-point iteration on the M/M/c/c population law:
//
//   lambda_h^(i+1) = mu_h * sum_n n * p_n( (lambda + lambda_h^(i)) / (mu + mu_h) )
//                  = mu_h * rho^(i) * (1 - ErlangB(rho^(i), c)).
#pragma once

namespace gprsim::queueing {

struct HandoverBalance {
    double handover_arrival_rate = 0.0;  ///< balanced lambda_h
    double offered_load = 0.0;           ///< rho = (lambda + lambda_h)/(mu + mu_h)
    int iterations = 0;
    bool converged = false;
};

/// Balances the incoming handover rate for a population limited to `servers`
/// concurrent users, with fresh-arrival rate lambda, completion rate mu and
/// out-handover rate mu_h (all per user). Initialization follows the paper:
/// lambda_h^(0) = lambda.
HandoverBalance balance_handover_flow(double lambda, double mu, double mu_h, int servers,
                                      double tolerance = 1e-13, int max_iterations = 100000);

}  // namespace gprsim::queueing
