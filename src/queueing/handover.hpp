// Handover-flow balancing for single-cell Markov models (paper Eq. 4-5).
//
// A cell analyzed in isolation needs the rate of handovers arriving from its
// (unmodeled) neighbors. Following Marsan et al. [2] the paper assumes that
// in steady state the incoming handover flow equals the outgoing one and
// computes it by fixed-point iteration on the M/M/c/c population law:
//
//   lambda_h^(i+1) = mu_h * sum_n n * p_n( (lambda + lambda_h^(i)) / (mu + mu_h) )
//                  = mu_h * rho^(i) * (1 - ErlangB(rho^(i), c)).
#pragma once

namespace gprsim::queueing {

struct HandoverBalance {
    double handover_arrival_rate = 0.0;  ///< balanced lambda_h
    double offered_load = 0.0;           ///< rho = (lambda + lambda_h)/(mu + mu_h)
    int iterations = 0;
    bool converged = false;
};

/// One evaluation of the handover response map at a pinned incoming flow.
///
/// In a multi-cell network the incoming flow of a cell is set by its
/// neighbors, not by its own outflow, so the in/out rates are asymmetric.
/// This is the per-cell building block of the network fixed point
/// (src/network/): pin lambda_h,in, read off the cell's population and its
/// outgoing flow mu_h * E[n].
struct HandoverFlow {
    double incoming_rate = 0.0;  ///< the pinned lambda_h,in
    double offered_load = 0.0;   ///< rho = (lambda + lambda_h,in)/(mu + mu_h)
    double carried_users = 0.0;  ///< E[n] on the M/M/c/c population law
    double outgoing_rate = 0.0;  ///< mu_h * E[n]
};

/// Evaluates the population law once at an externally supplied incoming
/// handover rate. The symmetric single-cell balance below is the fixed
/// point of this map: balance_handover_flow iterates exactly this
/// evaluation, so pinning the balanced rate reproduces it bitwise.
HandoverFlow assess_handover_flow(double lambda, double mu, double mu_h, int servers,
                                  double incoming_rate);

/// Balances the incoming handover rate for a population limited to `servers`
/// concurrent users, with fresh-arrival rate lambda, completion rate mu and
/// out-handover rate mu_h (all per user) — the symmetric special case of
/// assess_handover_flow where incoming equals outgoing. Initialization
/// follows the paper: lambda_h^(0) = lambda.
HandoverBalance balance_handover_flow(double lambda, double mu, double mu_h, int servers,
                                      double tolerance = 1e-13, int max_iterations = 100000);

}  // namespace gprsim::queueing
