#include "queueing/mm1k.hpp"

#include <stdexcept>

#include "ctmc/birth_death.hpp"

namespace gprsim::queueing {

namespace {

FiniteQueueMetrics from_birth_death(double lambda, const std::vector<double>& birth,
                                    const std::vector<double>& death) {
    FiniteQueueMetrics metrics;
    metrics.distribution = gprsim::ctmc::birth_death_distribution(birth, death);
    const std::size_t capacity = metrics.distribution.size() - 1;
    metrics.loss_probability = metrics.distribution[capacity];
    for (std::size_t k = 0; k <= capacity; ++k) {
        metrics.mean_queue_length += static_cast<double>(k) * metrics.distribution[k];
    }
    metrics.throughput = lambda * (1.0 - metrics.loss_probability);
    metrics.mean_delay =
        metrics.throughput > 0.0 ? metrics.mean_queue_length / metrics.throughput : 0.0;
    return metrics;
}

}  // namespace

FiniteQueueMetrics mm1k(double lambda, double mu, int capacity) {
    if (lambda < 0.0 || mu <= 0.0 || capacity < 1) {
        throw std::invalid_argument("mm1k: invalid parameters");
    }
    const std::vector<double> birth(static_cast<std::size_t>(capacity), lambda);
    const std::vector<double> death(static_cast<std::size_t>(capacity), mu);
    return from_birth_death(lambda, birth, death);
}

FiniteQueueMetrics mmck(double lambda, double mu, int servers, int capacity) {
    if (lambda < 0.0 || mu <= 0.0 || servers < 1 || capacity < servers) {
        throw std::invalid_argument("mmck: invalid parameters");
    }
    std::vector<double> birth(static_cast<std::size_t>(capacity), lambda);
    std::vector<double> death(static_cast<std::size_t>(capacity));
    for (int k = 0; k < capacity; ++k) {
        death[static_cast<std::size_t>(k)] = mu * static_cast<double>(std::min(k + 1, servers));
    }
    return from_birth_death(lambda, birth, death);
}

}  // namespace gprsim::queueing
