// Closed forms for the M/M/1/K and M/M/c/K queues.
//
// Not used by the GPRS model itself; these are independent oracles for the
// CTMC solvers and the discrete-event engine in the test suite.
#pragma once

#include <vector>

namespace gprsim::queueing {

/// Performance summary of a finite single-server queue.
struct FiniteQueueMetrics {
    std::vector<double> distribution;  ///< pi_0 ... pi_K
    double loss_probability = 0.0;     ///< P(arrival finds system full)
    double mean_queue_length = 0.0;    ///< E[number in system]
    double throughput = 0.0;           ///< accepted arrival rate
    double mean_delay = 0.0;           ///< E[time in system] (Little)
};

/// M/M/1/K with arrival rate lambda and service rate mu; K = capacity
/// including the customer in service.
FiniteQueueMetrics mm1k(double lambda, double mu, int capacity);

/// M/M/c/K with c servers and total capacity K >= c.
FiniteQueueMetrics mmck(double lambda, double mu, int servers, int capacity);

}  // namespace gprsim::queueing
