#include "service/protocol.hpp"

#include <array>
#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace gprsim::service {

namespace {

common::EvalError frame_error(std::string message) {
    return common::EvalError{common::EvalErrorCode::invalid_query, std::move(message)};
}

/// Splits `line` into whitespace-separated tokens (single spaces only in
/// well-formed frames, but tolerate runs).
std::array<std::string, 4> split4(const std::string& line, std::size_t& count) {
    std::array<std::string, 4> tokens;
    count = 0;
    std::size_t i = 0;
    while (i < line.size() && count < tokens.size()) {
        while (i < line.size() && line[i] == ' ') ++i;
        if (i >= line.size()) break;
        const std::size_t start = i;
        while (i < line.size() && line[i] != ' ') ++i;
        tokens[count++] = line.substr(start, i - start);
    }
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size()) count = tokens.size() + 1;  // trailing garbage
    return tokens;
}

bool parse_u64(const std::string& token, std::uint64_t& out) {
    if (token.empty()) return false;
    for (const char c : token) {
        if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (errno != 0 || end != token.c_str() + token.size()) return false;
    out = static_cast<std::uint64_t>(value);
    return true;
}

}  // namespace

std::string encode_frame(const Frame& frame) {
    std::string out = "GPRS/1 " + frame.type + ' ' + std::to_string(frame.id) + ' ' +
                      std::to_string(frame.payload.size()) + '\n';
    out += frame.payload;
    return out;
}

common::Result<std::size_t> parse_frame_header(const std::string& line, Frame& frame) {
    std::size_t count = 0;
    const auto tokens = split4(line, count);
    if (count != 4) {
        return frame_error("malformed frame header (expected \"GPRS/1 <type> <id> "
                           "<length>\"): \"" +
                           line.substr(0, 80) + "\"");
    }
    if (tokens[0] != "GPRS/1") {
        return frame_error("unknown protocol magic \"" + tokens[0] +
                           "\" (expected \"GPRS/1\")");
    }
    if (tokens[1].empty()) {
        return frame_error("empty frame type");
    }
    for (const char c : tokens[1]) {
        if (!std::islower(static_cast<unsigned char>(c)) && c != '-') {
            return frame_error("invalid frame type \"" + tokens[1] + "\"");
        }
    }
    std::uint64_t id = 0;
    if (!parse_u64(tokens[2], id)) {
        return frame_error("invalid frame id \"" + tokens[2] + "\"");
    }
    std::uint64_t length = 0;
    if (!parse_u64(tokens[3], length)) {
        return frame_error("invalid frame length \"" + tokens[3] + "\"");
    }
    if (length > kMaxFrameBytes) {
        return frame_error("frame length " + tokens[3] + " exceeds the " +
                           std::to_string(kMaxFrameBytes) + "-byte protocol cap");
    }
    frame.type = tokens[1];
    frame.id = id;
    frame.payload.clear();
    return static_cast<std::size_t>(length);
}

std::string encode_error_payload(const common::EvalError& error) {
    return std::string(common::eval_error_code_name(error.code)) + '\n' + error.message;
}

common::EvalError decode_error_payload(const std::string& payload) {
    common::EvalError error;
    const auto newline = payload.find('\n');
    const std::string code =
        newline == std::string::npos ? payload : payload.substr(0, newline);
    error.message = newline == std::string::npos ? "" : payload.substr(newline + 1);
    error.code = common::EvalErrorCode::internal;
    for (const auto candidate :
         {common::EvalErrorCode::invalid_query, common::EvalErrorCode::non_convergence,
          common::EvalErrorCode::unknown_backend, common::EvalErrorCode::duplicate_backend,
          common::EvalErrorCode::unsupported, common::EvalErrorCode::internal,
          common::EvalErrorCode::saturated, common::EvalErrorCode::cancelled}) {
        if (code == common::eval_error_code_name(candidate)) {
            error.code = candidate;
            break;
        }
    }
    return error;
}

}  // namespace gprsim::service
