// The gprsim_serve wire protocol: length-prefixed frames over a local
// stream (unix socket or stdin/stdout pipe).
//
// Every frame is one ASCII header line followed by exactly `length` raw
// payload bytes:
//
//   GPRS/1 <type> <id> <length>\n<payload bytes>
//
// `type` is a lowercase token, `id` the client-chosen request id the frame
// belongs to (0 for connection-level frames), `length` the payload byte
// count. Client -> server types: "campaign" (payload = a campaign spec,
// spec.hpp format), "fit-trace" (payload = a trace file path), "cancel",
// "stats", "ping". Server -> client: "hello" (version banner), "accepted"
// (request admitted), "csv" (a chunk of the result CSV; concatenating a
// request's csv payloads yields exactly the bytes `gprsim_cli campaign
// --csv=` writes for the same spec), "fitted" (fit-trace result, JSON),
// "done" (request complete; payload = summary JSON), "error" (payload =
// "<code>\n<message>" with code an eval_error_code_name), "stats"
// (rolling-stats JSON), "pong".
//
// The header grammar is deliberately trivial — resynchronization after a
// malformed header is impossible on a byte stream, so a header parse error
// is fatal for the connection (the server answers with one final typed
// error frame and closes), while a well-framed but malformed PAYLOAD
// (bad spec JSON, unknown backend) only fails that request.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.hpp"

namespace gprsim::service {

/// One protocol frame. `type` tokens are listed in the header comment.
struct Frame {
    std::string type;
    std::uint64_t id = 0;
    std::string payload;
};

/// Hard cap a parser accepts for `length` before reading the payload —
/// protects the server from a "999999999999" header. Requests are
/// additionally capped by ServiceOptions::max_request_bytes (smaller).
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// Serializes header + payload ("GPRS/1 <type> <id> <length>\n<payload>").
std::string encode_frame(const Frame& frame);

/// Parses a header LINE (without the trailing '\n'). On success fills
/// type/id and returns the payload length via `payload_length`; the caller
/// reads that many bytes next. Errors are invalid_query with a message
/// naming the defect (bad magic, missing field, oversized length).
common::Result<std::size_t> parse_frame_header(const std::string& line, Frame& frame);

/// Builds the "<code>\n<message>" payload of an "error" frame.
std::string encode_error_payload(const common::EvalError& error);

/// Splits an "error" frame payload back into a typed error. Unknown code
/// names map to EvalErrorCode::internal (forward compatibility).
common::EvalError decode_error_payload(const std::string& payload);

}  // namespace gprsim::service
