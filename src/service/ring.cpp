#include "service/ring.hpp"

#include <algorithm>
#include <utility>

namespace gprsim::service {

FrameRing::FrameRing(std::size_t capacity) : slots_(std::max<std::size_t>(1, capacity)) {}

bool FrameRing::push(Frame frame) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return count_ < slots_.size() || shutdown_; });
    if (shutdown_) {
        return false;
    }
    slots_[(head_ + count_) % slots_.size()] = std::move(frame);
    ++count_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
}

void FrameRing::close() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    not_empty_.notify_all();
}

std::optional<Frame> FrameRing::pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return count_ > 0 || closed_ || shutdown_; });
    if (count_ == 0) {
        return std::nullopt;  // closed (or shut down) and drained
    }
    Frame frame = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --count_;
    lock.unlock();
    not_full_.notify_one();
    return frame;
}

bool FrameRing::try_pop(Frame& out, bool& end_of_stream) {
    std::unique_lock<std::mutex> lock(mutex_);
    end_of_stream = count_ == 0 && (closed_ || shutdown_);
    if (count_ == 0) {
        return false;
    }
    out = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --count_;
    lock.unlock();
    not_full_.notify_one();
    return true;
}

void FrameRing::shutdown() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
        // Drop buffered frames: nobody will read them.
        head_ = 0;
        count_ = 0;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
}

std::size_t FrameRing::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

bool FrameRing::closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

bool FrameRing::shut_down() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return shutdown_;
}

}  // namespace gprsim::service
