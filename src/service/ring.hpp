// Bounded SPSC frame ring: the per-request result channel between ONE
// evaluation worker (producer) and ONE connection writer (consumer).
//
// The ring is the service's backpressure boundary on the streaming side: a
// slow client blocks its own worker once the ring fills (push waits), never
// the other requests, and a vanished client (consumer shutdown) turns every
// further push into a cheap no-op so the worker abandons the remaining work
// instead of filling unbounded memory — the exact-capture bring/stats split
// the ROADMAP names, with frames instead of packet blocks. Whole frames are
// the transfer unit, so a reader never observes a half-written CSV chunk.
//
// Concurrency: fixed-capacity circular buffer, one mutex + two condition
// variables. The lock is held only to move one frame in or out; both sides
// block (with no spinning) when the ring is full/empty.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "service/protocol.hpp"

namespace gprsim::service {

class FrameRing {
public:
    /// `capacity` frames are buffered before push blocks; at least 1.
    explicit FrameRing(std::size_t capacity);

    FrameRing(const FrameRing&) = delete;
    FrameRing& operator=(const FrameRing&) = delete;

    /// Producer: enqueues one frame, blocking while the ring is full.
    /// Returns false — discarding the frame — once the consumer has shut
    /// down (client disconnected); producers stop streaming on false.
    bool push(Frame frame);

    /// Producer: no more frames will follow. pop() drains the remainder,
    /// then reports end-of-stream.
    void close();

    /// Consumer: dequeues the next frame, blocking while the ring is empty
    /// and the producer has not closed. nullopt = stream complete (closed
    /// and drained).
    std::optional<Frame> pop();

    /// Consumer: non-blocking pop. `false` with `end_of_stream` false means
    /// "nothing buffered right now".
    bool try_pop(Frame& out, bool& end_of_stream);

    /// Consumer: abandon the stream (client gone). Buffered frames are
    /// dropped and every subsequent push returns false immediately.
    void shutdown();

    /// Frames currently buffered (diagnostics; racy by nature).
    std::size_t size() const;
    bool closed() const;
    bool shut_down() const;

private:
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::vector<Frame> slots_;
    std::size_t head_ = 0;   ///< next pop position
    std::size_t count_ = 0;  ///< buffered frames
    bool closed_ = false;
    bool shutdown_ = false;
};

}  // namespace gprsim::service
