#include "service/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/protocol.hpp"

namespace gprsim::service {

namespace {

/// Shared write side of one connection; forwarders and the reader all
/// funnel whole frames through write_frame.
struct ConnectionWriter {
    explicit ConnectionWriter(int write_fd) : fd(write_fd) {}

    int fd;
    std::mutex mutex;
    bool failed = false;  ///< first short/failed write poisons the rest

    /// Writes one whole frame under the mutex; false once the peer is gone.
    bool write_frame(const Frame& frame) {
        const std::string bytes = encode_frame(frame);
        std::lock_guard<std::mutex> lock(mutex);
        if (failed) {
            return false;
        }
        std::size_t written = 0;
        while (written < bytes.size()) {
            const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
            if (n <= 0) {
                if (n < 0 && errno == EINTR) {
                    continue;
                }
                failed = true;  // EPIPE et al.: client disconnected
                return false;
            }
            written += static_cast<std::size_t>(n);
        }
        return true;
    }
};

/// Reads exactly `count` bytes; false on EOF/error.
bool read_exact(int fd, char* out, std::size_t count) {
    std::size_t done = 0;
    while (done < count) {
        const ssize_t n = ::read(fd, out + done, count - done);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) {
                continue;
            }
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

/// Reads up to '\n' (exclusive). False on EOF before any byte; a header
/// line has no business being longer than `limit`, beyond it we bail out
/// as malformed. Byte-at-a-time is fine for a ~30-byte header.
bool read_line(int fd, std::string& line, std::size_t limit = 256) {
    line.clear();
    char ch = 0;
    while (line.size() <= limit) {
        const ssize_t n = ::read(fd, &ch, 1);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) {
                continue;
            }
            return !line.empty();  // EOF mid-line still surfaces for parsing
        }
        if (ch == '\n') {
            return true;
        }
        line.push_back(ch);
    }
    return true;  // over-long: hand the junk to the parser to reject
}

/// Discards `count` payload bytes in bounded chunks (oversized request:
/// the frame is well-formed, so the connection survives — but the payload
/// never touches memory as one block).
bool drain_payload(int fd, std::size_t count) {
    char sink[64 * 1024];
    while (count > 0) {
        const std::size_t chunk = count < sizeof(sink) ? count : sizeof(sink);
        if (!read_exact(fd, sink, chunk)) {
            return false;
        }
        count -= chunk;
    }
    return true;
}

}  // namespace

int Server::serve_fds(int read_fd, int write_fd) {
    ConnectionWriter writer(write_fd);
    writer.write_frame(Frame{"hello", 0, "gprsim_serve GPRS/1"});

    std::mutex streams_mutex;
    std::map<std::uint64_t, RequestStreamPtr> streams;
    std::vector<std::thread> forwarders;
    int status = 0;

    std::string line;
    while (read_line(read_fd, line)) {
        Frame request;
        auto length = parse_frame_header(line, request);
        if (!length.ok()) {
            // Malformed header: impossible to find the next frame boundary
            // on a byte stream — answer once, then hang up.
            writer.write_frame(Frame{"error", 0, encode_error_payload(length.error())});
            status = 1;
            break;
        }
        const std::size_t cap = service_.options().max_request_bytes;
        if (length.value() > cap) {
            if (!drain_payload(read_fd, length.value())) {
                break;
            }
            char message[128];
            std::snprintf(message, sizeof(message),
                          "%zu-byte payload exceeds the request cap of %zu bytes",
                          length.value(), cap);
            writer.write_frame(Frame{
                "error", request.id,
                encode_error_payload(common::EvalError{
                    common::EvalErrorCode::invalid_query, message})});
            continue;
        }
        request.payload.resize(length.value());
        if (length.value() > 0 && !read_exact(read_fd, request.payload.data(), length.value())) {
            break;  // disconnect mid-payload
        }

        if (request.type == "campaign") {
            auto stream = service_.submit(request.id, request.payload);
            if (!stream.ok()) {
                writer.write_frame(
                    Frame{"error", request.id, encode_error_payload(stream.error())});
                continue;
            }
            {
                std::lock_guard<std::mutex> lock(streams_mutex);
                streams[request.id] = stream.value();
            }
            forwarders.emplace_back([&writer, &streams_mutex, &streams,
                                     stream = stream.value()] {
                while (auto frame = stream->pop()) {
                    if (!writer.write_frame(*frame)) {
                        stream->abandon();  // client gone: stop the worker too
                        break;
                    }
                }
                std::lock_guard<std::mutex> lock(streams_mutex);
                streams.erase(stream->id());
            });
        } else if (request.type == "cancel") {
            RequestStreamPtr target;
            {
                std::lock_guard<std::mutex> lock(streams_mutex);
                auto it = streams.find(request.id);
                if (it != streams.end()) {
                    target = it->second;
                }
            }
            if (target) {
                target->cancel();
            } else {
                writer.write_frame(Frame{
                    "error", request.id,
                    encode_error_payload(common::EvalError{
                        common::EvalErrorCode::invalid_query,
                        "cancel: no in-flight request with this id"})});
            }
        } else if (request.type == "fit-trace") {
            auto fitted = service_.fit_trace(request.payload);
            if (fitted.ok()) {
                writer.write_frame(
                    Frame{"fitted", request.id, fitted_traffic_json(fitted.value())});
            } else {
                writer.write_frame(
                    Frame{"error", request.id, encode_error_payload(fitted.error())});
            }
        } else if (request.type == "stats") {
            writer.write_frame(Frame{"stats", request.id, service_.stats().to_json()});
        } else if (request.type == "ping") {
            writer.write_frame(Frame{"pong", request.id, request.payload});
        } else {
            writer.write_frame(Frame{
                "error", request.id,
                encode_error_payload(common::EvalError{
                    common::EvalErrorCode::invalid_query,
                    "unknown frame type \"" + request.type + "\""})});
        }
    }

    // Reader done (EOF, disconnect, or fatal error): abandon every live
    // stream so workers stop producing, then wait the forwarders out.
    {
        std::lock_guard<std::mutex> lock(streams_mutex);
        for (auto& [id, stream] : streams) {
            stream->abandon();
        }
    }
    for (std::thread& forwarder : forwarders) {
        forwarder.join();
    }
    return status;
}

int Server::serve_unix(const std::string& socket_path) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        std::perror("gprsim_serve: socket");
        return 1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "gprsim_serve: socket path too long: %s\n", socket_path.c_str());
        ::close(fd);
        return 1;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    ::unlink(socket_path.c_str());  // stale socket from a previous run
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        std::perror("gprsim_serve: bind/listen");
        ::close(fd);
        return 1;
    }
    listen_fd_.store(fd);

    std::vector<std::thread> connections;
    while (!stopping_.load()) {
        const int client = ::accept(fd, nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR && !stopping_.load()) {
                continue;
            }
            break;  // listen socket closed by stop()
        }
        connections.emplace_back([this, client] {
            serve_fds(client, client);
            ::close(client);
        });
    }
    for (std::thread& connection : connections) {
        connection.join();
    }
    ::unlink(socket_path.c_str());
    return 0;
}

void Server::stop() {
    stopping_.store(true);
    const int fd = listen_fd_.exchange(-1);
    if (fd >= 0) {
        // shutdown() wakes a blocked accept portably; close releases the fd.
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
}

}  // namespace gprsim::service
