// Transport layer of gprsim_serve: frames a CampaignService over a local
// byte stream — a unix-domain socket (one thread per connection) or the
// process's own stdin/stdout pipe (--stdio; one connection, then exit).
//
// Per connection: a reader loop parses incoming frames and dispatches
// (campaign / fit-trace / cancel / stats / ping); each admitted campaign
// gets a forwarder thread that drains its RequestStream ring into the
// connection. Whole frames are written under one per-connection write
// mutex, so concurrent request streams interleave at frame granularity and
// a reader never sees a torn frame.
//
// Failure semantics (the fault-injection test pins these):
//   - malformed frame HEADER: one final typed error frame, connection
//     closed (resync on a byte stream is impossible);
//   - malformed PAYLOAD (bad spec, unknown backend, oversized request):
//     a typed error frame for that request id only; the connection lives;
//   - client disconnect / write failure: every live stream is abandoned —
//     workers stop producing at the ring, mid-campaign requests cancel at
//     the next slice boundary. Never a crash, never a hang.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "service/service.hpp"

namespace gprsim::service {

class Server {
public:
    explicit Server(CampaignService& service) : service_(service) {}

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Serves ONE connection on an established fd pair (stdio mode uses
    /// fds 0/1). Blocks until the peer disconnects; returns 0 on a clean
    /// close, 1 after a fatal protocol error.
    int serve_fds(int read_fd, int write_fd);

    /// Binds `socket_path` (unlinking a stale file first), then accepts
    /// connections until stop() — each served on its own thread. Returns
    /// 0 on clean shutdown, 1 when the socket cannot be set up (message on
    /// stderr).
    int serve_unix(const std::string& socket_path);

    /// Makes serve_unix return after the current accept wakes. Safe from a
    /// signal-triggered thread.
    void stop();

private:
    CampaignService& service_;
    std::atomic<bool> stopping_{false};
    std::atomic<int> listen_fd_{-1};
};

}  // namespace gprsim::service
