#include "service/service.hpp"

#include <cstdio>
#include <sstream>
#include <utility>

#include "campaign/runner.hpp"
#include "campaign/sink.hpp"
#include "campaign/spec.hpp"
#include "eval/registry.hpp"
#include "service/protocol.hpp"

namespace gprsim::service {

namespace {

Frame error_frame(std::uint64_t id, const common::EvalError& error) {
    return Frame{"error", id, encode_error_payload(error)};
}

}  // namespace

CampaignService::CampaignService(ServiceOptions options)
    : options_(std::move(options)), store_(options_.store_capacity),
      pool_(options_.num_threads) {
    const int workers = options_.workers < 1 ? 1 : options_.workers;
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

CampaignService::~CampaignService() { shutdown(); }

common::Result<RequestStreamPtr> CampaignService::submit(std::uint64_t id,
                                                         const std::string& spec_text) {
    stats_.record_received();
    if (spec_text.size() > options_.max_request_bytes) {
        stats_.record_rejected();
        char buffer[128];
        std::snprintf(buffer, sizeof(buffer),
                      "campaign spec of %zu bytes exceeds the request cap of %zu bytes",
                      spec_text.size(), options_.max_request_bytes);
        return common::EvalError{common::EvalErrorCode::invalid_query, buffer};
    }
    // Parse at admission: a malformed spec must reject synchronously, not
    // burn a worker slot. The parsed spec is thrown away — the worker
    // re-parses so queued requests stay a plain byte payload.
    try {
        const campaign::ScenarioSpec spec = campaign::parse_spec(spec_text);
        auto& registry = eval::BackendRegistry::global();
        for (const std::string& method : spec.methods) {
            if (!registry.contains(method)) {
                stats_.record_rejected();
                auto found = registry.find(method);  // canonical known-backends message
                return found.ok()
                           ? common::EvalError{common::EvalErrorCode::unknown_backend,
                                               "unknown method \"" + method + "\""}
                           : found.error();
            }
        }
    } catch (const campaign::SpecError& error) {
        stats_.record_rejected();
        const std::string message = error.what();
        // The spec layer reports an unregistered "methods" entry as
        // 'unknown method "x"'; surface that as the dedicated code.
        const auto code = message.find("unknown method") != std::string::npos
                              ? common::EvalErrorCode::unknown_backend
                              : common::EvalErrorCode::invalid_query;
        return common::EvalError{code, "campaign spec: " + message};
    }

    auto stream = std::make_shared<RequestStream>(id, options_.ring_frames);
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (stopping_) {
            stats_.record_rejected();
            return common::EvalError{common::EvalErrorCode::internal,
                                     "service shutting down"};
        }
        if (queue_.size() >= options_.queue_capacity) {
            stats_.record_rejected();
            char buffer[96];
            std::snprintf(buffer, sizeof(buffer),
                          "request queue full (%zu queued, capacity %zu)",
                          queue_.size(), options_.queue_capacity);
            return common::EvalError{common::EvalErrorCode::saturated, buffer};
        }
        queue_.push_back(Pending{stream, spec_text});
    }
    stream->ring_.push(Frame{"accepted", id, ""});
    queue_cv_.notify_one();
    return stream;
}

common::Result<traffic::FittedTraffic> CampaignService::fit_trace(const std::string& path) {
    return traces_.fit(path);
}

std::size_t CampaignService::queued() const {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    return queue_.size();
}

void CampaignService::shutdown() {
    std::deque<Pending> orphaned;
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (stopping_ && workers_.empty()) {
            return;
        }
        stopping_ = true;
        orphaned.swap(queue_);
    }
    queue_cv_.notify_all();
    for (const Pending& pending : orphaned) {
        fail(pending.stream,
             common::EvalError{common::EvalErrorCode::internal, "service shutting down"});
    }
    for (std::thread& worker : workers_) {
        if (worker.joinable()) {
            worker.join();
        }
    }
    workers_.clear();
}

void CampaignService::worker_loop() {
    for (;;) {
        Pending pending;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // stopping
            }
            pending = std::move(queue_.front());
            queue_.pop_front();
        }
        process(pending);
    }
}

void CampaignService::fail(const RequestStreamPtr& stream, const common::EvalError& error) {
    if (error.code == common::EvalErrorCode::cancelled) {
        stats_.record_cancelled();
    } else {
        stats_.record_failed();
    }
    stream->ring_.push(error_frame(stream->id(), error));
    stream->ring_.close();
}

void CampaignService::process(const Pending& pending) {
    const RequestStreamPtr& stream = pending.stream;
    if (stream->cancel_requested()) {
        fail(stream, common::EvalError{common::EvalErrorCode::cancelled,
                                       "request cancelled before evaluation started"});
        return;
    }

    campaign::CampaignWorkload workload;
    try {
        // Expansion can still fail here (e.g. a traffic trace that reads
        // fine at admission time but rejects during fitting).
        workload = campaign::build_campaign_workload(campaign::parse_spec(pending.spec_text));
    } catch (const campaign::SpecError& error) {
        fail(stream, common::EvalError{common::EvalErrorCode::invalid_query,
                                       std::string("campaign spec: ") + error.what()});
        return;
    }

    auto& registry = eval::BackendRegistry::global();
    const std::vector<std::string>& methods = workload.effective.methods;
    const std::vector<double>& rates = workload.effective.rates;
    const bool warm_start = workload.effective.solver.warm_start;

    // Evaluate every (backend, variant) slice through the shared store.
    // This is EXACTLY the sequential-dispatch path of CampaignRunner::run —
    // same queries, same grid offsets, same GridOptions — so the assembled
    // CSV is byte-identical to a one-shot CLI run of the same spec.
    std::vector<std::vector<eval::GridOutcome>> outcomes;
    outcomes.reserve(methods.size());
    for (const std::string& method : methods) {
        auto evaluator = registry.find(method);
        if (!evaluator.ok()) {
            fail(stream, evaluator.error());
            return;
        }
        std::vector<eval::GridOutcome> per_variant;
        per_variant.reserve(workload.queries.size());
        for (std::size_t v = 0; v < workload.queries.size(); ++v) {
            if (stream->cancel_requested()) {
                fail(stream,
                     common::EvalError{common::EvalErrorCode::cancelled,
                                       "request cancelled at a slice boundary"});
                return;
            }
            const eval::ScenarioQuery& query = workload.queries[v];
            const std::uint64_t offset = workload.grid_offset(v);
            const std::string signature =
                slice_signature(method, query, rates, warm_start, offset);

            bool hit = false;
            WarmStore::Ticket ticket = store_.acquire(signature, hit);
            stats_.record_store(hit);
            std::optional<eval::GridOutcome> slice;
            if (!ticket.leader()) {
                slice = ticket.wait();  // nullopt = promoted to leader
            }
            if (!slice.has_value()) {
                eval::GridOptions grid;
                grid.num_threads = options_.num_threads;
                grid.pool = options_.num_threads > 1 ? &pool_ : nullptr;
                grid.warm_start = warm_start;
                grid.grid_offset = offset;
                eval::GridOutcome computed = evaluator.value()->evaluate_grid(
                    query, std::span<const double>(rates), grid);
                if (computed.ok()) {
                    for (const eval::PointEvaluation& point : computed.value()) {
                        stats_.record_point(point.wall_seconds);
                    }
                }
                ticket.publish(computed);
                slice.emplace(std::move(computed));
            }
            per_variant.push_back(std::move(*slice));
        }
        outcomes.push_back(std::move(per_variant));
    }

    auto assembled = campaign::assemble_campaign(workload, std::move(outcomes));
    if (!assembled.ok()) {
        fail(stream, assembled.error());
        return;
    }

    std::ostringstream csv;
    campaign::write_campaign_csv(assembled.value(), csv);
    const std::string bytes = csv.str();
    const std::size_t chunk = options_.csv_chunk_bytes < 1 ? 1 : options_.csv_chunk_bytes;
    bool delivered = true;
    for (std::size_t offset = 0; offset < bytes.size(); offset += chunk) {
        Frame frame{"csv", stream->id(), bytes.substr(offset, chunk)};
        if (!stream->ring_.push(std::move(frame))) {
            delivered = false;  // consumer abandoned: stop streaming
            break;
        }
    }
    char summary[160];
    std::snprintf(summary, sizeof(summary),
                  "{\"csv_bytes\": %zu, \"points\": %zu, \"methods\": %zu}", bytes.size(),
                  assembled.value().points.size(), methods.size());
    if (delivered) {
        stream->ring_.push(Frame{"done", stream->id(), summary});
        stats_.record_served();
    } else {
        stats_.record_cancelled();
    }
    stream->ring_.close();
}

}  // namespace gprsim::service
