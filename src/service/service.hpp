// CampaignService: the transport-independent evaluation daemon core.
//
//   server layer    (server.hpp) unix socket / stdio framing, one reader
//                   thread per connection, one forwarder per request
//   service layer   (this file) admission control, the bounded request
//                   queue, the worker pool, the shared WarmStore, trace
//                   ingestion, rolling stats
//   campaign layer  build_campaign_workload / assemble_campaign /
//                   write_campaign_csv — the same front and back halves a
//                   one-shot `gprsim_cli campaign` run uses
//   eval layer      BackendRegistry::global(), Evaluator::evaluate_grid
//
// Admission and backpressure: submit() rejects synchronously with a typed
// EvalError — invalid_query (oversized or malformed spec), unknown_backend
// (a method the registry does not know), or `saturated` once the bounded
// queue is full. A saturated service REJECTS; the queue never grows past
// its capacity. Admitted requests stream back through a bounded FrameRing
// (accepted -> csv* -> done, or a single error frame), so a slow or
// vanished client blocks/cancels only its own request.
//
// Determinism contract: a request's concatenated csv payloads are byte-for-
// byte what write_campaign_csv produces for the same spec in-process —
// regardless of service concurrency, queue order, or whether slices came
// out of the shared WarmStore. This holds because (a) every slice is
// evaluated through the exact sequential-dispatch path (per-(backend,
// variant) evaluate_grid with the workload's grid_offset) and (b) the
// store memoizes finished GridOutcomes keyed by the exhaustive slice
// signature — it never transfers warm-start state ACROSS requests, which
// would change the iterations/warm_parent CSV columns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "common/thread_pool.hpp"
#include "service/ring.hpp"
#include "service/stats.hpp"
#include "service/trace.hpp"
#include "service/warm_store.hpp"

namespace gprsim::service {

struct ServiceOptions {
    /// Concurrent campaign workers; each processes one request at a time.
    int workers = 2;
    /// Admitted-but-unstarted requests held before submit() rejects with
    /// `saturated` (requests being worked on do not count).
    std::size_t queue_capacity = 8;
    /// Execution width per slice (GridOptions::num_threads); the service
    /// default is 1 — requests are the parallelism. Never changes output.
    int num_threads = 1;
    /// Idle entries the shared warm store retains.
    std::size_t store_capacity = 64;
    /// Largest accepted campaign spec payload.
    std::size_t max_request_bytes = 1u << 20;
    /// Result frames buffered per request before the worker blocks.
    std::size_t ring_frames = 16;
    /// CSV bytes per "csv" frame.
    std::size_t csv_chunk_bytes = 64u * 1024;
};

/// Consumer handle for one admitted request's result stream.
class RequestStream {
public:
    RequestStream(std::uint64_t id, std::size_t ring_frames)
        : id_(id), ring_(ring_frames) {}

    std::uint64_t id() const { return id_; }

    /// Next result frame; nullopt when the stream is complete.
    std::optional<Frame> pop() { return ring_.pop(); }

    /// Requests cancellation: a queued request is answered with a
    /// `cancelled` error frame instead of running; a running one stops at
    /// the next slice boundary. The stream still terminates normally.
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

    /// Client vanished: drops buffered frames, makes further production a
    /// no-op, and implies cancel(). pop() must not be called afterwards.
    void abandon() {
        cancel();
        ring_.shutdown();
    }

    bool cancel_requested() const { return cancelled_.load(std::memory_order_relaxed); }

private:
    friend class CampaignService;
    std::uint64_t id_;
    FrameRing ring_;
    std::atomic<bool> cancelled_{false};
};

using RequestStreamPtr = std::shared_ptr<RequestStream>;

class CampaignService {
public:
    explicit CampaignService(ServiceOptions options = {});
    /// Joins the workers; pending queued requests are failed with a typed
    /// `internal` ("service shutting down") error frame.
    ~CampaignService();

    CampaignService(const CampaignService&) = delete;
    CampaignService& operator=(const CampaignService&) = delete;

    /// Admits one campaign request. `id` is the caller's request id,
    /// echoed on every result frame. On admission the stream immediately
    /// carries an "accepted" frame. Rejections are synchronous typed
    /// errors: invalid_query (oversized / unparsable spec), unknown_backend
    /// (unregistered method), saturated (queue full).
    common::Result<RequestStreamPtr> submit(std::uint64_t id, const std::string& spec_text);

    /// Parses + fits an arrival trace (memoized). The "fit-trace" command.
    common::Result<traffic::FittedTraffic> fit_trace(const std::string& path);

    StatsSnapshot stats() const { return stats_.snapshot(); }
    std::size_t store_active_refs() const { return store_.active_refs(); }
    std::size_t queued() const;

    /// Stops accepting work and joins the workers (idempotent; the
    /// destructor calls it).
    void shutdown();

    const ServiceOptions& options() const { return options_; }

private:
    struct Pending {
        RequestStreamPtr stream;
        std::string spec_text;
    };

    void worker_loop();
    void process(const Pending& pending);
    /// Pushes one terminal error frame and counts it in the stats.
    void fail(const RequestStreamPtr& stream, const common::EvalError& error);

    const ServiceOptions options_;
    RollingStats stats_;
    WarmStore store_;
    TraceIngest traces_;
    common::ThreadPool pool_;  ///< shared slice pool (idle when num_threads <= 1)

    mutable std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<Pending> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

}  // namespace gprsim::service
