#include "service/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace gprsim::service {

namespace {

/// Nearest-rank quantile of an unsorted copy (q in [0, 1]).
double quantile(std::vector<double> values, double q) {
    if (values.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(q * static_cast<double>(values.size() - 1) + 0.5);
    auto nth = values.begin() + static_cast<std::ptrdiff_t>(std::min(rank, values.size() - 1));
    std::nth_element(values.begin(), nth, values.end());
    return *nth;
}

}  // namespace

std::string StatsSnapshot::to_json() const {
    char buffer[640];
    std::snprintf(
        buffer, sizeof(buffer),
        "{\"requests\": {\"received\": %llu, \"served\": %llu, \"rejected\": %llu, "
        "\"failed\": %llu, \"cancelled\": %llu}, "
        "\"store\": {\"hits\": %llu, \"misses\": %llu, \"hit_rate\": %.6f}, "
        "\"points\": {\"evaluated\": %llu, \"p50_seconds\": %.9f, "
        "\"p99_seconds\": %.9f, \"reservoir\": %zu}}",
        static_cast<unsigned long long>(requests_received),
        static_cast<unsigned long long>(requests_served),
        static_cast<unsigned long long>(requests_rejected),
        static_cast<unsigned long long>(requests_failed),
        static_cast<unsigned long long>(requests_cancelled),
        static_cast<unsigned long long>(store_hits),
        static_cast<unsigned long long>(store_misses), store_hit_rate(),
        static_cast<unsigned long long>(points_evaluated), p50_point_seconds,
        p99_point_seconds, reservoir_points);
    return buffer;
}

RollingStats::RollingStats(std::size_t reservoir_capacity) {
    reservoir_.reserve(std::max<std::size_t>(1, reservoir_capacity));
}

void RollingStats::record_received() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.requests_received;
}

void RollingStats::record_served() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.requests_served;
}

void RollingStats::record_rejected() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.requests_rejected;
}

void RollingStats::record_failed() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.requests_failed;
}

void RollingStats::record_cancelled() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.requests_cancelled;
}

void RollingStats::record_store(bool hit) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (hit) {
        ++counters_.store_hits;
    } else {
        ++counters_.store_misses;
    }
}

void RollingStats::record_point(double wall_seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.points_evaluated;
    if (reservoir_.size() < reservoir_.capacity()) {
        reservoir_.push_back(wall_seconds);
    } else {
        // Rolling window: overwrite the oldest sample.
        reservoir_[next_slot_] = wall_seconds;
        next_slot_ = (next_slot_ + 1) % reservoir_.size();
    }
}

StatsSnapshot RollingStats::snapshot() const {
    std::unique_lock<std::mutex> lock(mutex_);
    StatsSnapshot snap = counters_;
    std::vector<double> samples = reservoir_;
    lock.unlock();
    snap.reservoir_points = samples.size();
    snap.p50_point_seconds = quantile(samples, 0.50);
    snap.p99_point_seconds = quantile(std::move(samples), 0.99);
    return snap;
}

}  // namespace gprsim::service
