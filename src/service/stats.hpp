// Rolling service statistics: request counters, shared-warm-store hit
// rate, and per-point wall-time quantiles over a bounded reservoir of the
// most recent evaluations — the numbers a "stats" protocol frame reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gprsim::service {

/// Point-in-time copy of the counters plus derived quantiles.
struct StatsSnapshot {
    std::uint64_t requests_received = 0;
    std::uint64_t requests_served = 0;    ///< completed with a done frame
    std::uint64_t requests_rejected = 0;  ///< admission failures (saturated, bad spec)
    std::uint64_t requests_failed = 0;    ///< admitted but ended in an error frame
    std::uint64_t requests_cancelled = 0;
    std::uint64_t store_hits = 0;    ///< slices served from / joined in the store
    std::uint64_t store_misses = 0;  ///< slices this service computed fresh
    std::uint64_t points_evaluated = 0;  ///< freshly computed grid points
    /// Wall-time quantiles [s] over the rolling per-point reservoir; zero
    /// until at least one point was recorded.
    double p50_point_seconds = 0.0;
    double p99_point_seconds = 0.0;
    std::size_t reservoir_points = 0;  ///< samples behind the quantiles

    /// Hit fraction in [0, 1]; 0 when the store was never consulted.
    double store_hit_rate() const {
        const std::uint64_t total = store_hits + store_misses;
        return total == 0 ? 0.0 : static_cast<double>(store_hits) / total;
    }

    /// One JSON object (stable key order) — the "stats" frame payload.
    std::string to_json() const;
};

/// Thread-safe rolling counters. Recording is O(1); snapshot() sorts a copy
/// of the bounded reservoir to produce the quantiles.
class RollingStats {
public:
    /// `reservoir_capacity`: how many recent per-point wall times back the
    /// p50/p99 estimates (a rolling window, not the full history).
    explicit RollingStats(std::size_t reservoir_capacity = 4096);

    void record_received();
    void record_served();
    void record_rejected();
    void record_failed();
    void record_cancelled();
    void record_store(bool hit);
    /// One freshly evaluated grid point and its wall time.
    void record_point(double wall_seconds);

    StatsSnapshot snapshot() const;

private:
    mutable std::mutex mutex_;
    StatsSnapshot counters_;  ///< quantile fields unused here
    std::vector<double> reservoir_;
    std::size_t next_slot_ = 0;  ///< circular overwrite position
};

}  // namespace gprsim::service
