#include "service/trace.hpp"

#include <cstdio>
#include <utility>

namespace gprsim::service {

common::Result<traffic::FittedTraffic> TraceIngest::fit(const std::string& path) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(path);
        if (it != cache_.end()) {
            return it->second;
        }
    }
    // Fit outside the lock: traces can be large and two distinct paths
    // should not serialize on each other. A racing duplicate fit is
    // harmless — fitting is deterministic, last writer wins.
    common::Result<traffic::FittedTraffic> fitted = traffic::fit_trace_file(path);
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = cache_.emplace(path, fitted);
    if (!inserted) {
        it->second = std::move(fitted);
        return it->second;
    }
    return it->second;
}

std::size_t TraceIngest::cached() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

std::string fitted_traffic_json(const traffic::FittedTraffic& fitted) {
    char buffer[1024];
    std::snprintf(
        buffer, sizeof(buffer),
        "{\"trace\": {\"packets\": %zu, \"duration_seconds\": %.6f, "
        "\"mean_rate\": %.9g, \"index_of_dispersion\": %.9g, "
        "\"on_probability\": %.9g, \"bursts\": %zu, \"gap_threshold\": %.9g}, "
        "\"ipp\": {\"on_to_off_rate\": %.9g, \"off_to_on_rate\": %.9g, "
        "\"on_packet_rate\": %.9g}, "
        "\"session\": {\"mean_packet_calls\": %.9g, \"mean_reading_time\": %.9g, "
        "\"mean_packets_per_call\": %.9g, \"mean_packet_interarrival\": %.9g, "
        "\"packet_size_bits\": %.9g}, "
        "\"preset\": {\"name\": \"%s\", \"max_gprs_sessions\": %d}}",
        fitted.summary.packet_count, fitted.summary.duration, fitted.summary.mean_rate,
        fitted.summary.index_of_dispersion, fitted.summary.on_probability,
        fitted.summary.burst_count, fitted.summary.gap_threshold,
        fitted.ipp.on_to_off_rate, fitted.ipp.off_to_on_rate, fitted.ipp.on_packet_rate,
        fitted.session.mean_packet_calls, fitted.session.mean_reading_time,
        fitted.session.mean_packets_per_call, fitted.session.mean_packet_interarrival,
        fitted.session.packet_size_bits, fitted.preset.name.c_str(),
        fitted.preset.max_gprs_sessions);
    return buffer;
}

}  // namespace gprsim::service
