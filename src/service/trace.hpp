// Trace ingestion for the service: a thread-safe memo over
// traffic::fit_trace_file so concurrent campaigns referencing the same
// arrival trace ("traffic_model": "trace:<file>") parse and fit it once.
// Fit FAILURES are cached too — a degenerate trace rejects every request
// that names it without re-reading the file each time.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

#include "common/result.hpp"
#include "traffic/trace.hpp"

namespace gprsim::service {

class TraceIngest {
public:
    /// Parses, summarizes, and fits the trace at `path` (first call), or
    /// returns the memoized result. Typed errors pass through unchanged
    /// from traffic::fit_trace_file.
    common::Result<traffic::FittedTraffic> fit(const std::string& path);

    /// Distinct trace paths ingested so far (hits + failures).
    std::size_t cached() const;

private:
    mutable std::mutex mutex_;
    std::map<std::string, common::Result<traffic::FittedTraffic>> cache_;
};

/// One JSON object describing a fit (stable key order): the trace summary,
/// the fitted IPP, and the derived session-model preset — the payload of a
/// "fitted" frame and of `gprsim_cli fit-trace`.
std::string fitted_traffic_json(const traffic::FittedTraffic& fitted);

}  // namespace gprsim::service
