#include "service/warm_store.hpp"

#include <cstdio>

namespace gprsim::service {

WarmStore::WarmStore(std::size_t capacity) : capacity_(capacity) {}

WarmStore::~WarmStore() = default;

WarmStore::Ticket::Ticket(Ticket&& other) noexcept
    : store_(other.store_), entry_(other.entry_), leader_(other.leader_),
      settled_(other.settled_) {
    other.store_ = nullptr;
    other.entry_ = nullptr;
}

WarmStore::Ticket& WarmStore::Ticket::operator=(Ticket&& other) noexcept {
    if (this != &other) {
        release();
        store_ = other.store_;
        entry_ = other.entry_;
        leader_ = other.leader_;
        settled_ = other.settled_;
        other.store_ = nullptr;
        other.entry_ = nullptr;
    }
    return *this;
}

WarmStore::Ticket::~Ticket() { release(); }

std::optional<eval::GridOutcome> WarmStore::Ticket::wait() {
    if (store_ == nullptr || leader_) {
        return std::nullopt;
    }
    std::unique_lock<std::mutex> lock(store_->mutex_);
    entry_->cv.wait(lock, [this] { return entry_->ready || !entry_->computing; });
    if (entry_->ready) {
        return *entry_->outcome;
    }
    // Leader abandoned and nobody claimed the slice yet: this waiter is
    // promoted and must compute it.
    entry_->computing = true;
    leader_ = true;
    return std::nullopt;
}

void WarmStore::Ticket::publish(const eval::GridOutcome& outcome) {
    if (store_ == nullptr || !leader_ || settled_) {
        return;
    }
    {
        std::lock_guard<std::mutex> lock(store_->mutex_);
        entry_->outcome.emplace(outcome);
        entry_->ready = true;
        entry_->computing = false;
    }
    settled_ = true;
    entry_->cv.notify_all();
}

void WarmStore::Ticket::abandon() {
    if (store_ == nullptr || !leader_ || settled_) {
        return;
    }
    {
        std::lock_guard<std::mutex> lock(store_->mutex_);
        entry_->computing = false;
    }
    settled_ = true;
    leader_ = false;
    entry_->cv.notify_all();
}

void WarmStore::Ticket::release() {
    if (store_ == nullptr) {
        return;
    }
    if (leader_ && !settled_) {
        abandon();  // exception safety: never strand the waiters
    }
    {
        std::lock_guard<std::mutex> lock(store_->mutex_);
        --entry_->refs;
        --store_->total_refs_;
        if (entry_->refs == 0 && !entry_->ready) {
            // In-flight entry everyone walked away from: drop it so a later
            // acquire starts clean instead of joining a dead leader.
            store_->entries_.erase(entry_->signature);
        } else {
            store_->evict_idle_locked();
        }
    }
    store_ = nullptr;
    entry_ = nullptr;
}

WarmStore::Ticket WarmStore::acquire(const std::string& signature, bool& hit) {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& entry = entries_[signature];
    const bool fresh = entry.refs == 0 && !entry.ready && !entry.computing;
    if (fresh) {
        entry.signature = signature;
    }
    ++entry.refs;
    ++total_refs_;
    entry.last_use = ++clock_;
    hit = entry.ready || entry.computing;
    const bool leads = !entry.ready && !entry.computing;
    if (leads) {
        entry.computing = true;
    }
    return Ticket(this, &entry, leads);
}

std::size_t WarmStore::active_refs() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_refs_;
}

std::size_t WarmStore::entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void WarmStore::evict_idle_locked() {
    while (entries_.size() > capacity_) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->second.refs != 0 || !it->second.ready) {
                continue;
            }
            if (victim == entries_.end() || it->second.last_use < victim->second.last_use) {
                victim = it;
            }
        }
        if (victim == entries_.end()) {
            return;  // everything is referenced or in flight
        }
        entries_.erase(victim);
    }
}

namespace {

void append_double(std::string& out, double value) {
    char buffer[40];
    // Hexfloat: every distinct bit pattern gets a distinct signature token.
    std::snprintf(buffer, sizeof(buffer), "%a,", value);
    out += buffer;
}

void append_int(std::string& out, long long value) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld,", value);
    out += buffer;
}

void append_string(std::string& out, const std::string& value) {
    // Length prefix keeps adjacent string fields from aliasing.
    append_int(out, static_cast<long long>(value.size()));
    out += value;
    out += ',';
}

}  // namespace

std::string slice_signature(const std::string& backend, const eval::ScenarioQuery& query,
                            const std::vector<double>& rates, bool warm_start,
                            std::uint64_t grid_offset) {
    std::string sig;
    sig.reserve(768);
    append_string(sig, backend);

    const core::Parameters& p = query.parameters;
    append_int(sig, p.total_channels);
    append_int(sig, p.reserved_pdch);
    append_int(sig, p.buffer_capacity);
    append_double(sig, p.pdch_rate_kbps);
    append_double(sig, p.block_error_rate);
    append_double(sig, p.call_arrival_rate);
    append_double(sig, p.gprs_fraction);
    append_double(sig, p.mean_gsm_call_duration);
    append_double(sig, p.mean_gsm_dwell_time);
    append_double(sig, p.mean_gprs_dwell_time);
    append_int(sig, p.max_gprs_sessions);
    append_int(sig, p.pinned_handover ? 1 : 0);
    append_double(sig, p.gsm_handover_in);
    append_double(sig, p.gprs_handover_in);
    append_double(sig, p.flow_control_threshold);
    append_double(sig, p.traffic.mean_packet_calls);
    append_double(sig, p.traffic.mean_reading_time);
    append_double(sig, p.traffic.mean_packets_per_call);
    append_double(sig, p.traffic.mean_packet_interarrival);
    append_double(sig, p.traffic.packet_size_bits);

    append_double(sig, query.call_arrival_rate);

    append_double(sig, query.solver.tolerance);
    append_int(sig, query.solver.max_iterations);
    append_string(sig, query.solver.method);

    append_int(sig, query.simulation.replications);
    append_int(sig, static_cast<long long>(query.simulation.seed));
    append_double(sig, query.simulation.warmup_time);
    append_int(sig, query.simulation.batch_count);
    append_double(sig, query.simulation.batch_duration);
    append_int(sig, query.simulation.tcp ? 1 : 0);

    append_double(sig, query.approx.fp_tolerance);
    append_double(sig, query.approx.fp_damping);
    append_int(sig, query.approx.fp_max_iterations);
    append_double(sig, query.approx.ode_rel_tol);
    append_double(sig, query.approx.ode_abs_tol);
    append_int(sig, query.approx.ode_max_steps);
    append_double(sig, query.approx.ode_stationary_rate);

    append_int(sig, query.network.cells_x);
    append_int(sig, query.network.cells_y);
    append_string(sig, query.network.topology);
    append_int(sig, query.network.wrap ? 1 : 0);
    append_int(sig, query.network.reuse_factor);
    append_int(sig, query.network.ra_block);
    append_double(sig, query.network.speed_kmh);
    append_double(sig, query.network.reference_speed_kmh);
    append_double(sig, query.network.drift);
    append_string(sig, query.network.inner_backend);
    append_double(sig, query.network.outer_tolerance);
    append_double(sig, query.network.outer_damping);
    append_int(sig, query.network.outer_max_iterations);

    append_int(sig, static_cast<long long>(rates.size()));
    for (const double rate : rates) {
        append_double(sig, rate);
    }
    append_int(sig, warm_start ? 1 : 0);
    append_int(sig, static_cast<long long>(grid_offset));
    return sig;
}

}  // namespace gprsim::service
