// Shared, refcounted, cross-request warm store: the campaign layer's
// bisection warm-start cache promoted to service scope.
//
// Within one request, the ctmc backend already transfers warm-start
// deviations between grid points (eval/backends.cpp). ACROSS requests that
// transfer would be visible — iterations/warm_parent land in the CSV, so
// seeding one request's solves from another's would break the service's
// byte-identity contract with the one-shot CLI. What CAN be shared without
// any observable difference is the finished work itself: the store
// memoizes whole deterministic (backend, variant-slice) GridOutcomes keyed
// by an exhaustive scenario signature (warm_store.cpp). Since every slice
// is a pure function of its signature (the determinism contract), a cached
// outcome is bit-identical to recomputing it — concurrent requests for the
// same scenario collapse into one evaluation plus copies.
//
// Concurrency protocol (leader/follower with promotion):
//   acquire(sig) -> Ticket holding one ref.
//     - first arrival becomes the LEADER: evaluates, then publish() or
//       abandon() (e.g. its request was cancelled mid-slice).
//     - later arrivals are FOLLOWERS: wait() blocks until the value is
//       published (returns a copy) or the leader abandoned with no value —
//       then ONE waiter is promoted (wait() returns nullopt and the ticket
//       turns leader), so an abandoned slice never strands its waiters.
//   Dropping the Ticket releases the ref; a leader that neither published
//   nor abandoned abandons implicitly (exception safety).
//
// Completed entries stay cached for future requests; once the store
// exceeds its capacity, idle entries (ready, zero refs) are evicted oldest
// first. active_refs() must drain to zero when no request is in flight —
// the concurrency test pins that.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "eval/evaluator.hpp"

namespace gprsim::service {

class WarmStore {
    struct Entry;

public:
    /// `capacity`: idle (ready, unreferenced) entries retained for reuse.
    explicit WarmStore(std::size_t capacity = 64);
    ~WarmStore();

    WarmStore(const WarmStore&) = delete;
    WarmStore& operator=(const WarmStore&) = delete;

    /// RAII reference to one store entry; movable, not copyable.
    class Ticket {
    public:
        Ticket() = default;
        Ticket(Ticket&& other) noexcept;
        Ticket& operator=(Ticket&& other) noexcept;
        ~Ticket();

        Ticket(const Ticket&) = delete;
        Ticket& operator=(const Ticket&) = delete;

        /// Whether this ticket must compute the slice (initial leader or
        /// promoted follower).
        bool leader() const { return leader_; }

        /// Follower: blocks until the outcome is published (returns a
        /// copy) or this ticket is promoted to leader (returns nullopt;
        /// leader() turns true). Calling as leader is a no-op nullopt.
        std::optional<eval::GridOutcome> wait();

        /// Leader: stores the computed outcome and wakes every follower.
        void publish(const eval::GridOutcome& outcome);

        /// Leader: give up without a value (cancelled request). One waiting
        /// follower is promoted; with no waiters the entry empties and the
        /// next acquire starts a fresh leader.
        void abandon();

    private:
        friend class WarmStore;
        Ticket(WarmStore* store, Entry* entry, bool leader)
            : store_(store), entry_(entry), leader_(leader) {}
        void release();

        WarmStore* store_ = nullptr;
        Entry* entry_ = nullptr;
        bool leader_ = false;
        bool settled_ = false;  ///< leader published or abandoned
    };

    /// Acquires a reference to the entry for `signature`. `hit` reports
    /// whether the work was already available or in flight (a published
    /// value OR a join onto a computing leader) — the number the rolling
    /// stats expose as the cache hit rate.
    Ticket acquire(const std::string& signature, bool& hit);

    /// Outstanding ticket references across all entries (0 = drained).
    std::size_t active_refs() const;
    /// Entries currently in the table (ready + in-flight).
    std::size_t entries() const;

private:
    struct Entry {
        std::string signature;
        int refs = 0;
        bool computing = false;  ///< a leader is (or will be) evaluating
        bool ready = false;
        std::optional<eval::GridOutcome> outcome;
        std::uint64_t last_use = 0;
        std::condition_variable cv;
    };

    void evict_idle_locked();

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::uint64_t clock_ = 0;  ///< monotonic use counter for eviction order
    std::size_t total_refs_ = 0;
    // node-stable map: tickets hold Entry* across unlocks.
    std::unordered_map<std::string, Entry> entries_;
};

/// The exhaustive slice signature: backend name, every core::Parameters
/// field (doubles in hexfloat so distinct bit patterns never collide), the
/// full knob blocks, the rate grid, the warm-start flag, and the substream
/// grid offset. Two slices with equal signatures are guaranteed to produce
/// bit-identical GridOutcomes under the determinism contract.
std::string slice_signature(const std::string& backend, const eval::ScenarioQuery& query,
                            const std::vector<double>& rates, bool warm_start,
                            std::uint64_t grid_offset);

}  // namespace gprsim::service
