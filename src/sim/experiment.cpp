#include "sim/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace gprsim::sim {

void ExperimentConfig::validate() const {
    base.validate();
    if (replications < 1) {
        throw std::invalid_argument("ExperimentConfig: need at least one replication");
    }
}

ExperimentEngine::ExperimentEngine(common::ThreadPool* shared_pool)
    : shared_(shared_pool) {}

common::ThreadPool& ExperimentEngine::pool(int min_threads) {
    if (shared_ != nullptr) {
        return *shared_;
    }
    std::lock_guard<std::mutex> lock(pool_mutex_);
    const int want = std::max(min_threads, 1);
    if (!owned_ || owned_->size() < want) {
        owned_.reset();  // join the old workers before spawning the new pool
        owned_ = std::make_unique<common::ThreadPool>(want);
    }
    return *owned_;
}

SimulationConfig replication_config(const ExperimentConfig& config, std::uint64_t block) {
    SimulationConfig replication = config.base;
    replication.seed = config.seed;
    replication.stream_base = block * SimulationConfig::kStreamsPerRun;
    return replication;
}

ExperimentResults pool_replications(std::vector<SimulationResults> replications) {
    ExperimentResults results;
    results.replications = std::move(replications);

    // Pool in replication order — with the per-replication results fixed by
    // their substreams, this serial reduction is what makes the estimates
    // bitwise invariant to the thread count.
    const auto pooled = [&](MetricEstimate SimulationResults::*measure) {
        des::ReplicationStats stats;
        for (const SimulationResults& r : results.replications) {
            stats.add_replication((r.*measure).mean);
        }
        return MetricEstimate{stats.mean(), stats.half_width(0.95), stats.replications()};
    };
    results.carried_data_traffic = pooled(&SimulationResults::carried_data_traffic);
    results.packet_loss_probability = pooled(&SimulationResults::packet_loss_probability);
    results.queueing_delay = pooled(&SimulationResults::queueing_delay);
    results.throughput_per_user_kbps = pooled(&SimulationResults::throughput_per_user_kbps);
    results.mean_queue_length = pooled(&SimulationResults::mean_queue_length);
    results.carried_voice_traffic = pooled(&SimulationResults::carried_voice_traffic);
    results.average_gprs_sessions = pooled(&SimulationResults::average_gprs_sessions);
    results.gsm_blocking = pooled(&SimulationResults::gsm_blocking);
    results.gprs_blocking = pooled(&SimulationResults::gprs_blocking);

    for (const SimulationResults& r : results.replications) {
        results.events_executed += r.events_executed;
        results.simulated_time += r.simulated_time;
    }
    return results;
}

ExperimentResults ExperimentEngine::run(const ExperimentConfig& config) {
    config.validate();
    const auto wall0 = std::chrono::steady_clock::now();

    std::vector<SimulationResults> replications(
        static_cast<std::size_t>(config.replications));
    const int width =
        std::min(common::ThreadPool::resolve_thread_count(config.num_threads),
                 config.replications);

    std::mutex progress_mutex;
    const auto run_replication = [&](int r) {
        const SimulationConfig replication =
            replication_config(config, static_cast<std::uint64_t>(r));
        const SimulationResults result = NetworkSimulator(replication).run();
        replications[static_cast<std::size_t>(r)] = result;
        if (config.progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            config.progress(r, result);
        }
    };
    if (width <= 1) {
        for (int r = 0; r < config.replications; ++r) {
            run_replication(r);
        }
    } else {
        pool(width).run(config.replications, run_replication, width);
    }

    ExperimentResults results = pool_replications(std::move(replications));
    results.threads_used = width;
    results.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
    return results;
}

}  // namespace gprsim::sim
