// ExperimentEngine: replication-sharded front end of the network simulator,
// the simulation-side sibling of ctmc::SolverEngine.
//
//   experiment layer  (this file)
//        ^ shards N independent replications across a common::ThreadPool
//   simulator layer   (sim/simulator.hpp) — one NetworkSimulator per
//        ^ replication, seeded from a dedicated substream block
//   consumers         (bench/fig06_validation, bench/micro_simulator,
//                      core::ScenarioSweep validation sweeps, examples)
//
// Replication r runs on RandomStream substreams
// [r * kStreamsPerRun + 1, (r + 1) * kStreamsPerRun] of the experiment
// seed, so the set of replication trajectories is a pure function of
// (config, seed, replications). Replications are claimed dynamically by
// the pool but pooled into ReplicationStats in replication order, which
// makes every pooled measure **bitwise invariant to the thread count** —
// the same guarantee the solver engine gives for its sharded kernels.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/simulator.hpp"

namespace gprsim::sim {

struct ExperimentConfig {
    /// Template for every replication; its seed/stream_base fields are
    /// overwritten with the experiment seed and the per-replication
    /// substream block.
    SimulationConfig base;

    int replications = 4;
    /// Execution width for sharding replications: 0 = all hardware
    /// threads, <= 1 = serial. Never changes the pooled numbers.
    int num_threads = 1;
    /// Master seed of the experiment; replication r derives its streams
    /// from (seed, stream ids in block r).
    std::uint64_t seed = 1u;
    /// Called after each finished replication (replication index, result).
    /// Invoked under a lock but NOT in replication order.
    std::function<void(int, const SimulationResults&)> progress;

    void validate() const;
};

/// Replication-pooled outcome of one experiment. The per-measure estimates
/// carry replication-level 95% confidence intervals (ReplicationStats over
/// the per-replication batch-means point estimates); MetricEstimate::batches
/// holds the number of replications pooled.
struct ExperimentResults {
    MetricEstimate carried_data_traffic;
    MetricEstimate packet_loss_probability;
    MetricEstimate queueing_delay;
    MetricEstimate throughput_per_user_kbps;
    MetricEstimate mean_queue_length;
    MetricEstimate carried_voice_traffic;
    MetricEstimate average_gprs_sessions;
    MetricEstimate gsm_blocking;
    MetricEstimate gprs_blocking;

    /// Full per-replication detail, in replication order.
    std::vector<SimulationResults> replications;

    std::uint64_t events_executed = 0;  ///< summed over replications
    double simulated_time = 0.0;        ///< summed over replications
    double wall_seconds = 0.0;
    int threads_used = 1;
};

/// Runs replication experiments on a reusable pool. Like SolverEngine, one
/// engine should live as long as the workload; pass a shared pool (e.g.
/// solver_engine.pool(n)) to let chain solves and simulator replications
/// interleave on the same workers, or let the engine grow its own.
class ExperimentEngine {
public:
    /// `shared_pool` != nullptr makes the engine dispatch on that pool
    /// (not owned; must outlive the engine and be at least as wide as any
    /// requested num_threads). Otherwise a pool is grown lazily.
    explicit ExperimentEngine(common::ThreadPool* shared_pool = nullptr);

    ExperimentEngine(const ExperimentEngine&) = delete;
    ExperimentEngine& operator=(const ExperimentEngine&) = delete;

    /// The pool replications shard across, grown (recreated) if owned and
    /// narrower than `min_threads`; a shared pool is returned as-is.
    common::ThreadPool& pool(int min_threads);

    /// Runs config.replications independent replications and pools them.
    /// Pooled measures depend only on (base, seed, replications) — never on
    /// num_threads or on the order replications happen to finish in.
    ExperimentResults run(const ExperimentConfig& config);

private:
    common::ThreadPool* shared_ = nullptr;
    std::unique_ptr<common::ThreadPool> owned_;
    std::mutex pool_mutex_;
};

/// The SimulationConfig replication `block` of an experiment runs with:
/// the shared experiment seed and the disjoint substream block
/// [block * kStreamsPerRun, ...). Exposed so drivers that co-schedule
/// replications with other work on one pool (core::ScenarioSweep) derive
/// the exact same per-replication trajectories as ExperimentEngine::run.
SimulationConfig replication_config(const ExperimentConfig& config, std::uint64_t block);

/// Pools per-replication results — which must be in replication order —
/// into replication-level estimates. wall_seconds/threads_used are left for
/// the caller to fill.
ExperimentResults pool_replications(std::vector<SimulationResults> replications);

}  // namespace gprsim::sim
