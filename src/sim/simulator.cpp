#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "des/random.hpp"
#include "des/simulation.hpp"

namespace gprsim::sim {

void SimulationConfig::validate() const {
    cell.validate();
    // An explicit target structure may make a cell its own neighbor (a 1x1
    // wrapped lattice), so only the classic uniform cluster needs >= 2.
    if (num_cells < 2 && network_targets.empty()) {
        throw std::invalid_argument("SimulationConfig: need at least two cells for handover");
    }
    if (warmup_time < 0.0 || batch_count < 2 || batch_duration <= 0.0) {
        throw std::invalid_argument("SimulationConfig: invalid output-analysis settings");
    }
    if (wired_delay < 0.0 || frame_duration <= 0.0) {
        throw std::invalid_argument("SimulationConfig: invalid path settings");
    }
    const std::size_t n = static_cast<std::size_t>(num_cells);
    if (!network_cells.empty()) {
        if (network_cells.size() != n) {
            throw std::invalid_argument("SimulationConfig: network_cells size != num_cells");
        }
        for (const core::Parameters& cp : network_cells) {
            cp.validate();
        }
    }
    if (network_targets.size() != network_weights.size()) {
        throw std::invalid_argument(
            "SimulationConfig: network_targets/network_weights size mismatch");
    }
    if (!network_targets.empty()) {
        if (network_targets.size() != n) {
            throw std::invalid_argument("SimulationConfig: network_targets size != num_cells");
        }
        for (std::size_t c = 0; c < n; ++c) {
            if (network_targets[c].empty() ||
                network_targets[c].size() != network_weights[c].size()) {
                throw std::invalid_argument(
                    "SimulationConfig: each cell needs matching targets and weights");
            }
            for (int t : network_targets[c]) {
                if (t < 0 || t >= num_cells) {
                    throw std::invalid_argument(
                        "SimulationConfig: handover target out of range");
                }
            }
            for (double w : network_weights[c]) {
                if (!(w > 0.0)) {
                    throw std::invalid_argument(
                        "SimulationConfig: handover weights must be positive");
                }
            }
        }
    }
    if (!network_routing_areas.empty() && network_routing_areas.size() != n) {
        throw std::invalid_argument(
            "SimulationConfig: network_routing_areas size != num_cells");
    }
    if (!(network_dwell_scale > 0.0)) {
        throw std::invalid_argument("SimulationConfig: network_dwell_scale must be positive");
    }
}

namespace {

/// A 480-byte network-layer packet in a BSC buffer.
struct Packet {
    std::uint64_t session_id = 0;
    std::int64_t seq = 0;
    double bits_remaining = 0.0;
    double enqueue_time = 0.0;
};

struct Cell {
    int gsm_calls = 0;
    int gprs_sessions = 0;
    std::deque<Packet> buffer;
    bool tick_active = false;
};

struct GsmCall {
    int cell = 0;
    des::EventHandle completion;
    des::EventHandle dwell;
};

/// A GPRS session: 3GPP source process + TCP connection + mobility state.
struct Session {
    std::uint64_t id = 0;
    int cell = 0;
    int packet_calls_remaining = 0;
    int packets_remaining_in_call = 0;
    bool generation_done = false;
    std::int64_t packets_generated = 0;
    des::EventHandle generator_event;
    des::EventHandle dwell;
    std::unique_ptr<TcpSender> sender;  // null in open-loop mode
    TcpReceiver receiver;
};

}  // namespace

struct NetworkSimulator::Impl {
    explicit Impl(SimulationConfig cfg)
        : config(std::move(cfg)),
          gsm_arrival_rng(config.seed, config.stream_base + 1),
          gprs_arrival_rng(config.seed, config.stream_base + 2),
          duration_rng(config.seed, config.stream_base + 3),
          dwell_rng(config.seed, config.stream_base + 4),
          traffic_rng(config.seed, config.stream_base + 5),
          target_rng(config.seed, config.stream_base + 6),
          radio_rng(config.seed, config.stream_base + 7) {
        config.validate();
        cells.resize(static_cast<std::size_t>(config.num_cells));
        stats.resize(config.measure_all_cells ? cells.size() : 1u);
        // Cumulative target weights per cell for the one-uniform-draw
        // weighted handover target selection of network mode.
        target_cdf.reserve(config.network_targets.size());
        for (const std::vector<double>& weights : config.network_weights) {
            std::vector<double> cdf;
            cdf.reserve(weights.size());
            double acc = 0.0;
            for (double w : weights) {
                acc += w;
                cdf.push_back(acc);
            }
            target_cdf.push_back(std::move(cdf));
        }
    }

    // --- configuration and engine ----------------------------------------
    SimulationConfig config;
    des::Simulation sim;
    std::vector<Cell> cells;
    std::unordered_map<std::uint64_t, std::unique_ptr<Session>> sessions;
    std::unordered_map<std::uint64_t, GsmCall> gsm_calls;
    std::uint64_t next_entity_id = 1;
    /// frame_tick() scratch (indices of packets completed this frame);
    /// member so the per-frame hot path never allocates.
    std::vector<std::size_t> finished_scratch;

    des::RandomStream gsm_arrival_rng;
    des::RandomStream gprs_arrival_rng;
    des::RandomStream duration_rng;
    des::RandomStream dwell_rng;
    des::RandomStream traffic_rng;
    des::RandomStream target_rng;
    des::RandomStream radio_rng;

    // --- measurement -------------------------------------------------------
    // One stats block per measured cell: just the mid cell classically,
    // every cell under measure_all_cells. The arithmetic per block is
    // identical either way.
    struct CellStats {
        des::TimeWeighted tw_pdch;      // channels carrying data this frame
        des::TimeWeighted tw_queue;     // BSC buffer occupancy
        des::TimeWeighted tw_voice;     // busy voice channels
        des::TimeWeighted tw_sessions;  // active GPRS sessions

        // Per-batch counters (reset at each batch boundary).
        std::int64_t batch_offered = 0;
        std::int64_t batch_dropped = 0;
        std::int64_t batch_delivered = 0;
        des::Welford batch_delay;
        std::int64_t batch_gsm_attempts = 0;
        std::int64_t batch_gsm_blocked = 0;
        std::int64_t batch_gprs_attempts = 0;
        std::int64_t batch_gprs_blocked = 0;

        des::BatchMeans bm_cdt, bm_plp, bm_delay, bm_atu, bm_queue, bm_voice, bm_sessions,
            bm_gsm_blocking, bm_gprs_blocking;
    };

    bool measuring = false;
    std::vector<CellStats> stats;
    /// Cumulative network_weights per cell (empty in classic mode).
    std::vector<std::vector<double>> target_cdf;

    SimulationResults totals;

    // ======================================================================
    // Helpers
    // ======================================================================
    const core::Parameters& p(int cell) const {
        return config.network_cells.empty()
                   ? config.cell
                   : config.network_cells[static_cast<std::size_t>(cell)];
    }
    double block_bits(int cell) const {
        return p(cell).pdch_rate_kbps * 1000.0 * config.frame_duration;
    }
    /// Dwell means at the mobility speed (dividing by the default scale of
    /// 1 is exact, so the classic configuration is untouched).
    double gsm_dwell_mean(int cell) const {
        return p(cell).mean_gsm_dwell_time / config.network_dwell_scale;
    }
    double gprs_dwell_mean(int cell) const {
        return p(cell).mean_gprs_dwell_time / config.network_dwell_scale;
    }

    bool measured(int cell) const { return config.measure_all_cells || cell == 0; }
    CellStats& stat(int cell) {
        return stats[config.measure_all_cells ? static_cast<std::size_t>(cell) : 0u];
    }

    int random_neighbor(int cell) {
        if (!target_cdf.empty()) {
            // Network mode: weighted choice over the cell's directed
            // neighborhood, one uniform draw per handover.
            const std::vector<double>& cdf = target_cdf[static_cast<std::size_t>(cell)];
            const double u = target_rng.uniform() * cdf.back();
            std::size_t k = 0;
            while (k + 1 < cdf.size() && u >= cdf[k]) {
                ++k;
            }
            return config.network_targets[static_cast<std::size_t>(cell)][k];
        }
        // Seven-cell wrap-around cluster: all other cells are neighbors.
        int t = target_rng.uniform_int(0, config.num_cells - 2);
        if (t >= cell) {
            ++t;
        }
        return t;
    }

    void note_routing_area_crossing(int source, int target) {
        if (measuring && !config.network_routing_areas.empty() &&
            config.network_routing_areas[static_cast<std::size_t>(source)] !=
                config.network_routing_areas[static_cast<std::size_t>(target)]) {
            ++totals.routing_area_updates;
        }
    }

    // --- GSM voice traffic -------------------------------------------------
    void schedule_gsm_arrival(int cell) {
        const double rate = p(cell).gsm_arrival_rate();
        sim.schedule(gsm_arrival_rng.exponential(1.0 / rate), [this, cell] {
            gsm_arrival(cell);
            schedule_gsm_arrival(cell);
        });
    }

    void note_gsm_attempt(int cell, bool blocked) {
        if (measuring && measured(cell)) {
            CellStats& s = stat(cell);
            ++s.batch_gsm_attempts;
            ++totals.gsm_attempts;
            if (blocked) {
                ++s.batch_gsm_blocked;
                ++totals.gsm_blocked;
            }
        }
    }

    void gsm_enter(int cell) {
        ++cells[static_cast<std::size_t>(cell)].gsm_calls;
        if (measuring && measured(cell)) {
            stat(cell).tw_voice.update(sim.now(),
                                       cells[static_cast<std::size_t>(cell)].gsm_calls);
        }
    }

    void gsm_leave(int cell) {
        --cells[static_cast<std::size_t>(cell)].gsm_calls;
        if (measuring && measured(cell)) {
            stat(cell).tw_voice.update(sim.now(),
                                       cells[static_cast<std::size_t>(cell)].gsm_calls);
        }
    }

    void gsm_arrival(int cell) {
        const bool blocked =
            cells[static_cast<std::size_t>(cell)].gsm_calls >= p(cell).gsm_channels();
        note_gsm_attempt(cell, blocked);
        if (blocked) {
            return;
        }
        const std::uint64_t id = next_entity_id++;
        gsm_enter(cell);
        GsmCall call;
        call.cell = cell;
        call.completion =
            sim.schedule(duration_rng.exponential(p(cell).mean_gsm_call_duration), [this, id] {
                const auto it = gsm_calls.find(id);
                gsm_leave(it->second.cell);
                sim.cancel(it->second.dwell);
                gsm_calls.erase(it);
            });
        call.dwell = sim.schedule(dwell_rng.exponential(gsm_dwell_mean(cell)),
                                  [this, id] { gsm_handover(id); });
        gsm_calls.emplace(id, std::move(call));
    }

    void gsm_handover(std::uint64_t id) {
        GsmCall& call = gsm_calls.at(id);
        const int target = random_neighbor(call.cell);
        note_routing_area_crossing(call.cell, target);
        gsm_leave(call.cell);
        const bool blocked =
            cells[static_cast<std::size_t>(target)].gsm_calls >= p(target).gsm_channels();
        note_gsm_attempt(target, blocked);
        if (blocked) {
            // Handover failure: the call is forcibly terminated.
            if (measuring && measured(call.cell)) {
                ++totals.gsm_handover_failures;
            }
            sim.cancel(call.completion);
            gsm_calls.erase(id);
            return;
        }
        call.cell = target;
        gsm_enter(target);
        call.dwell = sim.schedule(dwell_rng.exponential(gsm_dwell_mean(target)),
                                  [this, id] { gsm_handover(id); });
    }

    // --- GPRS sessions -----------------------------------------------------
    void schedule_gprs_arrival(int cell) {
        const double rate = p(cell).gprs_arrival_rate();
        sim.schedule(gprs_arrival_rng.exponential(1.0 / rate), [this, cell] {
            gprs_arrival(cell);
            schedule_gprs_arrival(cell);
        });
    }

    void note_gprs_attempt(int cell, bool blocked) {
        if (measuring && measured(cell)) {
            CellStats& s = stat(cell);
            ++s.batch_gprs_attempts;
            ++totals.gprs_attempts;
            if (blocked) {
                ++s.batch_gprs_blocked;
                ++totals.gprs_blocked;
            }
        }
    }

    void gprs_enter(int cell) {
        ++cells[static_cast<std::size_t>(cell)].gprs_sessions;
        if (measuring && measured(cell)) {
            stat(cell).tw_sessions.update(sim.now(),
                                          cells[static_cast<std::size_t>(cell)].gprs_sessions);
        }
    }

    void gprs_leave(int cell) {
        --cells[static_cast<std::size_t>(cell)].gprs_sessions;
        if (measuring && measured(cell)) {
            stat(cell).tw_sessions.update(sim.now(),
                                          cells[static_cast<std::size_t>(cell)].gprs_sessions);
        }
    }

    void gprs_arrival(int cell) {
        const bool blocked =
            cells[static_cast<std::size_t>(cell)].gprs_sessions >= p(cell).max_gprs_sessions;
        note_gprs_attempt(cell, blocked);
        if (blocked) {
            return;
        }
        const std::uint64_t id = next_entity_id++;
        auto session = std::make_unique<Session>();
        session->id = id;
        session->cell = cell;
        session->packet_calls_remaining =
            traffic_rng.geometric_count(p(cell).traffic.mean_packet_calls);
        if (config.tcp_enabled) {
            session->sender = std::make_unique<TcpSender>(
                sim, config.tcp, [this, id](std::int64_t seq, bool) {
                    // Segment leaves the server; reaches the BSC after the
                    // wired one-way delay.
                    sim.schedule(config.wired_delay, [this, id, seq] {
                        const auto it = sessions.find(id);
                        if (it == sessions.end()) {
                            return;  // session ended while in flight
                        }
                        bsc_enqueue(it->second->cell, id, seq);
                    });
                });
        }
        gprs_enter(cell);
        session->dwell = sim.schedule(dwell_rng.exponential(gprs_dwell_mean(cell)),
                                      [this, id] { gprs_handover(id); });
        Session* raw = session.get();
        sessions.emplace(id, std::move(session));
        begin_packet_call(*raw);
    }

    void begin_packet_call(Session& session) {
        session.packets_remaining_in_call =
            traffic_rng.geometric_count(p(session.cell).traffic.mean_packets_per_call);
        schedule_next_packet(session);
    }

    void schedule_next_packet(Session& session) {
        // Capturing the Session pointer is safe: end_session() cancels
        // generator_event before the session is destroyed, so this event
        // can never fire on a dead session (map nodes are pointer-stable).
        session.generator_event =
            sim.schedule(traffic_rng.exponential(p(session.cell).traffic.mean_packet_interarrival),
                         [this, s = &session] { generate_packet(*s); });
    }

    void generate_packet(Session& session) {
        const std::int64_t seq = session.packets_generated++;
        if (session.sender) {
            session.sender->add_backlog(1);
        } else {
            // Open-loop source: the packet arrives at the BSC immediately,
            // exactly as in the Markov model's arrival process.
            bsc_enqueue(session.cell, session.id, seq);
        }
        --session.packets_remaining_in_call;
        if (session.packets_remaining_in_call > 0) {
            schedule_next_packet(session);
            return;
        }
        --session.packet_calls_remaining;
        if (session.packet_calls_remaining > 0) {
            // Reading time, then the next packet call. Pointer capture is
            // safe for the same reason as in schedule_next_packet().
            session.generator_event =
                sim.schedule(traffic_rng.exponential(p(session.cell).traffic.mean_reading_time),
                             [this, s = &session] { begin_packet_call(*s); });
            return;
        }
        session.generation_done = true;
        maybe_end_session(session);
    }

    void maybe_end_session(Session& session) {
        if (!session.generation_done) {
            return;
        }
        // The session ends when the source process completes — the paper's
        // session lifetime 1/mu_GPRS = N_pc (D_pc + N_d D_d) is independent
        // of delivery progress (the user stops browsing; they do not wait
        // for TCP to drain a congested cell). Unsent TCP backlog is
        // discarded; packets already queued at the BSC are still delivered.
        end_session(session.id, /*drop_buffered=*/false);
    }

    void end_session(std::uint64_t id, bool drop_buffered) {
        const auto it = sessions.find(id);
        Session& session = *it->second;
        sim.cancel(session.generator_event);
        sim.cancel(session.dwell);
        if (session.sender) {
            // Preserve the recovery statistics before the sender goes away.
            totals.tcp_timeouts += session.sender->timeouts();
            totals.tcp_fast_retransmits += session.sender->fast_retransmits();
            session.sender->shutdown();
        }
        gprs_leave(session.cell);
        if (drop_buffered) {
            remove_session_packets(session.cell, id);
        }
        sessions.erase(it);
    }

    void remove_session_packets(int cell, std::uint64_t id) {
        auto& buffer = cells[static_cast<std::size_t>(cell)].buffer;
        const auto removed = std::erase_if(
            buffer, [id](const Packet& pkt) { return pkt.session_id == id; });
        if (removed > 0 && measuring && measured(cell)) {
            stat(cell).tw_queue.update(sim.now(), static_cast<double>(buffer.size()));
        }
    }

    void gprs_handover(std::uint64_t id) {
        Session& session = *sessions.at(id);
        const int source = session.cell;
        const int target = random_neighbor(source);
        note_routing_area_crossing(source, target);
        const bool blocked = target != source &&
                             cells[static_cast<std::size_t>(target)].gprs_sessions >=
                                 p(target).max_gprs_sessions;
        note_gprs_attempt(target, blocked);
        if (blocked) {
            // Handover failure: the session is dropped; buffered packets of
            // the session are discarded.
            if (measuring && measured(source)) {
                ++totals.gprs_handover_failures;
            }
            remove_session_packets(source, id);
            end_session(id, /*drop_buffered=*/true);
            return;
        }
        gprs_leave(source);
        session.cell = target;
        gprs_enter(target);

        // Relocate the session's queued packets to the target BSC.
        auto& src_buffer = cells[static_cast<std::size_t>(source)].buffer;
        auto& dst_buffer = cells[static_cast<std::size_t>(target)].buffer;
        std::deque<Packet> moved;
        for (auto it = src_buffer.begin(); it != src_buffer.end();) {
            if (it->session_id == id) {
                moved.push_back(*it);
                it = src_buffer.erase(it);
            } else {
                ++it;
            }
        }
        if (measuring && measured(source) && !moved.empty()) {
            stat(source).tw_queue.update(sim.now(), static_cast<double>(src_buffer.size()));
        }
        for (Packet& pkt : moved) {
            if (config.forward_buffer_on_handover &&
                static_cast<int>(dst_buffer.size()) < p(target).buffer_capacity) {
                pkt.enqueue_time = sim.now();
                dst_buffer.push_back(pkt);
            } else if (measuring && measured(source)) {
                ++totals.handover_packet_drops;
            }
        }
        if (measuring && measured(target) && !moved.empty()) {
            stat(target).tw_queue.update(sim.now(), static_cast<double>(dst_buffer.size()));
        }
        ensure_tick(target);

        session.dwell = sim.schedule(dwell_rng.exponential(gprs_dwell_mean(target)),
                                     [this, id] { gprs_handover(id); });
    }

    // --- BSC buffer and radio service ---------------------------------------
    void bsc_enqueue(int cell, std::uint64_t session_id, std::int64_t seq) {
        auto& buffer = cells[static_cast<std::size_t>(cell)].buffer;
        if (measuring && measured(cell)) {
            ++stat(cell).batch_offered;
            ++totals.packets_offered;
        }
        if (static_cast<int>(buffer.size()) >= p(cell).buffer_capacity) {
            if (measuring && measured(cell)) {
                ++stat(cell).batch_dropped;
                ++totals.packets_dropped;
            }
            return;  // TCP (if any) will detect the loss via dupacks/RTO
        }
        buffer.push_back(Packet{session_id, seq, p(cell).traffic.packet_size_bits, sim.now()});
        if (measuring && measured(cell)) {
            stat(cell).tw_queue.update(sim.now(), static_cast<double>(buffer.size()));
        }
        ensure_tick(cell);
    }

    void ensure_tick(int cell) {
        Cell& c = cells[static_cast<std::size_t>(cell)];
        if (!c.tick_active && !c.buffer.empty()) {
            c.tick_active = true;
            sim.schedule(config.frame_duration, [this, cell] { frame_tick(cell); });
        }
    }

    void frame_tick(int cell) {
        Cell& c = cells[static_cast<std::size_t>(cell)];
        if (c.buffer.empty()) {
            c.tick_active = false;
            if (measuring && measured(cell)) {
                stat(cell).tw_pdch.update(sim.now(), 0.0);
            }
            return;
        }

        // PDCHs usable this frame: every channel not held by a voice call.
        const int available = p(cell).total_channels - c.gsm_calls;
        int channels_used = 0;
        if (available > 0) {
            const int head_count = std::min<int>(static_cast<int>(c.buffer.size()), available);
            // Fair split of `available` channels over the first head_count
            // packets, at most 8 slots per packet (multislot class limit).
            const int base = available / head_count;
            const int extra = available % head_count;
            std::vector<std::size_t>& finished = finished_scratch;
            finished.clear();  // Impl-owned scratch: no per-tick allocation
            for (int i = 0; i < head_count; ++i) {
                const int share = std::min(8, base + (i < extra ? 1 : 0));
                if (share == 0) {
                    break;
                }
                channels_used += share;
                Packet& pkt = c.buffer[static_cast<std::size_t>(i)];
                // RLC acknowledged mode: a corrupted block occupies the
                // channel but delivers nothing; ARQ resends it on a later
                // frame (extension; BLER = 0 reproduces the paper).
                int good_blocks = share;
                if (p(cell).block_error_rate > 0.0) {
                    good_blocks = 0;
                    for (int blk = 0; blk < share; ++blk) {
                        if (!radio_rng.bernoulli(p(cell).block_error_rate)) {
                            ++good_blocks;
                        }
                    }
                }
                pkt.bits_remaining -= static_cast<double>(good_blocks) * block_bits(cell);
                if (pkt.bits_remaining <= 0.0) {
                    finished.push_back(static_cast<std::size_t>(i));
                }
            }
            // Deliver finished packets (reverse order keeps indices valid).
            for (auto it = finished.rbegin(); it != finished.rend(); ++it) {
                Packet done = c.buffer[*it];
                c.buffer.erase(c.buffer.begin() + static_cast<std::ptrdiff_t>(*it));
                deliver_packet(cell, done);
            }
        }
        if (measuring && measured(cell)) {
            CellStats& s = stat(cell);
            s.tw_pdch.update(sim.now(), static_cast<double>(channels_used));
            if (!c.buffer.empty()) {
                s.tw_queue.update(sim.now(), static_cast<double>(c.buffer.size()));
            } else {
                s.tw_queue.update(sim.now(), 0.0);
            }
        }
        sim.schedule(config.frame_duration, [this, cell] { frame_tick(cell); });
    }

    void deliver_packet(int cell, const Packet& pkt) {
        if (measuring && measured(cell)) {
            CellStats& s = stat(cell);
            ++s.batch_delivered;
            ++totals.packets_delivered;
            s.batch_delay.add(sim.now() - pkt.enqueue_time);
        }
        const auto it = sessions.find(pkt.session_id);
        if (it == sessions.end() || !it->second->sender) {
            return;  // open-loop mode, or session already gone
        }
        Session& session = *it->second;
        const std::int64_t ack = session.receiver.on_segment(pkt.seq);
        const std::uint64_t id = session.id;
        // The MS acknowledgement travels back over the (uncongested) uplink
        // and wired path.
        sim.schedule(config.wired_delay, [this, id, ack] {
            const auto sit = sessions.find(id);
            if (sit == sessions.end()) {
                return;  // session completed its source process meanwhile
            }
            sit->second->sender->on_ack(ack);
        });
    }

    // --- output analysis -----------------------------------------------------
    /// Cell a stats block observes: its index under measure_all_cells, the
    /// mid cell classically.
    int stat_cell(std::size_t block) const {
        return config.measure_all_cells ? static_cast<int>(block) : 0;
    }

    void reset_measurement() {
        const double t = sim.now();
        for (std::size_t k = 0; k < stats.size(); ++k) {
            const Cell& c = cells[static_cast<std::size_t>(stat_cell(k))];
            CellStats& s = stats[k];
            s.tw_pdch = des::TimeWeighted(t, s.tw_pdch.current_value());
            s.tw_queue = des::TimeWeighted(t, static_cast<double>(c.buffer.size()));
            s.tw_voice = des::TimeWeighted(t, static_cast<double>(c.gsm_calls));
            s.tw_sessions = des::TimeWeighted(t, static_cast<double>(c.gprs_sessions));
            s.batch_offered = s.batch_dropped = s.batch_delivered = 0;
            s.batch_delay = des::Welford();
            s.batch_gsm_attempts = s.batch_gsm_blocked = 0;
            s.batch_gprs_attempts = s.batch_gprs_blocked = 0;
        }
        measuring = true;
    }

    void close_batch() {
        const double t = sim.now();
        for (std::size_t k = 0; k < stats.size(); ++k) {
            CellStats& s = stats[k];
            const double cdt = s.tw_pdch.restart(t);
            const double queue = s.tw_queue.restart(t);
            const double voice = s.tw_voice.restart(t);
            const double sessions_avg = s.tw_sessions.restart(t);
            s.bm_cdt.add_batch(cdt);
            s.bm_queue.add_batch(queue);
            s.bm_voice.add_batch(voice);
            s.bm_sessions.add_batch(sessions_avg);
            if (s.batch_offered > 0) {
                s.bm_plp.add_batch(static_cast<double>(s.batch_dropped) /
                                   static_cast<double>(s.batch_offered));
            }
            if (s.batch_delay.count() > 0) {
                s.bm_delay.add_batch(s.batch_delay.mean());
            }
            if (sessions_avg > 0.0) {
                const double delivered_kbps = static_cast<double>(s.batch_delivered) *
                                              p(stat_cell(k)).traffic.packet_size_bits /
                                              config.batch_duration / 1000.0;
                s.bm_atu.add_batch(delivered_kbps / sessions_avg);
            }
            if (s.batch_gsm_attempts > 0) {
                s.bm_gsm_blocking.add_batch(static_cast<double>(s.batch_gsm_blocked) /
                                            static_cast<double>(s.batch_gsm_attempts));
            }
            if (s.batch_gprs_attempts > 0) {
                s.bm_gprs_blocking.add_batch(static_cast<double>(s.batch_gprs_blocked) /
                                             static_cast<double>(s.batch_gprs_attempts));
            }
            s.batch_offered = s.batch_dropped = s.batch_delivered = 0;
            s.batch_delay = des::Welford();
            s.batch_gsm_attempts = s.batch_gsm_blocked = 0;
            s.batch_gprs_attempts = s.batch_gprs_blocked = 0;
        }
    }

    static MetricEstimate estimate(const des::BatchMeans& bm) {
        return MetricEstimate{bm.mean(), bm.half_width(0.95), bm.count()};
    }

    SimulationResults run() {
        const auto wall0 = std::chrono::steady_clock::now();
        for (int cell = 0; cell < config.num_cells; ++cell) {
            schedule_gsm_arrival(cell);
            schedule_gprs_arrival(cell);
        }
        sim.run_until(config.warmup_time);
        reset_measurement();
        for (int b = 0; b < config.batch_count; ++b) {
            sim.run_until(config.warmup_time +
                          config.batch_duration * static_cast<double>(b + 1));
            close_batch();
        }
        measuring = false;

        // The headline estimates read the mid cell in either mode; block 0
        // observes cell 0 either way.
        const CellStats& mid = stats[0];
        totals.carried_data_traffic = estimate(mid.bm_cdt);
        totals.packet_loss_probability = estimate(mid.bm_plp);
        totals.queueing_delay = estimate(mid.bm_delay);
        totals.throughput_per_user_kbps = estimate(mid.bm_atu);
        totals.mean_queue_length = estimate(mid.bm_queue);
        totals.carried_voice_traffic = estimate(mid.bm_voice);
        totals.average_gprs_sessions = estimate(mid.bm_sessions);
        totals.gsm_blocking = estimate(mid.bm_gsm_blocking);
        totals.gprs_blocking = estimate(mid.bm_gprs_blocking);
        if (config.measure_all_cells) {
            totals.cells.reserve(stats.size());
            for (const CellStats& s : stats) {
                CellEstimates e;
                e.carried_data_traffic = estimate(s.bm_cdt);
                e.packet_loss_probability = estimate(s.bm_plp);
                e.queueing_delay = estimate(s.bm_delay);
                e.throughput_per_user_kbps = estimate(s.bm_atu);
                e.mean_queue_length = estimate(s.bm_queue);
                e.carried_voice_traffic = estimate(s.bm_voice);
                e.average_gprs_sessions = estimate(s.bm_sessions);
                e.gsm_blocking = estimate(s.bm_gsm_blocking);
                e.gprs_blocking = estimate(s.bm_gprs_blocking);
                totals.cells.push_back(e);
            }
        }
        totals.routing_area_update_rate =
            static_cast<double>(totals.routing_area_updates) /
            (config.batch_duration * static_cast<double>(config.batch_count));
        for (const auto& [id, session] : sessions) {
            if (session->sender) {
                totals.tcp_timeouts += session->sender->timeouts();
                totals.tcp_fast_retransmits += session->sender->fast_retransmits();
            }
        }
        totals.events_executed = sim.events_executed();
        totals.simulated_time = sim.now();
        totals.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
        return totals;
    }
};

NetworkSimulator::NetworkSimulator(SimulationConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

NetworkSimulator::~NetworkSimulator() = default;

SimulationResults NetworkSimulator::run() { return impl_->run(); }

}  // namespace gprsim::sim
