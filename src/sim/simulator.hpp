// Network-level GPRS simulator (the paper's validation tool, Section 5.2).
//
// Simulates a cluster of seven hexagonal cells with wrap-around neighborship
// (every cell is adjacent to the six others, making the cluster symmetric —
// the standard construction that lets the mid cell represent any cell).
// Explicitly modeled, in contrast to the Markov chain:
//   * handover procedures between cells (GSM calls and GPRS sessions carry
//     their state to a uniformly chosen neighbor at dwell expiry),
//   * segmentation of 480-byte packets into 20 ms TDMA radio blocks
//     (268 bits per block at CS-2, padding included),
//   * the detailed 3GPP source process (geometric packet-call and packet
//     counts rather than the exponential IPP abstraction), and
//   * full TCP Reno flow control end to end (optional; open-loop sources
//     reproduce the Markov chain's eta = 1 "no flow control" case).
// Measurements are taken in the mid cell only and reported with 95% batch-
// means confidence intervals, exactly as the paper does.
//
// Network mode (beyond the paper, src/network/): the optional network_*
// fields replace the symmetric cluster with an explicit lattice — per-cell
// parameters, weighted directed handover targets, a mobility dwell scale,
// routing areas (handovers crossing one count as routing-area updates),
// and per-cell measurement. All of them empty/default reproduces the
// classic cluster bit for bit: the legacy paths draw the same random
// variates in the same order and run the identical measurement arithmetic.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/parameters.hpp"
#include "des/statistics.hpp"
#include "sim/tcp.hpp"

namespace gprsim::sim {

struct SimulationConfig {
    /// Cell parameters; shared with the analytical model so that a single
    /// Parameters value drives both tools. (flow_control_threshold is the
    /// Markov model's knob and is ignored here — the simulator runs real
    /// TCP instead.)
    core::Parameters cell = core::Parameters::base();

    int num_cells = 7;
    std::uint64_t seed = 1u;
    /// First RandomStream id this run may use: the simulator draws from
    /// streams [stream_base + 1, stream_base + kStreamsPerRun]. An
    /// experiment gives replication r the block r * kStreamsPerRun under a
    /// shared seed, so replications are non-overlapping substreams of one
    /// experiment rather than unrelated reseedings.
    std::uint64_t stream_base = 0;
    /// Substream block width reserved per simulator run (a few ids spare).
    static constexpr std::uint64_t kStreamsPerRun = 16;

    // Output analysis (batch means, paper Section 5.2).
    double warmup_time = 2000.0;     ///< transient deletion [s]
    int batch_count = 20;
    double batch_duration = 2000.0;  ///< [s]

    // Flow control: true = TCP Reno per session; false = open-loop IPP
    // sources (the chain's eta = 1.0 configuration).
    bool tcp_enabled = true;
    TcpConfig tcp;
    /// One-way fixed latency between the data source and the BSC [s].
    double wired_delay = 0.05;

    /// TDMA radio block duration [s]; 20 ms is the GPRS block length.
    double frame_duration = 0.02;
    /// Forward a session's buffered packets to the target cell on handover
    /// (drop them when false, or when the target buffer is full).
    bool forward_buffer_on_handover = true;

    // --- multi-cell network mode (all empty/default = classic cluster) ---
    /// Per-cell parameter overrides, size num_cells when non-empty;
    /// `cell` above then only seeds the defaults.
    std::vector<core::Parameters> network_cells;
    /// Directed handover targets per cell and their unnormalized selection
    /// weights (parallel vectors, size num_cells when non-empty). Empty =
    /// a handover targets a uniformly chosen other cell.
    std::vector<std::vector<int>> network_targets;
    std::vector<std::vector<double>> network_weights;
    /// Mobility speed scale: divides every dwell-time mean (1 = the
    /// calibration speed the dwell times were measured at).
    double network_dwell_scale = 1.0;
    /// Routing area of each cell, size num_cells when non-empty. A
    /// handover between different areas counts as a routing-area update.
    std::vector<int> network_routing_areas;
    /// Measure every cell (fills SimulationResults::cells) instead of
    /// only the mid cell.
    bool measure_all_cells = false;

    void validate() const;
};

/// Point estimate with a batch-means confidence interval.
struct MetricEstimate {
    double mean = 0.0;
    double half_width = 0.0;  ///< 95% confidence
    int batches = 0;

    double lower() const { return mean - half_width; }
    double upper() const { return mean + half_width; }
    bool covers(double value) const { return value >= lower() && value <= upper(); }
};

/// One cell's estimates in network mode (measure_all_cells).
struct CellEstimates {
    MetricEstimate carried_data_traffic;
    MetricEstimate packet_loss_probability;
    MetricEstimate queueing_delay;
    MetricEstimate throughput_per_user_kbps;
    MetricEstimate mean_queue_length;
    MetricEstimate carried_voice_traffic;
    MetricEstimate average_gprs_sessions;
    MetricEstimate gsm_blocking;
    MetricEstimate gprs_blocking;
};

struct SimulationResults {
    // Mid-cell measures, aligned with core::Measures semantics.
    MetricEstimate carried_data_traffic;      ///< E[PDCHs busy]
    MetricEstimate packet_loss_probability;   ///< buffer-overflow drops / offered
    MetricEstimate queueing_delay;            ///< mean packet delay in BSC [s]
    MetricEstimate throughput_per_user_kbps;  ///< delivered rate / E[m]
    MetricEstimate mean_queue_length;         ///< E[packets in BSC buffer]
    MetricEstimate carried_voice_traffic;     ///< E[busy voice channels]
    MetricEstimate average_gprs_sessions;     ///< E[m]
    MetricEstimate gsm_blocking;              ///< blocked / attempts (incl. handover)
    MetricEstimate gprs_blocking;             ///< blocked / attempts (incl. handover)

    // Raw counters over the measured horizon: mid-cell in the classic
    // cluster, summed over all cells under measure_all_cells.
    std::int64_t packets_offered = 0;
    std::int64_t packets_dropped = 0;
    std::int64_t packets_delivered = 0;
    std::int64_t handover_packet_drops = 0;  ///< forwarding overflow (not in PLP)
    std::int64_t gsm_attempts = 0;
    std::int64_t gsm_blocked = 0;
    std::int64_t gprs_attempts = 0;
    std::int64_t gprs_blocked = 0;
    std::int64_t gsm_handover_failures = 0;
    std::int64_t gprs_handover_failures = 0;
    std::int64_t tcp_timeouts = 0;
    std::int64_t tcp_fast_retransmits = 0;

    // Network mode only.
    std::vector<CellEstimates> cells;  ///< per-cell estimates (measure_all_cells)
    /// Handovers that crossed a routing-area boundary over the measured
    /// horizon, network-wide, and the same as a rate per second.
    std::int64_t routing_area_updates = 0;
    double routing_area_update_rate = 0.0;

    std::uint64_t events_executed = 0;
    double simulated_time = 0.0;
    double wall_seconds = 0.0;
};

/// Runs one configuration to completion. Construction is cheap; run() does
/// the work and may be called once per instance.
class NetworkSimulator {
public:
    explicit NetworkSimulator(SimulationConfig config);
    ~NetworkSimulator();

    NetworkSimulator(const NetworkSimulator&) = delete;
    NetworkSimulator& operator=(const NetworkSimulator&) = delete;

    SimulationResults run();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace gprsim::sim
