#include "sim/tcp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gprsim::sim {

TcpSender::TcpSender(des::Simulation& sim, const TcpConfig& config, TransmitFn transmit)
    : sim_(sim),
      config_(config),
      transmit_(std::move(transmit)),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.initial_ssthresh),
      rto_(config.initial_rto) {
    if (!transmit_) {
        throw std::invalid_argument("TcpSender: transmit callback required");
    }
}

TcpSender::~TcpSender() { shutdown(); }

void TcpSender::shutdown() { disarm_timer(); }

void TcpSender::add_backlog(std::int64_t packets) {
    if (packets < 0) {
        throw std::invalid_argument("TcpSender::add_backlog: negative packet count");
    }
    backlog_ += packets;
    try_send();
}

void TcpSender::try_send() {
    // Usable window in whole segments.
    const auto window = static_cast<std::int64_t>(std::floor(cwnd_));
    while (backlog_ > 0 && flight_size() < window) {
        const std::int64_t seq = next_seq_++;
        --backlog_;
        send_time_.emplace(seq, sim_.now());
        if (!timer_.valid()) {
            arm_timer();
        }
        transmit_(seq, false);
    }
}

void TcpSender::on_ack(std::int64_t cum_seq) {
    if (cum_seq > next_seq_) {
        throw std::logic_error("TcpSender::on_ack: acknowledgement beyond sent data");
    }
    if (cum_seq <= una_) {
        // Duplicate ACK: no new data acknowledged.
        if (flight_size() > 0) {
            ++dupacks_;
            if (!in_recovery_ && dupacks_ == 3) {
                enter_fast_retransmit();
            } else if (in_recovery_) {
                // Window inflation: each further dup ACK signals a departed
                // segment.
                cwnd_ += 1.0;
                try_send();
            }
        }
        return;
    }

    // New cumulative acknowledgement.
    const std::int64_t newly_acked = cum_seq - una_;

    // RTT sample from the oldest newly acked, first-transmission segment
    // (Karn's rule: send_time_ entries of retransmitted segments were
    // dropped when the retransmission happened).
    for (std::int64_t seq = una_; seq < cum_seq; ++seq) {
        const auto it = send_time_.find(seq);
        if (it != send_time_.end()) {
            update_rtt(sim_.now() - it->second);
            send_time_.erase(send_time_.begin(), send_time_.upper_bound(cum_seq - 1));
            break;
        }
    }
    send_time_.erase(send_time_.begin(), send_time_.lower_bound(cum_seq));

    una_ = cum_seq;
    dupacks_ = 0;
    backoff_ = 0;

    if (in_recovery_) {
        if (cum_seq > recover_) {
            // Full acknowledgement: leave fast recovery (Reno deflation).
            in_recovery_ = false;
            cwnd_ = ssthresh_;
        } else {
            // Partial ACK (NewReno): retransmit the next hole immediately and
            // deflate by the amount acknowledged.
            cwnd_ = std::max(1.0, cwnd_ - static_cast<double>(newly_acked) + 1.0);
            send_time_.erase(una_);
            transmit_(una_, true);
        }
    } else if (cwnd_ < ssthresh_) {
        // Slow start: one segment per ACK.
        cwnd_ += static_cast<double>(newly_acked);
        if (cwnd_ > ssthresh_) {
            cwnd_ = ssthresh_;
        }
    } else {
        // Congestion avoidance: one segment per RTT.
        cwnd_ += static_cast<double>(newly_acked) / cwnd_;
    }

    if (flight_size() == 0 && backlog_ == 0) {
        disarm_timer();
    } else {
        arm_timer();  // restart on progress
    }
    try_send();
}

void TcpSender::enter_fast_retransmit() {
    ++fast_retransmits_;
    in_recovery_ = true;
    recover_ = next_seq_ - 1;
    ssthresh_ = std::max(static_cast<double>(flight_size()) / 2.0, 2.0);
    cwnd_ = ssthresh_ + 3.0;
    send_time_.erase(una_);  // Karn: no RTT sample from the retransmission
    transmit_(una_, true);
    arm_timer();
}

void TcpSender::on_timeout() {
    timer_ = des::EventHandle();
    if (flight_size() == 0 && backlog_ == 0) {
        return;
    }
    ++timeouts_;
    ssthresh_ = std::max(static_cast<double>(flight_size()) / 2.0, 2.0);
    cwnd_ = 1.0;
    dupacks_ = 0;
    in_recovery_ = false;
    backoff_ = std::min(backoff_ + 1, 6);  // cap keeps rto <= max_rto anyway
    send_time_.erase(una_);
    transmit_(una_, true);
    arm_timer();
}

void TcpSender::update_rtt(double sample) {
    if (srtt_ < 0.0) {
        srtt_ = sample;
        rttvar_ = sample / 2.0;
    } else {
        constexpr double alpha = 0.125;
        constexpr double beta = 0.25;
        rttvar_ = (1.0 - beta) * rttvar_ + beta * std::fabs(srtt_ - sample);
        srtt_ = (1.0 - alpha) * srtt_ + alpha * sample;
    }
    rto_ = std::clamp(srtt_ + 4.0 * rttvar_, config_.min_rto, config_.max_rto);
}

void TcpSender::arm_timer() {
    disarm_timer();
    const double timeout =
        std::min(rto_ * std::exp2(static_cast<double>(backoff_)), config_.max_rto);
    timer_ = sim_.schedule(timeout, [this] { on_timeout(); });
}

void TcpSender::disarm_timer() {
    if (timer_.valid()) {
        sim_.cancel(timer_);
        timer_ = des::EventHandle();
    }
}

std::int64_t TcpReceiver::on_segment(std::int64_t seq) {
    if (seq < rcv_next_) {
        return rcv_next_;  // stale retransmission; re-ACK
    }
    if (seq == rcv_next_) {
        ++rcv_next_;
        // Drain any contiguous out-of-order run.
        auto it = out_of_order_.begin();
        while (it != out_of_order_.end() && *it == rcv_next_) {
            ++rcv_next_;
            it = out_of_order_.erase(it);
        }
    } else {
        out_of_order_.insert(seq);
    }
    return rcv_next_;
}

}  // namespace gprsim::sim
