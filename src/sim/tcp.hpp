// TCP Reno flow control for the network-level simulator.
//
// The paper validates its eta-threshold flow-control approximation against a
// simulator implementing "all relevant TCP mechanisms, such as slow start,
// congestion avoidance, and retransmission based on both timeouts and
// duplicate acknowledgements". This module provides exactly that, as two
// path-agnostic state machines:
//
//   TcpSender   — congestion window (slow start / congestion avoidance /
//                 fast retransmit + fast recovery), RTO timer with Karn's
//                 rule and exponential backoff.
//   TcpReceiver — cumulative acknowledgements with out-of-order buffering
//                 (the source of duplicate ACKs).
//
// One segment carries one 480-byte data packet, so cwnd is in packets. The
// network path (wired latency, BSC buffer, radio transmission) is supplied
// by the simulator through the transmit callback; drops simply never invoke
// on_segment()/on_ack() for the lost segment.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "des/simulation.hpp"

namespace gprsim::sim {

struct TcpConfig {
    double initial_cwnd = 1.0;       ///< packets (RFC 2581 IW=1)
    double initial_ssthresh = 64.0;  ///< packets
    double min_rto = 1.0;            ///< seconds (conservative RFC 6298 floor)
    double max_rto = 64.0;           ///< backoff cap
    double initial_rto = 3.0;        ///< before the first RTT sample
};

class TcpSender {
public:
    /// `transmit(seq, is_retransmission)` must inject segment `seq` into the
    /// network path. It is called re-entrantly from add_backlog()/on_ack()/
    /// timeouts.
    using TransmitFn = std::function<void(std::int64_t seq, bool is_retransmission)>;

    TcpSender(des::Simulation& sim, const TcpConfig& config, TransmitFn transmit);
    ~TcpSender();

    TcpSender(const TcpSender&) = delete;
    TcpSender& operator=(const TcpSender&) = delete;

    /// Makes `packets` more data available to send (from the 3GPP source).
    void add_backlog(std::int64_t packets);

    /// Processes a cumulative acknowledgement (receiver expects `cum_seq`).
    void on_ack(std::int64_t cum_seq);

    /// Stops the retransmission timer; call before destroying mid-transfer.
    void shutdown();

    // --- observability ----------------------------------------------------
    double cwnd() const { return cwnd_; }
    double ssthresh() const { return ssthresh_; }
    double rto() const { return rto_; }
    double smoothed_rtt() const { return srtt_; }
    bool in_fast_recovery() const { return in_recovery_; }
    std::int64_t next_seq() const { return next_seq_; }
    std::int64_t unacked_seq() const { return una_; }
    /// Segments sent but not yet cumulatively acknowledged.
    std::int64_t flight_size() const { return next_seq_ - una_; }
    /// Data available but not yet transmitted.
    std::int64_t backlog() const { return backlog_; }
    /// True when every byte handed to add_backlog() has been acknowledged.
    bool all_acked() const { return backlog_ == 0 && una_ == next_seq_; }
    std::int64_t timeouts() const { return timeouts_; }
    std::int64_t fast_retransmits() const { return fast_retransmits_; }

private:
    void try_send();
    void enter_fast_retransmit();
    void on_timeout();
    void update_rtt(double sample);
    void arm_timer();
    void disarm_timer();

    des::Simulation& sim_;
    TcpConfig config_;
    TransmitFn transmit_;

    double cwnd_;
    double ssthresh_;
    std::int64_t backlog_ = 0;
    std::int64_t next_seq_ = 0;  // next new sequence number to send
    std::int64_t una_ = 0;       // lowest unacknowledged sequence
    int dupacks_ = 0;
    bool in_recovery_ = false;
    std::int64_t recover_ = -1;  // highest seq outstanding at loss detection

    // RTO state (RFC 6298): srtt < 0 means "no sample yet".
    double srtt_ = -1.0;
    double rttvar_ = 0.0;
    double rto_;
    int backoff_ = 0;
    des::EventHandle timer_;
    std::map<std::int64_t, double> send_time_;  // Karn: first transmissions only

    std::int64_t timeouts_ = 0;
    std::int64_t fast_retransmits_ = 0;
};

class TcpReceiver {
public:
    /// Processes arrival of segment `seq` and returns the cumulative ACK to
    /// send back (the next expected sequence number). Out-of-order segments
    /// are buffered, producing duplicate ACKs.
    std::int64_t on_segment(std::int64_t seq);

    std::int64_t expected_seq() const { return rcv_next_; }
    std::size_t buffered_out_of_order() const { return out_of_order_.size(); }

private:
    std::int64_t rcv_next_ = 0;
    std::set<std::int64_t> out_of_order_;
};

}  // namespace gprsim::sim
