#include "traffic/fitting.hpp"

#include <stdexcept>

namespace gprsim::traffic {

Ipp fit_ipp(double mean_packet_rate, double index_of_dispersion, double on_probability) {
    if (mean_packet_rate <= 0.0) {
        throw std::invalid_argument("fit_ipp: mean rate must be positive");
    }
    if (index_of_dispersion <= 1.0) {
        throw std::invalid_argument(
            "fit_ipp: an IPP is over-dispersed; IDC must exceed 1 (use a plain "
            "Poisson process for IDC = 1)");
    }
    if (on_probability <= 0.0 || on_probability >= 1.0) {
        throw std::invalid_argument("fit_ipp: ON probability must lie strictly in (0, 1)");
    }
    const double lambda_p = mean_packet_rate / on_probability;
    const double switch_rate =  // a + b
        2.0 * lambda_p * (1.0 - on_probability) / (index_of_dispersion - 1.0);
    Ipp result;
    result.on_packet_rate = lambda_p;
    result.off_to_on_rate = on_probability * switch_rate;         // b
    result.on_to_off_rate = (1.0 - on_probability) * switch_rate; // a
    result.validate();
    return result;
}

ThreeGppSessionModel session_model_from_ipp(const Ipp& source, double mean_packet_calls,
                                            double packet_size_bits) {
    source.validate();
    if (mean_packet_calls < 1.0) {
        throw std::invalid_argument("session_model_from_ipp: need at least one packet call");
    }
    ThreeGppSessionModel model;
    model.mean_packet_calls = mean_packet_calls;
    model.mean_packet_interarrival = 1.0 / source.on_packet_rate;           // D_d
    model.mean_packets_per_call = source.on_packet_rate / source.on_to_off_rate;  // N_d
    model.mean_reading_time = 1.0 / source.off_to_on_rate;                  // D_pc
    model.packet_size_bits = packet_size_bits;
    model.validate();
    return model;
}

}  // namespace gprsim::traffic
