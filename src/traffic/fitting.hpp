// Moment-matching calibration of traffic models (extension).
//
// The paper takes its source parameters from the 3GPP specification. For
// workloads known only through measurements, this module inverts the model:
// given a long-run packet rate, an asymptotic index of dispersion of counts
// and a duty cycle, it constructs the matching IPP (and, from it, a 3GPP
// session model) — the standard two-moment fitting recipe of the MMPP
// cookbook (Fischer & Meier-Hellstern [12]).
#pragma once

#include "traffic/ipp.hpp"
#include "traffic/threegpp.hpp"

namespace gprsim::traffic {

/// Fits an IPP to a target long-run packet rate [pkt/s], an asymptotic
/// index of dispersion of counts (> 1), and the ON-state probability
/// (0 < p_on < 1). Inversion of
///   mean = lambda_p p_on,   IDC = 1 + 2 lambda_p (1 - p_on) / (a + b),
///   p_on = b / (a + b).
/// Throws std::invalid_argument for infeasible targets.
Ipp fit_ipp(double mean_packet_rate, double index_of_dispersion, double on_probability);

/// Builds the 3GPP session model whose Section 3 IPP equals `source`, with
/// the session length fixed by `mean_packet_calls` (N_pc). Inversion of
/// D_d = 1/lambda_p, N_d = lambda_p / a, D_pc = 1/b.
ThreeGppSessionModel session_model_from_ipp(const Ipp& source, double mean_packet_calls,
                                            double packet_size_bits = 3840.0);

}  // namespace gprsim::traffic
