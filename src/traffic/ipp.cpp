#include "traffic/ipp.hpp"

#include <stdexcept>

namespace gprsim::traffic {

void Ipp::validate() const {
    if (on_to_off_rate <= 0.0 || off_to_on_rate <= 0.0 || on_packet_rate <= 0.0) {
        throw std::invalid_argument("Ipp: all rates must be strictly positive");
    }
}

}  // namespace gprsim::traffic
