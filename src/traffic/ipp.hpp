// Interrupted Poisson process (IPP): the paper's per-session traffic source.
//
// A GPRS user alternates between an ON state ("packet call", packets arrive
// at rate lambda_packet) and an OFF state ("reading time", silence). Both
// sojourn times are exponential (paper Fig. 4):
//
//   ON  --a-->  OFF      a = 1 / (N_d * D_d)
//   OFF --b-->  ON       b = 1 / D_pc
#pragma once

namespace gprsim::traffic {

struct Ipp {
    double on_to_off_rate = 0.0;   ///< a  [1/s]
    double off_to_on_rate = 0.0;   ///< b  [1/s]
    double on_packet_rate = 0.0;   ///< lambda_packet while ON  [packets/s]

    /// Stationary probability of the ON state: b / (a + b).
    double stationary_on_probability() const {
        return off_to_on_rate / (on_to_off_rate + off_to_on_rate);
    }
    /// Long-run packet rate: lambda_packet * P(ON).
    double mean_packet_rate() const {
        return on_packet_rate * stationary_on_probability();
    }
    /// Mean ON (packet call) duration 1/a.
    double mean_on_time() const { return 1.0 / on_to_off_rate; }
    /// Mean OFF (reading) duration 1/b.
    double mean_off_time() const { return 1.0 / off_to_on_rate; }
    /// Peak-to-mean rate ratio; 1 for Poisson, grows with burstiness.
    double burstiness() const { return 1.0 / stationary_on_probability(); }

    /// Validates strict positivity of all rates.
    void validate() const;
};

}  // namespace gprsim::traffic
