#include "traffic/mmpp.hpp"

#include <cmath>
#include <stdexcept>

#include "ctmc/gth.hpp"
#include "traffic/ipp.hpp"

namespace gprsim::traffic {

Mmpp::Mmpp(std::vector<double> generator, std::vector<double> arrival_rates)
    : generator_(std::move(generator)), rates_(std::move(arrival_rates)) {
    const std::size_t n = rates_.size();
    if (n == 0) {
        throw std::invalid_argument("Mmpp: no modulating states");
    }
    if (generator_.size() != n * n) {
        throw std::invalid_argument("Mmpp: generator size mismatch");
    }
    for (double r : rates_) {
        if (r < 0.0) {
            throw std::invalid_argument("Mmpp: negative arrival rate");
        }
    }
    // Normalize the diagonal so the matrix is a proper generator.
    for (std::size_t i = 0; i < n; ++i) {
        double row_sum = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (j != i) {
                if (generator_[i * n + j] < 0.0) {
                    throw std::invalid_argument("Mmpp: negative off-diagonal rate");
                }
                row_sum += generator_[i * n + j];
            }
        }
        generator_[i * n + i] = -row_sum;
    }
}

double Mmpp::transition_rate(common::index_type s, common::index_type t) const {
    if (s == t) {
        return 0.0;
    }
    const std::size_t n = rates_.size();
    return generator_[static_cast<std::size_t>(s) * n + static_cast<std::size_t>(t)];
}

std::vector<double> Mmpp::stationary() const {
    return ctmc::solve_gth_dense(generator_, num_states());
}

double Mmpp::mean_arrival_rate() const {
    const std::vector<double> pi = stationary();
    double rate = 0.0;
    for (std::size_t s = 0; s < rates_.size(); ++s) {
        rate += pi[s] * rates_[s];
    }
    return rate;
}

double Mmpp::index_of_dispersion() const {
    // IDC(infinity) = 1 + 2 (sum_s pi_s lambda_s d_s) / mean_rate where d
    // solves the Poisson-equation  Q d = mean_rate - lambda (componentwise),
    // with pi d = 0. Solved densely; modulators are small.
    const std::size_t n = rates_.size();
    const std::vector<double> pi = stationary();
    const double mean = mean_arrival_rate();
    if (mean <= 0.0) {
        return 1.0;
    }

    // Dense solve of [Q^T with one row replaced by pi-orthogonality].
    // Build A = Q (row-major) and rhs = mean - lambda, then replace the last
    // equation by sum_s pi_s d_s = 0 to pin the solution.
    std::vector<double> a(generator_);
    std::vector<double> rhs(n);
    for (std::size_t s = 0; s < n; ++s) {
        rhs[s] = mean - rates_[s];
    }
    for (std::size_t j = 0; j < n; ++j) {
        a[(n - 1) * n + j] = pi[j];
    }
    rhs[n - 1] = 0.0;

    // Gaussian elimination with partial pivoting.
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) {
        perm[i] = i;
    }
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) {
                pivot = r;
            }
        }
        if (std::fabs(a[pivot * n + col]) < 1e-300) {
            throw std::runtime_error("Mmpp::index_of_dispersion: singular system");
        }
        if (pivot != col) {
            for (std::size_t j = 0; j < n; ++j) {
                std::swap(a[pivot * n + j], a[col * n + j]);
            }
            std::swap(rhs[pivot], rhs[col]);
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a[r * n + col] / a[col * n + col];
            if (f == 0.0) {
                continue;
            }
            for (std::size_t j = col; j < n; ++j) {
                a[r * n + j] -= f * a[col * n + j];
            }
            rhs[r] -= f * rhs[col];
        }
    }
    std::vector<double> d(n);
    for (std::size_t ri = n; ri-- > 0;) {
        double acc = rhs[ri];
        for (std::size_t j = ri + 1; j < n; ++j) {
            acc -= a[ri * n + j] * d[j];
        }
        d[ri] = acc / a[ri * n + ri];
    }

    double correction = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
        correction += pi[s] * rates_[s] * d[s];
    }
    return 1.0 + 2.0 * correction / mean;
}

Mmpp Mmpp::superpose(const Mmpp& a, const Mmpp& b) {
    const std::size_t na = static_cast<std::size_t>(a.num_states());
    const std::size_t nb = static_cast<std::size_t>(b.num_states());
    const std::size_t n = na * nb;
    std::vector<double> gen(n * n, 0.0);
    std::vector<double> rates(n, 0.0);
    const auto idx = [nb](std::size_t sa, std::size_t sb) { return sa * nb + sb; };
    for (std::size_t sa = 0; sa < na; ++sa) {
        for (std::size_t sb = 0; sb < nb; ++sb) {
            const std::size_t s = idx(sa, sb);
            rates[s] = a.arrival_rate(static_cast<common::index_type>(sa)) +
                       b.arrival_rate(static_cast<common::index_type>(sb));
            for (std::size_t ta = 0; ta < na; ++ta) {
                if (ta != sa) {
                    gen[s * n + idx(ta, sb)] += a.transition_rate(
                        static_cast<common::index_type>(sa), static_cast<common::index_type>(ta));
                }
            }
            for (std::size_t tb = 0; tb < nb; ++tb) {
                if (tb != sb) {
                    gen[s * n + idx(sa, tb)] += b.transition_rate(
                        static_cast<common::index_type>(sb), static_cast<common::index_type>(tb));
                }
            }
        }
    }
    return Mmpp(std::move(gen), std::move(rates));
}

Mmpp ipp_as_mmpp(const Ipp& source) {
    source.validate();
    std::vector<double> gen(4, 0.0);
    gen[0 * 2 + 1] = source.on_to_off_rate;
    gen[1 * 2 + 0] = source.off_to_on_rate;
    return Mmpp(std::move(gen), {source.on_packet_rate, 0.0});
}

Mmpp aggregate_ipps(int count, const Ipp& source) {
    source.validate();
    if (count < 0) {
        throw std::invalid_argument("aggregate_ipps: negative source count");
    }
    const std::size_t n = static_cast<std::size_t>(count) + 1;
    std::vector<double> gen(n * n, 0.0);
    std::vector<double> rates(n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
        const double on = static_cast<double>(count) - static_cast<double>(r);
        rates[r] = on * source.on_packet_rate;
        if (r + 1 < n) {
            gen[r * n + (r + 1)] = on * source.on_to_off_rate;  // one more OFF
        }
        if (r > 0) {
            gen[r * n + (r - 1)] = static_cast<double>(r) * source.off_to_on_rate;
        }
    }
    return Mmpp(std::move(gen), std::move(rates));
}

}  // namespace gprsim::traffic
