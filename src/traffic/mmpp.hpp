// Markov-modulated Poisson processes and the paper's key aggregation step.
//
// The CTMC of Section 4 becomes tractable because m statistically identical
// two-state IPPs can be replaced by ONE (m+1)-state MMPP whose state r
// counts the sessions currently OFF (Fischer & Meier-Hellstern [12]).
// aggregate_ipps() builds that process; the test suite proves it equivalent
// to the brute-force superposition (Kronecker sum) of individual sources.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace gprsim::traffic {

struct Ipp;

/// Finite-state MMPP: a modulating CTMC plus a Poisson arrival rate per
/// modulating state. Kept dense; modulators here are small (m+1 states).
class Mmpp {
public:
    /// `generator` is row-major (num_states x num_states) with arbitrary
    /// diagonal (it is recomputed as the negated off-diagonal row sum);
    /// `arrival_rates` holds lambda_s per modulating state.
    Mmpp(std::vector<double> generator, std::vector<double> arrival_rates);

    common::index_type num_states() const {
        return static_cast<common::index_type>(rates_.size());
    }
    /// Off-diagonal modulating rate s -> t (0 when s == t).
    double transition_rate(common::index_type s, common::index_type t) const;
    double arrival_rate(common::index_type s) const {
        return rates_[static_cast<std::size_t>(s)];
    }

    /// Stationary distribution of the modulating chain (GTH, exact).
    std::vector<double> stationary() const;
    /// Long-run average arrival rate sum_s pi_s lambda_s.
    double mean_arrival_rate() const;
    /// Asymptotic index of dispersion of counts; 1 for a plain Poisson
    /// process, > 1 for bursty arrivals. Useful to compare burstiness of
    /// the paper's traffic models.
    double index_of_dispersion() const;

    /// Kronecker-sum superposition of two independent MMPPs.
    static Mmpp superpose(const Mmpp& a, const Mmpp& b);

private:
    std::vector<double> generator_;  // row-major, diagonal = -row sum
    std::vector<double> rates_;
};

/// Single IPP viewed as a 2-state MMPP (state 0 = ON, state 1 = OFF).
Mmpp ipp_as_mmpp(const Ipp& source);

/// Exact aggregation of `count` i.i.d. IPPs into a (count+1)-state MMPP.
/// State r = number of sources OFF; transitions r -> r+1 at (count-r)*a,
/// r -> r-1 at r*b; arrival rate (count-r)*lambda_packet.
Mmpp aggregate_ipps(int count, const Ipp& source);

}  // namespace gprsim::traffic
