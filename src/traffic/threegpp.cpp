#include "traffic/threegpp.hpp"

#include <stdexcept>

namespace gprsim::traffic {

void ThreeGppSessionModel::validate() const {
    if (mean_packet_calls < 1.0) {
        throw std::invalid_argument(
            "ThreeGppSessionModel: a session has at least one packet call (N_pc >= 1)");
    }
    if (mean_packets_per_call < 1.0) {
        throw std::invalid_argument(
            "ThreeGppSessionModel: a packet call has at least one packet (N_d >= 1)");
    }
    if (mean_reading_time <= 0.0 || mean_packet_interarrival <= 0.0 ||
        packet_size_bits <= 0.0) {
        throw std::invalid_argument("ThreeGppSessionModel: durations and sizes must be positive");
    }
}

TrafficModelPreset traffic_model_1() {
    TrafficModelPreset preset;
    preset.name = "traffic model 1 (8 kbit/s WWW)";
    preset.session.mean_packet_calls = 5.0;
    preset.session.mean_reading_time = 412.0;
    preset.session.mean_packets_per_call = 25.0;
    preset.session.mean_packet_interarrival = 0.5;
    preset.max_gprs_sessions = 50;
    return preset;
}

TrafficModelPreset traffic_model_2() {
    TrafficModelPreset preset;
    preset.name = "traffic model 2 (32 kbit/s WWW)";
    preset.session.mean_packet_calls = 5.0;
    preset.session.mean_reading_time = 412.0;
    preset.session.mean_packets_per_call = 25.0;
    preset.session.mean_packet_interarrival = 0.125;
    preset.max_gprs_sessions = 50;
    return preset;
}

TrafficModelPreset traffic_model_3() {
    TrafficModelPreset preset;
    preset.name = "traffic model 3 (32 kbit/s, heavy load)";
    preset.session.mean_packet_calls = 50.0;
    // OFF duration equals the ON duration N_d * D_d = 3.125 s.
    preset.session.mean_packets_per_call = 25.0;
    preset.session.mean_packet_interarrival = 0.125;
    preset.session.mean_reading_time =
        preset.session.mean_packet_call_duration();
    preset.max_gprs_sessions = 20;
    return preset;
}

}  // namespace gprsim::traffic
