// The 3GPP WWW-browsing session model (ETSI TR 101 112 [11], paper Fig. 3).
//
// A packet service session is an alternating sequence of packet calls and
// reading times: the session contains a geometrically distributed number of
// packet calls (mean N_pc); reading time between calls is exponential (mean
// D_pc); a packet call carries a geometric number of packets (mean N_d) with
// exponential interarrival times (mean D_d).
#pragma once

#include <string>

#include "traffic/ipp.hpp"

namespace gprsim::traffic {

struct ThreeGppSessionModel {
    double mean_packet_calls = 5.0;        ///< N_pc
    double mean_reading_time = 412.0;      ///< D_pc  [s]
    double mean_packets_per_call = 25.0;   ///< N_d
    double mean_packet_interarrival = 0.5; ///< D_d   [s]
    double packet_size_bits = 480.0 * 8.0; ///< network-layer packet (480 byte)

    /// Mean packet-call (ON) duration 1/a = N_d * D_d.
    double mean_packet_call_duration() const {
        return mean_packets_per_call * mean_packet_interarrival;
    }
    /// Mean session duration 1/mu_GPRS = N_pc (D_pc + N_d D_d) (Section 3).
    double mean_session_duration() const {
        return mean_packet_calls * (mean_reading_time + mean_packet_call_duration());
    }
    /// Source bandwidth during a packet call, in kbit/s (the "8 kbit/s" /
    /// "32 kbit/s" labels of Table 3).
    double on_rate_kbps() const {
        return packet_size_bits / mean_packet_interarrival / 1000.0;
    }
    /// Total data volume per session in kbit.
    double mean_session_volume_kbit() const {
        return mean_packet_calls * mean_packets_per_call * packet_size_bits / 1000.0;
    }
    /// The equivalent IPP of Section 3: a = 1/(N_d D_d), b = 1/D_pc,
    /// lambda_packet = 1/D_d.
    Ipp ipp() const {
        return Ipp{1.0 / mean_packet_call_duration(), 1.0 / mean_reading_time,
                   1.0 / mean_packet_interarrival};
    }

    void validate() const;
};

/// A named Table 3 column: the session model plus the session cap M the
/// paper pairs with it.
struct TrafficModelPreset {
    std::string name;
    ThreeGppSessionModel session;
    int max_gprs_sessions = 50;  ///< M
};

/// Table 3, "traffic model 1": 8 kbit/s WWW browsing (D_d = 0.5 s), M = 50.
TrafficModelPreset traffic_model_1();
/// Table 3, "traffic model 2": 32 kbit/s WWW browsing (D_d = 0.125 s), M = 50.
TrafficModelPreset traffic_model_2();
/// Table 3, "traffic model 3": heavy-load variant of model 2 with the OFF
/// duration set equal to the ON duration and 50 packet calls per session,
/// M = 20.
TrafficModelPreset traffic_model_3();

}  // namespace gprsim::traffic
