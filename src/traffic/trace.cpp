#include "traffic/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "traffic/fitting.hpp"

namespace gprsim::traffic {

namespace {

common::EvalError trace_error(std::string message) {
    return common::EvalError{common::EvalErrorCode::invalid_query, std::move(message)};
}

}  // namespace

common::Result<ArrivalTrace> read_trace(std::istream& in, const std::string& origin) {
    ArrivalTrace trace;
    std::string line;
    int line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        // Trim whitespace; skip blank/comment-only lines.
        const auto begin = line.find_first_not_of(" \t\r");
        if (begin == std::string::npos) continue;
        const auto end = line.find_last_not_of(" \t\r");
        const std::string token = line.substr(begin, end - begin + 1);
        double value = 0.0;
        std::size_t consumed = 0;
        try {
            value = std::stod(token, &consumed);
        } catch (const std::exception&) {
            return trace_error(origin + ":" + std::to_string(line_number) +
                               ": not a timestamp: \"" + token + "\"");
        }
        if (consumed != token.size() || !std::isfinite(value)) {
            return trace_error(origin + ":" + std::to_string(line_number) +
                               ": not a finite timestamp: \"" + token + "\"");
        }
        if (!trace.timestamps.empty() && value <= trace.timestamps.back()) {
            return trace_error(origin + ":" + std::to_string(line_number) +
                               ": timestamps must be strictly increasing (" +
                               std::to_string(value) + " after " +
                               std::to_string(trace.timestamps.back()) + ")");
        }
        trace.timestamps.push_back(value);
    }
    return trace;
}

common::Result<ArrivalTrace> read_trace_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        return trace_error("trace file not readable: " + path);
    }
    return read_trace(in, path);
}

common::Result<TraceSummary> summarize_trace(const ArrivalTrace& trace,
                                             const TraceOptions& options) {
    const auto& ts = trace.timestamps;
    if (ts.empty()) {
        return trace_error("degenerate trace: empty (no arrivals)");
    }
    if (ts.size() < 2) {
        return trace_error("degenerate trace: a single arrival carries no rate information");
    }
    TraceSummary s;
    s.packet_count = ts.size();
    s.duration = ts.back() - ts.front();
    if (!(s.duration > 0.0)) {
        return trace_error("degenerate trace: zero duration");
    }
    const double gaps = static_cast<double>(ts.size() - 1);
    s.mean_rate = gaps / s.duration;
    s.mean_gap = s.duration / gaps;

    // Index of dispersion of counts over equal-width windows. Clamp the
    // window count so each window holds >= ~2 arrivals in expectation —
    // an over-split trace reads as Poisson noise.
    int windows = std::max(2, options.idc_windows);
    const int max_windows = static_cast<int>(ts.size() / 2);
    windows = std::min(windows, std::max(2, max_windows));
    s.window_count = windows;
    std::vector<std::size_t> counts(static_cast<std::size_t>(windows), 0);
    const double width = s.duration / windows;
    for (const double t : ts) {
        auto idx = static_cast<std::size_t>((t - ts.front()) / width);
        if (idx >= counts.size()) idx = counts.size() - 1;  // last arrival lands on the edge
        ++counts[idx];
    }
    double mean_count = 0.0;
    for (const auto c : counts) mean_count += static_cast<double>(c);
    mean_count /= windows;
    double variance = 0.0;
    for (const auto c : counts) {
        const double d = static_cast<double>(c) - mean_count;
        variance += d * d;
    }
    variance /= windows;
    s.index_of_dispersion = variance / mean_count;
    if (!(s.index_of_dispersion > 1.0)) {
        std::ostringstream msg;
        msg << "degenerate trace: counts are not over-dispersed (IDC = "
            << s.index_of_dispersion
            << " <= 1, e.g. constant spacing); an IPP cannot match it";
        return trace_error(msg.str());
    }

    // Burst detection: a gap beyond tau = factor * median_gap is OFF
    // (reading) time; everything inside a burst is ON time. The median is
    // robust against the bimodal gap mix — most gaps are intra-burst, so
    // the median sits on the ON timescale while the mean is dragged toward
    // the reading times (and a mean-based tau would swallow short OFF
    // periods into bursts, inflating p_on severalfold).
    std::vector<double> gap_values;
    gap_values.reserve(ts.size() - 1);
    for (std::size_t i = 1; i < ts.size(); ++i) gap_values.push_back(ts[i] - ts[i - 1]);
    auto mid = gap_values.begin() + static_cast<std::ptrdiff_t>(gap_values.size() / 2);
    std::nth_element(gap_values.begin(), mid, gap_values.end());
    s.median_gap = *mid;
    s.gap_threshold = options.gap_threshold_factor * s.median_gap;
    double on_time = 0.0;
    s.burst_count = 1;
    for (std::size_t i = 1; i < ts.size(); ++i) {
        const double gap = ts[i] - ts[i - 1];
        if (gap > s.gap_threshold) {
            ++s.burst_count;
        } else {
            on_time += gap;
        }
    }
    if (s.burst_count < 2) {
        return trace_error(
            "degenerate trace: no OFF gap exceeds the burst threshold (" +
            std::to_string(s.gap_threshold) +
            " s); the ON probability is unidentifiable (raise gap_threshold_factor "
            "or supply a longer capture)");
    }
    s.on_probability = on_time / s.duration;
    if (!(s.on_probability > 0.0) || !(s.on_probability < 1.0)) {
        std::ostringstream msg;
        msg << "degenerate trace: ON probability " << s.on_probability
            << " outside (0, 1)";
        return trace_error(msg.str());
    }
    return s;
}

common::Result<FittedTraffic> fit_trace(const ArrivalTrace& trace,
                                        const TraceOptions& options) {
    auto summary = summarize_trace(trace, options);
    if (!summary.ok()) return summary.error();
    FittedTraffic fitted;
    fitted.summary = summary.take();
    try {
        fitted.ipp = fit_ipp(fitted.summary.mean_rate, fitted.summary.index_of_dispersion,
                             fitted.summary.on_probability);
        fitted.session = session_model_from_ipp(fitted.ipp, options.mean_packet_calls,
                                                options.packet_size_bits);
    } catch (const std::exception& e) {
        return trace_error(std::string("trace fit infeasible: ") + e.what());
    }
    fitted.preset.name = options.preset_name;
    fitted.preset.session = fitted.session;
    fitted.preset.max_gprs_sessions = options.max_gprs_sessions;
    return fitted;
}

common::Result<FittedTraffic> fit_trace_file(const std::string& path,
                                             const TraceOptions& options) {
    auto trace = read_trace_file(path);
    if (!trace.ok()) return trace.error();
    TraceOptions named = options;
    if (named.preset_name == "trace") {
        // Default name carries the file's basename for campaign labels.
        auto slash = path.find_last_of('/');
        named.preset_name =
            "trace:" + (slash == std::string::npos ? path : path.substr(slash + 1));
    }
    return fit_trace(trace.value(), named);
}

}  // namespace gprsim::traffic
