// Trace-driven workloads: ingest measured packet-arrival timestamp traces
// and fit them to the paper's IPP/3GPP source models.
//
// The paper parameterizes its sources from the 3GPP specification; the
// UDP-over-GPRS measurement literature motivates the inverse direction:
// start from a capture (one arrival timestamp per line), estimate the
// long-run packet rate, the index of dispersion of counts (IDC) over
// fixed-width windows, and the ON-state duty cycle via burst detection,
// then invert through traffic::fit_ipp into an IPP and the matching 3GPP
// session model. The result plugs into a campaign as a traffic axis
// ("traffic_model": "trace:<file>") exactly like the Table 3 presets.
//
// Everything here returns common::Result instead of throwing: degenerate
// traces (empty, single packet, constant spacing, no OFF gaps) are typed
// invalid_query errors the service layer can stream back as error frames.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "traffic/ipp.hpp"
#include "traffic/threegpp.hpp"

namespace gprsim::traffic {

/// A packet/arrival trace: strictly increasing timestamps in seconds,
/// origin arbitrary (only gaps matter).
struct ArrivalTrace {
    std::vector<double> timestamps;

    std::size_t size() const { return timestamps.size(); }
    /// Span from first to last arrival [s]; 0 for traces shorter than 2.
    double duration() const {
        return timestamps.size() < 2 ? 0.0 : timestamps.back() - timestamps.front();
    }
};

/// Parses a trace from text: one arrival timestamp per line, '#' starts a
/// comment, blank lines ignored. Timestamps must be finite and strictly
/// increasing; violations are invalid_query errors carrying the line number.
common::Result<ArrivalTrace> read_trace(std::istream& in, const std::string& origin = "<trace>");

/// read_trace over a file; a missing/unreadable file is an invalid_query
/// error naming the path.
common::Result<ArrivalTrace> read_trace_file(const std::string& path);

/// Estimator and model-construction knobs.
struct TraceOptions {
    /// Number of equal-width counting windows for the IDC estimate. The
    /// effective count is clamped so each window holds >= ~2 arrivals in
    /// expectation (short traces get fewer, wider windows).
    int idc_windows = 200;
    /// A gap longer than `gap_threshold_factor * median_gap` separates two
    /// packet calls (bursts); shorter gaps are intra-burst ON time. The
    /// median is the robust pivot for a bursty trace: most gaps are
    /// intra-burst, so the median sits on the ON timescale while the mean
    /// is dragged toward the (much longer) reading times.
    double gap_threshold_factor = 10.0;
    /// N_pc for the constructed 3GPP session model (the trace constrains
    /// only the within-session IPP, not the session length).
    double mean_packet_calls = 5.0;
    /// Packet size for the constructed session model [bits].
    double packet_size_bits = 480.0 * 8.0;
    /// Session cap M paired with the fitted preset.
    int max_gprs_sessions = 50;
    /// Name stamped on the fitted preset (campaign labels, CLI output).
    std::string preset_name = "trace";
};

/// Second-order summary of a trace: the three targets of the IPP fit plus
/// the intermediate statistics (for diagnostics and tests).
struct TraceSummary {
    std::size_t packet_count = 0;
    double duration = 0.0;            ///< last - first arrival [s]
    double mean_rate = 0.0;           ///< (n-1)/duration [pkt/s]
    double mean_gap = 0.0;            ///< duration/(n-1) [s]
    double median_gap = 0.0;          ///< robust burst-threshold pivot [s]
    double index_of_dispersion = 0.0; ///< var/mean of per-window counts
    double on_probability = 0.0;      ///< burst-time fraction of duration
    double gap_threshold = 0.0;       ///< tau used for burst splitting [s]
    std::size_t burst_count = 0;      ///< number of detected packet calls
    int window_count = 0;             ///< windows actually used for the IDC
};

/// Computes the TraceSummary. Degenerate traces are typed errors:
/// fewer than 2 packets, zero duration, under-dispersed counts (IDC <= 1,
/// e.g. constant spacing), or a duty cycle outside (0, 1) (e.g. no OFF
/// gaps longer than the threshold).
common::Result<TraceSummary> summarize_trace(const ArrivalTrace& trace,
                                             const TraceOptions& options = {});

/// A fitted trace workload: the matched IPP, the 3GPP session model built
/// around it, and the campaign-ready preset (session + M).
struct FittedTraffic {
    TraceSummary summary;
    Ipp ipp;
    ThreeGppSessionModel session;
    TrafficModelPreset preset;
};

/// summarize_trace + fit_ipp + session_model_from_ipp, with every fitting
/// failure surfaced as a typed error instead of an exception.
common::Result<FittedTraffic> fit_trace(const ArrivalTrace& trace,
                                        const TraceOptions& options = {});

/// read_trace_file + fit_trace.
common::Result<FittedTraffic> fit_trace_file(const std::string& path,
                                             const TraceOptions& options = {});

}  // namespace gprsim::traffic
