// Pairwise-delta machinery, isolated from any real model: two synthetic
// backends whose measures are exactly representable doubles with a known
// constant offset are registered, run as a two-method campaign, and the
// CampaignPoint::deltas vector plus the dynamic delta_*:<method> CSV
// columns are pinned — signs, magnitudes, and bit-exact round-trip through
// read_csv. This is the contract the cross-validation campaigns
// (smoke_large, large_population) lean on when they read approximation
// error out of the delta columns.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/sink.hpp"
#include "campaign/spec.hpp"
#include "eval/evaluator.hpp"
#include "eval/registry.hpp"

namespace gprsim::campaign {
namespace {

/// Synthetic backend: every measure is a small exact constant plus the
/// arrival rate, so reference-minus-other deltas are exact dyadic doubles.
class OffsetBackend : public eval::Evaluator {
public:
    OffsetBackend(std::string name, double offset)
        : name_(std::move(name)),
          description_("synthetic constant-offset backend (deltas_test)"),
          offset_(offset) {}

    const std::string& name() const override { return name_; }
    const std::string& description() const override { return description_; }

    common::Result<eval::PointEvaluation> evaluate(
        const eval::ScenarioQuery& query) override {
        eval::PointEvaluation point;
        point.backend = name_;
        point.call_arrival_rate = query.call_arrival_rate;
        point.measures.carried_data_traffic = 2.0 + offset_ + query.call_arrival_rate;
        point.measures.packet_loss_probability = 0.125 + offset_;
        point.measures.queueing_delay = 1.5 + offset_;
        point.measures.throughput_per_user_kbps = 8.0 - offset_;
        return point;
    }

private:
    std::string name_;
    std::string description_;
    double offset_;
};

void register_offset_backends() {
    static const bool once = [] {
        auto& registry = eval::BackendRegistry::global();
        registry
            .add("offset-a", "synthetic delta reference",
                 [] { return std::make_unique<OffsetBackend>("offset-a", 0.0); })
            .ok();
        registry
            .add("offset-b", "synthetic delta comparand",
                 [] { return std::make_unique<OffsetBackend>("offset-b", 0.25); })
            .ok();
        return true;
    }();
    (void)once;
}

TEST(CampaignDeltas, PairwiseDeltasCarryExactSignedOffsets) {
    register_offset_backends();
    ScenarioSpec spec;
    spec.named("deltas synthetic")
        .with_methods({"offset-a", "offset-b"})
        .with_rates({0.25, 0.5});
    const CampaignResult result = run_campaign(spec);

    ASSERT_EQ(result.methods.size(), 2u);
    EXPECT_EQ(result.methods[0], "offset-a");
    ASSERT_EQ(result.points.size(), 2u);
    for (const CampaignPoint& point : result.points) {
        ASSERT_EQ(point.deltas.size(), 2u);
        // The reference backend's own slot is identically zero.
        EXPECT_EQ(point.deltas[0].cdt, 0.0);
        EXPECT_EQ(point.deltas[0].plp, 0.0);
        EXPECT_EQ(point.deltas[0].qd, 0.0);
        EXPECT_EQ(point.deltas[0].atu, 0.0);
        // reference minus other: offset-b runs 0.25 high on cdt/plp/qd and
        // 0.25 low on atu, and all four offsets are exact dyadic doubles.
        EXPECT_EQ(point.deltas[1].cdt, -0.25);
        EXPECT_EQ(point.deltas[1].plp, -0.25);
        EXPECT_EQ(point.deltas[1].qd, -0.25);
        EXPECT_EQ(point.deltas[1].atu, 0.25);
    }
}

TEST(CampaignDeltas, DeltaColumnsRoundTripThroughCsv) {
    register_offset_backends();
    ScenarioSpec spec;
    spec.named("deltas csv")
        .with_methods({"offset-a", "offset-b"})
        .with_rates({0.25, 0.5});
    const CampaignResult result = run_campaign(spec);

    std::ostringstream out;
    write_campaign_csv(result, out);
    std::istringstream in(out.str());
    const CsvTable table = read_csv(in);

    // 42 legacy columns + one delta block for the one non-reference method.
    ASSERT_EQ(table.columns.size(), 46u);
    ASSERT_EQ(table.rows.size(), result.points.size());
    for (std::size_t row = 0; row < table.rows.size(); ++row) {
        EXPECT_EQ(table.cell(row, "delta_cdt:offset-b"), "-0.25");
        EXPECT_EQ(table.cell(row, "delta_plp:offset-b"), "-0.25");
        EXPECT_EQ(table.cell(row, "delta_qd:offset-b"), "-0.25");
        EXPECT_EQ(table.cell(row, "delta_atu:offset-b"), "0.25");
    }
}

TEST(CampaignDeltas, SingleMethodCampaignKeepsLegacyColumnLayout) {
    register_offset_backends();
    ScenarioSpec spec;
    spec.named("deltas single").with_method("offset-a").with_rates({0.25});
    const CampaignResult result = run_campaign(spec);

    std::ostringstream out;
    write_campaign_csv(result, out);
    std::istringstream in(out.str());
    const CsvTable table = read_csv(in);
    EXPECT_EQ(table.columns.size(), 42u);
    EXPECT_THROW(table.column("delta_cdt:offset-a"), std::out_of_range);
}

}  // namespace
}  // namespace gprsim::campaign
