// CampaignRunner: the bisection warm-start schedule, warm-vs-cold solve
// agreement (within solver tolerance) with strictly fewer total iterations,
// bitwise thread-count invariance of full campaign output, and model-vs-sim
// deltas under the legacy "both" (= ctmc + des) method list. Cells are kept
// tiny (N = 5..6 channels, small M and buffer) so a full campaign solves in
// well under a second.
#include "campaign/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

namespace gprsim::campaign {
namespace {

/// Small-cell spec shared by the solve tests. The cell is deliberately
/// heavily loaded (30% GPRS users, rates near saturation): there the
/// product-form cold start is weak and the neighbor warm start saves ~2x,
/// so the iteration-saving assertion has a wide margin. (On nearly
/// decoupled cells the product form is already near-exact and warm starts
/// only break even.)
ScenarioSpec tiny_ctmc_spec() {
    ScenarioSpec spec;
    spec.named("tiny")
        .with_method("ctmc")
        .over_reserved_pdch({1, 2})
        .over_gprs_fractions({0.3})
        .with_rate_grid(0.6, 1.0, 9)
        .with_tolerance(1e-10);
    spec.total_channels = 8;
    spec.buffer_capacity = 25;
    spec.max_gprs_sessions = {10};
    return spec;
}

TEST(BisectionSchedule, ColdStartIsOneMaximalLevel) {
    const SolveSchedule schedule = bisection_schedule(7, /*warm_start=*/false);
    ASSERT_EQ(schedule.levels.size(), 1u);
    EXPECT_EQ(schedule.levels[0].size(), 7u);
    EXPECT_TRUE(std::all_of(schedule.parent.begin(), schedule.parent.end(),
                            [](int p) { return p == -1; }));
}

TEST(BisectionSchedule, WarmStartCoversEveryPointExactlyOnce) {
    for (const std::size_t count : {1u, 2u, 3u, 8u, 9u, 64u}) {
        const SolveSchedule schedule = bisection_schedule(count, /*warm_start=*/true);
        std::vector<int> seen(count, 0);
        for (const auto& level : schedule.levels) {
            for (const int index : level) {
                ASSERT_GE(index, 0);
                ASSERT_LT(static_cast<std::size_t>(index), count);
                ++seen[static_cast<std::size_t>(index)];
            }
        }
        EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](int n) { return n == 1; }))
            << "count = " << count;
        // Only the root is cold.
        EXPECT_EQ(std::count(schedule.parent.begin(), schedule.parent.end(), -1), 1)
            << "count = " << count;
    }
}

TEST(BisectionSchedule, ParentsAreSolvedInEarlierLevels) {
    const SolveSchedule schedule = bisection_schedule(16, /*warm_start=*/true);
    std::vector<int> level_of(16, -1);
    for (std::size_t level = 0; level < schedule.levels.size(); ++level) {
        for (const int index : schedule.levels[level]) {
            level_of[static_cast<std::size_t>(index)] = static_cast<int>(level);
        }
    }
    for (std::size_t i = 0; i < 16; ++i) {
        const int parent = schedule.parent[i];
        if (parent >= 0) {
            EXPECT_LT(level_of[static_cast<std::size_t>(parent)], level_of[i]) << i;
        }
    }
    // Log-depth: 16 points need well under 16 levels.
    EXPECT_LE(schedule.levels.size(), 6u);
}

TEST(CampaignRunner, WarmStartAgreesWithColdAndSavesIterations) {
    ctmc::SolverEngine engine;
    CampaignRunner runner(engine);
    const ScenarioSpec spec = tiny_ctmc_spec();

    const CampaignResult warm = runner.run(spec);
    CampaignOptions cold_options;
    cold_options.force_cold = true;
    const CampaignResult cold = runner.run(spec, cold_options);

    ASSERT_EQ(warm.points.size(), 18u);
    ASSERT_EQ(cold.points.size(), 18u);
    EXPECT_TRUE(warm.summary.warm_start);
    EXPECT_FALSE(cold.summary.warm_start);
    EXPECT_EQ(warm.summary.model_solves, 18u);
    // Every point except each variant's root is offered a transfer, and on
    // this strongly coupled cell the transfers win their residual
    // comparisons (at least somewhere).
    EXPECT_EQ(warm.summary.warm_offered_solves, 16u);
    EXPECT_GT(warm.summary.warm_started_solves, 0u);
    EXPECT_LE(warm.summary.warm_started_solves, warm.summary.warm_offered_solves);
    EXPECT_EQ(cold.summary.warm_offered_solves, 0u);
    EXPECT_EQ(cold.summary.warm_started_solves, 0u);

    // Both runs converged to the same stationary solution. The residual
    // tolerance bounds pi Q, not the measures: sensitive ratio measures
    // (QD) inherit a ~1e4 amplification of the 1e-10 residual, so "agree"
    // here means within 1e-4, observed ~5e-6.
    for (std::size_t i = 0; i < warm.points.size(); ++i) {
        EXPECT_NEAR(warm.points[i].model.carried_data_traffic,
                    cold.points[i].model.carried_data_traffic, 1e-4);
        EXPECT_NEAR(warm.points[i].model.queueing_delay,
                    cold.points[i].model.queueing_delay, 1e-4);
        EXPECT_LE(warm.points[i].residual, spec.solver.tolerance);
    }

    // The headline acceptance: the warm-started campaign reports fewer
    // total solver iterations than the cold-start baseline.
    EXPECT_LT(warm.summary.total_iterations, cold.summary.total_iterations)
        << "warm " << warm.summary.total_iterations << " vs cold "
        << cold.summary.total_iterations;
}

TEST(CampaignRunner, OutputBitwiseInvariantToThreadCount) {
    ctmc::SolverEngine engine;
    CampaignRunner runner(engine);
    ScenarioSpec spec = tiny_ctmc_spec();
    spec.with_method("both").over_reserved_pdch({1});
    spec.simulation.replications = 2;
    spec.simulation.warmup_time = 100.0;
    spec.simulation.batch_count = 3;
    spec.simulation.batch_duration = 150.0;
    spec.simulation.seed = 7;

    CampaignOptions serial;
    serial.num_threads = 1;
    CampaignOptions wide;
    wide.num_threads = 4;
    const CampaignResult a = runner.run(spec, serial);
    const CampaignResult b = runner.run(spec, wide);

    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        const CampaignPoint& pa = a.points[i];
        const CampaignPoint& pb = b.points[i];
        // Bitwise: memcmp on the doubles, not EXPECT_DOUBLE_EQ.
        EXPECT_EQ(std::memcmp(&pa.model.carried_data_traffic,
                              &pb.model.carried_data_traffic, sizeof(double)), 0) << i;
        EXPECT_EQ(std::memcmp(&pa.model.packet_loss_probability,
                              &pb.model.packet_loss_probability, sizeof(double)), 0) << i;
        EXPECT_EQ(pa.iterations, pb.iterations) << i;
        EXPECT_EQ(pa.warm_parent, pb.warm_parent) << i;
        EXPECT_EQ(std::memcmp(&pa.sim.carried_data_traffic.mean,
                              &pb.sim.carried_data_traffic.mean, sizeof(double)), 0) << i;
        EXPECT_EQ(std::memcmp(&pa.sim.queueing_delay.half_width,
                              &pb.sim.queueing_delay.half_width, sizeof(double)), 0) << i;
        EXPECT_EQ(pa.sim.events_executed, pb.sim.events_executed) << i;
        EXPECT_EQ(std::memcmp(&pa.delta_cdt, &pb.delta_cdt, sizeof(double)), 0) << i;
    }
    EXPECT_EQ(a.summary.total_iterations, b.summary.total_iterations);
    EXPECT_EQ(a.summary.sim_events, b.summary.sim_events);
}

TEST(CampaignRunner, BothMethodFillsDeltasAndCis) {
    ctmc::SolverEngine engine;
    CampaignRunner runner(engine);
    ScenarioSpec spec = tiny_ctmc_spec();
    spec.with_method("both").over_reserved_pdch({1}).with_rate_grid(0.2, 0.4, 2);
    spec.simulation.replications = 3;
    spec.simulation.warmup_time = 100.0;
    spec.simulation.batch_count = 3;
    spec.simulation.batch_duration = 150.0;

    const CampaignResult result = runner.run(spec);
    ASSERT_EQ(result.points.size(), 2u);
    for (const CampaignPoint& point : result.points) {
        EXPECT_TRUE(point.has_model);
        EXPECT_TRUE(point.has_sim);
        EXPECT_EQ(point.sim.carried_data_traffic.batches, 3);
        EXPECT_GT(point.sim.events_executed, 0u);
        // delta is exactly model - pooled sim mean.
        EXPECT_DOUBLE_EQ(point.delta_cdt, point.model.carried_data_traffic -
                                              point.sim.carried_data_traffic.mean);
        EXPECT_DOUBLE_EQ(point.delta_qd,
                         point.model.queueing_delay - point.sim.queueing_delay.mean);
    }
    EXPECT_EQ(result.summary.sim_replications, 6);
}

TEST(CampaignRunner, MultiBackendListFillsEvaluationsAndPairwiseDeltas) {
    ctmc::SolverEngine engine;
    CampaignRunner runner(engine);
    ScenarioSpec spec = tiny_ctmc_spec();
    spec.with_methods({"ctmc", "mm1k-approx", "erlang"})
        .over_reserved_pdch({1})
        .with_rate_grid(0.6, 0.8, 3);

    const CampaignResult result = runner.run(spec);
    ASSERT_EQ(result.methods,
              (std::vector<std::string>{"ctmc", "mm1k-approx", "erlang"}));
    ASSERT_EQ(result.points.size(), 3u);
    for (const CampaignPoint& point : result.points) {
        ASSERT_EQ(point.evaluations.size(), 3u);
        ASSERT_EQ(point.deltas.size(), 3u);
        EXPECT_EQ(point.evaluations[0].backend, "ctmc");
        EXPECT_EQ(point.evaluations[1].backend, "mm1k-approx");
        EXPECT_GT(point.evaluations[0].iterations, 0);
        EXPECT_EQ(point.evaluations[2].iterations, 0);
        // Pairwise deltas reference the FIRST backend; index 0 is zero.
        EXPECT_EQ(point.deltas[0].cdt, 0.0);
        EXPECT_DOUBLE_EQ(point.deltas[1].cdt,
                         point.evaluations[0].measures.carried_data_traffic -
                             point.evaluations[1].measures.carried_data_traffic);
        EXPECT_DOUBLE_EQ(point.deltas[2].qd,
                         point.evaluations[0].measures.queueing_delay -
                             point.evaluations[2].measures.queueing_delay);
        // Legacy view: the model columns come from the first non-stochastic
        // backend (ctmc here); no stochastic backend ran.
        EXPECT_TRUE(point.has_model);
        EXPECT_FALSE(point.has_sim);
        EXPECT_DOUBLE_EQ(point.model.carried_data_traffic,
                         point.evaluations[0].measures.carried_data_traffic);
        // All three backends agree on the closed-form populations.
        EXPECT_NEAR(point.evaluations[1].measures.carried_voice_traffic,
                    point.evaluations[2].measures.carried_voice_traffic, 1e-12);
    }
    EXPECT_EQ(result.summary.model_solves, 3u);  // ctmc only
}

TEST(CampaignRunner, DesVariantsDrawFromDisjointSubstreams) {
    // Two IDENTICAL variants (a duplicated axis value) under one seed: if
    // the per-variant grids reused the same substream blocks, the two
    // variants' replications would be bit-identical copies instead of
    // independent draws.
    ctmc::SolverEngine engine;
    CampaignRunner runner(engine);
    ScenarioSpec spec = tiny_ctmc_spec();
    spec.with_method("des").over_reserved_pdch({1}).over_gprs_fractions({0.3, 0.3});
    spec.with_rates({0.6});
    spec.simulation.replications = 2;
    spec.simulation.warmup_time = 50.0;
    spec.simulation.batch_count = 3;
    spec.simulation.batch_duration = 100.0;
    spec.simulation.seed = 5;

    const CampaignResult result = runner.run(spec);
    ASSERT_EQ(result.points.size(), 2u);
    const CampaignPoint& a = result.points[0];
    const CampaignPoint& b = result.points[1];
    ASSERT_TRUE(a.has_sim);
    ASSERT_TRUE(b.has_sim);
    EXPECT_NE(a.sim.carried_data_traffic.mean, b.sim.carried_data_traffic.mean);
    EXPECT_NE(a.sim.replications[0].events_executed,
              b.sim.replications[0].events_executed);
}

TEST(CampaignRunner, ErlangMethodNeedsNoSolves) {
    ScenarioSpec spec;
    spec.named("erlang")
        .with_method("erlang")
        .over_gprs_fractions({0.02, 0.10})
        .with_rate_grid(0.1, 1.0, 4);
    const CampaignResult result = run_campaign(spec);
    ASSERT_EQ(result.points.size(), 8u);
    EXPECT_EQ(result.summary.model_solves, 0u);
    EXPECT_EQ(result.summary.total_iterations, 0);
    for (const CampaignPoint& point : result.points) {
        EXPECT_TRUE(point.has_model);
        EXPECT_FALSE(point.has_sim);
        EXPECT_GT(point.model.carried_voice_traffic, 0.0);
        // Chain-only measures stay zero under the closed-form method.
        EXPECT_EQ(point.model.carried_data_traffic, 0.0);
    }
    // More load, more blocking: sanity on the closed forms via at().
    EXPECT_GT(result.at(1, 3).model.gprs_blocking, result.at(1, 0).model.gprs_blocking);
}

/// Field-by-field bitwise comparison of two campaign points (memcmp on the
/// doubles, not EXPECT_DOUBLE_EQ) shared by the dispatch-mode tests.
void expect_points_bitwise_equal(const CampaignPoint& pa, const CampaignPoint& pb,
                                 std::size_t i) {
    EXPECT_EQ(std::memcmp(&pa.model.carried_data_traffic,
                          &pb.model.carried_data_traffic, sizeof(double)), 0) << i;
    EXPECT_EQ(std::memcmp(&pa.model.packet_loss_probability,
                          &pb.model.packet_loss_probability, sizeof(double)), 0) << i;
    EXPECT_EQ(std::memcmp(&pa.model.queueing_delay, &pb.model.queueing_delay,
                          sizeof(double)), 0) << i;
    EXPECT_EQ(pa.iterations, pb.iterations) << i;
    EXPECT_EQ(pa.warm_parent, pb.warm_parent) << i;
    EXPECT_EQ(pa.warm_started, pb.warm_started) << i;
    EXPECT_EQ(pa.has_sim, pb.has_sim) << i;
    if (pa.has_sim && pb.has_sim) {
        EXPECT_EQ(std::memcmp(&pa.sim.carried_data_traffic.mean,
                              &pb.sim.carried_data_traffic.mean, sizeof(double)), 0)
            << i;
        EXPECT_EQ(std::memcmp(&pa.sim.queueing_delay.half_width,
                              &pb.sim.queueing_delay.half_width, sizeof(double)), 0)
            << i;
        EXPECT_EQ(pa.sim.events_executed, pb.sim.events_executed) << i;
        EXPECT_EQ(std::memcmp(&pa.delta_cdt, &pb.delta_cdt, sizeof(double)), 0) << i;
    }
}

TEST(CampaignRunner, BatchedDispatchMatchesSequentialBitwiseAtEveryWidth) {
    // The headline acceptance of the batched path: a 3-variant,
    // 2-backend campaign produces bitwise-identical output through the
    // merged task set at 1 and 4 threads AND through the per-(backend,
    // variant) sequential dispatch — while the merged task set needs
    // fewer waves than the grids dispatched one at a time.
    ctmc::SolverEngine engine;
    CampaignRunner runner(engine);
    ScenarioSpec spec = tiny_ctmc_spec();
    spec.with_methods({"ctmc", "des"}).over_reserved_pdch({1, 2, 3});
    spec.simulation.replications = 2;
    spec.simulation.warmup_time = 100.0;
    spec.simulation.batch_count = 3;
    spec.simulation.batch_duration = 150.0;
    spec.simulation.seed = 7;

    CampaignOptions sequential;
    sequential.sequential_dispatch = true;
    CampaignOptions batched1;
    CampaignOptions batched4;
    batched4.num_threads = 4;
    const CampaignResult reference = runner.run(spec, sequential);
    const CampaignResult serial = runner.run(spec, batched1);
    const CampaignResult wide = runner.run(spec, batched4);

    ASSERT_EQ(reference.points.size(), 27u);  // 3 variants x 9 rates
    for (const CampaignResult* other : {&serial, &wide}) {
        ASSERT_EQ(other->points.size(), reference.points.size());
        for (std::size_t i = 0; i < reference.points.size(); ++i) {
            expect_points_bitwise_equal(reference.points[i], other->points[i], i);
        }
        EXPECT_EQ(other->summary.total_iterations, reference.summary.total_iterations);
        EXPECT_EQ(other->summary.sim_events, reference.summary.sim_events);
        EXPECT_EQ(other->summary.warm_started_solves,
                  reference.summary.warm_started_solves);
    }

    // Cross-variant interleaving: the merged task set's wave count is the
    // DEEPEST plan (ctmc's bisection schedule), far below the sum over
    // every (backend, variant) grid run on its own.
    EXPECT_EQ(reference.summary.batch_waves, 0u);  // sequential: not batched
    EXPECT_GT(wide.summary.batch_waves, 0u);
    EXPECT_LT(wide.summary.batch_waves, wide.summary.sequential_waves);
    const std::size_t ctmc_depth = bisection_schedule(9, true).levels.size();
    EXPECT_EQ(wide.summary.batch_waves, ctmc_depth);
    EXPECT_EQ(wide.summary.sequential_waves, 3 * ctmc_depth + 3);  // + 3 des grids
    // 27 solves + 27 points x 2 replications of simulator tasks.
    EXPECT_EQ(wide.summary.batch_tasks, 27u + 54u);
}

TEST(CampaignRunner, ProgressCallbackSeesEverySolve) {
    ctmc::SolverEngine engine;
    CampaignRunner runner(engine);
    ScenarioSpec spec = tiny_ctmc_spec();
    CampaignOptions options;
    options.num_threads = 2;
    std::vector<int> seen(spec.point_count(), 0);
    options.solve_progress = [&](std::size_t flat, const CampaignPoint& point) {
        ASSERT_LT(flat, seen.size());
        ++seen[flat];
        EXPECT_TRUE(point.has_model);
    };
    runner.run(spec, options);
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](int n) { return n == 1; }));
}

}  // namespace
}  // namespace gprsim::campaign
