// Campaign sinks: CSV round-trip at full double precision, column layout
// stability, quoting, the JSON document's shape (parseable by the spec
// layer's own JSON reader), and the summary block.
#include "campaign/sink.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "campaign/json.hpp"

namespace gprsim::campaign {
namespace {

/// Small deterministic campaign (erlang method — no solver, milliseconds).
CampaignResult sample_result() {
    ScenarioSpec spec;
    spec.named("sink sample, quoted")
        .with_method("erlang")
        .over_reserved_pdch({0, 2})
        .with_rate_grid(0.25, 0.75, 3);
    return run_campaign(spec);
}

double parse_double(const std::string& cell) {
    char* end = nullptr;
    const double value = std::strtod(cell.c_str(), &end);
    EXPECT_NE(end, cell.c_str()) << "unparseable cell: " << cell;
    return value;
}

TEST(CampaignCsv, RoundTripsExactBits) {
    const CampaignResult result = sample_result();
    std::ostringstream out;
    write_campaign_csv(result, out);

    std::istringstream in(out.str());
    const CsvTable table = read_csv(in);
    ASSERT_EQ(table.rows.size(), result.points.size());
    ASSERT_EQ(table.columns.size(), 42u);

    for (std::size_t row = 0; row < table.rows.size(); ++row) {
        const CampaignPoint& point = result.points[row];
        const Variant& variant = result.variants[point.variant];
        // The quoted scenario name survives the comma.
        EXPECT_EQ(table.cell(row, "scenario"), "sink sample, quoted");
        EXPECT_EQ(table.cell(row, "reserved_pdch"), std::to_string(variant.reserved_pdch));
        // Doubles round-trip bit-exactly through max_digits10 text.
        EXPECT_EQ(parse_double(table.cell(row, "call_arrival_rate")),
                  point.call_arrival_rate);
        EXPECT_EQ(parse_double(table.cell(row, "model_cvt")),
                  point.model.carried_voice_traffic);
        EXPECT_EQ(parse_double(table.cell(row, "model_gsm_blocking")),
                  point.model.gsm_blocking);
        // Columns the erlang method cannot fill stay empty.
        EXPECT_TRUE(table.cell(row, "sim_cdt").empty());
        EXPECT_TRUE(table.cell(row, "delta_cdt").empty());
    }
}

TEST(CampaignCsv, ReaderRejectsRaggedRows) {
    std::istringstream in("a,b,c\n1,2,3\n4,5\n");
    EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(CampaignCsv, ReaderHandlesQuotedCells) {
    std::istringstream in("name,value\n\"a,b\",\"say \"\"hi\"\"\"\n");
    const CsvTable table = read_csv(in);
    ASSERT_EQ(table.rows.size(), 1u);
    EXPECT_EQ(table.cell(0, "name"), "a,b");
    EXPECT_EQ(table.cell(0, "value"), "say \"hi\"");
}

TEST(CampaignCsv, UnknownColumnThrows) {
    std::istringstream in("a,b\n1,2\n");
    const CsvTable table = read_csv(in);
    EXPECT_THROW(table.column("missing"), std::out_of_range);
}

TEST(CampaignJson, DocumentParsesWithOwnReader) {
    const CampaignResult result = sample_result();
    std::ostringstream out;
    write_campaign_json(result, out);

    const JsonValue root = parse_json(out.str());
    ASSERT_TRUE(root.is_object());
    EXPECT_EQ(root.find("name")->as_string(), "sink sample, quoted");
    const JsonValue* methods = root.find("methods");
    ASSERT_NE(methods, nullptr);
    ASSERT_TRUE(methods->is_array());
    ASSERT_EQ(methods->items().size(), 1u);
    EXPECT_EQ(methods->items().front().as_string(), "erlang");
    const JsonValue* summary = root.find("summary");
    ASSERT_NE(summary, nullptr);
    EXPECT_EQ(static_cast<std::size_t>(summary->find("points")->as_number()),
              result.points.size());
    const JsonValue* points = root.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->items().size(), result.points.size());
    const JsonValue& first = points->items().front();
    EXPECT_EQ(first.find("model_cvt")->as_number(),
              result.points.front().model.carried_voice_traffic);
    // Omitted (empty) columns must be absent, not null.
    EXPECT_EQ(first.find("sim_cdt"), nullptr);
}

TEST(CampaignSummary, PrintsIterationTotals)
{
    const CampaignResult result = sample_result();
    char buffer[512] = {};
    std::FILE* out = std::tmpfile();
    ASSERT_NE(out, nullptr);
    print_campaign_summary(result, out);
    std::rewind(out);
    const std::size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, out);
    std::fclose(out);
    const std::string text(buffer, read);
    EXPECT_NE(text.find("campaign 'sink sample, quoted' (erlang)"), std::string::npos);
    EXPECT_NE(text.find("2 variants x 3 rates = 6 points"), std::string::npos);
}

}  // namespace
}  // namespace gprsim::campaign
