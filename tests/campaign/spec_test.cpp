// Campaign spec format: accepted documents, builder equivalence, cartesian
// expansion order, and — most importantly — that every malformed spec is
// rejected with the 1-based line number of the offending construct.
#include "campaign/spec.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "campaign/json.hpp"
#include "eval/registry.hpp"

namespace gprsim::campaign {
namespace {

TEST(ParseSpec, FullDocumentRoundTrips) {
    const std::string text = R"({
      // comments and trailing commas are part of the spec format
      "name": "fig06",
      "method": "both",
      "traffic_model": 3,
      "reserved_pdch": [1, 2],
      "gprs_fraction": [0.02, 0.05, 0.10],
      "coding_scheme": "cs2",
      "max_gprs_sessions": 0,
      "channels": 20,
      "buffer": 100,
      "eta": 0.7,
      "bler": 0.0,
      "rates": {"first": 0.1, "last": 1.0, "count": 10},
      "solver": {"tolerance": 1e-9, "warm_start": true},
      "simulation": {"replications": 4, "seed": 600, "warmup": 1500,
                     "batch_count": 10, "batch_duration": 1500, "tcp": true},
    })";
    const ScenarioSpec spec = parse_spec(text);
    EXPECT_EQ(spec.name, "fig06");
    EXPECT_EQ(spec.methods, (std::vector<std::string>{"ctmc", "des"}));
    EXPECT_EQ(spec.traffic_models, std::vector<int>{3});
    EXPECT_EQ(spec.reserved_pdch, (std::vector<int>{1, 2}));
    EXPECT_EQ(spec.gprs_fractions, (std::vector<double>{0.02, 0.05, 0.10}));
    EXPECT_EQ(spec.variant_count(), 6u);
    ASSERT_EQ(spec.rates.size(), 10u);
    EXPECT_DOUBLE_EQ(spec.rates.front(), 0.1);
    EXPECT_DOUBLE_EQ(spec.rates.back(), 1.0);
    EXPECT_EQ(spec.point_count(), 60u);
    EXPECT_DOUBLE_EQ(spec.solver.tolerance, 1e-9);
    EXPECT_EQ(spec.simulation.replications, 4);
    EXPECT_EQ(spec.simulation.seed, 600u);
}

TEST(ParseSpec, BuilderMatchesParsedSpec) {
    const ScenarioSpec parsed = parse_spec(R"({
      "name": "grid",
      "method": "ctmc",
      "traffic_model": [1, 2],
      "reserved_pdch": [1, 4],
      "rates": [0.2, 0.5, 0.8],
    })");
    ScenarioSpec built;
    built.named("grid")
        .with_method("ctmc")
        .over_traffic_models({1, 2})
        .over_reserved_pdch({1, 4})
        .with_rates({0.2, 0.5, 0.8});
    EXPECT_EQ(parsed.name, built.name);
    EXPECT_EQ(parsed.traffic_models, built.traffic_models);
    EXPECT_EQ(parsed.reserved_pdch, built.reserved_pdch);
    EXPECT_EQ(parsed.rates, built.rates);
    EXPECT_EQ(parsed.variant_count(), built.variant_count());
}

TEST(ParseSpec, ExpansionOrderIsDocumentedCartesianProduct) {
    ScenarioSpec spec;
    spec.over_traffic_models({1, 3})
        .over_reserved_pdch({0, 2})
        .with_rates({0.5});
    const std::vector<Variant> variants = spec.expand();
    ASSERT_EQ(variants.size(), 4u);
    // traffic_models outermost, reserved_pdch inner.
    EXPECT_EQ(variants[0].traffic_model, 1);
    EXPECT_EQ(variants[0].reserved_pdch, 0);
    EXPECT_EQ(variants[1].traffic_model, 1);
    EXPECT_EQ(variants[1].reserved_pdch, 2);
    EXPECT_EQ(variants[2].traffic_model, 3);
    EXPECT_EQ(variants[2].reserved_pdch, 0);
    EXPECT_EQ(variants[3].traffic_model, 3);
    EXPECT_EQ(variants[3].reserved_pdch, 2);
    // Preset M comes from the traffic model (tm1 -> 50, tm3 -> 20).
    EXPECT_EQ(variants[0].parameters.max_gprs_sessions, 50);
    EXPECT_EQ(variants[2].parameters.max_gprs_sessions, 20);
    // The variant label carries every axis value.
    EXPECT_NE(variants[3].label.find("tm3"), std::string::npos);
    EXPECT_NE(variants[3].label.find("pdch=2"), std::string::npos);
}

TEST(ParseSpec, MethodsListAcceptsAnyRegisteredBackends) {
    const ScenarioSpec spec = parse_spec(R"({
      "name": "multi",
      "methods": ["ctmc", "des", "mm1k-approx"],
      "rates": [0.5],
    })");
    EXPECT_EQ(spec.methods, (std::vector<std::string>{"ctmc", "des", "mm1k-approx"}));
}

TEST(ParseSpec, LegacyMethodAliasesStillParse) {
    EXPECT_EQ(parse_spec(R"({"method": "erlang", "rates": [0.5]})").methods,
              std::vector<std::string>{"erlang"});
    EXPECT_EQ(parse_spec(R"({"method": "ctmc", "rates": [0.5]})").methods,
              std::vector<std::string>{"ctmc"});
    // "both" is the pre-registry spelling of "model and simulator".
    EXPECT_EQ(parse_spec(R"({"method": "both", "rates": [0.5]})").methods,
              (std::vector<std::string>{"ctmc", "des"}));
    // The alias also expands inside a list.
    EXPECT_EQ(parse_spec(R"({"methods": ["erlang", "both"], "rates": [0.5]})").methods,
              (std::vector<std::string>{"erlang", "ctmc", "des"}));
}

TEST(ParseSpec, CustomRegisteredBackendAcceptedInMethods) {
    // A backend registered by out-of-tree code is immediately valid in
    // specs — the whole point of the registry dispatch.
    static bool registered = false;
    if (!registered) {
        ASSERT_TRUE(eval::register_backend("spec-test-custom", "spec test stub", [] {
                        class Stub final : public eval::Evaluator {
                            const std::string& name() const override {
                                static const std::string n = "spec-test-custom";
                                return n;
                            }
                            const std::string& description() const override {
                                static const std::string d = "stub";
                                return d;
                            }
                            common::Result<eval::PointEvaluation> evaluate(
                                const eval::ScenarioQuery& query) override {
                                eval::PointEvaluation point;
                                point.backend = name();
                                point.call_arrival_rate = query.call_arrival_rate;
                                return point;
                            }
                        };
                        return std::make_unique<Stub>();
                    }).ok());
        registered = true;
    }
    const ScenarioSpec spec =
        parse_spec(R"({"methods": ["spec-test-custom"], "rates": [0.5]})");
    EXPECT_EQ(spec.methods, std::vector<std::string>{"spec-test-custom"});
    spec.validate();  // does not throw
}

TEST(SpecValidate, EmptyMethodsRejected) {
    ScenarioSpec spec;
    spec.with_rates({0.5});
    spec.methods.clear();
    EXPECT_THROW(spec.validate(), SpecError);
}

TEST(ParseSpec, SessionLimitAxisOverridesPresetM) {
    ScenarioSpec spec;
    spec.over_session_limits({0, 10}).with_rates({0.5});
    const std::vector<Variant> variants = spec.expand();
    ASSERT_EQ(variants.size(), 2u);
    EXPECT_EQ(variants[0].parameters.max_gprs_sessions, 50);  // tm1 preset
    EXPECT_EQ(variants[1].parameters.max_gprs_sessions, 10);
}

/// Expects `parse_spec(text)` to throw a SpecError whose line() matches.
void expect_rejected_at_line(const std::string& text, int line,
                             const std::string& message_fragment) {
    try {
        parse_spec(text);
        FAIL() << "spec was accepted: " << text;
    } catch (const SpecError& e) {
        EXPECT_EQ(e.line(), line) << e.what();
        EXPECT_NE(std::string(e.what()).find(message_fragment), std::string::npos)
            << e.what();
    }
}

TEST(ParseSpecErrors, SyntaxErrorCarriesLineNumber) {
    expect_rejected_at_line("{\n  \"name\": \"x\",\n  \"rates\": [0.1,,\n}", 3,
                            "unexpected character");
}

TEST(ParseSpecErrors, UnknownMethodRejectedWithLineAndKnownBackends) {
    expect_rejected_at_line(R"({
      "rates": [0.5],
      "methods": ["ctmc", "diffusion"]
    })",
                            3, "registered backends");
}

TEST(ParseSpecErrors, DuplicateMethodRejected) {
    expect_rejected_at_line(R"({
      "rates": [0.5],
      "methods": ["ctmc", "ctmc"]
    })",
                            3, "listed twice");
    // The alias expansion is checked too: "both" already contains "des".
    EXPECT_THROW(parse_spec(R"({"methods": ["des", "both"], "rates": [0.5]})"),
                 SpecError);
}

TEST(ParseSpecErrors, UnknownKeyCarriesItsLine) {
    expect_rejected_at_line(R"({
      "name": "x",
      "rates": [0.5],
      "reserved_pdhc": 2
    })",
                            4, "unknown campaign key \"reserved_pdhc\"");
}

TEST(ParseSpecErrors, UnknownNestedKeyCarriesItsLine) {
    expect_rejected_at_line(R"({
      "rates": [0.5],
      "solver": {
        "tolernace": 1e-9
      }
    })",
                            4, "unknown \"solver\" key");
}

TEST(ParseSpecErrors, WrongTypeCarriesItsLine) {
    expect_rejected_at_line(R"({
      "rates": [0.5],
      "method": 3
    })",
                            3, "expected string");
}

TEST(ParseSpecErrors, NonIntegerAxisValueRejected) {
    expect_rejected_at_line(R"({
      "rates": [0.5],
      "reserved_pdch": [1, 2.5]
    })",
                            3, "must be an integer");
}

TEST(ParseSpecErrors, BadTrafficModelRejected) {
    EXPECT_THROW(parse_spec(R"({"rates": [0.5], "traffic_model": 4})"), SpecError);
}

TEST(ParseSpecErrors, BadCodingSchemeNamesValidOptions) {
    expect_rejected_at_line(R"({
      "rates": [0.5],
      "coding_scheme": "cs9"
    })",
                            3, "unknown coding scheme");
}

TEST(ParseSpecErrors, MissingRatesRejected) {
    EXPECT_THROW(parse_spec(R"({"name": "x"})"), SpecError);
}

TEST(ParseSpecErrors, DuplicateKeyRejected) {
    expect_rejected_at_line("{\n  \"rates\": [0.5],\n  \"rates\": [0.6]\n}", 3,
                            "duplicate key");
}

TEST(ParseSpecErrors, DescendingRatesRejected) {
    EXPECT_THROW(parse_spec(R"({"rates": [0.5, 0.4]})"), SpecError);
}

TEST(ParseSpecErrors, GridRatesNeedTwoPoints) {
    expect_rejected_at_line(R"({
      "rates": {"first": 0.1, "last": 1.0, "count": 1}
    })",
                            2, "count >= 2");
}

TEST(ParseSpec, SeedAcceptsFullUintRangeUpTo2To53) {
    const ScenarioSpec spec = parse_spec(R"({
      "rates": [0.5],
      "simulation": {"seed": 3000000000}
    })");
    EXPECT_EQ(spec.simulation.seed, 3000000000u);
}

TEST(ParseSpecErrors, NegativeOrHugeSeedRejected) {
    expect_rejected_at_line(R"({
      "rates": [0.5],
      "simulation": {"seed": -1}
    })",
                            3, "non-negative integer");
    EXPECT_THROW(parse_spec(R"({"rates": [0.5], "simulation": {"seed": 1e17}})"),
                 SpecError);
}

TEST(ParseSpecErrors, DesMethodValidatesSimulationBlock) {
    EXPECT_THROW(parse_spec(R"({
      "method": "des",
      "rates": [0.5],
      "simulation": {"replications": 0}
    })"),
                 SpecError);
}

TEST(SpecValidate, BuilderSpecsAreValidatedToo) {
    ScenarioSpec spec;
    spec.with_rates({0.5}).over_gprs_fractions({1.5});
    EXPECT_THROW(spec.validate(), SpecError);
    EXPECT_THROW((ScenarioSpec{}.with_rate_grid(1.0, 0.5, 5)), SpecError);
}

TEST(SpecValidate, NameWithControlCharactersRejected) {
    // The name flows into CSV rows and JSON strings; embedded newlines
    // would break their framing, so validate() rejects them up front.
    ScenarioSpec spec;
    spec.named("a\nb").with_rates({0.5});
    EXPECT_THROW(spec.validate(), SpecError);
    EXPECT_THROW(parse_spec(R"({"name": "a\nb", "rates": [0.5]})"), SpecError);
}

TEST(ParseSpecFile, MissingFileThrows) {
    EXPECT_THROW(parse_spec_file("/nonexistent/campaign.json"), SpecError);
}

}  // namespace
}  // namespace gprsim::campaign
