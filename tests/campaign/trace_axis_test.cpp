// Trace-driven workloads end to end: a campaign whose traffic axis names
// an arrival trace ("trace:<file>") fits the trace to an IPP/3GPP session
// model during expansion and evaluates it like any preset variant. The
// golden fixture was synthesized from traffic model 1's IPP, so the trace
// variant's measures must land close to the directly-parameterized tm1
// variant — the fitted-model-tolerance acceptance check of the service PR.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

namespace gprsim::campaign {
namespace {

const std::string kFixture =
    std::string(GPRSIM_SOURCE_DIR) + "/tests/traffic/data/ipp_tm1.trace";

ScenarioSpec trace_vs_preset_spec() {
    ScenarioSpec spec;
    spec.named("trace_axis")
        .with_method("ctmc")
        .over_traffic_models({1})
        .over_traffic_traces({kFixture})
        .over_session_limits({6})
        .with_rates({0.3, 0.5});
    spec.total_channels = 6;
    spec.buffer_capacity = 10;
    return spec;
}

TEST(TraceAxis, ExpandsPresetsThenTracesWithFittedLabels) {
    const ScenarioSpec spec = trace_vs_preset_spec();
    ASSERT_EQ(spec.variant_count(), 2u);
    const std::vector<Variant> variants = spec.expand();
    ASSERT_EQ(variants.size(), 2u);
    EXPECT_TRUE(variants[0].traffic_trace.empty());
    EXPECT_EQ(variants[0].traffic_model, 1);
    EXPECT_EQ(variants[1].traffic_trace, kFixture);
    EXPECT_NE(variants[1].label.find("trace:ipp_tm1.trace"), std::string::npos);
    // The fitted session model replaces the preset's, and differs from it.
    EXPECT_NE(variants[1].parameters.traffic.mean_packet_interarrival,
              variants[0].parameters.traffic.mean_packet_interarrival);
}

TEST(TraceAxis, MissingTraceIsASpecError) {
    ScenarioSpec spec = trace_vs_preset_spec();
    spec.traffic_traces = {"/nonexistent/capture.trace"};
    try {
        spec.expand();
        FAIL() << "expand accepted a missing trace";
    } catch (const SpecError& error) {
        EXPECT_NE(std::string(error.what()).find("traffic trace"), std::string::npos);
    }
}

TEST(TraceAxis, TraceVariantTracksItsSourcePresetThroughACampaign) {
    const CampaignResult result = run_campaign(trace_vs_preset_spec(), {});
    ASSERT_EQ(result.variants.size(), 2u);
    ASSERT_EQ(result.rates.size(), 2u);

    for (std::size_t r = 0; r < result.rates.size(); ++r) {
        const CampaignPoint& preset = result.at(0, r);
        const CampaignPoint& traced = result.at(1, r);
        ASSERT_TRUE(preset.has_model);
        ASSERT_TRUE(traced.has_model);
        // The fixture's fit recovers tm1's rate within ~5% and its burst
        // structure within the windowed-IDC bias, so the queueing measures
        // must agree to well within 25% (relative) — the trace variant is
        // the SAME workload, estimated instead of specified.
        EXPECT_NEAR(traced.model.carried_data_traffic,
                    preset.model.carried_data_traffic,
                    0.25 * preset.model.carried_data_traffic + 1e-12)
            << "rate " << result.rates[r];
        EXPECT_NEAR(traced.model.throughput_per_user_kbps,
                    preset.model.throughput_per_user_kbps,
                    0.25 * preset.model.throughput_per_user_kbps + 1e-12)
            << "rate " << result.rates[r];
        // Blocking-type probabilities are tiny here; compare absolutely.
        EXPECT_NEAR(traced.model.gsm_blocking, preset.model.gsm_blocking, 0.05);
        EXPECT_NEAR(traced.model.packet_loss_probability,
                    preset.model.packet_loss_probability, 0.05);
    }
}

}  // namespace
}  // namespace gprsim::campaign
